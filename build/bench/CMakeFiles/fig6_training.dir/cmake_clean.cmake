file(REMOVE_RECURSE
  "CMakeFiles/fig6_training.dir/fig6_training.cpp.o"
  "CMakeFiles/fig6_training.dir/fig6_training.cpp.o.d"
  "fig6_training"
  "fig6_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
