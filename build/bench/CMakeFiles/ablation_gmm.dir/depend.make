# Empty dependencies file for ablation_gmm.
# This may be replaced when dependencies are built.
