file(REMOVE_RECURSE
  "CMakeFiles/ablation_gmm.dir/ablation_gmm.cpp.o"
  "CMakeFiles/ablation_gmm.dir/ablation_gmm.cpp.o.d"
  "ablation_gmm"
  "ablation_gmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
