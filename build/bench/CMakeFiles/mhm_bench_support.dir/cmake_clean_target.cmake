file(REMOVE_RECURSE
  "libmhm_bench_support.a"
)
