# Empty compiler generated dependencies file for mhm_bench_support.
# This may be replaced when dependencies are built.
