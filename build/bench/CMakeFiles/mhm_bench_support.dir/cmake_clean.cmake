file(REMOVE_RECURSE
  "CMakeFiles/mhm_bench_support.dir/bench_support.cpp.o"
  "CMakeFiles/mhm_bench_support.dir/bench_support.cpp.o.d"
  "libmhm_bench_support.a"
  "libmhm_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhm_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
