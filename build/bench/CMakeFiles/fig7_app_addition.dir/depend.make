# Empty dependencies file for fig7_app_addition.
# This may be replaced when dependencies are built.
