file(REMOVE_RECURSE
  "CMakeFiles/fig7_app_addition.dir/fig7_app_addition.cpp.o"
  "CMakeFiles/fig7_app_addition.dir/fig7_app_addition.cpp.o.d"
  "fig7_app_addition"
  "fig7_app_addition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_app_addition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
