# Empty dependencies file for ablation_snoop_point.
# This may be replaced when dependencies are built.
