file(REMOVE_RECURSE
  "CMakeFiles/ablation_snoop_point.dir/ablation_snoop_point.cpp.o"
  "CMakeFiles/ablation_snoop_point.dir/ablation_snoop_point.cpp.o.d"
  "ablation_snoop_point"
  "ablation_snoop_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_snoop_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
