file(REMOVE_RECURSE
  "CMakeFiles/ablation_determinism.dir/ablation_determinism.cpp.o"
  "CMakeFiles/ablation_determinism.dir/ablation_determinism.cpp.o.d"
  "ablation_determinism"
  "ablation_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
