# Empty dependencies file for ablation_determinism.
# This may be replaced when dependencies are built.
