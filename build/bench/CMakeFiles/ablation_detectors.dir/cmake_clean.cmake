file(REMOVE_RECURSE
  "CMakeFiles/ablation_detectors.dir/ablation_detectors.cpp.o"
  "CMakeFiles/ablation_detectors.dir/ablation_detectors.cpp.o.d"
  "ablation_detectors"
  "ablation_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
