# Empty dependencies file for analysis_time.
# This may be replaced when dependencies are built.
