file(REMOVE_RECURSE
  "CMakeFiles/analysis_time.dir/analysis_time.cpp.o"
  "CMakeFiles/analysis_time.dir/analysis_time.cpp.o.d"
  "analysis_time"
  "analysis_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
