file(REMOVE_RECURSE
  "CMakeFiles/ablation_hyperperiod.dir/ablation_hyperperiod.cpp.o"
  "CMakeFiles/ablation_hyperperiod.dir/ablation_hyperperiod.cpp.o.d"
  "ablation_hyperperiod"
  "ablation_hyperperiod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hyperperiod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
