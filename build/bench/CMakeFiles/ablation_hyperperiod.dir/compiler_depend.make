# Empty compiler generated dependencies file for ablation_hyperperiod.
# This may be replaced when dependencies are built.
