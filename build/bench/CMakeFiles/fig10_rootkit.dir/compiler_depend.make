# Empty compiler generated dependencies file for fig10_rootkit.
# This may be replaced when dependencies are built.
