file(REMOVE_RECURSE
  "CMakeFiles/fig10_rootkit.dir/fig10_rootkit.cpp.o"
  "CMakeFiles/fig10_rootkit.dir/fig10_rootkit.cpp.o.d"
  "fig10_rootkit"
  "fig10_rootkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rootkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
