# Empty dependencies file for fig8_shellcode.
# This may be replaced when dependencies are built.
