file(REMOVE_RECURSE
  "CMakeFiles/fig8_shellcode.dir/fig8_shellcode.cpp.o"
  "CMakeFiles/fig8_shellcode.dir/fig8_shellcode.cpp.o.d"
  "fig8_shellcode"
  "fig8_shellcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_shellcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
