file(REMOVE_RECURSE
  "CMakeFiles/fig9_traffic_volume.dir/fig9_traffic_volume.cpp.o"
  "CMakeFiles/fig9_traffic_volume.dir/fig9_traffic_volume.cpp.o.d"
  "fig9_traffic_volume"
  "fig9_traffic_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_traffic_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
