# Empty dependencies file for fig1_heatmap.
# This may be replaced when dependencies are built.
