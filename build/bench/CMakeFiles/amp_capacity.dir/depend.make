# Empty dependencies file for amp_capacity.
# This may be replaced when dependencies are built.
