
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/amp_capacity.cpp" "bench/CMakeFiles/amp_capacity.dir/amp_capacity.cpp.o" "gcc" "bench/CMakeFiles/amp_capacity.dir/amp_capacity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mhm_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/mhm_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/mhm_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mhm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mhm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mhm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mhm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mhm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
