file(REMOVE_RECURSE
  "CMakeFiles/amp_capacity.dir/amp_capacity.cpp.o"
  "CMakeFiles/amp_capacity.dir/amp_capacity.cpp.o.d"
  "amp_capacity"
  "amp_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amp_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
