# Empty compiler generated dependencies file for ablation_phase_aware.
# This may be replaced when dependencies are built.
