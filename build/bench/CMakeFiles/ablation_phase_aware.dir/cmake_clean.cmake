file(REMOVE_RECURSE
  "CMakeFiles/ablation_phase_aware.dir/ablation_phase_aware.cpp.o"
  "CMakeFiles/ablation_phase_aware.dir/ablation_phase_aware.cpp.o.d"
  "ablation_phase_aware"
  "ablation_phase_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phase_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
