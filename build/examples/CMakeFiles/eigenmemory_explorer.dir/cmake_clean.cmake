file(REMOVE_RECURSE
  "CMakeFiles/eigenmemory_explorer.dir/eigenmemory_explorer.cpp.o"
  "CMakeFiles/eigenmemory_explorer.dir/eigenmemory_explorer.cpp.o.d"
  "eigenmemory_explorer"
  "eigenmemory_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigenmemory_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
