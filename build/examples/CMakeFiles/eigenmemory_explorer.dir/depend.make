# Empty dependencies file for eigenmemory_explorer.
# This may be replaced when dependencies are built.
