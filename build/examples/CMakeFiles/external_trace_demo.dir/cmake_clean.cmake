file(REMOVE_RECURSE
  "CMakeFiles/external_trace_demo.dir/external_trace_demo.cpp.o"
  "CMakeFiles/external_trace_demo.dir/external_trace_demo.cpp.o.d"
  "external_trace_demo"
  "external_trace_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_trace_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
