# Empty compiler generated dependencies file for external_trace_demo.
# This may be replaced when dependencies are built.
