file(REMOVE_RECURSE
  "CMakeFiles/rootkit_forensics.dir/rootkit_forensics.cpp.o"
  "CMakeFiles/rootkit_forensics.dir/rootkit_forensics.cpp.o.d"
  "rootkit_forensics"
  "rootkit_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootkit_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
