# Empty dependencies file for rootkit_forensics.
# This may be replaced when dependencies are built.
