file(REMOVE_RECURSE
  "CMakeFiles/securecore_monitor.dir/securecore_monitor.cpp.o"
  "CMakeFiles/securecore_monitor.dir/securecore_monitor.cpp.o.d"
  "securecore_monitor"
  "securecore_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/securecore_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
