# Empty compiler generated dependencies file for securecore_monitor.
# This may be replaced when dependencies are built.
