file(REMOVE_RECURSE
  "libmhm_attacks.a"
)
