# Empty compiler generated dependencies file for mhm_attacks.
# This may be replaced when dependencies are built.
