file(REMOVE_RECURSE
  "CMakeFiles/mhm_attacks.dir/attacks.cpp.o"
  "CMakeFiles/mhm_attacks.dir/attacks.cpp.o.d"
  "libmhm_attacks.a"
  "libmhm_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhm_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
