file(REMOVE_RECURSE
  "CMakeFiles/mhm_sim.dir/kernel_image.cpp.o"
  "CMakeFiles/mhm_sim.dir/kernel_image.cpp.o.d"
  "CMakeFiles/mhm_sim.dir/kernel_services.cpp.o"
  "CMakeFiles/mhm_sim.dir/kernel_services.cpp.o.d"
  "CMakeFiles/mhm_sim.dir/scheduler.cpp.o"
  "CMakeFiles/mhm_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/mhm_sim.dir/system.cpp.o"
  "CMakeFiles/mhm_sim.dir/system.cpp.o.d"
  "CMakeFiles/mhm_sim.dir/task.cpp.o"
  "CMakeFiles/mhm_sim.dir/task.cpp.o.d"
  "libmhm_sim.a"
  "libmhm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
