# Empty dependencies file for mhm_sim.
# This may be replaced when dependencies are built.
