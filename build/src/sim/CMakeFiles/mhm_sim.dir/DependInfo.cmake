
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/kernel_image.cpp" "src/sim/CMakeFiles/mhm_sim.dir/kernel_image.cpp.o" "gcc" "src/sim/CMakeFiles/mhm_sim.dir/kernel_image.cpp.o.d"
  "/root/repo/src/sim/kernel_services.cpp" "src/sim/CMakeFiles/mhm_sim.dir/kernel_services.cpp.o" "gcc" "src/sim/CMakeFiles/mhm_sim.dir/kernel_services.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/mhm_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/mhm_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/sim/CMakeFiles/mhm_sim.dir/system.cpp.o" "gcc" "src/sim/CMakeFiles/mhm_sim.dir/system.cpp.o.d"
  "/root/repo/src/sim/task.cpp" "src/sim/CMakeFiles/mhm_sim.dir/task.cpp.o" "gcc" "src/sim/CMakeFiles/mhm_sim.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mhm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mhm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mhm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mhm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
