file(REMOVE_RECURSE
  "libmhm_sim.a"
)
