file(REMOVE_RECURSE
  "CMakeFiles/mhm_hw.dir/address_trace.cpp.o"
  "CMakeFiles/mhm_hw.dir/address_trace.cpp.o.d"
  "CMakeFiles/mhm_hw.dir/cache_model.cpp.o"
  "CMakeFiles/mhm_hw.dir/cache_model.cpp.o.d"
  "CMakeFiles/mhm_hw.dir/control_registers.cpp.o"
  "CMakeFiles/mhm_hw.dir/control_registers.cpp.o.d"
  "CMakeFiles/mhm_hw.dir/memometer.cpp.o"
  "CMakeFiles/mhm_hw.dir/memometer.cpp.o.d"
  "CMakeFiles/mhm_hw.dir/memory_bus.cpp.o"
  "CMakeFiles/mhm_hw.dir/memory_bus.cpp.o.d"
  "CMakeFiles/mhm_hw.dir/trace_recorder.cpp.o"
  "CMakeFiles/mhm_hw.dir/trace_recorder.cpp.o.d"
  "libmhm_hw.a"
  "libmhm_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhm_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
