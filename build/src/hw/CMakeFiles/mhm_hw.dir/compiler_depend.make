# Empty compiler generated dependencies file for mhm_hw.
# This may be replaced when dependencies are built.
