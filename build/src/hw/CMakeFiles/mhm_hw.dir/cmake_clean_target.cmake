file(REMOVE_RECURSE
  "libmhm_hw.a"
)
