
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/address_trace.cpp" "src/hw/CMakeFiles/mhm_hw.dir/address_trace.cpp.o" "gcc" "src/hw/CMakeFiles/mhm_hw.dir/address_trace.cpp.o.d"
  "/root/repo/src/hw/cache_model.cpp" "src/hw/CMakeFiles/mhm_hw.dir/cache_model.cpp.o" "gcc" "src/hw/CMakeFiles/mhm_hw.dir/cache_model.cpp.o.d"
  "/root/repo/src/hw/control_registers.cpp" "src/hw/CMakeFiles/mhm_hw.dir/control_registers.cpp.o" "gcc" "src/hw/CMakeFiles/mhm_hw.dir/control_registers.cpp.o.d"
  "/root/repo/src/hw/memometer.cpp" "src/hw/CMakeFiles/mhm_hw.dir/memometer.cpp.o" "gcc" "src/hw/CMakeFiles/mhm_hw.dir/memometer.cpp.o.d"
  "/root/repo/src/hw/memory_bus.cpp" "src/hw/CMakeFiles/mhm_hw.dir/memory_bus.cpp.o" "gcc" "src/hw/CMakeFiles/mhm_hw.dir/memory_bus.cpp.o.d"
  "/root/repo/src/hw/trace_recorder.cpp" "src/hw/CMakeFiles/mhm_hw.dir/trace_recorder.cpp.o" "gcc" "src/hw/CMakeFiles/mhm_hw.dir/trace_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mhm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mhm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mhm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
