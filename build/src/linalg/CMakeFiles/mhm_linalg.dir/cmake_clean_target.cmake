file(REMOVE_RECURSE
  "libmhm_linalg.a"
)
