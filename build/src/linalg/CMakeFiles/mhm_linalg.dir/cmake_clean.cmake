file(REMOVE_RECURSE
  "CMakeFiles/mhm_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/mhm_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/mhm_linalg.dir/eigen_sym.cpp.o"
  "CMakeFiles/mhm_linalg.dir/eigen_sym.cpp.o.d"
  "CMakeFiles/mhm_linalg.dir/lu.cpp.o"
  "CMakeFiles/mhm_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/mhm_linalg.dir/matrix.cpp.o"
  "CMakeFiles/mhm_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/mhm_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/mhm_linalg.dir/vector_ops.cpp.o.d"
  "libmhm_linalg.a"
  "libmhm_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhm_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
