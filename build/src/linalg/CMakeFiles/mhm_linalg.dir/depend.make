# Empty dependencies file for mhm_linalg.
# This may be replaced when dependencies are built.
