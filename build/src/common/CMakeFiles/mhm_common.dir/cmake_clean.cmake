file(REMOVE_RECURSE
  "CMakeFiles/mhm_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/mhm_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/mhm_common.dir/csv.cpp.o"
  "CMakeFiles/mhm_common.dir/csv.cpp.o.d"
  "CMakeFiles/mhm_common.dir/error.cpp.o"
  "CMakeFiles/mhm_common.dir/error.cpp.o.d"
  "CMakeFiles/mhm_common.dir/rng.cpp.o"
  "CMakeFiles/mhm_common.dir/rng.cpp.o.d"
  "CMakeFiles/mhm_common.dir/stats.cpp.o"
  "CMakeFiles/mhm_common.dir/stats.cpp.o.d"
  "libmhm_common.a"
  "libmhm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
