file(REMOVE_RECURSE
  "libmhm_common.a"
)
