# Empty dependencies file for mhm_common.
# This may be replaced when dependencies are built.
