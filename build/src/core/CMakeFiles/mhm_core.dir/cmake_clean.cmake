file(REMOVE_RECURSE
  "CMakeFiles/mhm_core.dir/alarm_filter.cpp.o"
  "CMakeFiles/mhm_core.dir/alarm_filter.cpp.o.d"
  "CMakeFiles/mhm_core.dir/detector.cpp.o"
  "CMakeFiles/mhm_core.dir/detector.cpp.o.d"
  "CMakeFiles/mhm_core.dir/explainer.cpp.o"
  "CMakeFiles/mhm_core.dir/explainer.cpp.o.d"
  "CMakeFiles/mhm_core.dir/gmm.cpp.o"
  "CMakeFiles/mhm_core.dir/gmm.cpp.o.d"
  "CMakeFiles/mhm_core.dir/heatmap.cpp.o"
  "CMakeFiles/mhm_core.dir/heatmap.cpp.o.d"
  "CMakeFiles/mhm_core.dir/model_io.cpp.o"
  "CMakeFiles/mhm_core.dir/model_io.cpp.o.d"
  "CMakeFiles/mhm_core.dir/pca.cpp.o"
  "CMakeFiles/mhm_core.dir/pca.cpp.o.d"
  "CMakeFiles/mhm_core.dir/phase_detector.cpp.o"
  "CMakeFiles/mhm_core.dir/phase_detector.cpp.o.d"
  "CMakeFiles/mhm_core.dir/trace_io.cpp.o"
  "CMakeFiles/mhm_core.dir/trace_io.cpp.o.d"
  "libmhm_core.a"
  "libmhm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
