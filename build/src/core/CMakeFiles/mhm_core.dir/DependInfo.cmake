
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alarm_filter.cpp" "src/core/CMakeFiles/mhm_core.dir/alarm_filter.cpp.o" "gcc" "src/core/CMakeFiles/mhm_core.dir/alarm_filter.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/mhm_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/mhm_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/explainer.cpp" "src/core/CMakeFiles/mhm_core.dir/explainer.cpp.o" "gcc" "src/core/CMakeFiles/mhm_core.dir/explainer.cpp.o.d"
  "/root/repo/src/core/gmm.cpp" "src/core/CMakeFiles/mhm_core.dir/gmm.cpp.o" "gcc" "src/core/CMakeFiles/mhm_core.dir/gmm.cpp.o.d"
  "/root/repo/src/core/heatmap.cpp" "src/core/CMakeFiles/mhm_core.dir/heatmap.cpp.o" "gcc" "src/core/CMakeFiles/mhm_core.dir/heatmap.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/mhm_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/mhm_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/pca.cpp" "src/core/CMakeFiles/mhm_core.dir/pca.cpp.o" "gcc" "src/core/CMakeFiles/mhm_core.dir/pca.cpp.o.d"
  "/root/repo/src/core/phase_detector.cpp" "src/core/CMakeFiles/mhm_core.dir/phase_detector.cpp.o" "gcc" "src/core/CMakeFiles/mhm_core.dir/phase_detector.cpp.o.d"
  "/root/repo/src/core/trace_io.cpp" "src/core/CMakeFiles/mhm_core.dir/trace_io.cpp.o" "gcc" "src/core/CMakeFiles/mhm_core.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mhm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mhm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
