file(REMOVE_RECURSE
  "libmhm_core.a"
)
