# Empty compiler generated dependencies file for mhm_core.
# This may be replaced when dependencies are built.
