# Empty compiler generated dependencies file for mhm_pipeline.
# This may be replaced when dependencies are built.
