file(REMOVE_RECURSE
  "CMakeFiles/mhm_pipeline.dir/amp_monitor.cpp.o"
  "CMakeFiles/mhm_pipeline.dir/amp_monitor.cpp.o.d"
  "CMakeFiles/mhm_pipeline.dir/experiment.cpp.o"
  "CMakeFiles/mhm_pipeline.dir/experiment.cpp.o.d"
  "CMakeFiles/mhm_pipeline.dir/secure_core.cpp.o"
  "CMakeFiles/mhm_pipeline.dir/secure_core.cpp.o.d"
  "libmhm_pipeline.a"
  "libmhm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
