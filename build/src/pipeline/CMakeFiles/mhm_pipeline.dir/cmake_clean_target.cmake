file(REMOVE_RECURSE
  "libmhm_pipeline.a"
)
