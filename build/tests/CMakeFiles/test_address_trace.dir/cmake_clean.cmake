file(REMOVE_RECURSE
  "CMakeFiles/test_address_trace.dir/test_address_trace.cpp.o"
  "CMakeFiles/test_address_trace.dir/test_address_trace.cpp.o.d"
  "test_address_trace"
  "test_address_trace.pdb"
  "test_address_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_address_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
