# Empty dependencies file for test_address_trace.
# This may be replaced when dependencies are built.
