# Empty dependencies file for test_memometer.
# This may be replaced when dependencies are built.
