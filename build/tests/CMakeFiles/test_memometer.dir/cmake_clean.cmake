file(REMOVE_RECURSE
  "CMakeFiles/test_memometer.dir/test_memometer.cpp.o"
  "CMakeFiles/test_memometer.dir/test_memometer.cpp.o.d"
  "test_memometer"
  "test_memometer.pdb"
  "test_memometer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memometer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
