# Empty compiler generated dependencies file for test_memory_bus.
# This may be replaced when dependencies are built.
