file(REMOVE_RECURSE
  "CMakeFiles/test_memory_bus.dir/test_memory_bus.cpp.o"
  "CMakeFiles/test_memory_bus.dir/test_memory_bus.cpp.o.d"
  "test_memory_bus"
  "test_memory_bus.pdb"
  "test_memory_bus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
