# Empty dependencies file for test_cholesky_lu.
# This may be replaced when dependencies are built.
