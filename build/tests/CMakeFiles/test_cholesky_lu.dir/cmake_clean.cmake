file(REMOVE_RECURSE
  "CMakeFiles/test_cholesky_lu.dir/test_cholesky_lu.cpp.o"
  "CMakeFiles/test_cholesky_lu.dir/test_cholesky_lu.cpp.o.d"
  "test_cholesky_lu"
  "test_cholesky_lu.pdb"
  "test_cholesky_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cholesky_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
