file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_image.dir/test_kernel_image.cpp.o"
  "CMakeFiles/test_kernel_image.dir/test_kernel_image.cpp.o.d"
  "test_kernel_image"
  "test_kernel_image.pdb"
  "test_kernel_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
