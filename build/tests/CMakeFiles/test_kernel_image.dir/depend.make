# Empty dependencies file for test_kernel_image.
# This may be replaced when dependencies are built.
