# Empty dependencies file for test_control_registers.
# This may be replaced when dependencies are built.
