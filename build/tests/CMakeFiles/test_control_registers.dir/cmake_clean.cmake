file(REMOVE_RECURSE
  "CMakeFiles/test_control_registers.dir/test_control_registers.cpp.o"
  "CMakeFiles/test_control_registers.dir/test_control_registers.cpp.o.d"
  "test_control_registers"
  "test_control_registers.pdb"
  "test_control_registers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
