file(REMOVE_RECURSE
  "CMakeFiles/test_explainer.dir/test_explainer.cpp.o"
  "CMakeFiles/test_explainer.dir/test_explainer.cpp.o.d"
  "test_explainer"
  "test_explainer.pdb"
  "test_explainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
