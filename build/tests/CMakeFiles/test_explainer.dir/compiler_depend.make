# Empty compiler generated dependencies file for test_explainer.
# This may be replaced when dependencies are built.
