# Empty compiler generated dependencies file for test_csv_ascii.
# This may be replaced when dependencies are built.
