file(REMOVE_RECURSE
  "CMakeFiles/test_csv_ascii.dir/test_csv_ascii.cpp.o"
  "CMakeFiles/test_csv_ascii.dir/test_csv_ascii.cpp.o.d"
  "test_csv_ascii"
  "test_csv_ascii.pdb"
  "test_csv_ascii[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_ascii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
