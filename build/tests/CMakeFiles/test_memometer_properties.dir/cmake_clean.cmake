file(REMOVE_RECURSE
  "CMakeFiles/test_memometer_properties.dir/test_memometer_properties.cpp.o"
  "CMakeFiles/test_memometer_properties.dir/test_memometer_properties.cpp.o.d"
  "test_memometer_properties"
  "test_memometer_properties.pdb"
  "test_memometer_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memometer_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
