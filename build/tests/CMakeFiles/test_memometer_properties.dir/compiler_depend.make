# Empty compiler generated dependencies file for test_memometer_properties.
# This may be replaced when dependencies are built.
