# Empty dependencies file for test_amp_monitor.
# This may be replaced when dependencies are built.
