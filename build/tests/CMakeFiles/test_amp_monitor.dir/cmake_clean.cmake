file(REMOVE_RECURSE
  "CMakeFiles/test_amp_monitor.dir/test_amp_monitor.cpp.o"
  "CMakeFiles/test_amp_monitor.dir/test_amp_monitor.cpp.o.d"
  "test_amp_monitor"
  "test_amp_monitor.pdb"
  "test_amp_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amp_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
