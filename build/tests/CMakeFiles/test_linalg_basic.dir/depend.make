# Empty dependencies file for test_linalg_basic.
# This may be replaced when dependencies are built.
