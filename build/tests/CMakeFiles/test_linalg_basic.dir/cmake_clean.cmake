file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_basic.dir/test_linalg_basic.cpp.o"
  "CMakeFiles/test_linalg_basic.dir/test_linalg_basic.cpp.o.d"
  "test_linalg_basic"
  "test_linalg_basic.pdb"
  "test_linalg_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
