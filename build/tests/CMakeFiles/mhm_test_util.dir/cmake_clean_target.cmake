file(REMOVE_RECURSE
  "libmhm_test_util.a"
)
