file(REMOVE_RECURSE
  "CMakeFiles/mhm_test_util.dir/test_util.cpp.o"
  "CMakeFiles/mhm_test_util.dir/test_util.cpp.o.d"
  "libmhm_test_util.a"
  "libmhm_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhm_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
