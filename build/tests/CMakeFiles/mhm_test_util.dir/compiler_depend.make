# Empty compiler generated dependencies file for mhm_test_util.
# This may be replaced when dependencies are built.
