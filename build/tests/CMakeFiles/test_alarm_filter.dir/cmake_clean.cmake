file(REMOVE_RECURSE
  "CMakeFiles/test_alarm_filter.dir/test_alarm_filter.cpp.o"
  "CMakeFiles/test_alarm_filter.dir/test_alarm_filter.cpp.o.d"
  "test_alarm_filter"
  "test_alarm_filter.pdb"
  "test_alarm_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alarm_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
