file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_services.dir/test_kernel_services.cpp.o"
  "CMakeFiles/test_kernel_services.dir/test_kernel_services.cpp.o.d"
  "test_kernel_services"
  "test_kernel_services.pdb"
  "test_kernel_services[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
