file(REMOVE_RECURSE
  "CMakeFiles/test_phase_detector.dir/test_phase_detector.cpp.o"
  "CMakeFiles/test_phase_detector.dir/test_phase_detector.cpp.o.d"
  "test_phase_detector"
  "test_phase_detector.pdb"
  "test_phase_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
