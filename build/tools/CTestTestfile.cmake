# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(mhm_tool_record "/root/repo/build/tools/mhm_tool" "record" "--out" "/root/repo/build/tools/smoke.mhmt" "--runs" "2" "--seconds" "1" "--granularity" "16384")
set_tests_properties(mhm_tool_record PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mhm_tool_train_offline "/root/repo/build/tools/mhm_tool" "train" "--trace" "/root/repo/build/tools/smoke.mhmt" "--out" "/root/repo/build/tools/smoke.mhm" "--restarts" "2")
set_tests_properties(mhm_tool_train_offline PROPERTIES  DEPENDS "mhm_tool_record" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mhm_tool_inspect "/root/repo/build/tools/mhm_tool" "inspect" "--model" "/root/repo/build/tools/smoke.mhm")
set_tests_properties(mhm_tool_inspect PROPERTIES  DEPENDS "mhm_tool_train_offline" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mhm_tool_monitor_normal "/root/repo/build/tools/mhm_tool" "monitor" "--model" "/root/repo/build/tools/smoke.mhm" "--granularity" "16384" "--duration-ms" "1000" "--seed" "77")
set_tests_properties(mhm_tool_monitor_normal PROPERTIES  DEPENDS "mhm_tool_train_offline" PASS_REGULAR_EXPRESSION "intervals analyzed" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mhm_tool_monitor_attack "/root/repo/build/tools/mhm_tool" "monitor" "--model" "/root/repo/build/tools/smoke.mhm" "--granularity" "16384" "--attack" "shellcode" "--trigger-ms" "500" "--duration-ms" "1500")
set_tests_properties(mhm_tool_monitor_attack PROPERTIES  DEPENDS "mhm_tool_train_offline" PASS_REGULAR_EXPRESSION "detected \\+" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mhm_tool_rejects_unknown_command "/root/repo/build/tools/mhm_tool" "frobnicate")
set_tests_properties(mhm_tool_rejects_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mhm_tool_ingest "/root/repo/build/tools/mhm_tool" "ingest" "--in" "/root/repo/build/tools/smoke_addr.txt" "--out" "/root/repo/build/tools/smoke_ingested.mhmt")
set_tests_properties(mhm_tool_ingest PROPERTIES  PASS_REGULAR_EXPRESSION "2 complete heat maps" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
