# Empty dependencies file for mhm_tool.
# This may be replaced when dependencies are built.
