file(REMOVE_RECURSE
  "CMakeFiles/mhm_tool.dir/mhm_tool.cpp.o"
  "CMakeFiles/mhm_tool.dir/mhm_tool.cpp.o.d"
  "mhm_tool"
  "mhm_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
