// securecore_monitor — demonstrates the SecureCore deployment model (§3):
// the trusted core configures the Memometer, pulls each finished MHM from
// the on-chip double buffer, analyzes it within the monitoring interval
// and raises alarms through a handler (here: a Simplex-style fallback that
// logs and could switch the plant to a safety controller). Also checks the
// real-time constraint the paper's §5.4 numbers exist to establish:
// analysis time must fit inside one interval so the double buffer never
// overruns.

#include <cstdio>

#include "attacks/attacks.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/secure_core.hpp"

int main() {
  using namespace mhm;

  sim::SystemConfig config = sim::SystemConfig::paper_default(/*seed=*/1);
  config.monitor.granularity = 8 * 1024;

  pipeline::ProfilingPlan plan;
  plan.runs = 4;
  plan.run_duration = 2 * kSecond;

  AnomalyDetector::Options options;
  options.pca.components = 9;
  options.gmm.components = 5;
  options.gmm.restarts = 5;

  std::printf("Profiling phase (trusted environment, pre-deployment)...\n");
  pipeline::TrainedPipeline pipe =
      pipeline::train_pipeline(config, plan, options);

  std::printf("Deployment: secure core armed, monitored core running the "
              "real-time task set. A shellcode will fire at t = 2 s.\n\n");

  sim::SystemConfig deployed = config;
  deployed.seed = 31415;
  sim::System system(deployed);
  pipeline::SecureCoreMonitor monitor(system, pipe.det());

  // Alarm handler: first alarm triggers the (simulated) recovery action.
  bool recovery_triggered = false;
  monitor.set_alarm_handler([&](const pipeline::SecureCoreMonitor::Alarm& a) {
    if (!recovery_triggered) {
      std::printf(">>> ALARM at interval %llu (log10 Pr = %.2f) — "
                  "switching to safety controller <<<\n",
                  static_cast<unsigned long long>(a.interval_index),
                  a.log10_density);
      recovery_triggered = true;
    }
  });

  attacks::ShellcodeAttack attack("bitcount");
  attack.arm(system, 2 * kSecond);
  system.run_for(4 * kSecond);

  std::printf("\nRun complete: %zu intervals analyzed, %zu alarms\n",
              monitor.verdicts().size(), monitor.alarms().size());
  std::printf("mean analysis time: %.1f us per MHM (interval: %.1f ms)\n",
              monitor.mean_analysis_time_ns() / 1000.0,
              static_cast<double>(deployed.monitor.interval) / kMillisecond);
  std::printf("double-buffer overruns (analysis longer than interval): %zu\n",
              monitor.deadline_overruns());

  // Count pre/post attack alarms (trigger at interval 200).
  std::size_t pre = 0;
  std::size_t post = 0;
  for (const auto& a : monitor.alarms()) {
    (a.interval_index < 200 ? pre : post) += 1;
  }
  std::printf("alarms before the attack: %zu (false positives), after: %zu\n",
              pre, post);
  std::printf("first alarm raised: %s\n",
              recovery_triggered ? "yes — recovery engaged" : "no");
  return 0;
}
