// Quickstart: the complete Memory Heat Map workflow in ~60 lines.
//
//  1. Build the simulated monitored system (synthetic kernel + the paper's
//     four periodic MiBench-like tasks + Memometer snooping kernel .text).
//  2. Profile normal behaviour and train the detector
//     (eigenmemory PCA -> GMM, thresholds calibrated on held-out maps).
//  3. Replay a run with a mid-run attack (a rogue application launch) and
//     print the per-interval log densities the secure core would see.

#include <cstdio>

#include "attacks/attacks.hpp"
#include "common/ascii_plot.hpp"
#include "obs/metrics.hpp"
#include "pipeline/experiment.hpp"

int main() {
  using namespace mhm;

  // --- 1. system configuration (coarsened for a fast demo) ---
  sim::SystemConfig config = sim::SystemConfig::paper_default(/*seed=*/1);
  config.monitor.granularity = 8 * 1024;  // 368 cells instead of 1,472

  // --- 2. profile + train ---
  pipeline::ProfilingPlan plan;
  plan.runs = 4;
  plan.run_duration = 2 * kSecond;

  AnomalyDetector::Options options;
  options.pca.components = 9;   // eigenmemories (paper: 9)
  options.gmm.components = 5;   // GMM patterns J (paper: 5)
  options.gmm.restarts = 5;

  std::printf("Profiling %zu normal runs of %.1f s each...\n", plan.runs,
              static_cast<double>(plan.run_duration) / kSecond);
  pipeline::TrainedPipeline trained =
      pipeline::train_pipeline(config, plan, options);
  std::printf("Trained on %zu MHMs (%zu cells each); "
              "variance explained by %zu eigenmemories: %.4f%%\n",
              trained.training.size(), trained.training.front().cell_count(),
              trained.det().eigenmemory().components(),
              100.0 * trained.det().eigenmemory().variance_explained());
  std::printf("Thresholds: theta_0.5 = %.2f, theta_1 = %.2f (log10)\n",
              trained.theta_05.log10_value, trained.theta_1.log10_value);

  // --- 3. attacked run: launch qsort at t = 2.5 s ---
  attacks::AppAdditionAttack attack;
  const SimTime trigger = 2500 * kMillisecond;
  pipeline::ScenarioRun run = pipeline::run_scenario(
      config, &attack, trigger, /*duration=*/5 * kSecond,
      trained.detector.get(), /*seed=*/777);

  std::printf("\nScenario '%s': %zu intervals, attack at interval %llu\n",
              run.scenario.c_str(), run.maps.size(),
              static_cast<unsigned long long>(run.trigger_interval));
  std::printf("False positives before trigger (theta_1): %zu / %zu\n",
              run.false_positives_before_trigger(trained.theta_1.log10_value),
              run.intervals_before_trigger());
  const auto latency = run.detection_latency(trained.theta_1.log10_value);
  if (latency) {
    std::printf("Detected %llu interval(s) after the launch\n",
                static_cast<unsigned long long>(*latency));
  } else {
    std::printf("Attack NOT detected\n");
  }

  LinePlotOptions plot;
  plot.title = "log10 Pr(M) per interval (app addition at the vertical bar)";
  plot.hlines = {trained.theta_05.log10_value, trained.theta_1.log10_value};
  plot.vlines = {static_cast<double>(run.trigger_interval)};
  std::fputs(render_line_plot(run.log10_densities(), plot).c_str(), stdout);

  const obs::Histogram& hist = AnomalyDetector::analysis_time_histogram();
  std::printf("\nMean analysis time per MHM: %.1f us\n",
              hist.count() > 0
                  ? hist.sum() / static_cast<double>(hist.count()) / 1000.0
                  : 0.0);
  return 0;
}
