// eigenmemory_explorer — inspects what the dimensionality-reduction stage
// actually learns: which kernel subsystems each eigenmemory (primary
// activity) loads on, how the reduced weights evolve over the hyperperiod,
// and how much of each new MHM survives the projection. This is the §4.2
// machinery made visible.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "pipeline/experiment.hpp"
#include "sim/system.hpp"

int main() {
  using namespace mhm;

  sim::SystemConfig config = sim::SystemConfig::paper_default(/*seed=*/1);
  config.monitor.granularity = 8 * 1024;

  pipeline::ProfilingPlan plan;
  plan.runs = 4;
  plan.run_duration = 2 * kSecond;

  std::printf("Collecting normal heat maps...\n");
  const HeatMapTrace training = pipeline::collect_normal_trace(config, plan);

  Eigenmemory::Options opts;
  opts.components = 9;
  const Eigenmemory em = Eigenmemory::fit(training, opts);

  std::printf("Fitted eigenmemory basis: %zu components over %zu cells, "
              "variance explained %.4f%%\n\n",
              em.components(), em.input_dim(),
              100.0 * em.variance_explained());

  // --- which subsystems does each eigenmemory load on? ---
  // Cells map back to kernel addresses; attribute each |weight| to the
  // subsystem owning that address.
  sim::System probe_system(config);
  const auto& kernel = probe_system.kernel();
  std::printf("Per-eigenmemory subsystem loading (top 3 each):\n");
  for (std::size_t k = 0; k < em.components(); ++k) {
    std::map<std::string, double> loading;
    for (std::size_t c = 0; c < em.input_dim(); ++c) {
      const Address addr = config.monitor.base +
                           static_cast<Address>(c) * config.monitor.granularity;
      const auto* fn = kernel.function_at(addr);
      if (fn == nullptr) continue;
      loading[kernel.subsystems()[fn->subsystem].name] +=
          std::abs(em.basis()(k, c));
    }
    std::vector<std::pair<std::string, double>> sorted(loading.begin(),
                                                       loading.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    double total = 0.0;
    for (const auto& [name, w] : sorted) total += w;
    std::printf("  u%zu (eigenvalue %.3g): ", k + 1, em.eigenvalues()[k]);
    for (std::size_t i = 0; i < std::min<std::size_t>(3, sorted.size()); ++i) {
      std::printf("%s%s %.0f%%", i ? ", " : "", sorted[i].first.c_str(),
                  100.0 * sorted[i].second / total);
    }
    std::printf("\n");
  }

  // --- weight trajectories over the hyperperiod ---
  std::printf("\nReduced-weight trajectory of one fresh run "
              "(w1 per interval; 10-interval hyperperiod visible):\n");
  sim::SystemConfig fresh = config;
  fresh.seed = 99;
  sim::System system(fresh);
  system.run_for(600 * kMillisecond);

  std::vector<double> w1_series;
  for (const auto& map : system.trace()) {
    w1_series.push_back(em.project(map)[0]);
  }
  LinePlotOptions plot;
  plot.title = "w1 (weight of the dominant primary activity) per interval";
  plot.height = 14;
  std::fputs(render_line_plot(w1_series, plot).c_str(), stdout);

  // --- per-phase weight signatures ---
  std::printf("\nMean weights by hyperperiod phase (rows: phase 0..9, "
              "columns: w1..w%zu):\n", em.components());
  std::vector<std::vector<double>> phase_sum(10,
                                             std::vector<double>(em.components(), 0.0));
  std::vector<std::size_t> phase_n(10, 0);
  for (const auto& map : system.trace()) {
    const auto w = em.project(map);
    const auto phase = static_cast<std::size_t>(map.interval_index % 10);
    for (std::size_t k = 0; k < w.size(); ++k) phase_sum[phase][k] += w[k];
    ++phase_n[phase];
  }
  for (std::size_t p = 0; p < 10; ++p) {
    std::printf("  phase %zu: [", p);
    for (std::size_t k = 0; k < em.components(); ++k) {
      std::printf("%s%7.0f", k ? " " : "",
                  phase_n[p] ? phase_sum[p][k] / static_cast<double>(phase_n[p])
                             : 0.0);
    }
    std::printf("]\n");
  }

  // --- reconstruction quality ---
  RunningStats err;
  for (const auto& map : system.trace()) {
    err.add(em.reconstruction_error(map.as_vector()));
  }
  std::printf("\nRelative reconstruction error on the fresh run: "
              "mean %.4f, max %.4f — the basis generalizes beyond its "
              "training data.\n",
              err.mean(), err.max());
  return 0;
}
