// attack_detection_demo — runs all three of the paper's attack scenarios
// (§5.3) against one trained detector and prints a side-by-side summary:
// application addition, shellcode execution and the kernel rootkit, each
// with per-threshold detection statistics, mirroring the paper's
// evaluation narrative end to end.
//
// Usage: attack_detection_demo [scenario]
//   scenario: app_addition | shellcode | rootkit (default: all three)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "common/ascii_plot.hpp"
#include "pipeline/experiment.hpp"

namespace {

using namespace mhm;

struct ScenarioSummary {
  std::string name;
  std::size_t fp_before = 0;
  std::size_t before = 0;
  std::size_t flagged_after = 0;
  std::size_t after = 0;
  std::string latency;
};

ScenarioSummary run_one(const std::string& name,
                        const sim::SystemConfig& config,
                        const pipeline::TrainedPipeline& pipe,
                        bool print_plot) {
  auto attack = attacks::make_scenario(name);
  const SimTime interval = config.monitor.interval;
  const SimTime trigger = 150 * interval;
  pipeline::ScenarioRun run =
      pipeline::run_scenario(config, attack.get(), trigger,
                             /*duration=*/400 * interval,
                             pipe.detector.get(), /*seed=*/2718);

  if (print_plot) {
    LinePlotOptions plot;
    plot.title = "scenario '" + name + "': log10 Pr(M) per interval";
    plot.hlines = {pipe.theta_05.log10_value, pipe.theta_1.log10_value};
    plot.vlines = {static_cast<double>(run.trigger_interval)};
    plot.height = 16;
    std::fputs(render_line_plot(run.log10_densities(), plot).c_str(), stdout);
  }

  ScenarioSummary s;
  s.name = name;
  const double theta = pipe.theta_1.log10_value;
  s.before = run.intervals_before_trigger();
  s.fp_before = run.false_positives_before_trigger(theta);
  s.after = run.intervals_after_trigger();
  s.flagged_after = run.detections_after_trigger(theta);
  const auto latency = run.detection_latency(theta);
  s.latency = latency ? "+" + std::to_string(*latency) + " intervals"
                      : "not detected";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mhm;

  std::vector<std::string> scenarios = {"app_addition", "shellcode",
                                        "rootkit"};
  if (argc > 1) scenarios = {argv[1]};

  sim::SystemConfig config = sim::SystemConfig::paper_default(/*seed=*/1);
  config.monitor.granularity = 8 * 1024;  // demo speed

  pipeline::ProfilingPlan plan;
  plan.runs = 4;
  plan.run_duration = 2 * kSecond;

  AnomalyDetector::Options options;
  options.pca.components = 9;
  options.gmm.components = 5;
  options.gmm.restarts = 5;

  std::printf("Training detector on %zu normal runs...\n", plan.runs);
  pipeline::TrainedPipeline pipe =
      pipeline::train_pipeline(config, plan, options);
  std::printf("theta_0.5 = %.2f, theta_1 = %.2f (log10 density)\n\n",
              pipe.theta_05.log10_value, pipe.theta_1.log10_value);

  std::vector<ScenarioSummary> summaries;
  for (const auto& name : scenarios) {
    summaries.push_back(run_one(name, config, pipe, /*print_plot=*/true));
    std::printf("\n");
  }

  TextTable table({"scenario", "FP before trigger", "flagged after trigger",
                   "first detection"});
  for (const auto& s : summaries) {
    table.add_row(
        {s.name,
         std::to_string(s.fp_before) + " / " + std::to_string(s.before),
         std::to_string(s.flagged_after) + " / " + std::to_string(s.after),
         s.latency});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
