// rootkit_forensics — a deep dive on the paper's hardest scenario (§5.3-3):
// the syscall-table-hijacking LKM. Runs one attacked system and compares,
// side by side, what the traffic-volume baseline sees (Figure 9: only the
// load spike) against what the eigenmemory+GMM detector sees (Figure 10:
// the load plus intermittent stealth-phase anomalies synchronized with
// sha), then drills into *which* GMM pattern the anomalous intervals fall
// nearest and which cells deviate most — the forensic trail an operator
// would follow.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "attacks/attacks.hpp"
#include "common/ascii_plot.hpp"
#include "pipeline/experiment.hpp"
#include "sim/system.hpp"

int main() {
  using namespace mhm;

  sim::SystemConfig config = sim::SystemConfig::paper_default(/*seed=*/1);
  config.monitor.granularity = 8 * 1024;

  pipeline::ProfilingPlan plan;
  plan.runs = 4;
  plan.run_duration = 2 * kSecond;

  AnomalyDetector::Options options;
  options.pca.components = 9;
  options.gmm.components = 5;
  options.gmm.restarts = 5;

  std::printf("Training detector...\n");
  pipeline::TrainedPipeline pipe =
      pipeline::train_pipeline(config, plan, options);

  const SimTime interval = config.monitor.interval;
  attacks::RootkitAttack attack(/*hijack_overhead=*/60 * kMicrosecond);
  pipeline::ScenarioRun run = pipeline::run_scenario(
      config, &attack, /*trigger=*/100 * interval,
      /*duration=*/400 * interval, pipe.detector.get(), /*seed=*/1234);

  // --- view 1: what the volume baseline sees ---
  LinePlotOptions vol_plot;
  vol_plot.title = "view 1 — traffic volume (what a volume monitor sees)";
  vol_plot.height = 12;
  vol_plot.vlines = {static_cast<double>(run.trigger_interval)};
  std::fputs(render_line_plot(run.traffic_volumes, vol_plot).c_str(), stdout);

  const TrafficVolumeDetector volume_det =
      TrafficVolumeDetector::from_trace(pipe.training, 0.005);
  std::size_t volume_alarms = 0;
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    if (run.maps[i].interval_index > run.trigger_interval + 1) {
      volume_alarms += volume_det.anomalous(run.traffic_volumes[i]);
    }
  }
  std::printf("volume monitor alarms after the load settles: %zu "
              "(the stealth phase is invisible in volume terms)\n\n",
              volume_alarms);

  // --- view 2: what the GMM detector sees ---
  LinePlotOptions gmm_plot;
  gmm_plot.title = "view 2 — log10 Pr(M) (what the MHM detector sees)";
  gmm_plot.height = 14;
  gmm_plot.hlines = {pipe.theta_1.log10_value};
  gmm_plot.vlines = {static_cast<double>(run.trigger_interval)};
  const std::vector<double> dens = run.log10_densities();
  std::fputs(render_line_plot(dens, gmm_plot).c_str(), stdout);

  // --- forensics on the flagged intervals ---
  std::printf("\nForensic drill-down on flagged intervals:\n");
  sim::System probe_system(config);
  const auto& kernel = probe_system.kernel();

  // Mean normal map for cell-level differencing.
  std::vector<double> mean_map(pipe.training.front().cell_count(), 0.0);
  for (const auto& m : pipe.training) {
    const auto v = m.as_vector();
    for (std::size_t c = 0; c < v.size(); ++c) mean_map[c] += v[c];
  }
  for (double& v : mean_map) v /= static_cast<double>(pipe.training.size());

  TextTable table({"interval", "phase", "log10 Pr", "nearest pattern",
                   "most deviant subsystem"});
  std::size_t shown = 0;
  for (std::size_t i = 0; i < run.maps.size() && shown < 10; ++i) {
    if (run.verdicts[i].anomalous &&
        run.maps[i].interval_index > run.trigger_interval + 1) {
      const auto& map = run.maps[i];
      // Find the subsystem with the largest absolute cell deviation.
      double best_dev = 0.0;
      std::string best_subsystem = "(none)";
      const auto v = map.as_vector();
      for (std::size_t c = 0; c < v.size(); ++c) {
        const double dev = std::abs(v[c] - mean_map[c]);
        if (dev > best_dev) {
          const Address addr =
              config.monitor.base +
              static_cast<Address>(c) * config.monitor.granularity;
          const auto* fn = kernel.function_at(addr);
          if (fn != nullptr) {
            best_dev = dev;
            best_subsystem = kernel.subsystems()[fn->subsystem].name;
          }
        }
      }
      table.add_row({std::to_string(map.interval_index),
                     std::to_string(map.interval_index % 10),
                     fmt_double(dens[i], 1),
                     std::to_string(run.verdicts[i].nearest_pattern),
                     best_subsystem + " (|dev| " + fmt_double(best_dev, 0) +
                         ")"});
      ++shown;
    }
  }
  if (shown == 0) {
    std::printf("  (no stealth-phase intervals flagged in this run)\n");
  } else {
    std::fputs(table.str().c_str(), stdout);
    std::printf("\nReading the trail: flagged intervals cluster on the "
                "hyperperiod phase where sha's (delayed) read bursts land, "
                "and the deviant cells sit in the scheduler/timing paths — "
                "the hijack adds latency to every read, shifting when tasks "
                "run rather than what kernel code they touch. A timing-only "
                "perturbation is exactly what a syscall-table detour looks "
                "like from inside the monitored region.\n");
  }
  return 0;
}
