// external_trace_demo — using the library WITHOUT its built-in simulator.
//
// If you already collect instruction-fetch traces (gem5, valgrind, QEMU
// plugin, hardware trace unit), the pipeline consumes them directly:
// parse the text trace, aggregate through the Memometer model, train,
// detect. This demo fabricates two "external" traces in the text format —
// a normal one and one with a foreign code burst — purely via the public
// trace API, then runs the full workflow on them.

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "core/explainer.hpp"
#include "hw/address_trace.hpp"
#include "hw/memometer.hpp"

namespace {

using namespace mhm;

/// Fabricate a text trace: a periodic two-activity workload over a 512 KB
/// region, optionally with an anomalous burst into otherwise-cold cells in
/// the second half.
std::string make_text_trace(std::uint64_t seed, SimTime duration,
                            bool inject_anomaly) {
  Rng rng(seed);
  std::ostringstream out;
  out << "# synthetic external tracer output\n";
  const Address base = 0x80000000;
  for (SimTime t = 0; t < duration; t += 1 * kMillisecond) {
    // Activity A: every millisecond, a hot loop near the region start.
    out << t << " 0x" << std::hex << (base + 0x1000) << std::dec << " 2048 "
        << (3 + rng.uniform_int(0, 2)) << "\n";
    // Activity B: every 5 ms, a service routine in the middle.
    if ((t / kMillisecond) % 5 == 0) {
      out << t << " 0x" << std::hex << (base + 0x40000) << std::dec
          << " 4096 " << (1 + rng.uniform_int(0, 1)) << "\n";
    }
    // Anomaly: foreign code executing from a normally cold area.
    if (inject_anomaly && t >= duration / 2) {
      out << t << " 0x" << std::hex << (base + 0x70000) << std::dec
          << " 1024 2\n";
    }
  }
  return out.str();
}

/// Run a text trace through the Memometer model; returns the heat maps.
HeatMapTrace aggregate(const std::string& text, const MhmConfig& monitor) {
  HeatMapTrace maps;
  hw::MemoryBus bus;
  hw::Memometer meter(monitor, 0,
                      [&](const HeatMap& m) { maps.push_back(m); });
  bus.attach(&meter);
  std::istringstream in(text);
  const auto stats = hw::replay_address_trace(in, bus);
  meter.finish(stats.last_time, /*deliver_partial=*/false);
  return maps;
}

}  // namespace

int main() {
  using namespace mhm;

  MhmConfig monitor;
  monitor.base = 0x80000000;
  monitor.size = 512 * 1024;
  monitor.granularity = 2048;
  monitor.interval = 10 * kMillisecond;

  std::printf("Aggregating external traces through the Memometer model "
              "(region 512 KB, delta 2 KB -> %zu cells)...\n",
              monitor.cell_count());
  const HeatMapTrace training =
      aggregate(make_text_trace(1, 4 * kSecond, false), monitor);
  const HeatMapTrace validation =
      aggregate(make_text_trace(2, 2 * kSecond, false), monitor);
  std::printf("training: %zu maps, validation: %zu maps\n", training.size(),
              validation.size());

  AnomalyDetector::Options opts;
  opts.pca.components = 4;
  opts.gmm.components = 3;
  opts.gmm.restarts = 4;
  const AnomalyDetector detector =
      AnomalyDetector::train(training, validation, opts);
  std::printf("trained: %zu eigenmemories explain %.3f%% of variance; "
              "theta_1 = %.2f\n",
              detector.eigenmemory().components(),
              100.0 * detector.eigenmemory().variance_explained(),
              detector.primary_threshold().log10_value);

  // The foreign code executes from cells that carry *zero* training
  // variance, so its deviation is orthogonal to the eigenmemory subspace —
  // the GMM density barely reacts (the blind spot documented in
  // EXPERIMENTS.md E7). The SPE residual detector is the companion
  // statistic built for exactly this case.
  std::vector<std::vector<double>> validation_raw;
  for (const auto& m : validation) validation_raw.push_back(m.as_vector());
  const SpeDetector spe(detector.eigenmemory(), validation_raw, 0.01);

  // Test trace: normal first half, foreign code burst in the second half.
  const HeatMapTrace test =
      aggregate(make_text_trace(3, 4 * kSecond, true), monitor);
  std::size_t gmm_before = 0;
  std::size_t gmm_after = 0;
  std::size_t spe_before = 0;
  std::size_t spe_after = 0;
  for (const auto& map : test) {
    const bool first_half = map.interval_index < test.size() / 2;
    const Verdict v = detector.analyze(map);
    (first_half ? gmm_before : gmm_after) += v.anomalous;
    (first_half ? spe_before : spe_after) += spe.anomalous(map);
  }
  std::printf("\ntest trace: %zu intervals; foreign code appears half-way\n",
              test.size());
  std::printf("  GMM density detector:  %zu alarms before, %zu after "
              "(orthogonal deviation -> nearly blind)\n",
              gmm_before, gmm_after);
  std::printf("  SPE residual detector: %zu alarms before, %zu after\n",
              spe_before, spe_after);

  const bool detected = spe_after > spe_before + 10;
  std::printf("%s\n", detected
                          ? "foreign code detected by the residual statistic."
                          : "detection inconclusive (tune the trace).");
  return detected ? 0 : 1;
}
