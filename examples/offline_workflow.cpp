// offline_workflow — the production deployment cycle end to end, using
// every persistence and robustness feature of the library:
//
//   1. RECORD  normal behaviour once, in a trusted environment, and save
//              the raw MHM trace (core/trace_io).
//   2. TRAIN   two candidate detectors offline from the same trace with
//              different hyper-parameters; pick by held-out likelihood.
//   3. SHIP    the winning model to the "secure core" (core/model_io —
//              here: a file round-trip standing in for flashing it).
//   4. DEPLOY  monitor a live (attacked) system with the loaded model, a
//              2-of-3 temporal AlarmFilter, the SPE residual companion
//              detector, and post-alarm forensics via AnomalyExplainer.

#include <cstdio>
#include <filesystem>

#include "attacks/attacks.hpp"
#include "common/ascii_plot.hpp"
#include "core/alarm_filter.hpp"
#include "core/explainer.hpp"
#include "core/model_io.hpp"
#include "core/trace_io.hpp"
#include "pipeline/experiment.hpp"

int main() {
  using namespace mhm;
  namespace fs = std::filesystem;

  const fs::path work_dir = fs::temp_directory_path() / "mhm_offline_demo";
  fs::create_directories(work_dir);
  const std::string trace_path = (work_dir / "normal.mhmt").string();
  const std::string model_path = (work_dir / "detector.mhm").string();

  sim::SystemConfig config = sim::SystemConfig::paper_default(/*seed=*/1);
  config.monitor.granularity = 8 * 1024;

  // ---- 1. record -------------------------------------------------------
  std::printf("[1/4] recording normal behaviour...\n");
  pipeline::ProfilingPlan plan;
  plan.runs = 5;
  plan.run_duration = 2 * kSecond;
  RecordedTrace recorded;
  recorded.config = config.monitor;
  recorded.maps = pipeline::collect_normal_trace(config, plan);
  save_trace_file(recorded, trace_path);
  std::printf("      %zu MHMs -> %s\n", recorded.maps.size(),
              trace_path.c_str());

  // ---- 2. train offline, compare hyper-parameters ----------------------
  std::printf("[2/4] training candidates offline...\n");
  const RecordedTrace loaded = load_trace_file(trace_path);
  const auto split = loaded.maps.begin() +
                     static_cast<std::ptrdiff_t>(loaded.maps.size() * 4 / 5);
  const HeatMapTrace training(loaded.maps.begin(), split);
  const HeatMapTrace validation(split, loaded.maps.end());

  auto candidate = [&](std::size_t components, std::size_t j) {
    AnomalyDetector::Options opts;
    opts.pca.components = components;
    opts.gmm.components = j;
    opts.gmm.restarts = 4;
    return AnomalyDetector::train(training, validation, opts);
  };
  const AnomalyDetector small = candidate(5, 3);
  const AnomalyDetector large = candidate(9, 5);

  auto heldout_ll = [&](const AnomalyDetector& det) {
    double total = 0.0;
    for (const auto& m : validation) total += det.score(m.as_vector());
    return total / static_cast<double>(validation.size());
  };
  const double ll_small = heldout_ll(small);
  const double ll_large = heldout_ll(large);
  const AnomalyDetector& winner = ll_large >= ll_small ? large : small;
  std::printf("      held-out mean log10 density: L'=5/J=3 -> %.2f, "
              "L'=9/J=5 -> %.2f; shipping the %s model\n",
              ll_small, ll_large, &winner == &large ? "larger" : "smaller");

  // ---- 3. ship ----------------------------------------------------------
  std::printf("[3/4] shipping model to the secure core...\n");
  save_model_file(DetectorModel::from_detector(winner), model_path);
  const AnomalyDetector deployed = load_model_file(model_path).to_detector();

  // ---- 4. deploy with filter + SPE + forensics --------------------------
  std::printf("[4/4] monitoring a live system (shellcode at t = 2 s)...\n\n");
  std::vector<std::vector<double>> validation_raw;
  for (const auto& m : validation) validation_raw.push_back(m.as_vector());
  const SpeDetector spe(deployed.eigenmemory(), validation_raw, 0.01);
  const AnomalyExplainer explainer =
      AnomalyExplainer::from_trace(training);

  sim::SystemConfig live = config;
  live.seed = 2026;
  sim::System system(live);
  attacks::ShellcodeAttack attack("bitcount");
  attack.arm(system, 2 * kSecond);

  AlarmFilter filter(2, 3);
  std::size_t confirmed_alarms = 0;
  bool forensics_printed = false;
  system.set_interval_observer([&](const HeatMap& map) {
    const Verdict v = deployed.analyze(map);
    const bool raw_alarm = v.anomalous || spe.anomalous(map);
    if (filter.feed(raw_alarm)) {
      ++confirmed_alarms;
      if (!forensics_printed) {
        forensics_printed = true;
        std::printf("CONFIRMED anomaly at interval %llu "
                    "(log10 Pr = %.1f, SPE %s threshold)\n",
                    static_cast<unsigned long long>(map.interval_index),
                    v.log10_density,
                    spe.anomalous(map) ? "above" : "below");
        std::printf("top deviant cells:\n");
        for (const auto& dev : explainer.explain(map, 5)) {
          std::printf("  cell %4zu: observed %7.0f, expected %7.0f "
                      "(z = %+.1f)\n",
                      dev.cell, dev.observed, dev.expected, dev.z_score);
        }
      }
    }
  });
  system.run_for(4 * kSecond);

  std::printf("\nconfirmed (2-of-3 filtered) alarm intervals: %zu of %zu\n",
              confirmed_alarms, system.trace().size());
  std::printf("artifacts kept in %s\n", work_dir.string().c_str());
  return 0;
}
