#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "fleet/spec.hpp"

namespace mhm::fleet {

/// One ranked entry of the fleet's top-K most anomalous streams.
struct TopStream {
  std::uint64_t device = 0;
  std::string archetype;
  /// Netdata-style severity: EWMA of the recent score deficit
  /// max(0, θ − log10 Pr(M)) — 0 while the stream scores above the primary
  /// threshold, grows with how far and how persistently it scores below.
  double severity = 0.0;
  std::uint64_t alarms = 0;
  int status = 0;  ///< ModelHealthStatus at the last fold (0/1/2).
};

/// One rate-limited incident mark: device d started an alarm wave at
/// `interval` (at most one mark per device per FleetSpec::incident_gap).
struct IncidentMark {
  std::uint64_t interval = 0;
  std::uint64_t device = 0;
  std::uint8_t archetype = 0;
};

/// Co-temporal group of incident marks: marks within
/// FleetSpec::incident_window intervals of each other chain into one group —
/// the fleet's "this wave hit N devices at once" forensics unit.
struct IncidentGroup {
  std::uint64_t first_interval = 0;
  std::uint64_t last_interval = 0;
  std::size_t devices = 0;   ///< Distinct devices in the group.
  std::uint64_t marks = 0;   ///< Total marks chained in.
  std::vector<std::string> archetypes;  ///< Distinct names, sorted.
};

/// Per-shard rollup line of a snapshot.
struct ShardSummary {
  std::size_t devices = 0;
  std::uint64_t intervals = 0;
  std::uint64_t alarms = 0;
  /// Wall-clock scoring rate — timing, explicitly outside the determinism
  /// contract (everything else in a snapshot is bit-reproducible).
  double intervals_per_sec = 0.0;
  /// Profiler work per scored interval (perf cycles when the counter source
  /// is perf_event, thread-CPU nanoseconds otherwise — see
  /// FleetSnapshot::prof_source). Timing-class: outside the determinism
  /// contract, like intervals_per_sec.
  double cycles_per_interval = 0.0;
};

/// Point-in-time fleet-wide state: everything /fleet serves. O(shards × K)
/// to assemble — never O(devices), and never a poll of any session.
struct FleetSnapshot {
  std::size_t devices = 0;
  std::size_t shards = 0;
  std::uint64_t intervals = 0;
  std::uint64_t alarms = 0;
  /// Version of the shared model every device session scores against —
  /// a fleet-wide hot-swap (continuous retraining) is visible here.
  std::uint64_t model_version = 0;
  std::uint64_t devices_ok = 0;
  std::uint64_t devices_drifting = 0;
  std::uint64_t devices_miscalibrated = 0;
  double intervals_per_sec = 0.0;
  /// Unit of ShardSummary::cycles_per_interval: "perf_event" (CPU cycles),
  /// "thread_cputime" (nanoseconds), or "disabled".
  std::string prof_source;
  std::vector<ShardSummary> shard_summaries;
  /// Severity-descending (ties: device id ascending), at most spec.top_k.
  std::vector<TopStream> top;
  /// Co-temporal incident groups, oldest first (assembled from the folded
  /// per-shard marks; deterministic at any MHM_THREADS).
  std::vector<IncidentGroup> incident_groups;
};

/// JSON object for a snapshot — the /fleet response body, one line.
std::string fleet_json(const FleetSnapshot& snapshot);

/// Folds per-session verdict/health streams into fleet-wide state the obs
/// server can scrape in O(shards), not O(sessions).
///
/// Cost model (the lock-cheap contract):
///  * per interval: one relaxed atomic add for the shard's interval/alarm
///    counters plus one owner-thread EWMA update — no locks, no strings;
///  * per fold (every FleetSpec::health_refresh rounds): one O(devices in
///    shard) pass under that shard's mutex recomputing the status rollup
///    and the shard-local top-K;
///  * per scrape: O(shards) atomic reads plus an O(shards × K) merge of the
///    folded top lists under the shard mutexes.
///
/// Threading: record_chunk()/fold_shard() for shard s are owner-only — the
/// runner calls them from whichever worker currently owns shard s (shards
/// never split across workers within a round). snapshot() may run
/// concurrently from any thread (the obs serve thread): it only reads the
/// atomics and the mutex-guarded folded state, never the owner-side arrays.
///
/// Registry export is fleet/shard-level only — `fleet.*` and
/// `fleet.shard.<s>.*` series, O(shards) slots no matter how many devices —
/// refreshed at fold time.
class FleetAggregator {
 public:
  /// `archetype_of[d]` — archetype index of device d;
  /// `shard_of_begin` — device range [shard_of_begin[s], shard_of_begin[s+1])
  /// owned by shard s (size shards + 1).
  FleetAggregator(const FleetSpec& spec,
                  std::vector<std::string> archetype_names,
                  std::vector<std::uint8_t> archetype_of,
                  std::vector<std::size_t> shard_of_begin);
  ~FleetAggregator();

  FleetAggregator(const FleetAggregator&) = delete;
  FleetAggregator& operator=(const FleetAggregator&) = delete;

  std::size_t device_count() const { return archetype_of_.size(); }
  std::size_t shard_count() const { return shard_of_begin_.size() - 1; }

  /// Fold one scored chunk of shard `shard`: verdicts for the contiguous
  /// devices [first_device, first_device + verdicts.size()). `threshold` is
  /// the primary θ (log10) the severity deficit is measured against.
  /// Owner-only; O(1) per verdict.
  void record_chunk(std::size_t shard, std::size_t first_device,
                    std::span<const Verdict> verdicts, double threshold);

  /// Add `work` profiler-counter units (cycles or thread-CPU ns, per the
  /// process counter source) spent scoring shard `shard` — the runner's
  /// per-round delta of obs::prof::thread_work_counter(). Owner-only, like
  /// record_chunk; folded into ShardSummary::cycles_per_interval at the
  /// next fold_shard.
  void record_work(std::size_t shard, std::uint64_t work);

  /// Recompute shard `shard`'s status rollup and local top-K from the
  /// per-device state. `statuses[i]` is the ModelHealthStatus (0/1/2) of
  /// device shard_begin + i; `elapsed_seconds` feeds the shard's
  /// intervals/sec gauge (pass 0 to keep the previous rate). Owner-only.
  void fold_shard(std::size_t shard, std::span<const std::uint8_t> statuses,
                  double elapsed_seconds);

  /// Stamp the model version snapshots report (any thread; the runner sets
  /// it at engine creation and again after any hot-swap).
  void set_model_version(std::uint64_t version) {
    model_version_.store(version, std::memory_order_relaxed);
  }

  /// Assemble the fleet-wide view (any thread).
  FleetSnapshot snapshot() const;

  /// snapshot() rendered as JSON — bind to MonitorServer::set_fleet and
  /// FlightRecorder::set_fleet.
  std::string json() const { return fleet_json(snapshot()); }

 private:
  struct Shard;

  FleetSpec spec_;
  std::vector<std::string> archetype_names_;
  std::vector<std::uint8_t> archetype_of_;
  std::vector<std::size_t> shard_of_begin_;

  // Owner-side per-device state (indexed by device id). Written only by the
  // owning shard's worker; read only inside fold_shard for that shard.
  std::vector<double> severity_;
  std::vector<std::uint64_t> device_alarms_;
  /// Interval of the device's last incident mark (kNeverMarked until the
  /// first); gates marks to one per incident_gap. Owner-side.
  std::vector<std::uint64_t> last_mark_;

  std::atomic<std::uint64_t> model_version_{0};

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mhm::fleet
