#include "fleet/aggregator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/model_health.hpp"
#include "obs/prof.hpp"

namespace mhm::fleet {

namespace {

/// Severity EWMA weight: ~4 intervals of memory, so a stream that recovers
/// decays out of the top-K within a few rounds while a persistently
/// anomalous one keeps its rank.
constexpr double kSeverityAlpha = 0.25;

/// Sentinel for "this device has never marked an incident".
constexpr std::uint64_t kNeverMarked = ~0ULL;

/// Folded incident marks kept per shard — bounds a pathological fleet where
/// every device alarms forever to a fixed scrape-side footprint.
constexpr std::size_t kMaxFoldedMarks = 256;

std::string json_num(double v) {
  char buf[40];
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "\"%s\"",
                  std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf"));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

}  // namespace

/// Per-shard aggregation cell. The atomics take the per-interval traffic;
/// the mutex only guards the folded (scrape-visible) state.
struct FleetAggregator::Shard {
  std::size_t begin = 0;
  std::size_t end = 0;

  alignas(64) std::atomic<std::uint64_t> intervals{0};
  std::atomic<std::uint64_t> alarms{0};
  /// Profiler work (cycles or thread-CPU ns) spent scoring this shard.
  std::atomic<std::uint64_t> work{0};

  /// Owner-only staging: marks produced by record_chunk since the last
  /// fold (the owning worker's thread, no lock needed).
  std::vector<IncidentMark> pending_marks;

  mutable std::mutex mu;
  std::array<std::uint64_t, 3> status_counts{};  ///< OK/DRIFT/MISCAL devices.
  std::vector<TopStream> top;                    ///< Local top-K, folded.
  std::vector<IncidentMark> marks;  ///< Folded, newest-trimmed ring.
  double intervals_per_sec = 0.0;
  double cycles_per_interval = 0.0;

  obs::Gauge* g_intervals = nullptr;
  obs::Gauge* g_rate = nullptr;
  obs::Gauge* g_work = nullptr;
};

FleetAggregator::FleetAggregator(const FleetSpec& spec,
                                 std::vector<std::string> archetype_names,
                                 std::vector<std::uint8_t> archetype_of,
                                 std::vector<std::size_t> shard_of_begin)
    : spec_(spec),
      archetype_names_(std::move(archetype_names)),
      archetype_of_(std::move(archetype_of)),
      shard_of_begin_(std::move(shard_of_begin)) {
  MHM_ASSERT(shard_of_begin_.size() >= 2 &&
                 shard_of_begin_.front() == 0 &&
                 shard_of_begin_.back() == archetype_of_.size(),
             "FleetAggregator: shard ranges must cover [0, devices)");
  severity_.assign(archetype_of_.size(), 0.0);
  device_alarms_.assign(archetype_of_.size(), 0);
  last_mark_.assign(archetype_of_.size(), kNeverMarked);

  auto& reg = obs::Registry::instance();
  reg.gauge("fleet.devices", "simulated device streams in the fleet")
      .set(static_cast<double>(device_count()));
  reg.gauge("fleet.shards", "worker shards the fleet is scored across")
      .set(static_cast<double>(shard_count()));

  shards_.reserve(shard_count());
  for (std::size_t s = 0; s < shard_count(); ++s) {
    auto shard = std::make_unique<Shard>();
    shard->begin = shard_of_begin_[s];
    shard->end = shard_of_begin_[s + 1];
    // Until the first fold every device reads OK — the rollup never
    // undercounts the fleet.
    shard->status_counts[0] = shard->end - shard->begin;
    const std::string prefix = "fleet.shard." + std::to_string(s);
    shard->g_intervals = &reg.gauge(
        prefix + ".intervals_scored",
        "intervals scored by fleet shard " + std::to_string(s));
    shard->g_rate = &reg.gauge(
        prefix + ".intervals_per_sec",
        "scoring rate of fleet shard " + std::to_string(s));
    shard->g_work = &reg.gauge(
        prefix + ".cycles_per_interval",
        "profiler work (cycles or thread-CPU ns, per the counter source) "
        "per interval scored by fleet shard " + std::to_string(s));
    shards_.push_back(std::move(shard));
  }
}

FleetAggregator::~FleetAggregator() = default;

void FleetAggregator::record_chunk(std::size_t shard,
                                   std::size_t first_device,
                                   std::span<const Verdict> verdicts,
                                   double threshold) {
  Shard& sh = *shards_[shard];
  MHM_ASSERT(first_device >= sh.begin &&
                 first_device + verdicts.size() <= sh.end,
             "record_chunk: devices outside the shard's range");
  std::uint64_t alarm_count = 0;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const Verdict& v = verdicts[i];
    const std::size_t d = first_device + i;
    if (v.anomalous) {
      ++alarm_count;
      ++device_alarms_[d];
      // Rate-limited incident mark: one per device per incident_gap. The
      // mark is the unit co-temporal grouping chains at snapshot time.
      if (last_mark_[d] == kNeverMarked ||
          v.interval_index - last_mark_[d] >= spec_.incident_gap) {
        last_mark_[d] = v.interval_index;
        sh.pending_marks.push_back(IncidentMark{
            .interval = v.interval_index,
            .device = static_cast<std::uint64_t>(d),
            .archetype = archetype_of_[d]});
      }
    }
    const double deficit = std::max(0.0, threshold - v.log10_density);
    severity_[d] += kSeverityAlpha * (deficit - severity_[d]);
  }
  sh.intervals.fetch_add(verdicts.size(), std::memory_order_relaxed);
  if (alarm_count > 0) {
    sh.alarms.fetch_add(alarm_count, std::memory_order_relaxed);
  }
}

void FleetAggregator::record_work(std::size_t shard, std::uint64_t work) {
  shards_[shard]->work.fetch_add(work, std::memory_order_relaxed);
}

void FleetAggregator::fold_shard(std::size_t shard,
                                 std::span<const std::uint8_t> statuses,
                                 double elapsed_seconds) {
  Shard& sh = *shards_[shard];
  const std::size_t n = sh.end - sh.begin;

  // Rank the shard's devices by (severity desc, device asc). A clean fleet
  // still publishes a (zero-severity) top list — ranking covers every
  // stream, exactly like the scoring engine it models.
  const std::size_t keep = std::min(spec_.top_k, n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), sh.begin);
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (severity_[a] != severity_[b]) {
                        return severity_[a] > severity_[b];
                      }
                      return a < b;
                    });

  std::array<std::uint64_t, 3> counts{};
  if (statuses.size() == n) {
    for (std::uint8_t st : statuses) ++counts[std::min<std::size_t>(st, 2)];
  } else {
    counts[0] = n;  // No health monitors: everything reads OK.
  }

  std::vector<TopStream> top;
  top.reserve(keep);
  for (std::size_t r = 0; r < keep; ++r) {
    const std::size_t d = order[r];
    TopStream entry;
    entry.device = d;
    entry.archetype = archetype_names_[archetype_of_[d]];
    entry.severity = severity_[d];
    entry.alarms = device_alarms_[d];
    entry.status =
        statuses.size() == n ? static_cast<int>(statuses[d - sh.begin]) : 0;
    top.push_back(std::move(entry));
  }

  const std::uint64_t shard_intervals =
      sh.intervals.load(std::memory_order_relaxed);
  const std::uint64_t shard_work = sh.work.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.status_counts = counts;
    sh.top = std::move(top);
    sh.cycles_per_interval =
        shard_intervals == 0 ? 0.0
                             : static_cast<double>(shard_work) /
                                   static_cast<double>(shard_intervals);
    // Publish the owner-side marks to the scrape-visible folded list,
    // newest-trimmed so a perpetually alarming fleet stays bounded.
    sh.marks.insert(sh.marks.end(), sh.pending_marks.begin(),
                    sh.pending_marks.end());
    if (sh.marks.size() > kMaxFoldedMarks) {
      sh.marks.erase(sh.marks.begin(),
                     sh.marks.begin() + static_cast<std::ptrdiff_t>(
                                            sh.marks.size() -
                                            kMaxFoldedMarks));
    }
    if (elapsed_seconds > 0.0) {
      sh.intervals_per_sec =
          static_cast<double>(shard_intervals) / elapsed_seconds;
    }
    sh.g_intervals->set(static_cast<double>(shard_intervals));
    sh.g_rate->set(sh.intervals_per_sec);
    sh.g_work->set(sh.cycles_per_interval);
  }
  sh.pending_marks.clear();

  // Fleet-level series: O(shards) refresh from the folded cells. Concurrent
  // folds race benignly on the gauges (last write wins; each writer
  // publishes a complete, near-current total).
  std::uint64_t intervals = 0;
  std::uint64_t alarms = 0;
  std::array<std::uint64_t, 3> rollup{};
  double rate = 0.0;
  double top_severity = 0.0;
  std::size_t folded_marks = 0;
  for (const auto& other : shards_) {
    intervals += other->intervals.load(std::memory_order_relaxed);
    alarms += other->alarms.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(other->mu);
    for (std::size_t i = 0; i < 3; ++i) rollup[i] += other->status_counts[i];
    rate += other->intervals_per_sec;
    folded_marks += other->marks.size();
    if (!other->top.empty()) {
      top_severity = std::max(top_severity, other->top.front().severity);
    }
  }
  auto& reg = obs::Registry::instance();
  reg.gauge("fleet.intervals_scored", "intervals scored fleet-wide")
      .set(static_cast<double>(intervals));
  reg.gauge("fleet.alarms", "anomalous intervals fleet-wide")
      .set(static_cast<double>(alarms));
  reg.gauge("fleet.devices_ok", "devices whose model health reads OK")
      .set(static_cast<double>(rollup[0]));
  reg.gauge("fleet.devices_drifting", "devices whose model health is DRIFTING")
      .set(static_cast<double>(rollup[1]));
  reg.gauge("fleet.devices_miscalibrated",
            "devices whose model health is MISCALIBRATED")
      .set(static_cast<double>(rollup[2]));
  reg.gauge("fleet.top_severity",
            "severity of the most anomalous stream in the fleet")
      .set(top_severity);
  reg.gauge("fleet.intervals_per_sec", "fleet-wide scoring rate").set(rate);
  reg.gauge("fleet.incident_marks",
            "rate-limited per-device incident marks held in the folded "
            "rings")
      .set(static_cast<double>(folded_marks));
}

FleetSnapshot FleetAggregator::snapshot() const {
  FleetSnapshot snap;
  snap.devices = device_count();
  snap.shards = shard_count();
  snap.model_version = model_version_.load(std::memory_order_relaxed);
  snap.prof_source = obs::prof::counter_source();
  snap.shard_summaries.reserve(shards_.size());

  std::vector<TopStream> merged;
  std::vector<IncidentMark> all_marks;
  for (const auto& sh : shards_) {
    ShardSummary summary;
    summary.devices = sh->end - sh->begin;
    summary.intervals = sh->intervals.load(std::memory_order_relaxed);
    summary.alarms = sh->alarms.load(std::memory_order_relaxed);
    snap.intervals += summary.intervals;
    snap.alarms += summary.alarms;
    {
      std::lock_guard<std::mutex> lk(sh->mu);
      summary.intervals_per_sec = sh->intervals_per_sec;
      summary.cycles_per_interval = sh->cycles_per_interval;
      snap.devices_ok += sh->status_counts[0];
      snap.devices_drifting += sh->status_counts[1];
      snap.devices_miscalibrated += sh->status_counts[2];
      merged.insert(merged.end(), sh->top.begin(), sh->top.end());
      all_marks.insert(all_marks.end(), sh->marks.begin(), sh->marks.end());
    }
    snap.intervals_per_sec += summary.intervals_per_sec;
    snap.shard_summaries.push_back(summary);
  }

  // Co-temporal grouping: chain marks whose interval is within
  // incident_window of the previous mark in the group. The sort makes the
  // result a function of the folded marks alone — bit-identical at any
  // MHM_THREADS.
  std::sort(all_marks.begin(), all_marks.end(),
            [](const IncidentMark& a, const IncidentMark& b) {
              if (a.interval != b.interval) return a.interval < b.interval;
              return a.device < b.device;
            });
  std::vector<std::uint64_t> group_devices;
  std::vector<std::uint8_t> group_archetypes;
  const auto flush_group = [&](IncidentGroup& g) {
    std::sort(group_devices.begin(), group_devices.end());
    g.devices = static_cast<std::size_t>(
        std::unique(group_devices.begin(), group_devices.end()) -
        group_devices.begin());
    std::sort(group_archetypes.begin(), group_archetypes.end());
    group_archetypes.erase(
        std::unique(group_archetypes.begin(), group_archetypes.end()),
        group_archetypes.end());
    for (std::uint8_t a : group_archetypes) {
      g.archetypes.push_back(archetype_names_[a]);
    }
    snap.incident_groups.push_back(std::move(g));
    group_devices.clear();
    group_archetypes.clear();
  };
  IncidentGroup current;
  for (const IncidentMark& m : all_marks) {
    if (current.marks != 0 &&
        m.interval - current.last_interval > spec_.incident_window) {
      flush_group(current);
      current = IncidentGroup{};
    }
    if (current.marks == 0) current.first_interval = m.interval;
    current.last_interval = m.interval;
    ++current.marks;
    group_devices.push_back(m.device);
    group_archetypes.push_back(m.archetype);
  }
  if (current.marks != 0) flush_group(current);

  // Deterministic merge of the ≤ shards × K folded candidates.
  std::sort(merged.begin(), merged.end(),
            [](const TopStream& a, const TopStream& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              return a.device < b.device;
            });
  if (merged.size() > spec_.top_k) merged.resize(spec_.top_k);
  snap.top = std::move(merged);
  return snap;
}

std::string fleet_json(const FleetSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"devices\":" << snapshot.devices
     << ",\"shards\":" << snapshot.shards
     << ",\"intervals\":" << snapshot.intervals
     << ",\"alarms\":" << snapshot.alarms
     << ",\"model_version\":" << snapshot.model_version
     << ",\"rollup\":{\"ok\":"
     << snapshot.devices_ok << ",\"drifting\":" << snapshot.devices_drifting
     << ",\"miscalibrated\":" << snapshot.devices_miscalibrated
     << "},\"intervals_per_sec\":" << json_num(snapshot.intervals_per_sec)
     << ",\"prof_source\":\"" << snapshot.prof_source
     << "\",\"shards_detail\":[";
  for (std::size_t s = 0; s < snapshot.shard_summaries.size(); ++s) {
    const ShardSummary& sh = snapshot.shard_summaries[s];
    if (s > 0) os << ",";
    os << "{\"shard\":" << s << ",\"devices\":" << sh.devices
       << ",\"intervals\":" << sh.intervals << ",\"alarms\":" << sh.alarms
       << ",\"intervals_per_sec\":" << json_num(sh.intervals_per_sec)
       << ",\"cycles_per_interval\":" << json_num(sh.cycles_per_interval)
       << "}";
  }
  os << "],\"top\":[";
  for (std::size_t i = 0; i < snapshot.top.size(); ++i) {
    const TopStream& t = snapshot.top[i];
    if (i > 0) os << ",";
    os << "{\"device\":" << t.device << ",\"archetype\":\"" << t.archetype
       << "\",\"severity\":" << json_num(t.severity)
       << ",\"alarms\":" << t.alarms << ",\"status\":\""
       << obs::to_string(static_cast<obs::ModelHealthStatus>(t.status))
       << "\"}";
  }
  os << "],\"incident_groups\":[";
  for (std::size_t i = 0; i < snapshot.incident_groups.size(); ++i) {
    const IncidentGroup& g = snapshot.incident_groups[i];
    if (i > 0) os << ",";
    os << "{\"first_interval\":" << g.first_interval
       << ",\"last_interval\":" << g.last_interval
       << ",\"devices\":" << g.devices << ",\"marks\":" << g.marks
       << ",\"archetypes\":[";
    for (std::size_t a = 0; a < g.archetypes.size(); ++a) {
      if (a > 0) os << ",";
      os << "\"" << g.archetypes[a] << "\"";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace mhm::fleet
