#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/engine.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/spec.hpp"
#include "sim/system.hpp"

namespace mhm::fleet {

/// Runs a FleetSpec: N heterogeneous simulated device streams scored
/// through one DetectionEngine and folded into a FleetAggregator.
///
/// Construction simulates one seeded sim::System per archetype (attacks
/// armed per the spec) and freezes each trace into a shared row store;
/// every device then replays its archetype's stream at a per-device offset
/// — device heterogeneity (task mix, jitter, phase, seed) costs a handful
/// of simulations, not N. Each device owns a full engine::Session (scoring
/// scratch, bounded journal, sized-down health monitor per the spec's
/// fleet preset), so the memory story is exactly the deployment's.
///
/// Scoring is sharded: devices split into contiguous shards, each round
/// pumps one interval per device by gathering zero-copy row spans — the
/// fleet specialization of the IntervalSource pull contract, minus the
/// per-interval HeatMap copy — into DetectionEngine::analyze_shard, then
/// folds the verdict chunk into the aggregator. Rounds are parallel_for
/// over shards with a barrier per round, and the shard layout depends only
/// on the spec — so the same spec + seed produces bit-identical aggregate
/// state (counters, severities, rollup, top-K) at any MHM_THREADS. Only
/// the intervals/sec rates are wall-clock and exempt.
class FleetRunner {
 public:
  /// `base_config` supplies everything the spec does not (monitor geometry,
  /// task set, snoop point); per-archetype seed/jitter/attack come from the
  /// spec. `model` must score the same cell count the config produces
  /// (throws ConfigError otherwise).
  FleetRunner(FleetSpec spec, const sim::SystemConfig& base_config,
              std::shared_ptr<const ModelSnapshot> model);
  ~FleetRunner();

  FleetRunner(const FleetRunner&) = delete;
  FleetRunner& operator=(const FleetRunner&) = delete;

  std::size_t device_count() const { return spec_.devices; }
  std::size_t shard_count() const { return shard_of_begin_.size() - 1; }
  const FleetSpec& spec() const { return spec_; }

  FleetAggregator& aggregator() { return *aggregator_; }
  const FleetAggregator& aggregator() const { return *aggregator_; }

  /// Score up to `rounds` more rounds (one interval per device per round,
  /// capped at the spec's interval budget). Returns intervals scored.
  std::uint64_t run_rounds(std::size_t rounds);

  /// Score every remaining round. Returns intervals scored.
  std::uint64_t run_all();

  bool done() const { return round_ >= spec_.intervals; }
  std::size_t rounds_completed() const { return round_; }

  /// The /fleet JSON body — bind to MonitorServer::set_fleet /
  /// FlightRecorder::set_fleet (safe to call concurrently with run_rounds).
  std::string json() const { return aggregator_->json(); }

  /// Bench hook: false pumps and scores without touching the aggregator,
  /// isolating the aggregation overhead (the <2% obs contract leg measured
  /// by bench/fleet).
  void set_aggregation(bool enabled) { aggregate_ = enabled; }

 private:
  struct Archetype;

  void pump_shard_round(std::size_t shard, std::uint64_t round);
  void fold_shard(std::size_t shard);

  FleetSpec spec_;
  std::shared_ptr<const ModelSnapshot> model_;
  double threshold_ = 0.0;
  std::size_t input_dim_ = 0;

  std::vector<Archetype> archetypes_;
  std::vector<std::uint8_t> archetype_of_;  ///< Per device.
  std::vector<std::uint32_t> offset_of_;    ///< Per device stream offset.
  std::vector<std::size_t> shard_of_begin_;

  std::unique_ptr<engine::DetectionEngine> engine_;
  std::vector<engine::Session> sessions_;  ///< One per device.

  /// Per-shard pump scratch (workspace + gather arrays + fold buffers).
  struct ShardScratch;
  std::vector<std::unique_ptr<ShardScratch>> scratch_;

  std::unique_ptr<FleetAggregator> aggregator_;
  bool aggregate_ = true;
  std::size_t round_ = 0;
  std::uint64_t run_start_ns_ = 0;  ///< First run_rounds() call.
};

}  // namespace mhm::fleet
