#include "fleet/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "attacks/attacks.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/model_health.hpp"
#include "obs/prof.hpp"

namespace mhm::fleet {

namespace {

/// Devices per analyze_shard batch: bounds the SoA workspace to a few
/// hundred KB per shard while keeping the batch kernels in their sweet spot.
constexpr std::size_t kChunk = 256;

/// Largest per-device stream offset: clean devices replay their archetype's
/// trace shifted by [0, kMaxOffset) intervals, so 10k devices of one
/// archetype are 10k phase-distinct streams, not 10k copies.
constexpr std::uint32_t kMaxOffset = 16;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One simulated archetype, frozen into a shared row store: rows_[r] is the
/// r-th interval's heat map as doubles, ready to hand to analyze_shard as a
/// zero-copy span.
struct FleetRunner::Archetype {
  std::string name;
  bool attacked = false;
  std::vector<double> rows;  ///< row_count × L, row-major.
  std::size_t row_count = 0;
};

struct FleetRunner::ShardScratch {
  engine::ShardWorkspace workspace;
  std::vector<engine::Session*> sessions;
  std::vector<std::span<const double>> raws;
  std::vector<std::uint64_t> intervals;
  std::vector<Verdict> verdicts;
  std::vector<std::uint8_t> statuses;
};

FleetRunner::FleetRunner(FleetSpec spec,
                         const sim::SystemConfig& base_config,
                         std::shared_ptr<const ModelSnapshot> model)
    : spec_(std::move(spec)), model_(std::move(model)) {
  if (model_ == nullptr) throw ConfigError("FleetRunner: null model");
  threshold_ = model_->primary.log10_value;
  input_dim_ = model_->pca.input_dim();
  if (input_dim_ != base_config.monitor.cell_count()) {
    throw ConfigError(
        "FleetRunner: model cell count does not match the fleet's monitor "
        "geometry");
  }

  // --- simulate one seeded system per archetype, freeze its trace ---
  const std::size_t rows_needed = spec_.intervals + kMaxOffset;
  archetypes_.reserve(spec_.archetypes.size());
  for (std::size_t a = 0; a < spec_.archetypes.size(); ++a) {
    const ArchetypeSpec& as = spec_.archetypes[a];
    sim::SystemConfig config = base_config;
    config.seed = splitmix64(spec_.seed ^ (0xA5C1ULL + a));
    config.jitter_scale = as.jitter_scale;
    sim::System system(config);
    std::unique_ptr<attacks::AttackScenario> attack;
    if (!as.attack.empty()) {
      attack = attacks::make_scenario(as.attack);
      attack->arm(system, static_cast<SimTime>(as.trigger_interval) *
                              config.monitor.interval);
    }
    system.run_for(static_cast<SimTime>(rows_needed + 1) *
                   config.monitor.interval);
    const HeatMapTrace trace = system.take_trace();
    if (trace.size() < rows_needed) {
      throw ConfigError("FleetRunner: archetype '" + as.name +
                        "' produced too few intervals");
    }
    Archetype arch;
    arch.name = as.name;
    arch.attacked = attack != nullptr;
    arch.row_count = rows_needed;
    arch.rows.resize(rows_needed * input_dim_);
    std::vector<double> row;
    for (std::size_t r = 0; r < rows_needed; ++r) {
      trace[r].as_vector_into(row);
      MHM_ASSERT(row.size() == input_dim_,
                 "FleetRunner: archetype map size mismatch");
      std::copy(row.begin(), row.end(),
                arch.rows.begin() +
                    static_cast<std::ptrdiff_t>(r * input_dim_));
    }
    archetypes_.push_back(std::move(arch));
  }

  // --- deterministic per-device archetype pick + stream offset ---
  double total_weight = 0.0;
  for (const auto& as : spec_.archetypes) total_weight += as.weight;
  archetype_of_.resize(spec_.devices);
  offset_of_.resize(spec_.devices);
  for (std::size_t d = 0; d < spec_.devices; ++d) {
    const std::uint64_t h = splitmix64(spec_.seed ^ (d * 2 + 1));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53 * total_weight;
    double cum = 0.0;
    std::uint8_t pick = 0;
    for (std::size_t a = 0; a < spec_.archetypes.size(); ++a) {
      cum += spec_.archetypes[a].weight;
      if (u < cum) {
        pick = static_cast<std::uint8_t>(a);
        break;
      }
      pick = static_cast<std::uint8_t>(a);
    }
    archetype_of_[d] = pick;
    // Attacked archetypes stay at offset 0 so the trigger lands at the
    // spec's interval for every compromised device.
    offset_of_[d] = archetypes_[pick].attacked
                        ? 0
                        : static_cast<std::uint32_t>(
                              splitmix64(spec_.seed ^ (d * 2)) % kMaxOffset);
  }

  // --- contiguous shard layout, spec-determined (never thread-determined) ---
  const std::size_t shards = spec_.resolved_shards();
  shard_of_begin_.resize(shards + 1);
  for (std::size_t s = 0; s <= shards; ++s) {
    shard_of_begin_[s] = s * spec_.devices / shards;
  }

  // --- engine, one bounded session per device, per-shard scratch ---
  engine_ = std::make_unique<engine::DetectionEngine>(model_);
  engine::SessionOptions session_options =
      engine::SessionOptions::fleet_preset();
  session_options.journal_capacity = spec_.journal_capacity;
  session_options.health_history = spec_.health_history;
  session_options.health_row_stride = spec_.health_row_stride;
  session_options.health_max_events = spec_.health_max_events;
  sessions_.reserve(spec_.devices);
  for (std::size_t d = 0; d < spec_.devices; ++d) {
    sessions_.push_back(engine_->new_session(session_options));
  }
  scratch_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    scratch_.push_back(std::make_unique<ShardScratch>());
  }

  std::vector<std::string> names;
  names.reserve(archetypes_.size());
  for (const auto& a : archetypes_) names.push_back(a.name);
  aggregator_ = std::make_unique<FleetAggregator>(
      spec_, std::move(names), archetype_of_, shard_of_begin_);
  aggregator_->set_model_version(engine_->model_version());
}

FleetRunner::~FleetRunner() = default;

void FleetRunner::pump_shard_round(std::size_t shard, std::uint64_t round) {
  ShardScratch& sc = *scratch_[shard];
  const std::size_t begin = shard_of_begin_[shard];
  const std::size_t end = shard_of_begin_[shard + 1];
  // Profiler work delta for the whole round: the shard is owned by this
  // worker thread for the round's duration, so the per-thread counter delta
  // is exactly the shard's scoring cost (cycles or thread-CPU ns).
  const std::uint64_t work0 = obs::prof::thread_work_counter();
  for (std::size_t chunk = begin; chunk < end; chunk += kChunk) {
    const std::size_t chunk_end = std::min(end, chunk + kChunk);
    sc.sessions.clear();
    sc.raws.clear();
    sc.intervals.clear();
    sc.verdicts.clear();
    for (std::size_t d = chunk; d < chunk_end; ++d) {
      const Archetype& arch = archetypes_[archetype_of_[d]];
      const std::size_t row = (round + offset_of_[d]) % arch.row_count;
      sc.sessions.push_back(&sessions_[d]);
      sc.raws.emplace_back(arch.rows.data() + row * input_dim_, input_dim_);
      sc.intervals.push_back(round);
    }
    engine_->analyze_shard(sc.sessions, sc.raws, sc.intervals, sc.workspace,
                           aggregate_ ? &sc.verdicts : nullptr);
    if (aggregate_) {
      aggregator_->record_chunk(shard, chunk, sc.verdicts, threshold_);
    }
  }
  if (aggregate_) {
    const std::uint64_t work1 = obs::prof::thread_work_counter();
    if (work1 > work0) aggregator_->record_work(shard, work1 - work0);
  }
}

void FleetRunner::fold_shard(std::size_t shard) {
  ShardScratch& sc = *scratch_[shard];
  const std::size_t begin = shard_of_begin_[shard];
  const std::size_t end = shard_of_begin_[shard + 1];
  sc.statuses.clear();
  sc.statuses.reserve(end - begin);
  bool any_health = false;
  for (std::size_t d = begin; d < end; ++d) {
    const auto health = sessions_[d].model_health();
    if (health != nullptr) {
      any_health = true;
      sc.statuses.push_back(
          static_cast<std::uint8_t>(health->status()));
    } else {
      sc.statuses.push_back(0);
    }
  }
  const double elapsed =
      run_start_ns_ == 0
          ? 0.0
          : static_cast<double>(steady_ns() - run_start_ns_) * 1e-9;
  aggregator_->fold_shard(
      shard,
      any_health ? std::span<const std::uint8_t>(sc.statuses)
                 : std::span<const std::uint8_t>(),
      elapsed);
}

std::uint64_t FleetRunner::run_rounds(std::size_t rounds) {
  if (run_start_ns_ == 0) run_start_ns_ = steady_ns();
  std::uint64_t scored = 0;
  for (std::size_t r = 0; r < rounds && round_ < spec_.intervals; ++r) {
    const std::uint64_t round = round_;
    parallel_for(shard_count(), 1, [&](std::size_t s0, std::size_t s1) {
      for (std::size_t s = s0; s < s1; ++s) pump_shard_round(s, round);
    });
    ++round_;
    scored += spec_.devices;
    const bool last = round_ == spec_.intervals;
    if (aggregate_ && (round_ % spec_.health_refresh == 0 || last)) {
      parallel_for(shard_count(), 1, [&](std::size_t s0, std::size_t s1) {
        for (std::size_t s = s0; s < s1; ++s) fold_shard(s);
      });
    }
  }
  return scored;
}

std::uint64_t FleetRunner::run_all() {
  return run_rounds(spec_.intervals - round_);
}

}  // namespace mhm::fleet
