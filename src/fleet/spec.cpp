#include "fleet/spec.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace mhm::fleet {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == value.c_str()) {
    throw ConfigError("fleet spec: '" + key + "' wants an integer, got '" +
                      value + "'");
  }
  return v;
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == value.c_str()) {
    throw ConfigError("fleet spec: '" + key + "' wants a number, got '" +
                      value + "'");
  }
  return v;
}

}  // namespace

std::size_t FleetSpec::resolved_shards() const {
  if (shards != 0) return shards;
  const std::size_t by_devices = (devices + 255) / 256;
  return std::clamp<std::size_t>(by_devices, 1, 64);
}

FleetSpec FleetSpec::parse(std::istream& in) {
  FleetSpec spec;
  ArchetypeSpec* arch = nullptr;  // Non-null inside an [archetype.*] section.
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        throw ConfigError("fleet spec line " + std::to_string(line_no) +
                          ": unterminated section header");
      }
      const std::string section = trim(line.substr(1, line.size() - 2));
      const std::string prefix = "archetype.";
      if (section.rfind(prefix, 0) != 0 ||
          section.size() <= prefix.size()) {
        throw ConfigError("fleet spec line " + std::to_string(line_no) +
                          ": unknown section [" + section + "]");
      }
      ArchetypeSpec next;
      next.name = section.substr(prefix.size());
      // Names flow into JSON and Prometheus labels verbatim — keep them to
      // identifier characters so no consumer needs escaping.
      for (char c : next.name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-') {
          throw ConfigError("fleet spec line " + std::to_string(line_no) +
                            ": archetype name '" + next.name +
                            "' may only use [A-Za-z0-9_-]");
        }
      }
      spec.archetypes.push_back(std::move(next));
      arch = &spec.archetypes.back();
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("fleet spec line " + std::to_string(line_no) +
                        ": expected 'key = value'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    if (arch != nullptr) {
      if (key == "weight") {
        arch->weight = parse_double(key, value);
      } else if (key == "jitter") {
        arch->jitter_scale = parse_double(key, value);
      } else if (key == "attack") {
        arch->attack = value == "normal" ? "" : value;
      } else if (key == "trigger") {
        arch->trigger_interval = parse_u64(key, value);
      } else {
        throw ConfigError("fleet spec line " + std::to_string(line_no) +
                          ": unknown archetype key '" + key + "'");
      }
      continue;
    }

    if (key == "devices") {
      spec.devices = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "shards") {
      spec.shards = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "intervals") {
      spec.intervals = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "seed") {
      spec.seed = parse_u64(key, value);
    } else if (key == "top_k") {
      spec.top_k = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "health_refresh") {
      spec.health_refresh = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "incident_gap") {
      spec.incident_gap = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "incident_window") {
      spec.incident_window = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "journal_capacity") {
      spec.journal_capacity = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "health_history") {
      spec.health_history = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "health_row_stride") {
      spec.health_row_stride =
          static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "health_max_events") {
      spec.health_max_events =
          static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "session_bytes_budget") {
      spec.session_bytes_budget =
          static_cast<std::size_t>(parse_u64(key, value));
    } else {
      throw ConfigError("fleet spec line " + std::to_string(line_no) +
                        ": unknown key '" + key + "'");
    }
  }

  if (spec.devices == 0) throw ConfigError("fleet spec: devices must be > 0");
  if (spec.intervals == 0) {
    throw ConfigError("fleet spec: intervals must be > 0");
  }
  if (spec.top_k == 0) throw ConfigError("fleet spec: top_k must be > 0");
  if (spec.health_refresh == 0) spec.health_refresh = 1;
  if (spec.archetypes.empty()) {
    ArchetypeSpec steady;
    steady.name = "steady";
    spec.archetypes.push_back(std::move(steady));
  }
  double total_weight = 0.0;
  for (const auto& a : spec.archetypes) {
    if (a.weight < 0.0) {
      throw ConfigError("fleet spec: archetype '" + a.name +
                        "' has a negative weight");
    }
    total_weight += a.weight;
  }
  if (total_weight <= 0.0) {
    throw ConfigError("fleet spec: archetype weights sum to zero");
  }
  return spec;
}

FleetSpec FleetSpec::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

FleetSpec FleetSpec::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("fleet spec: cannot open '" + path + "'");
  return parse(in);
}

}  // namespace mhm::fleet
