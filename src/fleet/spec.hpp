#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <string>
#include <vector>

namespace mhm::fleet {

/// One device archetype: a class of simulated devices sharing a workload
/// shape. The fleet runner simulates one seeded system per archetype and
/// fans its interval stream out to every device of that archetype (each
/// device at its own stream offset), so a 10k-device fleet costs a handful
/// of simulations, not 10k.
struct ArchetypeSpec {
  std::string name;
  /// Relative share of the fleet's devices (weights are normalized).
  double weight = 1.0;
  /// Workload jitter multiplier for this archetype's simulated system
  /// (SystemConfig::jitter_scale) — heterogeneous fleets mix calm RTOS-like
  /// devices with noisy general-purpose ones.
  double jitter_scale = 1.0;
  /// Attack scenario armed on this archetype's system ("" = clean). The
  /// archetype's devices are the fleet's genuinely anomalous streams — the
  /// ones the top-K ranking must surface.
  std::string attack;
  /// Interval index at which the attack manifests.
  std::uint64_t trigger_interval = 10;
};

/// A declarative fleet: how many devices, how they shard, what they run and
/// how much observability memory each session may hold. Parsed from the
/// INI-like text format documented in docs/FILE_FORMATS.md ("Fleet spec").
struct FleetSpec {
  std::size_t devices = 64;
  /// Worker shards. 0 = pick a deterministic default from the device count
  /// (never from the thread count — shard layout is part of the determinism
  /// contract: same spec + seed ⇒ bit-identical aggregates at any
  /// MHM_THREADS).
  std::size_t shards = 0;
  /// Intervals each device contributes (one per round).
  std::size_t intervals = 50;
  std::uint64_t seed = 1;
  /// Bounded ranking size: the aggregator keeps the K most anomalous
  /// streams fleet-wide.
  std::size_t top_k = 10;
  /// Rounds between health-status folds (per-device OK/DRIFTING/
  /// MISCALIBRATED rollup + top-K recompute). The fold is the only
  /// O(devices) aggregation step; everything per-interval is O(1).
  std::size_t health_refresh = 8;

  // --- fleet-level incident grouping ---
  /// Min intervals between two incident marks of the same device — the
  /// fleet-side analogue of IncidentOptions::min_gap, so one attacked
  /// stream contributes one mark per wave, not one per alarmed interval.
  std::size_t incident_gap = 64;
  /// Co-temporal window: marks within this many intervals of each other
  /// chain into one fleet incident group (the "same wave hit N devices"
  /// forensics view served in /fleet's incident_groups).
  std::size_t incident_window = 16;

  // --- per-session observability bounds (the fleet preset) ---
  std::size_t journal_capacity = 32;
  std::size_t health_history = 0;
  std::size_t health_row_stride = 0;
  std::size_t health_max_events = 4;

  /// Resident-memory budget per session, enforced by bench/fleet (exit
  /// non-zero on violation). Netdata budgets ~18 KB RAM per monitored
  /// metric at edge scale; 64 KB is the contract here (a session carries a
  /// journal ring and health sketches on top of its scoring scratch).
  std::size_t session_bytes_budget = 64 * 1024;

  /// Device archetypes; empty = one clean "steady" archetype.
  std::vector<ArchetypeSpec> archetypes;

  /// Shard count after resolving shards == 0 (deterministic in the spec
  /// alone: ceil(devices / 256) clamped to [1, 64]).
  std::size_t resolved_shards() const;

  /// Parse the text format (throws ConfigError on malformed lines, unknown
  /// keys, or impossible values).
  static FleetSpec parse(std::istream& in);
  static FleetSpec parse_string(const std::string& text);
  static FleetSpec load(const std::string& path);
};

}  // namespace mhm::fleet
