#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mhm {

/// Text rendering helpers so benches can print paper-figure-shaped output
/// (time series of log densities, 2-D heat maps) directly to the terminal.

struct LinePlotOptions {
  std::size_t width = 100;   ///< Plot area width in characters.
  std::size_t height = 20;   ///< Plot area height in characters.
  std::string title;
  std::string y_label;
  std::string x_label;
  /// Horizontal reference lines (e.g. detection thresholds θ), drawn as '-'.
  std::vector<double> hlines;
  /// Vertical markers (e.g. attack injection interval), drawn as '|'.
  std::vector<double> vlines;
};

/// Render `ys` (x = index) as an ASCII scatter/line chart. Non-finite values
/// are clamped to the plot bottom (matches how the figures saturate).
std::string render_line_plot(const std::vector<double>& ys,
                             const LinePlotOptions& options);

struct HeatMapPlotOptions {
  std::size_t width = 64;  ///< Cells are re-binned to this many columns...
  std::size_t rows = 16;   ///< ...wrapped over this many rows (row-major).
  std::string title;
  bool log_scale = true;   ///< log1p-compress counts before shading.
};

/// Render a 1-D vector of cell counts as a 2-D shaded character map, the way
/// Figure 1 folds the kernel .text MHM vector into a 2-D image.
std::string render_heat_map(const std::vector<std::uint64_t>& cells,
                            const HeatMapPlotOptions& options);

/// Simple fixed-width table formatter for bench summaries.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper: format a double with the given precision.
std::string fmt_double(double v, int precision = 3);

}  // namespace mhm
