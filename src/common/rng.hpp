#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/error.hpp"

namespace mhm {

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// Everything stochastic in the repository — task jitter, EM restarts,
/// k-means++ seeding, synthetic workload variation — draws from this class so
/// that every experiment is reproducible from a single 64-bit seed.
/// Satisfies UniformRandomBitGenerator, so it also works with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64 bits.
  result_type operator()();

  /// Derive an independent child stream (for per-task / per-restart RNGs).
  /// Children with different `stream_id` are decorrelated from the parent
  /// and from each other.
  Rng fork(std::uint64_t stream_id);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached spare).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal such that the *multiplicative* jitter has median 1 and the
  /// given coefficient-of-variation-like sigma (sigma of underlying normal).
  /// Used for execution-time and access-count jitter.
  double lognormal_jitter(double sigma);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Poisson with the given mean (small means: Knuth; large: normal approx).
  std::uint64_t poisson(double mean);

  /// Sample an index according to (unnormalized, non-negative) weights.
  std::size_t discrete(const std::vector<double>& weights);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mhm
