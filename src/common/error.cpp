#include "common/error.hpp"

#include <sstream>

namespace mhm::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw LogicError(os.str());
}

}  // namespace mhm::detail
