#include "common/rng.hpp"

#include <cmath>
#include <numeric>

namespace mhm {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64: seeds the xoshiro state from a single value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream_id) {
  // Mix the stream id into fresh entropy drawn from this stream.
  std::uint64_t base = (*this)() ^ (stream_id * 0xD2B74407B1CE6E93ull);
  return Rng(base);
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MHM_ASSERT(lo <= hi, "uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MHM_ASSERT(lo <= hi, "uniform_int: lo must be <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  MHM_ASSERT(stddev >= 0.0, "normal: stddev must be non-negative");
  return mean + stddev * normal();
}

double Rng::lognormal_jitter(double sigma) {
  MHM_ASSERT(sigma >= 0.0, "lognormal_jitter: sigma must be non-negative");
  return std::exp(sigma * normal());
}

double Rng::exponential(double rate) {
  MHM_ASSERT(rate > 0.0, "exponential: rate must be positive");
  double u = 0.0;
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  MHM_ASSERT(mean >= 0.0, "poisson: mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // large access-count draws in the workload generator.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  MHM_ASSERT(!weights.empty(), "discrete: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    MHM_ASSERT(w >= 0.0, "discrete: weights must be non-negative");
    total += w;
  }
  MHM_ASSERT(total > 0.0, "discrete: at least one weight must be positive");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fell off the end
}

bool Rng::bernoulli(double p) {
  MHM_ASSERT(p >= 0.0 && p <= 1.0, "bernoulli: p must be in [0,1]");
  return uniform() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace mhm
