#pragma once

#include <cstddef>
#include <vector>

namespace mhm {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-quantile of `values` with linear interpolation between order statistics
/// (the "type 7" estimator). `p` must be in [0, 1]. Does not modify input.
///
/// The paper's threshold θ_p is the p-quantile of validation-set densities
/// (§5.2): θ_{0.5} means p = 0.005.
double quantile(std::vector<double> values, double p);

/// Mean of a vector; throws ConfigError if empty.
double mean_of(const std::vector<double>& values);

/// Pearson correlation of two equally sized vectors.
double pearson_correlation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Binary-classification counts at a fixed decision threshold.
struct ConfusionCounts {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;

  double true_positive_rate() const;   ///< a.k.a. detection rate / recall
  double false_positive_rate() const;
  double precision() const;
  double accuracy() const;
};

/// Count detector outcomes. `anomaly_scores` are *lower-is-more-anomalous*
/// (log densities); a sample is flagged anomalous when score < threshold.
ConfusionCounts evaluate_threshold(const std::vector<double>& normal_scores,
                                   const std::vector<double>& anomaly_scores,
                                   double threshold);

/// Area under the ROC curve for lower-is-more-anomalous scores, computed by
/// the rank statistic (equivalent to the Mann–Whitney U). 1.0 = perfect
/// separation, 0.5 = chance.
double roc_auc(const std::vector<double>& normal_scores,
               const std::vector<double>& anomaly_scores);

/// Equal-width histogram over [lo, hi] with `bins` buckets; out-of-range
/// samples clamp to the first/last bucket.
std::vector<std::size_t> histogram(const std::vector<double>& values,
                                   double lo, double hi, std::size_t bins);

}  // namespace mhm
