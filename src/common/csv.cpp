#include "common/csv.hpp"

#include <iomanip>
#include <limits>

#include "common/error.hpp"

namespace mhm {

std::string csv_escape(std::string_view value) {
  const bool needs_quote =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(value);
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw ConfigError("CsvWriter: cannot open " + path);
  out_ << std::setprecision(std::numeric_limits<double>::max_digits10);
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  row();
  for (const auto& c : columns) col(c);
}

CsvWriter& CsvWriter::row() {
  if (any_row_) out_ << '\n';
  any_row_ = true;
  row_has_cols_ = false;
  return *this;
}

void CsvWriter::separator() {
  if (row_has_cols_) out_ << ',';
  row_has_cols_ = true;
}

CsvWriter& CsvWriter::col(std::string_view value) {
  separator();
  out_ << csv_escape(value);
  return *this;
}

CsvWriter& CsvWriter::col(double value) {
  separator();
  out_ << value;
  return *this;
}

CsvWriter& CsvWriter::col(std::uint64_t value) {
  separator();
  out_ << value;
  return *this;
}

CsvWriter& CsvWriter::col(std::int64_t value) {
  separator();
  out_ << value;
  return *this;
}

CsvWriter& CsvWriter::col(int value) {
  separator();
  out_ << value;
  return *this;
}

void CsvWriter::close() {
  if (out_.is_open()) {
    if (any_row_) out_ << '\n';
    out_.close();
  }
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace mhm
