#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace mhm {

namespace {

/// Set while a thread executes pool work; a nested parallel_for from inside
/// a body must run inline or it would wait on chunks only itself can drain.
thread_local bool tl_in_pool_work = false;

struct PoolMetrics {
  obs::Counter& jobs = obs::Registry::instance().counter(
      "parallel.jobs", "parallel_for invocations dispatched to the pool");
  obs::Counter& serial_jobs = obs::Registry::instance().counter(
      "parallel.serial_jobs",
      "parallel_for invocations degraded to inline serial execution");
  obs::Counter& chunks = obs::Registry::instance().counter(
      "parallel.chunks", "work chunks executed across all parallel_for calls");
  obs::Gauge& threads = obs::Registry::instance().gauge(
      "parallel.threads", "execution width of the global thread pool");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t g = effective_grain(n, grain);
  const std::size_t chunks = (n + g - 1) / g;

  auto run_serial = [&] {
    for (std::size_t c = 0; c < chunks; ++c) {
      body(c * g, std::min(n, (c + 1) * g));
    }
  };

  pool_metrics().chunks.add(chunks);
  if (workers_.empty() || chunks == 1 || tl_in_pool_work) {
    pool_metrics().serial_jobs.add();
    run_serial();
    return;
  }
  // A second top-level parallel_for while one is in flight (e.g. from a user
  // thread outside the pool) simply runs serially instead of queueing.
  std::unique_lock<std::mutex> submit(submit_mu_, std::try_to_lock);
  if (!submit.owns_lock()) {
    pool_metrics().serial_jobs.add();
    run_serial();
    return;
  }
  pool_metrics().jobs.add();

  auto job = std::make_shared<Job>();
  job->n = n;
  job->grain = g;
  job->chunks = chunks;
  job->body = &body;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    ++job_epoch_;
  }
  cv_.notify_all();

  drain(*job);  // The caller participates; by return, every chunk is claimed.

  std::unique_lock<std::mutex> lk(job->m);
  job->done.wait(lk, [&] { return job->active == 0; });
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::drain(Job& job) {
  {
    std::lock_guard<std::mutex> lk(job.m);
    ++job.active;
  }
  tl_in_pool_work = true;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) break;
    const std::size_t begin = c * job.grain;
    const std::size_t end = std::min(job.n, begin + job.grain);
    try {
      (*job.body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.m);
      if (!job.error) job.error = std::current_exception();
      // Cancel: park the cursor past the grid so no new chunk is claimed.
      job.next.store(job.chunks, std::memory_order_relaxed);
    }
  }
  tl_in_pool_work = false;
  {
    std::lock_guard<std::mutex> lk(job.m);
    if (--job.active == 0) job.done.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || job_epoch_ != seen; });
      if (stop_) return;
      seen = job_epoch_;
      job = job_;
    }
    // A worker that wakes after the job finished finds the cursor exhausted
    // and immediately goes back to sleep; the shared_ptr keeps `job` valid.
    if (job) drain(*job);
  }
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_threads_override = 0;

}  // namespace

std::size_t configured_threads() {
  if (const char* env = std::getenv("MHM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) {
      return static_cast<std::size_t>(std::min<long>(v, 256));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return std::min<unsigned>(hw, 256);
}

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) {
    const std::size_t t =
        g_threads_override != 0 ? g_threads_override : configured_threads();
    g_pool = std::make_unique<ThreadPool>(t);
    pool_metrics().threads.set(static_cast<double>(g_pool->threads()));
  }
  return *g_pool;
}

std::size_t global_threads() { return global_pool().threads(); }

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_threads_override = threads;
  g_pool.reset();
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  global_pool().parallel_for(n, grain, body);
}

}  // namespace mhm
