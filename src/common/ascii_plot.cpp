#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace mhm {

namespace {

/// Shade ramp from cold to hot.
constexpr std::string_view kShades = " .:-=+*#%@";

char shade_for(double t) {
  t = std::clamp(t, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(t * static_cast<double>(kShades.size() - 1) + 0.5);
  return kShades[idx];
}

}  // namespace

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string render_line_plot(const std::vector<double>& ys,
                             const LinePlotOptions& options) {
  if (ys.empty()) return "(empty series)\n";
  MHM_ASSERT(options.width >= 10 && options.height >= 4,
             "render_line_plot: plot area too small");

  // Determine finite y-range including reference lines.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double y : ys) {
    if (std::isfinite(y)) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
  }
  for (double h : options.hlines) {
    lo = std::min(lo, h);
    hi = std::max(hi, h);
  }
  if (!std::isfinite(lo)) {
    lo = -1.0;
    hi = 1.0;
  }
  if (hi - lo < 1e-12) {
    hi = lo + 1.0;
  }

  const std::size_t w = options.width;
  const std::size_t h = options.height;
  std::vector<std::string> grid(h, std::string(w, ' '));

  auto row_for = [&](double y) -> std::size_t {
    const double t = (y - lo) / (hi - lo);
    const auto r = static_cast<std::int64_t>(
        std::llround((1.0 - t) * static_cast<double>(h - 1)));
    return static_cast<std::size_t>(std::clamp<std::int64_t>(r, 0, static_cast<std::int64_t>(h - 1)));
  };

  // Reference lines first so data overdraws them.
  for (double ref : options.hlines) {
    const std::size_t r = row_for(ref);
    for (std::size_t c = 0; c < w; ++c) grid[r][c] = '-';
  }
  for (double x : options.vlines) {
    if (x < 0.0 || x >= static_cast<double>(ys.size())) continue;
    const auto c = static_cast<std::size_t>(
        x / static_cast<double>(ys.size()) * static_cast<double>(w));
    for (std::size_t r = 0; r < h; ++r) {
      if (c < w) grid[r][c] = '|';
    }
  }

  // Data: average samples that fall into the same column.
  std::vector<double> col_sum(w, 0.0);
  std::vector<std::size_t> col_n(w, 0);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const auto c = static_cast<std::size_t>(
        static_cast<double>(i) / static_cast<double>(ys.size()) * static_cast<double>(w));
    double y = ys[i];
    if (!std::isfinite(y)) y = lo;
    col_sum[std::min(c, w - 1)] += y;
    ++col_n[std::min(c, w - 1)];
  }
  for (std::size_t c = 0; c < w; ++c) {
    if (col_n[c] == 0) continue;
    const double y = col_sum[c] / static_cast<double>(col_n[c]);
    grid[row_for(y)][c] = '*';
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  const int label_w = 10;
  for (std::size_t r = 0; r < h; ++r) {
    // Y-axis tick labels at top, middle, bottom.
    if (r == 0 || r == h - 1 || r == h / 2) {
      const double frac = 1.0 - static_cast<double>(r) / static_cast<double>(h - 1);
      os << std::setw(label_w) << fmt_double(lo + frac * (hi - lo), 1);
    } else {
      os << std::string(label_w, ' ');
    }
    os << " |" << grid[r] << '\n';
  }
  os << std::string(label_w + 1, ' ') << '+' << std::string(w, '-') << '\n';
  os << std::string(label_w + 2, ' ') << "0";
  const std::string xmax = std::to_string(ys.size() - 1);
  if (w > xmax.size() + 2) os << std::string(w - xmax.size() - 1, ' ') << xmax;
  os << '\n';
  if (!options.x_label.empty()) {
    os << std::string(label_w + 2, ' ') << options.x_label << '\n';
  }
  return os.str();
}

std::string render_heat_map(const std::vector<std::uint64_t>& cells,
                            const HeatMapPlotOptions& options) {
  if (cells.empty()) return "(empty heat map)\n";
  MHM_ASSERT(options.width > 0 && options.rows > 0,
             "render_heat_map: invalid geometry");
  const std::size_t n_bins = options.width * options.rows;

  // Re-bin cells into the display grid by summing.
  std::vector<double> bins(n_bins, 0.0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto b = static_cast<std::size_t>(
        static_cast<double>(i) / static_cast<double>(cells.size()) * static_cast<double>(n_bins));
    bins[std::min(b, n_bins - 1)] += static_cast<double>(cells[i]);
  }
  double peak = 0.0;
  for (double& b : bins) {
    if (options.log_scale) b = std::log1p(b);
    peak = std::max(peak, b);
  }
  if (peak == 0.0) peak = 1.0;

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  os << '+' << std::string(options.width, '-') << "+\n";
  for (std::size_t r = 0; r < options.rows; ++r) {
    os << '|';
    for (std::size_t c = 0; c < options.width; ++c) {
      os << shade_for(bins[r * options.width + c] / peak);
    }
    os << "|\n";
  }
  os << '+' << std::string(options.width, '-') << "+\n";
  return os.str();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  MHM_ASSERT(cells.size() == headers_.size(),
             "TextTable: row width must match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << row[c] << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace mhm
