#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mhm {

/// Deterministic data-parallel runtime.
///
/// The training pipeline (trace collection, PCA, GMM EM) is embarrassingly
/// parallel, but the whole repository promises bit-identical results for a
/// given seed — the determinism tests assert it. The pool therefore offers
/// only *deterministic* constructs:
///
///  * `parallel_for(n, grain, body)` splits [0, n) into fixed chunks of
///    `grain` indices. The chunk grid depends only on (n, grain), never on
///    the thread count; chunks may execute in any order on any thread, so
///    the body must only write to disjoint, index-owned locations (the
///    "independent writes" rule). Under that rule the result is bit-identical
///    to the plain serial loop, for every thread count including 1.
///  * `parallel_reduce(n, grain, init, map_chunk, combine)` maps each chunk
///    of the same fixed grid to a partial value and combines the partials
///    *serially in chunk order*. The float rounding therefore depends only
///    on (n, grain), never on the thread count.
///
/// Callers that need bitwise compatibility with a pre-existing serial
/// left-fold should instead store per-index values with `parallel_for` and
/// fold them serially afterwards — that reproduces the serial rounding
/// exactly (this is what the GMM E-step does with its log-likelihood).
///
/// Nested or concurrent `parallel_for` calls degrade to serial execution on
/// the calling thread rather than deadlocking, so library code can use the
/// pool unconditionally.
class ThreadPool {
 public:
  /// `threads` is the total execution width *including* the calling thread:
  /// `ThreadPool(1)` spawns no workers and runs everything inline (the exact
  /// pre-parallel behavior).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution width (worker threads + the caller).
  std::size_t threads() const { return workers_.size() + 1; }

  /// Run `body(begin, end)` over the fixed chunk grid of [0, n).
  /// `grain == 0` selects a default grain targeting `kDefaultChunks` chunks
  /// (still a pure function of `n`). Exceptions thrown by the body cancel
  /// remaining chunks and are rethrown on the calling thread.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Deterministic reduction: `partials[c] = map_chunk(begin_c, end_c)` in
  /// parallel, then `acc = combine(acc, partials[c])` serially for
  /// c = 0, 1, 2, … — the combine order is fixed by the chunk grid alone.
  template <typename T, typename MapFn, typename CombineFn>
  T parallel_reduce(std::size_t n, std::size_t grain, T init, MapFn&& map_chunk,
                    CombineFn&& combine) {
    if (n == 0) return init;
    const std::size_t g = effective_grain(n, grain);
    const std::size_t chunks = (n + g - 1) / g;
    std::vector<T> partials(chunks, init);
    parallel_for(chunks, 1, [&](std::size_t c0, std::size_t c1) {
      for (std::size_t c = c0; c < c1; ++c) {
        partials[c] = map_chunk(c * g, std::min(n, (c + 1) * g));
      }
    });
    T acc = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c) {
      acc = combine(std::move(acc), std::move(partials[c]));
    }
    return acc;
  }

  /// Chunk-grid target when `grain == 0`; chosen well above any realistic
  /// core count so the default grid keeps every thread fed.
  static constexpr std::size_t kDefaultChunks = 64;

  /// The grain actually used for (n, grain) — thread-count independent.
  static std::size_t effective_grain(std::size_t n, std::size_t grain) {
    if (grain != 0) return grain;
    return std::max<std::size_t>(1, (n + kDefaultChunks - 1) / kDefaultChunks);
  }

 private:
  /// One parallel_for in flight: a shared atomic chunk cursor drained by the
  /// caller plus however many workers wake up in time.
  struct Job {
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::mutex m;
    std::condition_variable done;
    std::size_t active = 0;       ///< Participants inside drain() (under m).
    std::exception_ptr error;     ///< First body exception (under m).
  };

  void worker_loop();
  void drain(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;                 ///< Guards job_/job_epoch_/stop_.
  std::condition_variable cv_;
  std::shared_ptr<Job> job_;
  std::uint64_t job_epoch_ = 0;
  bool stop_ = false;
  std::mutex submit_mu_;          ///< One parallel_for at a time.
};

/// Thread count from the environment: MHM_THREADS if set (clamped to
/// [1, 256]), otherwise std::thread::hardware_concurrency().
std::size_t configured_threads();

/// Process-wide pool, built lazily from `configured_threads()` or the last
/// `set_global_threads()` override. Everything in the library schedules
/// through this pool.
ThreadPool& global_pool();

/// Execution width of the global pool.
std::size_t global_threads();

/// Override the global pool size (tests / benches sweep thread counts).
/// `threads == 0` reverts to the MHM_THREADS / hardware default. Must not be
/// called while parallel work is in flight; the pool is rebuilt lazily.
void set_global_threads(std::size_t threads);

/// Convenience wrappers over the global pool.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t n, std::size_t grain, T init, MapFn&& map_chunk,
                  CombineFn&& combine) {
  return global_pool().parallel_reduce(n, grain, std::move(init),
                                       std::forward<MapFn>(map_chunk),
                                       std::forward<CombineFn>(combine));
}

}  // namespace mhm
