#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mhm {

/// Minimal CSV writer used by benches and examples to dump the series that
/// regenerate the paper's figures. Values are written with full double
/// precision; strings containing separators/quotes are quoted.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws ConfigError on failure.
  explicit CsvWriter(const std::string& path);

  /// Write a header row.
  void header(const std::vector<std::string>& columns);

  /// Start a new row; then call col() repeatedly.
  CsvWriter& row();
  CsvWriter& col(std::string_view value);
  CsvWriter& col(double value);
  CsvWriter& col(std::uint64_t value);  // also covers std::size_t on LP64
  CsvWriter& col(std::int64_t value);
  CsvWriter& col(int value);

  /// Flush and close; also called by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  void separator();
  std::ofstream out_;
  bool row_has_cols_ = false;
  bool any_row_ = false;
};

/// Quote a CSV field if needed.
std::string csv_escape(std::string_view value);

}  // namespace mhm
