#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mhm {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const {
  MHM_ASSERT(n_ > 0, "RunningStats::mean on empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  MHM_ASSERT(n_ > 0, "RunningStats::variance on empty accumulator");
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  MHM_ASSERT(n_ > 0, "RunningStats::min on empty accumulator");
  return min_;
}

double RunningStats::max() const {
  MHM_ASSERT(n_ > 0, "RunningStats::max on empty accumulator");
  return max_;
}

double quantile(std::vector<double> values, double p) {
  if (values.empty()) throw ConfigError("quantile: empty sample");
  if (p < 0.0 || p > 1.0) throw ConfigError("quantile: p must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) throw ConfigError("mean_of: empty sample");
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double pearson_correlation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw ConfigError("pearson_correlation: size mismatch or empty input");
  }
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double ConfusionCounts::true_positive_rate() const {
  const auto denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ConfusionCounts::false_positive_rate() const {
  const auto denom = false_positives + true_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(false_positives) /
                          static_cast<double>(denom);
}

double ConfusionCounts::precision() const {
  const auto denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ConfusionCounts::accuracy() const {
  const auto total =
      true_positives + false_positives + true_negatives + false_negatives;
  return total == 0 ? 0.0
                    : static_cast<double>(true_positives + true_negatives) /
                          static_cast<double>(total);
}

ConfusionCounts evaluate_threshold(const std::vector<double>& normal_scores,
                                   const std::vector<double>& anomaly_scores,
                                   double threshold) {
  ConfusionCounts c;
  for (double s : normal_scores) {
    if (s < threshold) {
      ++c.false_positives;
    } else {
      ++c.true_negatives;
    }
  }
  for (double s : anomaly_scores) {
    if (s < threshold) {
      ++c.true_positives;
    } else {
      ++c.false_negatives;
    }
  }
  return c;
}

double roc_auc(const std::vector<double>& normal_scores,
               const std::vector<double>& anomaly_scores) {
  if (normal_scores.empty() || anomaly_scores.empty()) {
    throw ConfigError("roc_auc: both classes must be non-empty");
  }
  // AUC = P(anomaly score < normal score) + 0.5 P(tie), lower = anomalous.
  // Rank-based computation: sort the pooled sample, sum anomaly ranks.
  struct Tagged {
    double score;
    bool anomaly;
  };
  std::vector<Tagged> pool;
  pool.reserve(normal_scores.size() + anomaly_scores.size());
  for (double s : normal_scores) pool.push_back({s, false});
  for (double s : anomaly_scores) pool.push_back({s, true});
  std::sort(pool.begin(), pool.end(),
            [](const Tagged& x, const Tagged& y) { return x.score < y.score; });
  // Average ranks over ties.
  double anomaly_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].score == pool[i].score) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j - 1)) / 2.0 + 1.0;
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].anomaly) anomaly_rank_sum += avg_rank;
    }
    i = j;
  }
  const double na = static_cast<double>(anomaly_scores.size());
  const double nn = static_cast<double>(normal_scores.size());
  const double u = anomaly_rank_sum - na * (na + 1.0) / 2.0;
  // Low anomaly ranks (small scores) mean good detection -> invert U.
  return 1.0 - u / (na * nn);
}

std::vector<std::size_t> histogram(const std::vector<double>& values,
                                   double lo, double hi, std::size_t bins) {
  if (bins == 0) throw ConfigError("histogram: bins must be positive");
  if (!(lo < hi)) throw ConfigError("histogram: lo must be < hi");
  std::vector<std::size_t> h(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    double idx = (v - lo) / width;
    std::size_t b;
    if (idx < 0.0) {
      b = 0;
    } else if (idx >= static_cast<double>(bins)) {
      b = bins - 1;
    } else {
      b = static_cast<std::size_t>(idx);
    }
    ++h[b];
  }
  return h;
}

}  // namespace mhm
