#pragma once

#include <cstdint>

namespace mhm {

/// Simulated time in nanoseconds. The discrete-event simulator, the
/// Memometer interval timer and the scheduler all share this clock.
using SimTime = std::uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Virtual address on the monitored core. The paper monitors the kernel
/// logical address space (linearly mapped), so a single 64-bit integer
/// suffices for both virtual and physical views.
using Address = std::uint64_t;

/// Convenience literals: 10 * mhm::kMillisecond etc. are used throughout.
constexpr SimTime ms_to_ns(std::uint64_t ms) { return ms * kMillisecond; }
constexpr SimTime us_to_ns(std::uint64_t us) { return us * kMicrosecond; }

/// True iff `x` is a power of two (and nonzero).
constexpr bool is_power_of_two(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x > 0.
constexpr unsigned log2_floor(std::uint64_t x) {
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

}  // namespace mhm
