#pragma once

#include <stdexcept>
#include <string>

namespace mhm {

/// Base class for all errors thrown by the MHM library.
///
/// Configuration mistakes (bad granularity, empty training set, ...) throw a
/// subclass of `Error`. Internal invariant violations use MHM_ASSERT, which
/// throws `LogicError` so tests can exercise failure paths deterministically
/// instead of aborting the process.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied configuration or argument.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Numerical failure (eigensolver did not converge, singular matrix, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Broken internal invariant; indicates a bug in the library itself.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

/// Always-on assertion that throws LogicError (never disabled by NDEBUG):
/// hardware/simulator invariants are part of the model's contract.
#define MHM_ASSERT(expr, msg)                                         \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::mhm::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                 \
  } while (false)

}  // namespace mhm
