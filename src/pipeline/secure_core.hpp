#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/detector.hpp"
#include "core/heatmap.hpp"
#include "sim/system.hpp"

namespace mhm::pipeline {

/// Model of the secure core of the SecureCore architecture (paper §3):
/// the trusted core that configures the Memometer, retrieves each finished
/// MHM from the on-chip double buffer and runs the anomaly analysis while
/// the next interval accumulates.
///
/// It verifies the paper's implicit real-time constraint: analysis of one
/// MHM must finish within one monitoring interval, otherwise the double
/// buffer would be overrun. Violations are counted, not fatal.
class SecureCoreMonitor {
 public:
  /// An alarm raised for one interval.
  struct Alarm {
    std::uint64_t interval_index = 0;
    double log10_density = 0.0;
  };

  /// Attach to `system`; every completed interval is analyzed with
  /// `detector` (not owned; must outlive the monitor and the run).
  SecureCoreMonitor(sim::System& system, const AnomalyDetector& detector);

  /// Optional callback fired on every anomalous interval (e.g. to trigger a
  /// recovery action in a Simplex-style architecture).
  void set_alarm_handler(std::function<void(const Alarm&)> handler);

  const std::vector<Verdict>& verdicts() const { return verdicts_; }
  const std::vector<Alarm>& alarms() const { return alarms_; }

  /// Number of intervals whose analysis (wall-clock) exceeded the interval
  /// length — the double-buffer overrun condition.
  std::size_t deadline_overruns() const { return overruns_; }

  /// Mean analysis time per MHM in nanoseconds (the §5.4 metric).
  double mean_analysis_time_ns() const;

 private:
  const AnomalyDetector* detector_;
  SimTime interval_length_;
  std::vector<Verdict> verdicts_;
  std::vector<Alarm> alarms_;
  std::function<void(const Alarm&)> alarm_handler_;
  std::size_t overruns_ = 0;
};

}  // namespace mhm::pipeline
