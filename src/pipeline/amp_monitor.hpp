#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "pipeline/secure_core.hpp"
#include "sim/system.hpp"

namespace mhm::pipeline {

/// Multi-instance (AMP) monitoring — the §5.5 scaling scenario.
///
/// "For AMP architectures on which multiple OSes run, the Memometer should
/// be replicated for each OS instance." Each monitored instance keeps its
/// own Memometer and its own trained detector (different OS images have
/// different normal behaviour), while a single secure core performs all the
/// analyses. The real-time budget becomes Σ analysis times ≤ interval; this
/// class accounts for it the way SecureCoreMonitor does for one instance.
class AmpMonitor {
 public:
  struct InstanceAlarm {
    std::size_t instance = 0;            ///< Which monitored OS.
    std::uint64_t interval_index = 0;
    double log10_density = 0.0;
  };

  AmpMonitor() = default;

  /// Attach one monitored instance. `system` and `detector` must outlive
  /// the monitor and the run. Returns the instance index.
  std::size_t attach(sim::System& system, const AnomalyDetector& detector,
                     std::string name = {});

  /// Run every attached instance for `duration` (they advance in lockstep
  /// interval-by-interval only in the sense that each produces one MHM per
  /// interval; their simulations are independent).
  void run_all(SimTime duration);

  std::size_t instance_count() const { return instances_.size(); }
  const std::vector<InstanceAlarm>& alarms() const { return alarms_; }
  const std::vector<Verdict>& verdicts(std::size_t instance) const;
  const std::string& name(std::size_t instance) const;

  /// Total secure-core analysis time spent per monitoring interval,
  /// averaged over intervals: the §5.5 budget Σ_i t_i. (Assumes equal
  /// interval lengths across instances.)
  double mean_total_analysis_ns_per_interval() const;

  /// Number of intervals whose *summed* analysis time exceeded the
  /// monitoring interval — the AMP double-buffer overrun condition.
  std::size_t budget_overruns() const;

 private:
  struct Instance {
    sim::System* system = nullptr;
    const AnomalyDetector* detector = nullptr;
    std::string name;
    std::vector<Verdict> verdicts;
  };

  std::vector<Instance> instances_;
  std::vector<InstanceAlarm> alarms_;
  SimTime interval_ = 0;
};

}  // namespace mhm::pipeline
