#include "pipeline/secure_core.hpp"

#include "common/error.hpp"

namespace mhm::pipeline {

SecureCoreMonitor::SecureCoreMonitor(sim::System& system,
                                     const AnomalyDetector& detector)
    : detector_(&detector),
      interval_length_(system.config().monitor.interval) {
  system.set_interval_observer([this](const HeatMap& map) {
    Verdict v = detector_->analyze(map);
    if (static_cast<SimTime>(v.analysis_time.count()) > interval_length_) {
      ++overruns_;
    }
    if (v.anomalous) {
      Alarm alarm{.interval_index = v.interval_index,
                  .log10_density = v.log10_density};
      alarms_.push_back(alarm);
      if (alarm_handler_) alarm_handler_(alarm);
    }
    verdicts_.push_back(v);
  });
}

void SecureCoreMonitor::set_alarm_handler(
    std::function<void(const Alarm&)> handler) {
  alarm_handler_ = std::move(handler);
}

double SecureCoreMonitor::mean_analysis_time_ns() const {
  MHM_ASSERT(!verdicts_.empty(),
             "SecureCoreMonitor: no intervals analyzed yet");
  double total = 0.0;
  for (const auto& v : verdicts_) {
    total += static_cast<double>(v.analysis_time.count());
  }
  return total / static_cast<double>(verdicts_.size());
}

}  // namespace mhm::pipeline
