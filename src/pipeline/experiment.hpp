#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "core/detector.hpp"
#include "core/heatmap.hpp"
#include "engine/engine.hpp"
#include "sim/system.hpp"

namespace mhm::pipeline {

/// Parameters of the paper's profiling procedure (§5.2): N runs of a fresh
/// system, each `run_duration` long, MHMs concatenated into one set.
struct ProfilingPlan {
  std::size_t runs = 10;                    ///< Paper: 10 sets.
  SimTime run_duration = 3 * kSecond;       ///< Paper: 3 s each.
  std::uint64_t seed_base = 100;            ///< Run i uses seed_base + i.
  /// Skip this many leading intervals of every run (cold-start transient
  /// while first jobs align). 0 reproduces the paper exactly.
  std::size_t warmup_intervals = 0;
};

/// Collect normal-behaviour MHMs per the profiling plan.
HeatMapTrace collect_normal_trace(const sim::SystemConfig& config,
                                  const ProfilingPlan& plan);

/// Outcome of running one (possibly attacked) monitored system.
struct ScenarioRun {
  std::string scenario;                 ///< "normal" or the attack name.
  HeatMapTrace maps;                    ///< Every completed interval.
  std::vector<Verdict> verdicts;        ///< One per interval (if detector).
  std::vector<double> traffic_volumes;  ///< Total accesses per interval.
  std::uint64_t trigger_interval = 0;   ///< First attacked interval index.
  SimTime interval = 0;

  /// Scores in interval order, derived from the verdicts (empty when the
  /// run had no detector).
  std::vector<double> log10_densities() const;

  /// False-positive count among intervals strictly before the trigger,
  /// according to `threshold` (log10).
  std::size_t false_positives_before_trigger(double threshold) const;
  /// Anomalous (detected) count at/after the trigger.
  std::size_t detections_after_trigger(double threshold) const;
  /// Intervals from trigger to the first detection (nullopt = never).
  std::optional<std::uint64_t> detection_latency(double threshold) const;
  std::size_t intervals_before_trigger() const;
  std::size_t intervals_after_trigger() const;
};

/// Run a scenario: simulate `duration`, optionally arming `attack` at
/// `trigger_time`, scoring every interval with `detector` (may be null for
/// collection-only runs).
ScenarioRun run_scenario(const sim::SystemConfig& config,
                         attacks::AttackScenario* attack,
                         SimTime trigger_time, SimTime duration,
                         const AnomalyDetector* detector,
                         std::uint64_t seed);

/// One entry of a scenario fan-out batch.
struct ScenarioSpec {
  /// Name for attacks::make_scenario(); "" or "normal" runs unattacked.
  std::string attack;
  SimTime trigger_time = 0;
  SimTime duration = 0;
  std::uint64_t seed = 1;
};

/// Run a batch of scenarios concurrently — one independent seeded
/// sim::System each — returning results in spec order. Equivalent to (and
/// bit-identical with) calling run_scenario() in a loop; the shared
/// `detector` may be scored from several threads at once.
std::vector<ScenarioRun> run_scenarios(const sim::SystemConfig& config,
                                       const std::vector<ScenarioSpec>& specs,
                                       const AnomalyDetector* detector);

/// Everything needed to reproduce the paper's evaluation: a trained
/// detector plus the thresholds and the traces that produced it.
struct TrainedPipeline {
  std::unique_ptr<AnomalyDetector> detector;
  HeatMapTrace training;
  HeatMapTrace validation;
  Threshold theta_05;  ///< θ_{0.5}
  Threshold theta_1;   ///< θ_1

  const AnomalyDetector& det() const { return *detector; }

  /// A serving engine sharing the trained snapshot (not a copy): vend
  /// sessions from it to score streams concurrently, or swap_model() to
  /// roll the deployment forward.
  engine::DetectionEngine make_engine() const {
    return engine::DetectionEngine(detector->snapshot());
  }
};

/// Train the full pipeline the way §5.2 does: profile `plan.runs` normal
/// runs for training, one extra run (different seeds) for threshold
/// calibration.
TrainedPipeline train_pipeline(const sim::SystemConfig& config,
                               const ProfilingPlan& plan,
                               const AnomalyDetector::Options& options);

/// Smaller defaults for unit/integration tests (coarser cells, shorter
/// runs) so the full pipeline stays fast while behaving identically.
sim::SystemConfig fast_test_config(std::uint64_t seed = 1);
ProfilingPlan fast_test_plan();
AnomalyDetector::Options fast_test_detector_options();

}  // namespace mhm::pipeline
