#include "pipeline/amp_monitor.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace mhm::pipeline {

std::size_t AmpMonitor::attach(sim::System& system,
                               const AnomalyDetector& detector,
                               std::string name) {
  const SimTime interval = system.config().monitor.interval;
  if (interval_ == 0) {
    interval_ = interval;
  } else if (interval != interval_) {
    throw ConfigError(
        "AmpMonitor: all instances must share the monitoring interval");
  }
  const std::size_t index = instances_.size();
  instances_.push_back(Instance{&system, &detector,
                                name.empty() ? "os" + std::to_string(index)
                                             : std::move(name),
                                {}});
  system.set_interval_observer([this, index](const HeatMap& map) {
    Instance& inst = instances_[index];
    const Verdict v = inst.detector->analyze(map);
    if (v.anomalous) {
      alarms_.push_back(InstanceAlarm{.instance = index,
                                      .interval_index = v.interval_index,
                                      .log10_density = v.log10_density});
    }
    inst.verdicts.push_back(v);
  });
  return index;
}

void AmpMonitor::run_all(SimTime duration) {
  if (instances_.empty()) {
    throw ConfigError("AmpMonitor: no instances attached");
  }
  for (auto& inst : instances_) inst.system->run_for(duration);
}

const std::vector<Verdict>& AmpMonitor::verdicts(std::size_t instance) const {
  MHM_ASSERT(instance < instances_.size(),
             "AmpMonitor::verdicts: instance out of range");
  return instances_[instance].verdicts;
}

const std::string& AmpMonitor::name(std::size_t instance) const {
  MHM_ASSERT(instance < instances_.size(),
             "AmpMonitor::name: instance out of range");
  return instances_[instance].name;
}

double AmpMonitor::mean_total_analysis_ns_per_interval() const {
  // Sum per interval index across instances, then average over intervals.
  std::map<std::uint64_t, double> per_interval;
  for (const auto& inst : instances_) {
    for (const auto& v : inst.verdicts) {
      per_interval[v.interval_index] +=
          static_cast<double>(v.analysis_time.count());
    }
  }
  if (per_interval.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [idx, ns] : per_interval) total += ns;
  return total / static_cast<double>(per_interval.size());
}

std::size_t AmpMonitor::budget_overruns() const {
  std::map<std::uint64_t, double> per_interval;
  for (const auto& inst : instances_) {
    for (const auto& v : inst.verdicts) {
      per_interval[v.interval_index] +=
          static_cast<double>(v.analysis_time.count());
    }
  }
  std::size_t overruns = 0;
  for (const auto& [idx, ns] : per_interval) {
    overruns += (ns > static_cast<double>(interval_));
  }
  return overruns;
}

}  // namespace mhm::pipeline
