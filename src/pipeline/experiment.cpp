#include "pipeline/experiment.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "engine/sim_source.hpp"
#include "obs/metrics.hpp"
#include "obs/server.hpp"
#include "obs/trace.hpp"

namespace mhm::pipeline {

namespace {

/// Heartbeat policy: MHM_PROGRESS=1 forces it on, MHM_PROGRESS=0 off; when
/// unset it follows whether stderr is a terminal (so ctest logs stay clean
/// while interactive tool runs show progress).
bool progress_heartbeat_enabled() {
  if (const char* env = std::getenv("MHM_PROGRESS")) return env[0] == '1';
  return isatty(fileno(stderr)) != 0;
}

/// Serialized, monotonically rate-limited stderr heartbeat. Parallel
/// run_scenarios workers report through one writer: the line is rendered
/// into a local buffer and emitted with a single fwrite under the same lock
/// that owns the rate state, so concurrent workers can neither interleave
/// partial lines nor double-emit inside one rate window. The final line
/// (done == total) always goes out so the log records completion.
class ProgressWriter {
 public:
  void emit(std::size_t done, std::size_t total, const char* scenario) {
    const std::uint64_t now_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    std::lock_guard<std::mutex> lk(mu_);
    if (done < total && last_emit_ns_ != 0 &&
        now_ns - last_emit_ns_ < kMinGapNs) {
      return;
    }
    last_emit_ns_ = now_ns;
    char line[192];
    const int n = std::snprintf(line, sizeof line,
                                "[mhm] scenarios %zu/%zu (%s done)\n", done,
                                total, scenario);
    if (n > 0) {
      std::fwrite(line, 1, std::min(static_cast<std::size_t>(n), sizeof line),
                  stderr);
    }
  }

 private:
  static constexpr std::uint64_t kMinGapNs = 100'000'000;  // 10 lines/s cap.
  std::mutex mu_;
  std::uint64_t last_emit_ns_ = 0;
};

ProgressWriter& progress_writer() {
  static ProgressWriter w;
  return w;
}

struct PipelineMetrics {
  obs::Counter& scenarios_run = obs::Registry::instance().counter(
      "pipeline.scenarios_run", "scenario simulations completed (lifetime)");
  obs::Gauge& scenarios_completed = obs::Registry::instance().gauge(
      "pipeline.scenarios_completed",
      "scenarios finished in the current run_scenarios batch");
  obs::Histogram& scenario_min_density = obs::Registry::instance().histogram(
      "pipeline.scenario_min_log10_density",
      {-100.0, -50.0, -30.0, -20.0, -15.0, -10.0, -5.0, 0.0},
      "lowest log10 density scored in each completed scenario");
};

PipelineMetrics& pipeline_metrics() {
  static PipelineMetrics m;
  return m;
}

}  // namespace

HeatMapTrace collect_normal_trace(const sim::SystemConfig& config,
                                  const ProfilingPlan& plan) {
  OBS_SPAN("pipeline.collect_normal_trace");
  // Each profiling run is an independent seeded system; simulate them
  // concurrently (grain 1 = one run per chunk) and concatenate in seed
  // order, which reproduces the serial trace exactly.
  std::vector<HeatMapTrace> per_run(plan.runs);
  parallel_for(plan.runs, 1, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t run = r0; run < r1; ++run) {
      sim::SystemConfig cfg = config;
      cfg.seed = plan.seed_base + run;
      sim::System system(cfg);
      // Pull the run's maps through the engine-layer source (chunked
      // stepping is bit-identical to one long run_for) and drop the
      // cold-start transient as each map arrives.
      engine::SimIntervalSource source(system, plan.run_duration);
      std::size_t seen = 0;
      while (auto item = source.next()) {
        if (seen++ < plan.warmup_intervals) continue;
        per_run[run].push_back(std::move(item->map));
      }
    }
  });
  std::size_t total = 0;
  for (const auto& t : per_run) total += t.size();
  HeatMapTrace all;
  all.reserve(total);
  for (auto& t : per_run) {
    all.insert(all.end(), std::make_move_iterator(t.begin()),
               std::make_move_iterator(t.end()));
  }
  return all;
}

std::size_t ScenarioRun::intervals_before_trigger() const {
  std::size_t n = 0;
  for (const auto& m : maps) n += (m.interval_index < trigger_interval);
  return n;
}

std::size_t ScenarioRun::intervals_after_trigger() const {
  return maps.size() - intervals_before_trigger();
}

std::vector<double> ScenarioRun::log10_densities() const {
  std::vector<double> scores;
  scores.reserve(verdicts.size());
  for (const auto& v : verdicts) scores.push_back(v.log10_density);
  return scores;
}

std::size_t ScenarioRun::false_positives_before_trigger(
    double threshold) const {
  std::size_t n = 0;
  for (const auto& v : verdicts) {
    if (v.interval_index < trigger_interval && v.log10_density < threshold) {
      ++n;
    }
  }
  return n;
}

std::size_t ScenarioRun::detections_after_trigger(double threshold) const {
  std::size_t n = 0;
  for (const auto& v : verdicts) {
    if (v.interval_index >= trigger_interval && v.log10_density < threshold) {
      ++n;
    }
  }
  return n;
}

std::optional<std::uint64_t> ScenarioRun::detection_latency(
    double threshold) const {
  for (const auto& v : verdicts) {
    if (v.interval_index >= trigger_interval && v.log10_density < threshold) {
      return v.interval_index - trigger_interval;
    }
  }
  return std::nullopt;
}

ScenarioRun run_scenario(const sim::SystemConfig& config,
                         attacks::AttackScenario* attack,
                         SimTime trigger_time, SimTime duration,
                         const AnomalyDetector* detector,
                         std::uint64_t seed) {
  sim::SystemConfig cfg = config;
  cfg.seed = seed;
  sim::System system(cfg);

  ScenarioRun result;
  result.scenario = attack != nullptr ? attack->name() : "normal";
  result.interval = cfg.monitor.interval;
  result.trigger_interval =
      attack != nullptr
          ? attacks::AttackScenario::trigger_interval(trigger_time,
                                                      cfg.monitor.interval)
          : std::numeric_limits<std::uint64_t>::max();

  if (attack != nullptr) attack->arm(system, trigger_time);

  // Secure-core loop, serving-shaped: pull each completed interval from the
  // engine-layer source and score it as the Memometer finishes it. The
  // detector façade journals and reports health exactly as a live session
  // would; the simulation itself never sees the verdicts, so pulling is
  // bit-identical to the old push-style observer.
  engine::SimIntervalSource source(system, duration);
  while (auto item = source.next()) {
    result.traffic_volumes.push_back(
        static_cast<double>(item->map.total_accesses()));
    if (detector != nullptr) {
      result.verdicts.push_back(detector->analyze(item->map));
    }
  }
  result.maps = system.take_trace();
  return result;
}

std::vector<ScenarioRun> run_scenarios(const sim::SystemConfig& config,
                                       const std::vector<ScenarioSpec>& specs,
                                       const AnomalyDetector* detector) {
  // Scenario fan-out: every spec simulates its own seeded system, so runs
  // are independent and the batch result equals calling run_scenario() in a
  // loop. Each chunk scores through its own detector copy — copies share
  // the model snapshot and the observer (one aggregated journal / health
  // stream) but own their scoring scratch, so chunks never share mutable
  // scoring state.
  std::vector<ScenarioRun> results(specs.size());
  // Long-running entry point: expose the process over MHM_OBS_PORT (no-op
  // when unset or already serving) so any batch is scrapeable mid-flight.
  obs::MonitorServer::ensure_env_server(
      detector != nullptr ? detector->journal_ptr() : nullptr,
      detector != nullptr ? detector->model_health() : nullptr);
  PipelineMetrics& metrics = pipeline_metrics();
  metrics.scenarios_completed.set(0.0);
  const bool heartbeat = progress_heartbeat_enabled();
  std::atomic<std::size_t> completed{0};
  parallel_for(specs.size(), 1, [&](std::size_t s0, std::size_t s1) {
    std::optional<AnomalyDetector> local;
    if (detector != nullptr) local.emplace(*detector);
    const AnomalyDetector* chunk_detector = local ? &*local : nullptr;
    for (std::size_t s = s0; s < s1; ++s) {
      const ScenarioSpec& spec = specs[s];
      std::unique_ptr<attacks::AttackScenario> attack;
      if (!spec.attack.empty() && spec.attack != "normal") {
        attack = attacks::make_scenario(spec.attack);
      }
      results[s] = run_scenario(config, attack.get(), spec.trigger_time,
                                spec.duration, chunk_detector, spec.seed);

      const std::size_t done = completed.fetch_add(1) + 1;
      metrics.scenarios_run.add();
      metrics.scenarios_completed.set(static_cast<double>(done));
      if (!results[s].verdicts.empty()) {
        double min_density = results[s].verdicts.front().log10_density;
        for (const auto& v : results[s].verdicts) {
          min_density = std::min(min_density, v.log10_density);
        }
        metrics.scenario_min_density.observe(min_density);
      }
      if (heartbeat) {
        progress_writer().emit(done, specs.size(),
                               results[s].scenario.c_str());
      }
    }
  });
  return results;
}

TrainedPipeline train_pipeline(const sim::SystemConfig& config,
                               const ProfilingPlan& plan,
                               const AnomalyDetector::Options& options) {
  OBS_SPAN("pipeline.train");
  obs::MonitorServer::ensure_env_server();
  TrainedPipeline out;
  {
    OBS_SPAN("pipeline.train.profile_training");
    out.training = collect_normal_trace(config, plan);
  }

  // Separate normal runs (disjoint seeds) for threshold calibration.
  ProfilingPlan validation_plan = plan;
  validation_plan.runs = std::max<std::size_t>(1, plan.runs / 5);
  validation_plan.seed_base = plan.seed_base + plan.runs + 1000;
  {
    OBS_SPAN("pipeline.train.profile_validation");
    out.validation = collect_normal_trace(config, validation_plan);
  }

  OBS_SPAN("pipeline.train.fit_detector");
  out.detector = std::make_unique<AnomalyDetector>(
      AnomalyDetector::train(out.training, out.validation, options));
  out.theta_05 = out.detector->thresholds().theta_05();
  out.theta_1 = out.detector->thresholds().theta_1();
  // A server started from MHM_OBS_PORT above now also answers /model and
  // /journal for the freshly trained detector.
  obs::MonitorServer::ensure_env_server(out.detector->journal_ptr(),
                                        out.detector->model_health());
  return out;
}

sim::SystemConfig fast_test_config(std::uint64_t seed) {
  sim::SystemConfig cfg = sim::SystemConfig::paper_default(seed);
  cfg.monitor.granularity = 8 * 1024;  // L = 368 cells
  return cfg;
}

ProfilingPlan fast_test_plan() {
  ProfilingPlan plan;
  plan.runs = 3;
  plan.run_duration = 1 * kSecond;
  plan.seed_base = 100;
  return plan;
}

AnomalyDetector::Options fast_test_detector_options() {
  AnomalyDetector::Options opts;
  opts.pca.components = 8;
  opts.gmm.components = 5;
  opts.gmm.restarts = 3;
  opts.gmm.max_iterations = 100;
  return opts;
}

}  // namespace mhm::pipeline
