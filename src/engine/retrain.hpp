#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/gmm.hpp"
#include "core/model_io.hpp"
#include "core/pca.hpp"
#include "engine/engine.hpp"
#include "engine/normal_window.hpp"

namespace mhm::engine {

/// Continuous-training policy state (exported via /model and the
/// `engine.retrain_state` gauge; numeric values are the gauge encoding).
enum class RetrainState {
  kOk = 0,          ///< Healthy; watching for sustained drift.
  kDrifting = 1,    ///< Drift seen, sustain counter accumulating.
  kTraining = 2,    ///< Candidate fit (top-k PCA + GMM EM) in progress.
  kValidating = 3,  ///< Candidate built; validation gates running.
  kCooldown = 4,    ///< Post-publish refractory window.
};
const char* to_string(RetrainState state);

/// Outcome of one retrain attempt (manual or drift-triggered).
struct RetrainReport {
  bool accepted = false;
  /// "published" or the rejection gate that fired
  /// ("window_too_small" | "train_failed" | "alarm_rate" | "quantile_shift").
  std::string reason;
  std::uint64_t version = 0;        ///< Published registry/model version.
  std::uint64_t trigger_interval = 0;
  std::size_t window_rows = 0;      ///< Clean rows snapshotted for this run.
  std::size_t train_rows = 0;
  std::size_t calibration_rows = 0;
  std::size_t holdout_rows = 0;
  double holdout_alarm_rate = 0.0;
  double wilson_low = 0.0;          ///< Wilson bound the rate was judged in.
  double wilson_high = 1.0;
  /// Quantile the alarm-rate gate judged against: the configured p floored
  /// at 1/(calibration_rows + 1), the finest quantile that slice resolves.
  double expected_p = 0.0;
  double quantile_shift = 0.0;      ///< |median(holdout) − median(calib)|.
  double train_seconds = 0.0;       ///< Candidate fit + validation, wall.
};

/// Drift-triggered retrain → validate → hot-swap loop.
///
/// The missing link between PR 4's model-health monitor and the engine's
/// swap_model(): a `RetrainPolicy` state machine (OK → DRIFTING-sustained →
/// TRAINING → VALIDATING → publish) that, when the per-session monitor
/// reports sustained drift, trains a candidate model on the session's
/// NormalWindow of clean intervals, validates it, persists it through the
/// ModelRegistry and publishes it with swap_model — sessions pick the new
/// version up at their next interval boundary, so no map is ever dropped.
///
/// Candidate training uses the fast top-k PCA path (Eigenmemory::fit_topk)
/// — the whole point of making retraining continuous is that it no longer
/// costs a 20 s eigensolve. The window snapshot is split chronologically:
/// the oldest rows train, the middle calibrates θ_p, and the newest slice
/// is scored as a held-out stream. Two gates must pass before publish:
///  * the held-out alarm rate must sit inside the Wilson interval of the
///    configured quantile p at `options.wilson_z` — a candidate that
///    alarms wildly (or never) on clean traffic is rejected;
///  * the held-out median score must sit within `quantile_margin` log10
///    units of the calibration median — a score-scale shift between the
///    two newest slices means the window itself straddles a behaviour
///    change, and the candidate would be born stale.
///
/// Threading: note() is called from the scoring thread (cheap: counter
/// updates under a mutex); the train/validate/publish pipeline runs on one
/// background worker (`options.background`) or inline (tests, the manual
/// `mhm_tool retrain` path). All numeric work goes through the
/// deterministic parallel_for runtime, so a retrain produces the same
/// candidate at any MHM_THREADS.
class RetrainManager {
 public:
  struct Options {
    /// Consecutive non-OK health verdicts required before a retrain fires
    /// (the "sustained" in DRIFTING-sustained).
    std::uint64_t sustain = 32;
    /// Intervals ignored after a publish before drift may trigger again.
    std::uint64_t cooldown = 256;
    /// Minimum clean rows in the window snapshot; fewer rejects the run.
    std::size_t min_window = 96;
    /// Chronological split fractions: the remainder after calibration +
    /// holdout trains. Calibration seeds θ_p; holdout is the judged slice.
    double calibration_fraction = 0.25;
    double holdout_fraction = 0.25;
    /// Eigenmemories for the candidate (0 = inherit the running model's).
    std::size_t components = 0;
    /// GMM components for the candidate (0 = inherit the running model's).
    std::size_t gmm_components = 0;
    /// EM restarts for the candidate (fewer than offline training: the
    /// retrain loop values latency; the validation gates catch bad fits).
    std::size_t gmm_restarts = 4;
    /// Wilson interval width (σ) for the alarm-rate gate.
    double wilson_z = 3.0;
    /// Allowed |median(holdout) − median(calibration)| in log10 units.
    double quantile_margin = 2.0;
    /// Fast top-k PCA knobs (components is overridden per run).
    Eigenmemory::TopkOptions topk;
    /// Run the pipeline on a background worker thread. False = note()
    /// runs it inline when the sustain threshold trips (deterministic
    /// single-thread tests; the manual tool path).
    bool background = true;
  };

  /// `window` supplies the clean rows (normally the session's
  /// clean_window()). `registry` may be null — candidates are then
  /// published with version = current + 1 but not persisted.
  RetrainManager(DetectionEngine engine, std::shared_ptr<NormalWindow> window,
                 std::shared_ptr<ModelRegistry> registry,
                 const Options& options);
  ~RetrainManager();

  RetrainManager(const RetrainManager&) = delete;
  RetrainManager& operator=(const RetrainManager&) = delete;

  /// Feed one interval's model-health verdict (call after analyze()).
  /// Drives the policy state machine; when the sustain threshold trips,
  /// schedules (background) or runs (inline) one retrain attempt.
  void note(std::uint64_t interval_index, obs::ModelHealthStatus status);

  /// Manual trigger: run train → validate → publish synchronously on the
  /// calling thread, regardless of policy state. Returns the report.
  RetrainReport retrain_now(std::uint64_t trigger_interval = 0);

  /// Block until no retrain attempt is in flight (test/shutdown barrier).
  void drain();

  RetrainState state() const;
  RetrainReport last_report() const;
  std::uint64_t published() const;
  std::uint64_t rejected_count() const;

  /// One-object JSON summary for the /model surface: state, counters,
  /// window occupancy and the last report.
  std::string json() const;

  /// Invoked (on the training thread) after every publish — the serve loop
  /// uses it to re-attach dashboards/server providers to the rebound
  /// session monitor, annotate journals, and note incidents.
  void set_publish_hook(std::function<void(const RetrainReport&)> hook);

 private:
  void worker_loop();
  RetrainReport run_attempt(std::uint64_t trigger_interval);
  void set_state(RetrainState state);

  DetectionEngine engine_;
  std::shared_ptr<NormalWindow> window_;
  std::shared_ptr<ModelRegistry> registry_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  RetrainState state_ = RetrainState::kOk;
  std::uint64_t streak_ = 0;          ///< Consecutive non-OK notes.
  std::uint64_t cooldown_left_ = 0;   ///< Intervals until drift re-arms.
  bool trigger_pending_ = false;
  std::uint64_t trigger_interval_ = 0;
  bool attempt_running_ = false;
  bool stop_ = false;
  RetrainReport last_;
  std::uint64_t published_ = 0;
  std::uint64_t rejected_ = 0;
  std::function<void(const RetrainReport&)> publish_hook_;
  std::thread worker_;  ///< Joined in the destructor (background mode).
};

}  // namespace mhm::engine
