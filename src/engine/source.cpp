#include "engine/source.hpp"

namespace mhm::engine {

std::optional<SourceItem> VectorSource::next() {
  if (pos_ >= maps_.size()) return std::nullopt;
  const HeatMap& map = maps_[pos_++];
  return SourceItem{.interval_index = map.interval_index, .map = map};
}

TraceReplaySource TraceReplaySource::from_file(const std::string& path) {
  return TraceReplaySource(load_trace_file(path));
}

std::optional<SourceItem> TraceReplaySource::next() {
  if (pos_ >= trace_.maps.size()) return std::nullopt;
  const HeatMap& map = trace_.maps[pos_++];
  return SourceItem{.interval_index = map.interval_index, .map = map};
}

}  // namespace mhm::engine
