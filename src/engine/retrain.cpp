#include "engine/retrain.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace mhm::engine {

namespace {

struct RetrainMetrics {
  obs::Counter& retrains = obs::Registry::instance().counter(
      "engine.retrains", "candidate models published by the retrain loop");
  obs::Counter& rejected = obs::Registry::instance().counter(
      "engine.retrain_rejected",
      "retrain attempts rejected by a validation gate");
  obs::Gauge& state = obs::Registry::instance().gauge(
      "engine.retrain_state",
      "retrain policy state (0 OK, 1 DRIFTING, 2 TRAINING, 3 VALIDATING, "
      "4 COOLDOWN)");
};

RetrainMetrics& retrain_metrics() {
  static RetrainMetrics m;
  return m;
}

std::string jnum(double v) {
  char buf[40];
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "\"%s\"",
                  std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf"));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const char* to_string(RetrainState state) {
  switch (state) {
    case RetrainState::kOk: return "OK";
    case RetrainState::kDrifting: return "DRIFTING";
    case RetrainState::kTraining: return "TRAINING";
    case RetrainState::kValidating: return "VALIDATING";
    case RetrainState::kCooldown: return "COOLDOWN";
  }
  return "?";
}

RetrainManager::RetrainManager(DetectionEngine engine,
                               std::shared_ptr<NormalWindow> window,
                               std::shared_ptr<ModelRegistry> registry,
                               const Options& options)
    : engine_(std::move(engine)),
      window_(std::move(window)),
      registry_(std::move(registry)),
      options_(options) {
  if (window_ == nullptr) {
    throw ConfigError("RetrainManager: null NormalWindow");
  }
  if (options_.calibration_fraction <= 0.0 ||
      options_.holdout_fraction <= 0.0 ||
      options_.calibration_fraction + options_.holdout_fraction >= 0.9) {
    throw ConfigError(
        "RetrainManager: calibration/holdout fractions must be positive and "
        "leave most of the window for training");
  }
  retrain_metrics().state.set(0.0);
  if (options_.background) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

RetrainManager::~RetrainManager() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void RetrainManager::set_publish_hook(
    std::function<void(const RetrainReport&)> hook) {
  std::lock_guard<std::mutex> lk(mu_);
  publish_hook_ = std::move(hook);
}

void RetrainManager::set_state(RetrainState state) {
  state_ = state;
  retrain_metrics().state.set(static_cast<double>(state));
}

void RetrainManager::note(std::uint64_t interval_index,
                          obs::ModelHealthStatus status) {
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cooldown_left_ > 0) {
      --cooldown_left_;
      if (cooldown_left_ == 0 &&
          (state_ == RetrainState::kCooldown)) {
        set_state(RetrainState::kOk);
      }
      return;
    }
    if (state_ == RetrainState::kTraining ||
        state_ == RetrainState::kValidating || attempt_running_ ||
        trigger_pending_) {
      return;  // One attempt at a time; notes during a run are dropped.
    }
    if (status == obs::ModelHealthStatus::kOk) {
      streak_ = 0;
      if (state_ == RetrainState::kDrifting) set_state(RetrainState::kOk);
      return;
    }
    ++streak_;
    if (state_ == RetrainState::kOk) set_state(RetrainState::kDrifting);
    if (streak_ < options_.sustain) return;
    // Sustained drift: arm one attempt.
    streak_ = 0;
    trigger_interval_ = interval_index;
    if (options_.background) {
      trigger_pending_ = true;
    } else {
      run_inline = true;
    }
  }
  if (run_inline) {
    run_attempt(interval_index);
  } else {
    cv_.notify_all();
  }
}

RetrainReport RetrainManager::retrain_now(std::uint64_t trigger_interval) {
  return run_attempt(trigger_interval);
}

void RetrainManager::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return !trigger_pending_ && !attempt_running_; });
}

void RetrainManager::worker_loop() {
  for (;;) {
    std::uint64_t trigger;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || trigger_pending_; });
      if (stop_) return;
      trigger_pending_ = false;
      trigger = trigger_interval_;
    }
    run_attempt(trigger);
  }
}

RetrainReport RetrainManager::run_attempt(std::uint64_t trigger_interval) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    attempt_running_ = true;
    set_state(RetrainState::kTraining);
  }
  const auto t0 = std::chrono::steady_clock::now();

  RetrainReport report;
  report.trigger_interval = trigger_interval;

  // Snapshot the running model's shape once: the candidate inherits its
  // subspace size, mixture size and quantile p unless overridden.
  const auto current = engine_.current_model();
  const std::size_t k = options_.components != 0
                            ? options_.components
                            : current->pca.components();
  const std::size_t j = options_.gmm_components != 0
                            ? options_.gmm_components
                            : current->gmm.component_count();
  const double p = current->primary.p;
  report.expected_p = p;

  // One consistent snapshot of the reservoir; the session keeps appending
  // to the live window while we train on the copy.
  const auto rows = window_->last();
  report.window_rows = rows.size();

  const auto reject = [&](const char* reason) {
    report.accepted = false;
    report.reason = reason;
    report.train_seconds = seconds_since(t0);
    retrain_metrics().rejected.add();
    std::lock_guard<std::mutex> lk(mu_);
    ++rejected_;
    last_ = report;
    attempt_running_ = false;
    streak_ = 0;
    set_state(RetrainState::kOk);
    cv_.notify_all();
    return report;
  };

  const std::size_t n = rows.size();
  const auto holdout_n = static_cast<std::size_t>(
      std::floor(static_cast<double>(n) * options_.holdout_fraction));
  const auto calib_n = static_cast<std::size_t>(
      std::floor(static_cast<double>(n) * options_.calibration_fraction));
  const std::size_t train_n = n - holdout_n - calib_n;
  if (n < options_.min_window || train_n <= k || calib_n < 8 ||
      holdout_n < 8) {
    return reject("window_too_small");
  }
  report.train_rows = train_n;
  report.calibration_rows = calib_n;
  report.holdout_rows = holdout_n;

  // Chronological split, oldest → newest: train on the oldest rows,
  // calibrate θ_p on the middle, judge the candidate on the newest slice —
  // the slice closest to what it will score next.
  const std::vector<std::vector<double>> train(
      rows.begin(), rows.begin() + static_cast<std::ptrdiff_t>(train_n));
  const std::vector<std::vector<double>> calib(
      rows.begin() + static_cast<std::ptrdiff_t>(train_n),
      rows.begin() + static_cast<std::ptrdiff_t>(train_n + calib_n));
  const std::vector<std::vector<double>> holdout(
      rows.begin() + static_cast<std::ptrdiff_t>(train_n + calib_n),
      rows.end());

  // --- TRAINING: fast top-k PCA + GMM EM ---
  Eigenmemory pca;
  Gmm gmm;
  try {
    Eigenmemory::TopkOptions topk = options_.topk;
    topk.components = std::min(k, std::min(train_n, train.front().size()));
    pca = Eigenmemory::fit_topk(train, topk);
    const auto reduced = pca.project_all(train);
    Gmm::Options go;
    go.components = std::min(j, std::max<std::size_t>(1, train_n / 4));
    go.restarts = options_.gmm_restarts;
    gmm = Gmm::fit(reduced, go);
  } catch (const Error&) {
    return reject("train_failed");
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    set_state(RetrainState::kValidating);
  }

  // --- VALIDATING ---
  // θ_p from the calibration slice (the offline pipeline's validation-set
  // role), then score the held-out slice as a stream.
  const auto reduced_calib = pca.project_all(calib);
  std::vector<double> ln_calib;
  gmm.total_log_likelihood(reduced_calib, &ln_calib);
  std::vector<double> calib_scores(ln_calib.size());
  for (std::size_t i = 0; i < ln_calib.size(); ++i) {
    calib_scores[i] = ln_calib[i] / kLn10;
  }
  ThresholdCalibrator calibrator(calib_scores);
  const Threshold theta = calibrator.at(p);

  const auto reduced_hold = pca.project_all(holdout);
  std::vector<double> ln_hold;
  gmm.total_log_likelihood(reduced_hold, &ln_hold);
  std::vector<double> hold_scores(ln_hold.size());
  std::uint64_t hold_alarms = 0;
  for (std::size_t i = 0; i < ln_hold.size(); ++i) {
    hold_scores[i] = ln_hold[i] / kLn10;
    if (hold_scores[i] < theta.log10_value) ++hold_alarms;
  }
  report.holdout_alarm_rate =
      static_cast<double>(hold_alarms) / static_cast<double>(holdout_n);

  // Gate 1: held-out alarm rate within the Wilson interval of the
  // *achievable* quantile — the rate an honestly-calibrated candidate could
  // plausibly produce on clean traffic at this sample size. An empirical
  // quantile can't resolve below 1/(n+1): with p under that, θ_p sits at
  // the calibration minimum and a fresh clean sample lands below it with
  // probability ≈ 1/(n+1), so judging against the raw p would reject every
  // honest candidate whenever the calibration slice is small.
  const double p_eff =
      std::max(p, 1.0 / (static_cast<double>(calib_n) + 1.0));
  report.expected_p = p_eff;
  const obs::WilsonInterval wilson =
      obs::wilson_interval(hold_alarms, holdout_n, options_.wilson_z);
  report.wilson_low = wilson.low;
  report.wilson_high = wilson.high;
  if (p_eff < wilson.low || p_eff > wilson.high) {
    return reject("alarm_rate");
  }

  // Gate 2: score-scale sanity — the held-out median must sit near the
  // calibration median; a large shift means the window straddles a
  // behaviour change and the candidate is already stale.
  const double q50_calib = quantile(calib_scores, 0.5);
  const double q50_hold = quantile(hold_scores, 0.5);
  report.quantile_shift = std::abs(q50_hold - q50_calib);
  if (!std::isfinite(report.quantile_shift) ||
      report.quantile_shift > options_.quantile_margin) {
    return reject("quantile_shift");
  }

  // --- PUBLISH ---
  // Per-cell baseline of the candidate's training rows (journal
  // explanations keep working across the swap).
  const std::size_t l = train.front().size();
  auto baseline = std::make_shared<CellBaseline>();
  baseline->mean.assign(l, 0.0);
  baseline->stddev.assign(l, 0.0);
  for (const auto& x : train) {
    for (std::size_t i = 0; i < l; ++i) baseline->mean[i] += x[i];
  }
  const double inv_n = 1.0 / static_cast<double>(train_n);
  for (double& m : baseline->mean) m *= inv_n;
  for (const auto& x : train) {
    for (std::size_t i = 0; i < l; ++i) {
      const double d = x[i] - baseline->mean[i];
      baseline->stddev[i] += d * d;
    }
  }
  for (double& s : baseline->stddev) s = std::sqrt(s * inv_n);

  std::uint64_t version = 0;
  if (registry_ != nullptr) {
    DetectorModel artifact;
    artifact.eigenmemory = pca;
    artifact.gmm = gmm;
    artifact.validation_scores = calib_scores;
    artifact.primary_p = p;
    version = registry_->save(artifact);
  } else {
    version = current->version + 1;
  }

  auto snapshot =
      ModelSnapshot::assemble(std::move(pca), std::move(gmm),
                              std::move(calibrator), p, std::move(baseline),
                              version);
  try {
    engine_.swap_model(std::move(snapshot));
  } catch (const Error&) {
    return reject("swap_failed");
  }
  // Post-publish behaviour trains the *next* candidate: drop pre-swap rows.
  window_->clear();

  report.accepted = true;
  report.reason = "published";
  report.version = version;
  report.train_seconds = seconds_since(t0);
  retrain_metrics().retrains.add();

  std::function<void(const RetrainReport&)> hook;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++published_;
    last_ = report;
    streak_ = 0;
    cooldown_left_ = options_.cooldown;
    set_state(options_.cooldown > 0 ? RetrainState::kCooldown
                                    : RetrainState::kOk);
    hook = publish_hook_;
  }
  // The hook runs outside the lock (it may call back into json()/state())
  // but before the attempt is marked finished, so drain() covers it — a
  // caller that drains is guaranteed the dashboards/annotations the hook
  // wires up are in place.
  if (hook) hook(report);
  {
    std::lock_guard<std::mutex> lk(mu_);
    attempt_running_ = false;
  }
  cv_.notify_all();
  return report;
}

RetrainState RetrainManager::state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_;
}

RetrainReport RetrainManager::last_report() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_;
}

std::uint64_t RetrainManager::published() const {
  std::lock_guard<std::mutex> lk(mu_);
  return published_;
}

std::uint64_t RetrainManager::rejected_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_;
}

std::string RetrainManager::json() const {
  RetrainState state;
  RetrainReport last;
  std::uint64_t published;
  std::uint64_t rejected;
  std::uint64_t cooldown_left;
  std::uint64_t streak;
  {
    std::lock_guard<std::mutex> lk(mu_);
    state = state_;
    last = last_;
    published = published_;
    rejected = rejected_;
    cooldown_left = cooldown_left_;
    streak = streak_;
  }
  std::string os;
  os.reserve(512);
  os += "{\"state\":\"";
  os += to_string(state);
  os += "\",\"published\":" + std::to_string(published);
  os += ",\"rejected\":" + std::to_string(rejected);
  os += ",\"drift_streak\":" + std::to_string(streak);
  os += ",\"sustain\":" + std::to_string(options_.sustain);
  os += ",\"cooldown_remaining\":" + std::to_string(cooldown_left);
  os += ",\"window\":{\"size\":" + std::to_string(window_->size());
  os += ",\"capacity\":" + std::to_string(window_->capacity());
  os += ",\"accepted\":" + std::to_string(window_->accepted());
  os += ",\"rejected\":" + std::to_string(window_->rejected());
  os += "}";
  if (!last.reason.empty()) {
    os += ",\"last\":{\"accepted\":";
    os += last.accepted ? "true" : "false";
    os += ",\"reason\":\"" + last.reason;
    os += "\",\"version\":" + std::to_string(last.version);
    os += ",\"trigger_interval\":" + std::to_string(last.trigger_interval);
    os += ",\"window_rows\":" + std::to_string(last.window_rows);
    os += ",\"train_rows\":" + std::to_string(last.train_rows);
    os += ",\"holdout_rows\":" + std::to_string(last.holdout_rows);
    os += ",\"holdout_alarm_rate\":" + jnum(last.holdout_alarm_rate);
    os += ",\"wilson_low\":" + jnum(last.wilson_low);
    os += ",\"wilson_high\":" + jnum(last.wilson_high);
    os += ",\"expected_p\":" + jnum(last.expected_p);
    os += ",\"quantile_shift\":" + jnum(last.quantile_shift);
    os += ",\"train_seconds\":" + jnum(last.train_seconds);
    os += "}";
  }
  os += "}";
  return os;
}

}  // namespace mhm::engine
