#include "engine/sim_source.hpp"

#include <algorithm>
#include <utility>

namespace mhm::engine {

SimIntervalSource::SimIntervalSource(sim::System& system, SimTime duration)
    : system_(system),
      interval_(system.config().monitor.interval),
      remaining_(duration) {
  system_.set_interval_observer(
      [this](const HeatMap& map) { pending_.push_back(map); });
}

SimIntervalSource::~SimIntervalSource() {
  system_.set_interval_observer(nullptr);
}

std::optional<SourceItem> SimIntervalSource::next() {
  // Advance interval-by-interval until a map lands. A trailing partial
  // interval is still simulated (the run covers the full duration) but
  // completes no map — exactly run_for(duration)'s behaviour.
  while (pending_.empty() && remaining_ > 0) {
    const SimTime step = std::min(interval_, remaining_);
    system_.run_for(step);
    remaining_ -= step;
  }
  if (pending_.empty()) return std::nullopt;
  HeatMap map = std::move(pending_.front());
  pending_.pop_front();
  return SourceItem{.interval_index = map.interval_index,
                    .map = std::move(map)};
}

}  // namespace mhm::engine
