#include "engine/normal_window.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mhm::engine {

NormalWindow::NormalWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw ConfigError("NormalWindow: capacity must be > 0");
  }
  rows_.resize(capacity);
  intervals_.resize(capacity, 0);
}

bool NormalWindow::offer(std::span<const double> raw,
                         std::uint64_t interval_index, bool alarm,
                         obs::ModelHealthStatus status) {
  std::lock_guard<std::mutex> lk(mu_);
  if (alarm || status != obs::ModelHealthStatus::kOk) {
    ++rejected_;
    return false;
  }
  // Slot vectors keep their capacity across wraps: steady state is one
  // memcpy per clean interval, no allocation.
  rows_[next_].assign(raw.begin(), raw.end());
  intervals_[next_] = interval_index;
  next_ = (next_ + 1) % capacity_;
  size_ = std::min(size_ + 1, capacity_);
  ++accepted_;
  return true;
}

std::size_t NormalWindow::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return size_;
}

std::uint64_t NormalWindow::accepted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return accepted_;
}

std::uint64_t NormalWindow::rejected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_;
}

std::vector<std::vector<double>> NormalWindow::last(std::size_t n) const {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t take = n == 0 ? size_ : std::min(n, size_);
  std::vector<std::vector<double>> out;
  out.reserve(take);
  // Oldest of the newest `take`: walk the ring forward from there.
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t slot =
        (next_ + capacity_ - take + i) % capacity_;
    out.push_back(rows_[slot]);
  }
  return out;
}

std::vector<std::uint64_t> NormalWindow::last_intervals(std::size_t n) const {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t take = n == 0 ? size_ : std::min(n, size_);
  std::vector<std::uint64_t> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t slot =
        (next_ + capacity_ - take + i) % capacity_;
    out.push_back(intervals_[slot]);
  }
  return out;
}

void NormalWindow::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  size_ = 0;
  next_ = 0;
}

}  // namespace mhm::engine
