#include "engine/engine.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/model_health.hpp"
#include "obs/prof.hpp"

namespace mhm::engine {

namespace {

struct EngineMetrics {
  obs::Gauge& model_version = obs::Registry::instance().gauge(
      "engine.model_version", "version of the currently published model");
  obs::Counter& model_swaps = obs::Registry::instance().counter(
      "engine.model_swaps", "hot model swaps published by swap_model()");
  obs::Counter& sessions = obs::Registry::instance().counter(
      "engine.sessions_opened", "scoring sessions vended by new_session()");
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m;
  return m;
}

void validate_snapshot(const ModelSnapshot& snapshot) {
  if (snapshot.gmm.dimension() != snapshot.pca.components()) {
    throw ConfigError(
        "DetectionEngine: GMM dimension does not match the eigenmemory "
        "count");
  }
}

}  // namespace

DetectionEngine::DetectionEngine(
    std::shared_ptr<const ModelSnapshot> snapshot)
    : shared_(std::make_shared<detail::EngineShared>()) {
  if (snapshot == nullptr) {
    throw ConfigError("DetectionEngine: null model snapshot");
  }
  validate_snapshot(*snapshot);
  engine_metrics().model_version.set(
      static_cast<double>(snapshot->version));
  shared_->current = std::move(snapshot);
}

void DetectionEngine::swap_model(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  if (snapshot == nullptr) {
    throw ConfigError("DetectionEngine::swap_model: null model snapshot");
  }
  validate_snapshot(*snapshot);
  std::lock_guard<std::mutex> lk(shared_->mu);
  if (snapshot->pca.input_dim() != shared_->current->pca.input_dim()) {
    throw ConfigError(
        "DetectionEngine::swap_model: new model expects a different cell "
        "count (L) than the running one");
  }
  EngineMetrics& m = engine_metrics();
  m.model_version.set(static_cast<double>(snapshot->version));
  m.model_swaps.add();
  shared_->current = std::move(snapshot);
  // Publish after the pointer is in place: a session observing the new
  // epoch is guaranteed to read the new snapshot under the mutex.
  shared_->epoch.fetch_add(1, std::memory_order_release);
}

std::shared_ptr<const ModelSnapshot> DetectionEngine::current_model() const {
  std::lock_guard<std::mutex> lk(shared_->mu);
  return shared_->current;
}

Session DetectionEngine::new_session(const SessionOptions& options) const {
  engine_metrics().sessions.add();
  return Session(shared_, options);
}

Session::Session(std::shared_ptr<detail::EngineShared> shared,
                 const SessionOptions& options)
    : shared_(std::move(shared)) {
  std::lock_guard<std::mutex> lk(shared_->mu);
  snap_ = shared_->current;
  epoch_ = shared_->epoch.load(std::memory_order_acquire);
  StreamObserver::Options obs_options;
  obs_options.journal_capacity = options.journal_capacity;
  obs_options.phases = options.phases;
  obs_options.top_cells = options.top_cells;
  obs_options.health_history = options.health_history;
  obs_options.health_row_stride = options.health_row_stride;
  obs_options.health_max_events = options.health_max_events;
  obs_options.attach_health = options.attach_health;
  obs_options.history_raw = options.history_raw;
  obs_options.history_bins = options.history_bins;
  obs_options.history_fold = options.history_fold;
  obs_options.history_tiers = options.history_tiers;
  observer_ = std::make_unique<StreamObserver>(*snap_, obs_options);
  if (options.clean_window_capacity > 0) {
    window_ = std::make_shared<NormalWindow>(options.clean_window_capacity);
  }
}

void Session::refresh_model(std::uint64_t interval_index) {
  std::shared_ptr<const ModelSnapshot> fresh;
  std::uint64_t fresh_epoch;
  {
    std::lock_guard<std::mutex> lk(shared_->mu);
    fresh = shared_->current;
    fresh_epoch = shared_->epoch.load(std::memory_order_acquire);
  }
  transitions_.push_back(ModelTransition{.interval_index = interval_index,
                                         .from_version = snap_->version,
                                         .to_version = fresh->version});
  // The health baseline belongs to the model being scored with: rebind
  // builds a fresh monitor from the new snapshot's validation scores.
  observer_->rebind(*fresh);
  snap_ = std::move(fresh);
  epoch_ = fresh_epoch;
}

Verdict Session::analyze(std::span<const double> raw,
                         std::uint64_t interval_index) {
  // Interval-boundary pickup: one relaxed load per interval; the swap is
  // adopted before this map is scored, so no map is ever dropped or scored
  // against a retired snapshot after the boundary.
  PROF_ZONE(kAnalyze);
  if (shared_->epoch.load(std::memory_order_acquire) != epoch_) {
    refresh_model(interval_index);
  }
  const Verdict v = score_snapshot(*snap_, raw, interval_index, scratch_);
  {
    PROF_ZONE(kScoreObserve);
    const obs::ModelHealthStatus status =
        observer_->record(*snap_, v, raw, scratch_.reduced);
    if (window_ != nullptr) {
      window_->offer(raw, interval_index, v.anomalous, status);
    }
    if (status_hook_) status_hook_(interval_index, status);
  }
  return v;
}

Verdict Session::analyze(const HeatMap& map) {
  return analyze(map.as_vector(), map.interval_index);
}

std::vector<Verdict> Session::run(IntervalSource& source) {
  std::vector<Verdict> verdicts;
  while (auto item = source.next()) {
    verdicts.push_back(analyze(item->map));
  }
  return verdicts;
}

void DetectionEngine::analyze_shard(std::span<Session* const> sessions,
                                    std::span<const std::span<const double>> raws,
                                    std::span<const std::uint64_t> interval_indices,
                                    ShardWorkspace& workspace,
                                    std::vector<Verdict>* verdicts) const {
  MHM_ASSERT(sessions.size() == raws.size() &&
                 sessions.size() == interval_indices.size(),
             "analyze_shard: sessions/raws/intervals must be parallel");
  if (sessions.empty()) return;

  // One analyze umbrella per shard call; the serial-fallback sessions open
  // nested analyze zones that the profiler records only at this outermost
  // level.
  PROF_ZONE(kAnalyze);

  // Gather: interval-boundary model pickup per session, in session order —
  // exactly the check each session's own analyze() would have run first.
  const ModelSnapshot* model;
  bool homogeneous = true;
  {
    PROF_ZONE(kShardGather);
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      Session& s = *sessions[i];
      if (s.shared_->epoch.load(std::memory_order_acquire) != s.epoch_) {
        s.refresh_model(interval_indices[i]);
      }
    }
    model = sessions.front()->snap_.get();
    for (Session* s : sessions) homogeneous &= (s->snap_.get() == model);
  }
  if (!homogeneous) {
    // A swap_model() landed between two pickups of the gather loop, so the
    // shard spans two model versions. Score serially per session — the
    // serial path is bit-identical, just unbatched.
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      const Verdict v = sessions[i]->analyze(raws[i], interval_indices[i]);
      if (verdicts != nullptr) verdicts->push_back(v);
    }
    return;
  }

  {
    PROF_ZONE(kShardGather);
    workspace.batch.clear(model->pca.input_dim());
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      workspace.batch.push(raws[i], interval_indices[i]);
    }
  }
  score_snapshot_batch(*model, workspace.batch, workspace.scratch);

  // Scatter in session order: each verdict flows through its own session's
  // observer exactly as its serial analyze() would have recorded it.
  PROF_ZONE(kShardScatter);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    Session& s = *sessions[i];
    const Verdict v = workspace.batch.verdict(i);
    workspace.batch.extract_reduced(i, s.scratch_.reduced);
    const obs::ModelHealthStatus status =
        s.observer_->record(*s.snap_, v, raws[i], s.scratch_.reduced);
    if (s.window_ != nullptr) {
      s.window_->offer(raws[i], interval_indices[i], v.anomalous, status);
    }
    if (s.status_hook_) s.status_hook_(interval_indices[i], status);
    if (verdicts != nullptr) verdicts->push_back(v);
  }
}

std::size_t DetectionEngine::pump_shard(std::span<Session* const> sessions,
                                        std::span<IntervalSource* const> sources,
                                        ShardWorkspace& workspace,
                                        std::vector<Verdict>* verdicts) const {
  MHM_ASSERT(sessions.size() == sources.size(),
             "pump_shard: sessions/sources must be parallel");
  if (workspace.raw_rows.size() < sessions.size()) {
    workspace.raw_rows.resize(sessions.size());
  }
  workspace.live_sessions.clear();
  workspace.live_raws.clear();
  workspace.live_intervals.clear();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    auto item = sources[i]->next();
    if (!item.has_value()) continue;
    const std::size_t slot = workspace.live_sessions.size();
    item->map.as_vector_into(workspace.raw_rows[slot]);
    workspace.live_sessions.push_back(sessions[i]);
    workspace.live_raws.push_back(workspace.raw_rows[slot]);
    workspace.live_intervals.push_back(item->map.interval_index);
  }
  if (!workspace.live_sessions.empty()) {
    analyze_shard(workspace.live_sessions, workspace.live_raws,
                  workspace.live_intervals, workspace, verdicts);
  }
  return workspace.live_sessions.size();
}

}  // namespace mhm::engine
