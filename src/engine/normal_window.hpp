#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "obs/model_health.hpp"

namespace mhm::engine {

/// Bounded reservoir of recent *clean* intervals — the training pantry the
/// retrain loop cooks from. An interval enters only when the scoring
/// verdict raised no alarm AND the model-health monitor judged the stream
/// OK at that moment (DRIFTING / MISCALIBRATED intervals are refused, as
/// is everything the detector flagged — the policy never learns from
/// traffic it could not vouch for). The ring holds the newest `capacity`
/// accepted rows; older ones are overwritten in place, so the memory bound
/// is capacity × L doubles regardless of stream length.
///
/// Thread-safe: the scoring session appends while a background retrain
/// thread snapshots — both sides take the same mutex, and `last()` returns
/// copies, never views into the ring.
class NormalWindow {
 public:
  explicit NormalWindow(std::size_t capacity);

  /// Offer one scored interval. Returns true when the row was retained.
  bool offer(std::span<const double> raw, std::uint64_t interval_index,
             bool alarm, obs::ModelHealthStatus status);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Total rows ever retained / refused (monotonic).
  std::uint64_t accepted() const;
  std::uint64_t rejected() const;

  /// Copies of the newest `n` clean rows, oldest first (n = 0 → all held).
  std::vector<std::vector<double>> last(std::size_t n = 0) const;
  /// Interval indices parallel to last(), oldest first.
  std::vector<std::uint64_t> last_intervals(std::size_t n = 0) const;

  /// Drop every held row (the retrain loop clears after a publish so the
  /// next candidate trains on post-swap behaviour only).
  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::vector<double>> rows_;      ///< Ring slots (reused).
  std::vector<std::uint64_t> intervals_;       ///< Parallel ring slots.
  std::size_t next_ = 0;                       ///< Ring write cursor.
  std::size_t size_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace mhm::engine
