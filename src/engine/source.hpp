#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/heatmap.hpp"
#include "core/trace_io.hpp"

namespace mhm::engine {

/// One interval's worth of input to a detection session.
struct SourceItem {
  std::uint64_t interval_index = 0;
  HeatMap map;
};

/// Pull-based stream of completed monitoring intervals. Detection is
/// decoupled from where maps come from: a live simulated system, a recorded
/// trace on disk, or an in-memory vector all look the same to a Session.
/// Sources are single-consumer and stateful; next() returns nullopt when
/// the stream is exhausted.
class IntervalSource {
 public:
  virtual ~IntervalSource() = default;

  virtual std::optional<SourceItem> next() = 0;
};

/// In-memory source over a plain map vector — the test seam.
class VectorSource final : public IntervalSource {
 public:
  explicit VectorSource(HeatMapTrace maps) : maps_(std::move(maps)) {}

  std::optional<SourceItem> next() override;

  /// Restart the stream from the first map (replays retain the maps).
  void rewind() { pos_ = 0; }
  std::size_t size() const { return maps_.size(); }

 private:
  HeatMapTrace maps_;
  std::size_t pos_ = 0;
};

/// Replay of a recorded trace (core/trace_io): offline rescoring of a
/// deployment capture, with the MhmConfig it was recorded under attached.
class TraceReplaySource final : public IntervalSource {
 public:
  explicit TraceReplaySource(RecordedTrace trace) : trace_(std::move(trace)) {}
  explicit TraceReplaySource(HeatMapTrace maps) {
    trace_.maps = std::move(maps);
  }
  /// Load a .mhmt trace file (throws SerializationError / ConfigError).
  static TraceReplaySource from_file(const std::string& path);

  std::optional<SourceItem> next() override;

  void rewind() { pos_ = 0; }
  std::size_t size() const { return trace_.maps.size(); }
  const MhmConfig& config() const { return trace_.config; }
  const HeatMapTrace& maps() const { return trace_.maps; }

 private:
  RecordedTrace trace_;
  std::size_t pos_ = 0;
};

}  // namespace mhm::engine
