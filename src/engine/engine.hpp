#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/snapshot.hpp"
#include "core/stream_observer.hpp"
#include "engine/normal_window.hpp"
#include "engine/source.hpp"

namespace mhm::engine {

namespace detail {

/// State shared between an engine and its sessions. `epoch` is bumped on
/// every swap so a session can detect staleness with one relaxed-cheap
/// atomic load per interval and only takes the mutex on an actual change.
struct EngineShared {
  mutable std::mutex mu;
  std::shared_ptr<const ModelSnapshot> current;  ///< Guarded by mu.
  std::atomic<std::uint64_t> epoch{0};
};

}  // namespace detail

/// Per-session knobs — mirrors AnomalyDetector::Options' journal fields
/// plus the StreamObserver's model-health sizing overrides (the fleet
/// preset: thousands of sessions must not each inherit single-stream-sized
/// observability buffers; see fleet_preset()).
struct SessionOptions {
  /// "Keep the environment/global default" sentinel for the health knobs.
  static constexpr std::size_t kFromEnv = static_cast<std::size_t>(-1);

  std::size_t journal_capacity = 0;  ///< 0 keeps the journal default.
  std::size_t phases = 10;           ///< Hyperperiod-phase modulus.
  std::size_t top_cells = 8;         ///< Per-alarm cell explanations.
  std::size_t health_history = kFromEnv;     ///< Recent-score ring (0=none).
  std::size_t health_row_stride = kFromEnv;  ///< Raw-row cadence (0=never).
  std::size_t health_max_events = kFromEnv;  ///< Transition log (0=none).
  bool attach_health = true;  ///< False skips the per-session monitor.
  /// Multi-resolution score history (obs/history): raw ring length (0 skips
  /// the history), folded-tier bin count, fold factor and tier count.
  std::size_t history_raw = 256;
  std::size_t history_bins = 128;
  std::size_t history_fold = 8;
  std::size_t history_tiers = 2;
  /// Clean-interval reservoir (engine/normal_window): rows the session
  /// retains for the continuous-retrain loop. 0 keeps no window — the
  /// default; only retrain-enabled deployments pay the capacity × L bound.
  std::size_t clean_window_capacity = 0;

  /// Memory-bounded defaults for fleet-scale sessions: a short journal, no
  /// sparkline history, no raw-row copies, a handful of transition events,
  /// no per-alarm cell explanations, a shrunken score-history ring. ~KBs
  /// per session instead of ~100s of KBs; the knobs are documented in
  /// docs/OBSERVABILITY.md.
  static SessionOptions fleet_preset() {
    SessionOptions o;
    o.journal_capacity = 32;
    o.top_cells = 0;
    o.health_history = 0;
    o.health_row_stride = 0;
    o.health_max_events = 4;
    o.history_raw = 32;
    o.history_bins = 16;
    o.history_fold = 8;
    o.history_tiers = 1;
    return o;
  }
};

/// One hot model swap as a session saw it: the first interval scored with
/// the new snapshot, and the version stamps on either side.
struct ModelTransition {
  std::uint64_t interval_index = 0;
  std::uint64_t from_version = 0;
  std::uint64_t to_version = 0;
};

/// One monitored MHM stream. Sessions are vended by a DetectionEngine and
/// are single-threaded by design — each carries its own scoring scratch,
/// decision journal, phase-metric handles and model-health monitor, so any
/// number of sessions score concurrently without sharing mutable state.
/// Run N sessions over the same trace and each produces verdicts
/// bit-identical to a lone serial session.
///
/// A swap_model() on the engine is picked up at the next analyze() call —
/// the interval boundary — without dropping a map: the session re-reads the
/// shared snapshot pointer, rebinds its health monitor to the new model's
/// baseline, and logs a ModelTransition. Verdicts and journal records carry
/// the model_version stamp, so the transition is visible in the journal.
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  Verdict analyze(const HeatMap& map);
  Verdict analyze(std::span<const double> raw, std::uint64_t interval_index);

  /// Drain a source, one verdict per interval.
  std::vector<Verdict> run(IntervalSource& source);

  /// The snapshot the next interval will be scored with (refreshed lazily —
  /// a pending swap is only visible here after the pickup boundary).
  const ModelSnapshot& model() const { return *snap_; }
  std::uint64_t model_version() const { return snap_->version; }

  /// Hot swaps this session has picked up, oldest first.
  const std::vector<ModelTransition>& transitions() const {
    return transitions_;
  }

  obs::DecisionJournal& journal() const { return observer_->journal(); }
  std::shared_ptr<const obs::DecisionJournal> journal_ptr() const {
    return observer_->journal_ptr();
  }
  std::shared_ptr<obs::ModelHealthMonitor> model_health() const {
    return observer_->model_health();
  }
  std::shared_ptr<obs::ScoreHistory> score_history() const {
    return observer_->score_history();
  }
  /// Attach/detach the incident black box (see StreamObserver).
  void attach_incidents(const obs::IncidentOptions& options,
                        std::shared_ptr<obs::IncidentStore> store) {
    observer_->attach_incidents(options, std::move(store));
  }
  std::shared_ptr<obs::IncidentRecorder> incident_recorder() const {
    return observer_->incident_recorder();
  }
  /// Stamp a one-shot note onto the next journal record (see
  /// StreamObserver::annotate_next) — the retrain loop marks publishes.
  void annotate_next(std::string note) {
    observer_->annotate_next(std::move(note));
  }

  /// Clean-interval reservoir (null unless clean_window_capacity > 0):
  /// every analyzed interval that raised no alarm and was judged OK by
  /// model health lands here — the retrain loop's training pantry.
  std::shared_ptr<NormalWindow> clean_window() const { return window_; }
  /// Copies of the newest `n` clean intervals (oldest first; n = 0 → all
  /// held). Empty when no window is attached.
  std::vector<std::vector<double>> last_clean(std::size_t n = 0) const {
    return window_ != nullptr ? window_->last(n)
                              : std::vector<std::vector<double>>{};
  }

  /// Per-interval health tap: called after each interval is recorded with
  /// (interval_index, model-health status). The retrain loop's drift
  /// counter feeds off this — wire it to RetrainManager::note. Runs on the
  /// scoring thread; keep it cheap.
  void set_status_hook(
      std::function<void(std::uint64_t, obs::ModelHealthStatus)> hook) {
    status_hook_ = std::move(hook);
  }

 private:
  friend class DetectionEngine;
  Session(std::shared_ptr<detail::EngineShared> shared,
          const SessionOptions& options);

  void refresh_model(std::uint64_t interval_index);

  std::shared_ptr<detail::EngineShared> shared_;
  std::shared_ptr<const ModelSnapshot> snap_;
  std::uint64_t epoch_ = 0;
  ScoreScratch scratch_;
  std::unique_ptr<StreamObserver> observer_;
  std::shared_ptr<NormalWindow> window_;  ///< Null unless configured.
  std::function<void(std::uint64_t, obs::ModelHealthStatus)> status_hook_;
  std::vector<ModelTransition> transitions_;
};

/// Reusable workspace for the shard scoring entry points: the SoA batch,
/// its scratch, and the gather staging buffers. One per driving thread —
/// shard calls reuse its high-water-marked buffers, so steady-state shard
/// scoring allocates nothing. Never share one across concurrent shard calls.
struct ShardWorkspace {
  ScoreBatch batch;
  BatchScoreScratch scratch;
  /// pump_shard staging: per-slot raw-row buffers (capacity reused across
  /// pumps) and the compacted live-slot arrays.
  std::vector<std::vector<double>> raw_rows;
  std::vector<Session*> live_sessions;
  std::vector<std::span<const double>> live_raws;
  std::vector<std::uint64_t> live_intervals;
};

/// The serving-shaped core of the reproduction: owns the current immutable
/// ModelSnapshot and vends independent scoring Sessions. The engine itself
/// holds no scratch and no journal — it is safe to share across threads;
/// all mutable per-stream state lives in the sessions (and, for the shard
/// path, in the caller's ShardWorkspace).
class DetectionEngine {
 public:
  explicit DetectionEngine(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Atomically publish a new model. Running sessions pick it up at their
  /// next interval boundary. Validates that the snapshot is internally
  /// consistent and operates on the same cell count as the current model
  /// (throws ConfigError otherwise). Exports `engine.model_version` and
  /// bumps `engine.model_swaps`.
  void swap_model(std::shared_ptr<const ModelSnapshot> snapshot);

  std::shared_ptr<const ModelSnapshot> current_model() const;
  std::uint64_t model_version() const { return current_model()->version; }

  Session new_session(const SessionOptions& options = {}) const;

  /// Score one ready interval from each of N sessions as a single batch:
  /// gather (with per-session interval-boundary model pickup, in session
  /// order), score once through score_snapshot_batch, then scatter each
  /// verdict back through its session's StreamObserver — journal, phase
  /// metrics and model health see exactly what a serial analyze() would
  /// have recorded. `sessions`, `raws` and `interval_indices` are parallel
  /// spans. Verdicts are appended to `verdicts` (when non-null) in session
  /// order and are bit-identical to per-session analyze() calls; only
  /// `analysis_time` differs (amortized batch share). If a concurrent
  /// swap_model lands mid-gather and splits the shard across two model
  /// versions, the shard falls back to the serial per-session path — same
  /// math, no cross-model batch.
  void analyze_shard(std::span<Session* const> sessions,
                     std::span<const std::span<const double>> raws,
                     std::span<const std::uint64_t> interval_indices,
                     ShardWorkspace& workspace,
                     std::vector<Verdict>* verdicts = nullptr) const;

  /// Pull the next interval from every live source and score the shard in
  /// one batch (exhausted sources are skipped). `sessions` and `sources`
  /// are parallel spans. Returns the number of intervals scored — 0 means
  /// every source is drained.
  std::size_t pump_shard(std::span<Session* const> sessions,
                         std::span<IntervalSource* const> sources,
                         ShardWorkspace& workspace,
                         std::vector<Verdict>* verdicts = nullptr) const;

 private:
  std::shared_ptr<detail::EngineShared> shared_;
};

}  // namespace mhm::engine
