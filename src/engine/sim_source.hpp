#pragma once

#include <deque>

#include "engine/source.hpp"
#include "sim/system.hpp"

namespace mhm::engine {

/// Pull-based view of a live sim::System: each next() advances the
/// simulation one monitoring interval at a time (chunked run_for — the
/// scheduler's event loop makes chunked stepping bit-identical to one long
/// run) until the Memometer completes a map or the budgeted duration is
/// exhausted. The system keeps accumulating its own trace_, so callers can
/// still take_trace() after draining the source.
///
/// Occupies the system's single interval-observer slot for its lifetime
/// (restored to empty on destruction).
class SimIntervalSource final : public IntervalSource {
 public:
  /// Will simulate up to `duration` from the system's current now().
  SimIntervalSource(sim::System& system, SimTime duration);
  ~SimIntervalSource() override;

  SimIntervalSource(const SimIntervalSource&) = delete;
  SimIntervalSource& operator=(const SimIntervalSource&) = delete;

  std::optional<SourceItem> next() override;

  /// Simulation time not yet consumed by next() calls.
  SimTime remaining() const { return remaining_; }

 private:
  sim::System& system_;
  SimTime interval_;
  SimTime remaining_;
  std::deque<HeatMap> pending_;
};

}  // namespace mhm::engine
