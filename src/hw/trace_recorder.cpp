#include "hw/trace_recorder.hpp"

namespace mhm::hw {

std::uint64_t TraceRecorder::total_accesses() const {
  std::uint64_t total = 0;
  for (const auto& b : bursts_) total += b.total_accesses();
  return total;
}

void TraceRecorder::replay(MemoryBus& bus, SimTime end_time) const {
  for (const auto& b : bursts_) bus.publish(b);
  bus.advance_time(end_time);
}

}  // namespace mhm::hw
