#include "hw/control_registers.hpp"

#include "common/error.hpp"

namespace mhm::hw {

MemometerRegisters::MemometerRegisters() = default;

void MemometerRegisters::write(Register reg, std::uint32_t value) {
  if (reg >= kRegisterCount) {
    throw ConfigError("MemometerRegisters: register index out of range");
  }
  if (reg == kStatus) {
    throw ConfigError("MemometerRegisters: STATUS is read-only");
  }
  if (reg == kGranShift && value > 63) {
    throw ConfigError("MemometerRegisters: granularity shift must be <= 63");
  }
  regs_[reg] = value;
}

std::uint32_t MemometerRegisters::read(Register reg) const {
  if (reg >= kRegisterCount) {
    throw ConfigError("MemometerRegisters: register index out of range");
  }
  if (reg == kStatus) {
    return (enabled() && valid()) ? 1u : 0u;
  }
  return regs_[reg];
}

void MemometerRegisters::program(const MhmConfig& config,
                                 bool deliver_partial) {
  config.validate();
  write(kBaseLo, static_cast<std::uint32_t>(config.base & 0xFFFFFFFFu));
  write(kBaseHi, static_cast<std::uint32_t>(config.base >> 32));
  write(kSizeLo, static_cast<std::uint32_t>(config.size & 0xFFFFFFFFu));
  write(kSizeHi, static_cast<std::uint32_t>(config.size >> 32));
  write(kGranShift, config.shift_bits());
  write(kIntervalUs,
        static_cast<std::uint32_t>(config.interval / kMicrosecond));
  std::uint32_t ctrl = kCtrlEnable;
  if (deliver_partial) ctrl |= kCtrlDeliverPartial;
  write(kCtrl, ctrl);
}

bool MemometerRegisters::enabled() const {
  return (regs_[kCtrl] & kCtrlEnable) != 0;
}

bool MemometerRegisters::deliver_partial() const {
  return (regs_[kCtrl] & kCtrlDeliverPartial) != 0;
}

bool MemometerRegisters::valid() const {
  const std::uint64_t size =
      (static_cast<std::uint64_t>(regs_[kSizeHi]) << 32) | regs_[kSizeLo];
  return size > 0 && regs_[kGranShift] <= 63 && regs_[kIntervalUs] > 0;
}

MhmConfig MemometerRegisters::to_config() const {
  if (!enabled()) {
    throw ConfigError("MemometerRegisters: Memometer is not enabled");
  }
  MhmConfig cfg;
  cfg.base = (static_cast<std::uint64_t>(regs_[kBaseHi]) << 32) | regs_[kBaseLo];
  cfg.size = (static_cast<std::uint64_t>(regs_[kSizeHi]) << 32) | regs_[kSizeLo];
  cfg.granularity = 1ull << regs_[kGranShift];
  cfg.interval = static_cast<SimTime>(regs_[kIntervalUs]) * kMicrosecond;
  cfg.validate();  // throws ConfigError on inconsistent contents
  return cfg;
}

}  // namespace mhm::hw
