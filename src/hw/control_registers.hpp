#pragma once

#include <cstdint>

#include "core/heatmap.hpp"

namespace mhm::hw {

/// Register-level programming model of the Memometer (§3.1: "The secure
/// core sets the monitoring parameters for the Memometer through control
/// registers"). This models the memory-mapped interface a real secure-core
/// driver would poke: word-addressed registers holding the base address,
/// region size, granularity exponent and interval, plus a control/status
/// word. `to_config()` validates and converts the raw register contents to
/// the library's MhmConfig; the Memometer itself consumes the latter.
///
/// Register map (word offsets):
///   0  BASE_LO      lower 32 bits of AddrBase
///   1  BASE_HI      upper 32 bits of AddrBase
///   2  SIZE_LO      lower 32 bits of the region size S
///   3  SIZE_HI      upper 32 bits of S
///   4  GRAN_SHIFT   g = log2(delta); cell index = offset >> g
///   5  INTERVAL_US  monitoring interval in microseconds
///   6  CTRL         bit 0: enable, bit 1: deliver-partial-on-stop
///   7  STATUS       read-only: bit 0: armed (CTRL written & valid)
class MemometerRegisters {
 public:
  enum Register : std::uint32_t {
    kBaseLo = 0,
    kBaseHi = 1,
    kSizeLo = 2,
    kSizeHi = 3,
    kGranShift = 4,
    kIntervalUs = 5,
    kCtrl = 6,
    kStatus = 7,
    kRegisterCount = 8,
  };

  static constexpr std::uint32_t kCtrlEnable = 1u << 0;
  static constexpr std::uint32_t kCtrlDeliverPartial = 1u << 1;

  MemometerRegisters();

  /// Secure-core write. STATUS is read-only: writes throw ConfigError.
  void write(Register reg, std::uint32_t value);

  /// Secure-core read. STATUS reflects whether the current contents form a
  /// valid, enabled configuration.
  std::uint32_t read(Register reg) const;

  /// Program the whole bank from a high-level config (+ enable).
  void program(const MhmConfig& config, bool deliver_partial = false);

  /// Convert the current register contents to a validated MhmConfig.
  /// Throws ConfigError if the contents are inconsistent (zero size, shift
  /// out of range, zero interval) or the Memometer is not enabled.
  MhmConfig to_config() const;

  bool enabled() const;
  bool deliver_partial() const;

 private:
  bool valid() const;
  std::uint32_t regs_[kRegisterCount] = {};
};

}  // namespace mhm::hw
