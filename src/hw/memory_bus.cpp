#include "hw/memory_bus.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace mhm::hw {

namespace {

obs::Counter& bursts_counter() {
  static obs::Counter& c = obs::Registry::instance().counter(
      "hw.bus.bursts", "fetch bursts published on the monitored bus");
  return c;
}

}  // namespace

void MemoryBus::attach(BusObserver* observer) {
  MHM_ASSERT(observer != nullptr, "MemoryBus::attach: null observer");
  MHM_ASSERT(std::find(observers_.begin(), observers_.end(), observer) ==
                 observers_.end(),
             "MemoryBus::attach: observer already attached");
  observers_.push_back(observer);
}

void MemoryBus::detach(BusObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void MemoryBus::publish(const AccessBurst& burst) {
  MHM_ASSERT(burst.time >= last_time_,
             "MemoryBus::publish: timestamps must be non-decreasing");
  MHM_ASSERT(burst.sweeps > 0 && burst.size_bytes > 0,
             "MemoryBus::publish: empty burst");
  last_time_ = burst.time;
  ++bursts_;
  accesses_ += burst.total_accesses();
  bursts_counter().add();
  for (auto* obs : observers_) obs->on_burst(burst);
}

void MemoryBus::publish_access(SimTime time, Address addr) {
  publish(AccessBurst{.time = time, .base = addr, .size_bytes = 4, .sweeps = 1});
}

void MemoryBus::advance_time(SimTime now) {
  MHM_ASSERT(now >= last_time_,
             "MemoryBus::advance_time: time must not go backwards");
  last_time_ = now;
  for (auto* obs : observers_) obs->on_time(now);
}

}  // namespace mhm::hw
