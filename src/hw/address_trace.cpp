#include "hw/address_trace.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <string_view>

#include "common/error.hpp"

namespace mhm::hw {

namespace {

/// Parse one unsigned field (decimal, or hex with 0x prefix). Returns false
/// if `sv` is not a complete valid number.
bool parse_field(std::string_view sv, std::uint64_t* out) {
  int base = 10;
  if (sv.size() > 2 && sv[0] == '0' && (sv[1] == 'x' || sv[1] == 'X')) {
    sv.remove_prefix(2);
    base = 16;
  }
  if (sv.empty()) return false;
  const auto result =
      std::from_chars(sv.data(), sv.data() + sv.size(), *out, base);
  return result.ec == std::errc{} && result.ptr == sv.data() + sv.size();
}

/// Split a line into whitespace-separated tokens (no allocation per token).
std::size_t tokenize(std::string_view line,
                     std::array<std::string_view, 5>& tokens) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < line.size() && count < tokens.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    if (pos >= line.size()) break;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
    tokens[count++] = line.substr(start, pos - start);
  }
  // Trailing garbage beyond 4 fields counts as a token so we can reject it.
  return count;
}

}  // namespace

AddressTraceStats replay_address_trace(std::istream& in, MemoryBus& bus) {
  AddressTraceStats stats;
  std::string line;
  std::uint64_t line_no = 0;
  bool first = true;

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = line;
    // Strip trailing CR (windows traces) and leading whitespace.
    if (!sv.empty() && sv.back() == '\r') sv.remove_suffix(1);
    std::size_t begin = 0;
    while (begin < sv.size() && (sv[begin] == ' ' || sv[begin] == '\t')) {
      ++begin;
    }
    sv.remove_prefix(begin);
    if (sv.empty() || sv.front() == '#') continue;

    std::array<std::string_view, 5> tokens;
    const std::size_t n = tokenize(sv, tokens);
    if (n < 2 || n > 4) {
      throw ConfigError("address_trace: line " + std::to_string(line_no) +
                        ": expected 2-4 fields, got " + std::to_string(n));
    }
    AccessBurst burst;
    std::uint64_t time = 0;
    if (!parse_field(tokens[0], &time)) {
      throw ConfigError("address_trace: line " + std::to_string(line_no) +
                        ": bad timestamp '" + std::string(tokens[0]) + "'");
    }
    if (!parse_field(tokens[1], &burst.base)) {
      throw ConfigError("address_trace: line " + std::to_string(line_no) +
                        ": bad address '" + std::string(tokens[1]) + "'");
    }
    burst.time = time;
    burst.size_bytes = 4;
    burst.sweeps = 1;
    if (n >= 3 && !parse_field(tokens[2], &burst.size_bytes)) {
      throw ConfigError("address_trace: line " + std::to_string(line_no) +
                        ": bad size '" + std::string(tokens[2]) + "'");
    }
    if (n == 4 && !parse_field(tokens[3], &burst.sweeps)) {
      throw ConfigError("address_trace: line " + std::to_string(line_no) +
                        ": bad sweep count '" + std::string(tokens[3]) + "'");
    }
    if (burst.size_bytes == 0 || burst.sweeps == 0) {
      throw ConfigError("address_trace: line " + std::to_string(line_no) +
                        ": size and sweeps must be positive");
    }
    if (!first && burst.time < stats.last_time) {
      throw ConfigError("address_trace: line " + std::to_string(line_no) +
                        ": timestamps must be non-decreasing");
    }
    if (first) {
      stats.first_time = burst.time;
      first = false;
    }
    stats.last_time = burst.time;
    ++stats.lines_parsed;
    stats.accesses += burst.total_accesses();
    bus.publish(burst);
  }
  return stats;
}

AddressTraceStats replay_address_trace_file(const std::string& path,
                                            MemoryBus& bus) {
  std::ifstream in(path);
  if (!in) throw ConfigError("replay_address_trace_file: cannot open " + path);
  return replay_address_trace(in, bus);
}

void write_address_trace(const std::vector<AccessBurst>& bursts,
                         std::ostream& out) {
  out << "# mhm address trace: time_ns address size_bytes sweeps\n";
  char buf[96];
  for (const auto& b : bursts) {
    const int len = std::snprintf(buf, sizeof buf, "%llu 0x%llX %llu %llu\n",
                                  static_cast<unsigned long long>(b.time),
                                  static_cast<unsigned long long>(b.base),
                                  static_cast<unsigned long long>(b.size_bytes),
                                  static_cast<unsigned long long>(b.sweeps));
    out.write(buf, len);
  }
}

}  // namespace mhm::hw
