#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "hw/memory_bus.hpp"

namespace mhm::hw {

/// Text address-trace ingestion.
///
/// The paper collected memory behaviour on a full-system simulator; users
/// of this library may have instruction-fetch traces from gem5, valgrind
/// (lackey), QEMU plugins or hardware trace units instead. This module
/// parses a simple line-oriented format and publishes the stream onto a
/// MemoryBus, where a Memometer aggregates it into heat maps exactly as it
/// would live traffic.
///
/// Format (whitespace-separated, one access per line):
///     <time_ns> <address> [<size_bytes> [<sweeps>]]
///   * `time_ns`  — unsigned decimal timestamp; must be non-decreasing.
///   * `address`  — decimal, or hex with 0x/0X prefix.
///   * `size_bytes` — optional, default 4 (one instruction fetch).
///   * `sweeps`   — optional repeat count, default 1.
/// Blank lines and lines starting with '#' are ignored. Malformed lines
/// throw ConfigError with the 1-based line number.
struct AddressTraceStats {
  std::uint64_t lines_parsed = 0;   ///< Access lines (comments excluded).
  std::uint64_t accesses = 0;       ///< Total fetches represented.
  SimTime first_time = 0;
  SimTime last_time = 0;
};

/// Parse `in` and publish every access onto `bus`. Returns parse stats.
/// The caller attaches its Memometer/recorder to `bus` beforehand and is
/// responsible for a final `bus.advance_time(...)`/`finish(...)` flush.
AddressTraceStats replay_address_trace(std::istream& in, MemoryBus& bus);

/// Convenience: open `path` and replay it (throws ConfigError on I/O).
AddressTraceStats replay_address_trace_file(const std::string& path,
                                            MemoryBus& bus);

/// Write a bus capture back out in the same text format (round-trip /
/// export for other tools).
void write_address_trace(const std::vector<AccessBurst>& bursts,
                         std::ostream& out);

}  // namespace mhm::hw
