#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"

namespace mhm::hw {

/// One instruction-fetch burst on the monitored core's address bus: the core
/// sweeps the word-aligned range [base, base + size_bytes) sequentially,
/// `sweeps` times (a function body executed in a loop). A single fetch is a
/// burst with size_bytes = 4 and sweeps = 1.
///
/// Bursts are a simulation efficiency device: observers that need per-access
/// granularity (e.g. the cache model) expand them; the Memometer computes
/// the per-cell contribution arithmetically, which is bit-identical to
/// processing each fetch individually.
struct AccessBurst {
  SimTime time = 0;        ///< Timestamp of the burst (monotone per bus).
  Address base = 0;        ///< Starting virtual address.
  std::uint64_t size_bytes = 4;  ///< Extent of the swept range.
  std::uint64_t sweeps = 1;      ///< How many times the range is swept.

  /// Word size of an instruction fetch (ARM: 4 bytes).
  static constexpr std::uint64_t kWordBytes = 4;

  /// Total individual fetches this burst represents.
  std::uint64_t total_accesses() const {
    return ((size_bytes + kWordBytes - 1) / kWordBytes) * sweeps;
  }
};

/// Anything that snoops the address bus (Memometer, cache model, trace
/// recorder). Observers must tolerate bursts with non-decreasing timestamps.
class BusObserver {
 public:
  virtual ~BusObserver() = default;

  /// A burst appeared on the bus.
  virtual void on_burst(const AccessBurst& burst) = 0;

  /// Simulated time advanced to `now` with no traffic; lets interval timers
  /// fire on quiet buses.
  virtual void on_time(SimTime now) { (void)now; }
};

/// The address bus between the monitored core and its L1 cache (Figure 3).
/// The simulator publishes fetch bursts here; hardware models subscribe.
/// Observers are non-owning: callers keep them alive while attached.
class MemoryBus {
 public:
  void attach(BusObserver* observer);
  void detach(BusObserver* observer);

  /// Publish a burst to every observer. Timestamps must be non-decreasing;
  /// violating that throws LogicError (it would corrupt interval accounting).
  void publish(const AccessBurst& burst);

  /// Publish a single fetch.
  void publish_access(SimTime time, Address addr);

  /// Advance time with no traffic.
  void advance_time(SimTime now);

  std::uint64_t bursts_published() const { return bursts_; }
  std::uint64_t accesses_published() const { return accesses_; }
  SimTime last_time() const { return last_time_; }

 private:
  std::vector<BusObserver*> observers_;
  std::uint64_t bursts_ = 0;
  std::uint64_t accesses_ = 0;
  SimTime last_time_ = 0;
};

}  // namespace mhm::hw
