#include "hw/memometer.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace mhm::hw {

namespace {

struct MeterMetrics {
  obs::Counter& intervals = obs::Registry::instance().counter(
      "hw.memometer.intervals", "monitoring intervals completed");
  obs::Counter& counted = obs::Registry::instance().counter(
      "hw.memometer.fetches_counted", "snooped fetches counted into cells");
  obs::Counter& filtered = obs::Registry::instance().counter(
      "hw.memometer.fetches_filtered",
      "snooped fetches rejected by the address filter");
  obs::Counter& clips = obs::Registry::instance().counter(
      "hw.memometer.cell_saturation_clips",
      "32-bit cell counters that clipped at their ceiling");
};

MeterMetrics& meter_metrics() {
  static MeterMetrics m;
  return m;
}

}  // namespace

Memometer::Memometer(const MhmConfig& config, SimTime start_time,
                     ReadyCallback on_ready)
    : config_(config), on_ready_(std::move(on_ready)) {
  config_.validate();
  const std::size_t cells = config_.cell_count();
  if (cells > kMaxCells) {
    throw ConfigError(
        "Memometer: configured cell count " + std::to_string(cells) +
        " exceeds on-chip memory capacity of " + std::to_string(kMaxCells) +
        " cells; increase the granularity");
  }
  units_[0] = HeatMap(cells);
  units_[1] = HeatMap(cells);
  interval_start_ = start_time;
  units_[0].interval_start = start_time;
}

void Memometer::advance_to(SimTime now) {
  // Fire every interval boundary in (interval_start_, now].
  while (now >= interval_start_ + config_.interval) {
    HeatMap& finished = units_[active_unit_];
    finished.interval_index = interval_index_;
    finished.interval_start = interval_start_;
    ++intervals_completed_;
    // Flush the deltas accumulated since the previous boundary; per-burst
    // increments would put two atomics on every snooped burst.
    MeterMetrics& m = meter_metrics();
    m.intervals.add();
    m.counted.add(counted_ - counted_flushed_);
    m.filtered.add(filtered_out_ - filtered_flushed_);
    m.clips.add(saturation_clips_ - clips_flushed_);
    counted_flushed_ = counted_;
    filtered_flushed_ = filtered_out_;
    clips_flushed_ = saturation_clips_;

    // Swap: the other unit becomes active while this one is analyzed.
    const int analysis_unit = active_unit_;
    active_unit_ = 1 - active_unit_;
    interval_start_ += config_.interval;
    ++interval_index_;
    units_[active_unit_].interval_start = interval_start_;

    if (on_ready_) on_ready_(units_[analysis_unit]);
    // Analysis done (secure core copied what it needed): reset the unit so
    // it is clean when it becomes active again at the next boundary.
    units_[analysis_unit].reset();
  }
}

void Memometer::record(const AccessBurst& burst) {
  // Address filter: offset = Addr* - AddrBase, pass iff 0 <= offset < S.
  // Bursts may straddle the region boundary; only the in-region words count,
  // exactly as per-fetch filtering would.
  const Address region_begin = config_.base;
  const Address region_end = config_.base + config_.size;
  const Address burst_end = burst.base + burst.size_bytes;
  if (burst_end <= region_begin || burst.base >= region_end) {
    filtered_out_ += burst.total_accesses();
    return;
  }

  const Address lo = std::max(burst.base, region_begin);
  const Address hi = std::min(burst_end, region_end);
  // Fetches outside the overlap are filtered.
  const std::uint64_t kept_words =
      (hi - lo + AccessBurst::kWordBytes - 1) / AccessBurst::kWordBytes;
  filtered_out_ += burst.total_accesses() - kept_words * burst.sweeps;

  HeatMap& active = units_[active_unit_];
  const unsigned g = config_.shift_bits();
  // Cell index of a fetch at addr: (addr - base) >> g. Distribute the swept
  // words of [lo, hi) over the cells they fall in.
  const std::size_t first_cell = static_cast<std::size_t>((lo - region_begin) >> g);
  const std::size_t last_cell =
      static_cast<std::size_t>((hi - 1 - region_begin) >> g);
  for (std::size_t cell = first_cell; cell <= last_cell; ++cell) {
    const Address cell_begin = region_begin + (static_cast<Address>(cell) << g);
    const Address cell_end = cell_begin + config_.granularity;
    const Address seg_lo = std::max(lo, cell_begin);
    const Address seg_hi = std::min(hi, cell_end);
    // Word-aligned fetch count within this cell. Words are anchored at the
    // burst base (the core fetches base, base+4, ...).
    const std::uint64_t first_word =
        (seg_lo - burst.base + AccessBurst::kWordBytes - 1) /
        AccessBurst::kWordBytes;
    const std::uint64_t end_word =
        (seg_hi - burst.base + AccessBurst::kWordBytes - 1) /
        AccessBurst::kWordBytes;
    const std::uint64_t words = end_word - first_word;
    if (words == 0) continue;
    const std::uint64_t count = words * burst.sweeps;
    constexpr std::uint64_t kCellMax = std::numeric_limits<std::uint32_t>::max();
    if (static_cast<std::uint64_t>(active[cell]) + count > kCellMax) {
      ++saturation_clips_;
    }
    active.increment(cell, count);
    counted_ += count;
  }
}

void Memometer::on_burst(const AccessBurst& burst) {
  advance_to(burst.time);
  record(burst);
}

void Memometer::on_time(SimTime now) { advance_to(now); }

void Memometer::finish(SimTime now, bool deliver_partial) {
  advance_to(now);
  if (deliver_partial && now > interval_start_) {
    HeatMap& partial = units_[active_unit_];
    partial.interval_index = interval_index_;
    partial.interval_start = interval_start_;
    if (on_ready_) on_ready_(partial);
    partial.reset();
  }
  // Flush whatever accumulated after the last boundary so end-of-run totals
  // in the registry match the accessors.
  MeterMetrics& m = meter_metrics();
  m.counted.add(counted_ - counted_flushed_);
  m.filtered.add(filtered_out_ - filtered_flushed_);
  m.clips.add(saturation_clips_ - clips_flushed_);
  counted_flushed_ = counted_;
  filtered_flushed_ = filtered_out_;
  clips_flushed_ = saturation_clips_;
}

}  // namespace mhm::hw
