#pragma once

#include <cstdint>
#include <functional>

#include "core/heatmap.hpp"
#include "hw/memory_bus.hpp"

namespace mhm::hw {

/// Behavioural model of the Memometer (paper §3.1, Figure 4): the on-chip
/// module that snoops the address line between the monitored core and its L1
/// cache and aggregates fetches into Memory Heat Maps.
///
/// Modelled blocks and their paper counterparts:
///  * control registers — base address, region size, granularity (power of
///    two), monitoring interval; written by the secure core before start.
///  * address filter — offset = Addr* - AddrBase; pass iff 0 <= offset < S.
///  * target-cell logic — idx = offset >> g with g = log2(δ).
///  * two on-chip MHM memories of `kMemoryBytes` each, double-buffered: the
///    active unit accumulates the current interval while the secure core
///    analyzes the previous one; units swap at interval boundaries.
///  * interval timer — fires the ready callback at each boundary.
///
/// Cell counters are 32-bit and saturate. The on-chip memory size bounds the
/// number of cells (8 KB / 4 B = 2,048 cells, "at most about 2,000 cells"),
/// not the size of the monitored region — granularity covers larger regions.
class Memometer final : public BusObserver {
 public:
  /// Size of each on-chip MHM memory unit (8 KB in the prototype).
  static constexpr std::uint64_t kMemoryBytes = 8 * 1024;
  static constexpr std::size_t kMaxCells =
      static_cast<std::size_t>(kMemoryBytes / sizeof(std::uint32_t));

  /// Invoked (conceptually: secure core interrupt) whenever an interval
  /// completes; receives the finished MHM. Runs inside the simulation step,
  /// so keep it light — SecureCore copies the map out.
  using ReadyCallback = std::function<void(const HeatMap&)>;

  /// Configure and arm the Memometer. Throws ConfigError if the configured
  /// cell count exceeds the on-chip memory capacity or the config is
  /// otherwise invalid. Monitoring starts at `start_time`.
  Memometer(const MhmConfig& config, SimTime start_time,
            ReadyCallback on_ready);

  const MhmConfig& config() const { return config_; }

  /// --- BusObserver ---
  void on_burst(const AccessBurst& burst) override;
  void on_time(SimTime now) override;

  /// Flush: finalize the current (possibly partial) interval. Used at the
  /// end of a simulation run. The partial map is delivered only if
  /// `deliver_partial` and it saw any time at all.
  void finish(SimTime now, bool deliver_partial = false);

  /// --- statistics / inspection ---
  std::uint64_t intervals_completed() const { return intervals_completed_; }
  std::uint64_t accesses_filtered_out() const { return filtered_out_; }
  std::uint64_t accesses_counted() const { return counted_; }
  /// Times a 32-bit cell counter clipped at its ceiling this run.
  std::uint64_t cell_saturation_clips() const { return saturation_clips_; }
  /// Which of the two on-chip memories currently accumulates (0 or 1).
  int active_unit() const { return active_unit_; }
  /// Read-only view of the active (in-progress) map — secure-core debug aid.
  const HeatMap& active_map() const { return units_[active_unit_]; }

 private:
  /// Advance the interval timer to `now`, swapping buffers and invoking the
  /// callback for every boundary crossed.
  void advance_to(SimTime now);

  /// Count one burst into the active unit (pure cell arithmetic, equivalent
  /// to per-fetch processing).
  void record(const AccessBurst& burst);

  MhmConfig config_;
  ReadyCallback on_ready_;
  HeatMap units_[2];           ///< The two on-chip MHM memories.
  int active_unit_ = 0;
  SimTime interval_start_ = 0; ///< Start of the active interval.
  std::uint64_t interval_index_ = 0;
  std::uint64_t intervals_completed_ = 0;
  std::uint64_t filtered_out_ = 0;
  std::uint64_t counted_ = 0;
  std::uint64_t saturation_clips_ = 0;
  // Metrics-flush watermarks: deltas since the last interval boundary are
  // pushed to the obs registry once per interval, keeping the snoop path hot.
  std::uint64_t filtered_flushed_ = 0;
  std::uint64_t counted_flushed_ = 0;
  std::uint64_t clips_flushed_ = 0;
};

}  // namespace mhm::hw
