#include "hw/cache_model.hpp"

#include "common/error.hpp"

namespace mhm::hw {

void CacheGeometry::validate() const {
  if (!is_power_of_two(line_bytes)) {
    throw ConfigError("CacheGeometry: line size must be a power of two");
  }
  if (ways == 0) throw ConfigError("CacheGeometry: ways must be positive");
  if (size_bytes == 0 || size_bytes % (line_bytes * ways) != 0) {
    throw ConfigError(
        "CacheGeometry: size must be a positive multiple of line*ways");
  }
  if (!is_power_of_two(sets())) {
    throw ConfigError("CacheGeometry: set count must be a power of two");
  }
}

CacheGeometry CacheGeometry::l1_default() {
  return CacheGeometry{.size_bytes = 32 * 1024, .line_bytes = 32, .ways = 4};
}

CacheGeometry CacheGeometry::l2_default() {
  return CacheGeometry{.size_bytes = 512 * 1024, .line_bytes = 32, .ways = 8};
}

CacheModel::CacheModel(const CacheGeometry& geometry, MemoryBus* downstream)
    : geom_(geometry), downstream_(downstream) {
  geom_.validate();
  ways_.resize(geom_.sets() * geom_.ways);
}

double CacheModel::hit_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void CacheModel::invalidate_all() {
  for (auto& w : ways_) w.valid = false;
}

bool CacheModel::access_line(std::uint64_t line_addr) {
  const std::uint64_t set =
      (line_addr / geom_.line_bytes) & (geom_.sets() - 1);
  const std::uint64_t tag = line_addr / (geom_.line_bytes * geom_.sets());
  Way* base = &ways_[set * geom_.ways];
  ++stamp_;

  Way* victim = base;
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru_stamp = stamp_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way as victim
    } else if (victim->valid && way.lru_stamp < victim->lru_stamp) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru_stamp = stamp_;
  return false;
}

void CacheModel::on_burst(const AccessBurst& burst) {
  // Expand the burst into individual fetches; consecutive fetches to the
  // same line collapse into one lookup per line per sweep (the core streams
  // through the range, so within one sweep a line is touched contiguously).
  const std::uint64_t words =
      (burst.size_bytes + AccessBurst::kWordBytes - 1) / AccessBurst::kWordBytes;
  const std::uint64_t words_per_line =
      geom_.line_bytes / AccessBurst::kWordBytes;

  for (std::uint64_t sweep = 0; sweep < burst.sweeps; ++sweep) {
    Address addr = burst.base;
    std::uint64_t remaining = words;
    while (remaining > 0) {
      const Address line_addr = addr & ~(geom_.line_bytes - 1);
      // Number of fetch words covered by this line in this sweep.
      const std::uint64_t offset_words =
          (addr - line_addr) / AccessBurst::kWordBytes;
      const std::uint64_t span = std::min(remaining, words_per_line - offset_words);
      const bool hit = access_line(line_addr);
      if (hit) {
        hits_ += span;
      } else {
        misses_ += span;
        if (downstream_ != nullptr) {
          // Below the cache only the line fill is visible: one access
          // covering the line.
          downstream_->publish(AccessBurst{.time = burst.time,
                                           .base = line_addr,
                                           .size_bytes = geom_.line_bytes,
                                           .sweeps = 1});
        }
      }
      addr += span * AccessBurst::kWordBytes;
      remaining -= span;
    }
  }
}

void CacheModel::on_time(SimTime now) {
  if (downstream_ != nullptr) downstream_->advance_time(now);
}

}  // namespace mhm::hw
