#pragma once

#include <string>
#include <vector>

#include "hw/memory_bus.hpp"

namespace mhm::hw {

/// Bus observer that records every burst — useful for tests, debugging and
/// for replaying a captured access stream through alternative hardware
/// configurations (e.g. the same run snooped pre- and post-cache).
class TraceRecorder final : public BusObserver {
 public:
  void on_burst(const AccessBurst& burst) override { bursts_.push_back(burst); }

  const std::vector<AccessBurst>& bursts() const { return bursts_; }
  void clear() { bursts_.clear(); }

  std::uint64_t total_accesses() const;

  /// Replay the recorded stream onto `bus`, including a final
  /// advance_time(end_time) so interval timers flush.
  void replay(MemoryBus& bus, SimTime end_time) const;

 private:
  std::vector<AccessBurst> bursts_;
};

}  // namespace mhm::hw
