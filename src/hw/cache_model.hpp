#pragma once

#include <cstdint>
#include <vector>

#include "hw/memory_bus.hpp"

namespace mhm::hw {

/// Geometry of a set-associative cache.
struct CacheGeometry {
  std::uint64_t size_bytes = 32 * 1024;  ///< Total capacity.
  std::uint64_t line_bytes = 32;         ///< Cache line size (power of 2).
  std::uint32_t ways = 4;                ///< Associativity.

  std::uint64_t sets() const { return size_bytes / (line_bytes * ways); }
  void validate() const;  ///< Throws ConfigError on inconsistent geometry.

  /// Cortex-A9-like defaults used in the paper's prototype.
  static CacheGeometry l1_default();  ///< 32 KB, 4-way, 32 B lines.
  static CacheGeometry l2_default();  ///< 512 KB, 8-way, 32 B lines.
};

/// Set-associative LRU instruction cache model.
///
/// Supports the §5.5 "Limitation" ablation: placing the Memometer *below*
/// a cache level loses the hits, so this model sits on the bus, simulates
/// hits/misses per fetch, and republishes only the misses onto a downstream
/// bus where a Memometer can be attached.
class CacheModel final : public BusObserver {
 public:
  /// Fetches arriving on the upstream bus are looked up; misses are
  /// published (line-granular) on `downstream`. `downstream` may be null to
  /// use the model for hit-rate statistics only.
  CacheModel(const CacheGeometry& geometry, MemoryBus* downstream);

  void on_burst(const AccessBurst& burst) override;
  void on_time(SimTime now) override;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const;

  /// Drop all cached lines (e.g. simulated power-up).
  void invalidate_all();

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru_stamp = 0;  ///< Higher = more recently used.
  };

  /// Look up one line address; returns true on hit; updates LRU / fills.
  bool access_line(std::uint64_t line_addr);

  CacheGeometry geom_;
  MemoryBus* downstream_;
  std::vector<Way> ways_;  ///< sets() * ways entries, set-major.
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mhm::hw
