#include "sim/kernel_services.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mhm::sim {

double KernelService::expected_accesses(const KernelImage& image) const {
  double total = 0.0;
  for (const auto& step : steps) {
    const auto& fn = image.function(step.function);
    const double words = std::ceil(static_cast<double>(fn.size_bytes) /
                                   static_cast<double>(hw::AccessBurst::kWordBytes));
    total += words * step.mean_sweeps;
  }
  return total;
}

ServiceCatalog::ServiceCatalog(const KernelImage& image, double jitter_scale)
    : image_(&image) {
  if (jitter_scale < 0.0) {
    throw ConfigError("ServiceCatalog: jitter_scale must be non-negative");
  }
  build_default_catalog();
  if (jitter_scale != 1.0) {
    for (auto& svc : services_) {
      svc.duration_sigma *= jitter_scale;
      svc.sweep_sigma *= jitter_scale;
    }
  }
}

ServiceId ServiceCatalog::id(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw ConfigError("ServiceCatalog: unknown service '" + name + "'");
  }
  return it->second;
}

bool ServiceCatalog::contains(const std::string& name) const {
  return by_name_.contains(name);
}

const KernelService& ServiceCatalog::service(ServiceId sid) const {
  MHM_ASSERT(sid < services_.size(), "ServiceCatalog: id out of range");
  return services_[sid];
}

const KernelService& ServiceCatalog::service(const std::string& name) const {
  return services_[id(name)];
}

ServiceId ServiceCatalog::add(KernelService svc) {
  if (by_name_.contains(svc.name)) {
    throw ConfigError("ServiceCatalog: duplicate service '" + svc.name + "'");
  }
  for (const auto& step : svc.steps) {
    MHM_ASSERT(step.function < image_->functions().size(),
               "ServiceCatalog::add: step references unknown function");
  }
  const ServiceId sid = services_.size();
  by_name_[svc.name] = sid;
  services_.push_back(std::move(svc));
  return sid;
}

SimTime ServiceCatalog::invoke(ServiceId sid, SimTime time, hw::MemoryBus& bus,
                               Rng& rng, SimTime extra_latency) const {
  const KernelService& svc = service(sid);
  for (const auto& step : svc.steps) {
    const auto& fn = image_->function(step.function);
    const double jittered = step.mean_sweeps * rng.lognormal_jitter(svc.sweep_sigma);
    const auto sweeps = static_cast<std::uint64_t>(
        std::max(1.0, std::round(jittered)));
    bus.publish(hw::AccessBurst{.time = time,
                                .base = fn.address,
                                .size_bytes = fn.size_bytes,
                                .sweeps = sweeps});
  }
  const double dur = static_cast<double>(svc.mean_duration) *
                     rng.lognormal_jitter(svc.duration_sigma);
  return static_cast<SimTime>(std::max(1.0, dur)) + extra_latency;
}

void ServiceCatalog::add_path(KernelService& svc, const std::string& subsystem,
                              std::size_t count, double sweeps,
                              std::uint64_t salt) const {
  const auto fns = image_->pick_functions(subsystem, count, salt);
  for (std::size_t fn : fns) {
    svc.steps.push_back(ServiceStep{.function = fn, .mean_sweeps = sweeps});
  }
}

void ServiceCatalog::build_default_catalog() {
  // Each service gets a distinct salt so overlapping subsystems still yield
  // distinct function sets; the salts are arbitrary but fixed.
  std::uint64_t salt = 1;
  auto make = [&](const std::string& name, SimTime duration) {
    KernelService svc;
    svc.name = name;
    svc.mean_duration = duration;
    return svc;
  };
  auto syscall_prologue = [&](KernelService& svc) {
    // Every syscall passes through entry stubs and the dispatch table.
    add_path(svc, "entry", 2, 1.0, salt++);
    add_path(svc, "syscall", 1, 1.0, salt++);
  };

  {  // sys_read: vfs -> driver/fs -> lib copy helpers. The rootkit scenario
     // hijacks this service's dispatch (§5.3-3).
    KernelService svc = make("sys_read", 6 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "fs", 5, 1.5, salt++);
    add_path(svc, "drivers", 2, 1.0, salt++);
    add_path(svc, "lib", 2, 3.0, salt++);
    add(std::move(svc));
  }
  {  // sys_write: mirrors read with a different fs/driver path.
    KernelService svc = make("sys_write", 6 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "fs", 5, 1.5, salt++);
    add_path(svc, "drivers", 2, 1.0, salt++);
    add_path(svc, "lib", 2, 2.5, salt++);
    add(std::move(svc));
  }
  {  // sys_open: path lookup is fs-heavy with security hooks.
    KernelService svc = make("sys_open", 10 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "fs", 8, 2.0, salt++);
    add_path(svc, "security", 2, 1.0, salt++);
    add_path(svc, "mm", 1, 1.0, salt++);
    add(std::move(svc));
  }
  {  // sys_close
    KernelService svc = make("sys_close", 3 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "fs", 3, 1.0, salt++);
    add(std::move(svc));
  }
  {  // sys_gettimeofday: time subsystem, cheap.
    KernelService svc = make("sys_gettimeofday", 1 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "time", 2, 1.0, salt++);
    add(std::move(svc));
  }
  {  // sys_nanosleep: timers + scheduler interaction.
    KernelService svc = make("sys_nanosleep", 4 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "time", 3, 1.5, salt++);
    add_path(svc, "sched", 2, 1.0, salt++);
    add(std::move(svc));
  }
  {  // sys_mmap
    KernelService svc = make("sys_mmap", 8 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "mm", 6, 1.5, salt++);
    add_path(svc, "fs", 2, 1.0, salt++);
    add(std::move(svc));
  }
  {  // sys_brk
    KernelService svc = make("sys_brk", 4 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "mm", 4, 1.0, salt++);
    add(std::move(svc));
  }
  {  // sys_ipc: pipe/futex-style communication.
    KernelService svc = make("sys_ipc", 5 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "ipc", 4, 1.5, salt++);
    add_path(svc, "sched", 1, 1.0, salt++);
    add(std::move(svc));
  }
  {  // do_fork: process duplication — mm-heavy (copying page tables) with
     // scheduler enqueue. Dominant cost of launching an application.
    KernelService svc = make("do_fork", 150 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "fork_exec", 10, 3.0, salt++);
    add_path(svc, "mm", 12, 4.0, salt++);
    add_path(svc, "sched", 3, 1.5, salt++);
    add_path(svc, "fs", 4, 1.0, salt++);
    add(std::move(svc));
  }
  {  // do_execve: image load — fs (reading the binary) + mm (mapping it).
    KernelService svc = make("do_execve", 300 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "fork_exec", 8, 2.5, salt++);
    add_path(svc, "fs", 10, 4.0, salt++);
    add_path(svc, "mm", 10, 3.0, salt++);
    add_path(svc, "security", 3, 1.0, salt++);
    add(std::move(svc));
  }
  {  // do_exit: teardown — mm unmap + fs close + signal parent.
    KernelService svc = make("do_exit", 80 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "fork_exec", 6, 2.0, salt++);
    add_path(svc, "mm", 8, 2.5, salt++);
    add_path(svc, "fs", 4, 1.0, salt++);
    add_path(svc, "signal", 2, 1.0, salt++);
    add(std::move(svc));
  }
  {  // sys_kill: signal delivery.
    KernelService svc = make("sys_kill", 5 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "signal", 4, 1.5, salt++);
    add_path(svc, "sched", 1, 1.0, salt++);
    add(std::move(svc));
  }
  {  // sys_waitpid
    KernelService svc = make("sys_waitpid", 4 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "fork_exec", 3, 1.0, salt++);
    add_path(svc, "signal", 1, 1.0, salt++);
    add(std::move(svc));
  }
  {  // sys_personality: the ASLR-disable knob the shellcode flips (§5.3-2).
    KernelService svc = make("sys_personality", 2 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "fork_exec", 2, 1.0, salt++);
    add(std::move(svc));
  }
  {  // sys_mprotect: used by exploit payloads to make pages executable.
    KernelService svc = make("sys_mprotect", 6 * kMicrosecond);
    syscall_prologue(svc);
    add_path(svc, "mm", 5, 1.5, salt++);
    add_path(svc, "security", 1, 1.0, salt++);
    add(std::move(svc));
  }
  {  // load_module: the LKM loader path the rootkit exercises once (§5.3-3).
     // Relocating, allocating and linking a module is a heavyweight burst —
     // the distinguishable spike of Figure 9.
    KernelService svc = make("load_module", 3 * kMillisecond);
    syscall_prologue(svc);
    add_path(svc, "module", 20, 40.0, salt++);
    add_path(svc, "mm", 12, 15.0, salt++);
    add_path(svc, "fs", 10, 10.0, salt++);
    add_path(svc, "lib", 4, 20.0, salt++);
    add_path(svc, "security", 2, 1.0, salt++);
    add(std::move(svc));
  }
  {  // page_fault: minor fault service path.
    KernelService svc = make("page_fault", 3 * kMicrosecond);
    add_path(svc, "entry", 1, 1.0, salt++);
    add_path(svc, "mm", 4, 1.5, salt++);
    add(std::move(svc));
  }
  {  // sched_tick: periodic timer interrupt + scheduler bookkeeping. Fires
     // every millisecond on the monitored core regardless of workload.
    KernelService svc = make("sched_tick", 2 * kMicrosecond);
    add_path(svc, "entry", 1, 1.0, salt++);
    add_path(svc, "irq", 2, 1.0, salt++);
    add_path(svc, "time", 3, 1.5, salt++);
    add_path(svc, "sched", 3, 1.0, salt++);
    add(std::move(svc));
  }
  {  // context_switch: the scheduler's task swap path.
    KernelService svc = make("context_switch", 3 * kMicrosecond);
    add_path(svc, "sched", 5, 1.5, salt++);
    add_path(svc, "entry", 1, 1.0, salt++);
    add_path(svc, "mm", 1, 1.0, salt++);
    add(std::move(svc));
  }
  {  // irq_dispatch: device interrupt outside the tick.
    KernelService svc = make("irq_dispatch", 2 * kMicrosecond);
    add_path(svc, "entry", 1, 1.0, salt++);
    add_path(svc, "irq", 3, 1.5, salt++);
    add_path(svc, "drivers", 2, 1.0, salt++);
    add(std::move(svc));
  }
  {  // idle_loop: the cpu_idle body, swept repeatedly while the core waits.
     // Invoked once per idle millisecond by the scheduler.
    KernelService svc = make("idle_loop", 0);
    add_path(svc, "sched", 1, 12.0, salt++);
    add_path(svc, "time", 1, 4.0, salt++);
    add(std::move(svc));
  }
  {  // kworker: background kernel-thread housekeeping (flush, timers).
    KernelService svc = make("kworker", 15 * kMicrosecond);
    add_path(svc, "sched", 2, 1.0, salt++);
    add_path(svc, "fs", 3, 1.0, salt++);
    add_path(svc, "drivers", 3, 1.0, salt++);
    add_path(svc, "lib", 1, 2.0, salt++);
    add(std::move(svc));
  }
}

}  // namespace mhm::sim
