#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace mhm::sim {

/// How often a job of a task invokes one kernel service, and where within
/// the job's execution the invocations cluster.
struct SyscallUsage {
  std::string service;      ///< Name in the ServiceCatalog.
  double calls_per_job = 1; ///< Mean invocations per job (Poisson-ish).
  /// Placement of the calls inside the job: fraction of the job's execution
  /// at which the call window starts/ends (0 = job start, 1 = job end).
  /// E.g. {0, 1} spreads calls across the job; {0, 0.1} front-loads them.
  double window_begin = 0.0;
  double window_end = 1.0;
};

/// Static description of one periodic real-time task.
///
/// The default workload reproduces the paper's §5.1 task table:
///   FFT        2 ms / 10 ms   (telecomm)
///   bitcount   3 ms / 20 ms   (automotive)
///   basicmath  9 ms / 50 ms   (automotive)
///   sha       25 ms / 100 ms  (security)  — read-heavy (§5.3-3)
/// plus the attack-scenario task qsort (6 ms / 30 ms, §5.3-1).
struct TaskSpec {
  std::string name;
  SimTime exec_time = 0;      ///< Mean pure-execution demand per job.
  SimTime period = 0;         ///< Release period (deadline = next release).
  SimTime phase = 0;          ///< First release time offset.
  double exec_sigma = 0.02;   ///< Log-normal jitter on per-job demand.
  std::vector<SyscallUsage> syscalls;
  /// User-space address where the task's own code lives. Fetches there are
  /// emitted on the bus but fall outside the monitored kernel region — they
  /// exercise the Memometer's address filter like real user code would.
  Address user_text_base = 0x0001'0000;
  std::uint64_t user_text_size = 64 * 1024;

  /// Utilization = exec_time / period.
  double utilization() const;

  /// Throws ConfigError if exec_time/period are inconsistent.
  void validate() const;
};

/// The paper's four-task MiBench-like workload (78 % utilization).
std::vector<TaskSpec> paper_task_set();

/// A harmonic avionics-style workload (five rate groups at 5/10/20/40/80 ms,
/// all periods dividing the next): tighter determinism assumptions than the
/// MiBench set and a short hyperperiod, the kind of RTOS workload the
/// paper's conclusion targets. ~72 % utilization.
std::vector<TaskSpec> avionics_task_set();

/// The qsort task injected by the application-addition scenario (§5.3-1).
TaskSpec qsort_task_spec();

/// A small interactive-shell process, spawned by the shellcode scenario.
TaskSpec shell_task_spec();

/// Least common multiple of all task periods (the hyperperiod).
SimTime hyperperiod(const std::vector<TaskSpec>& tasks);

/// Total utilization of a task set.
double total_utilization(const std::vector<TaskSpec>& tasks);

}  // namespace mhm::sim
