#include "sim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace mhm::sim {

namespace {

/// Process-wide scheduler telemetry (aggregated across every simulated
/// system, including concurrent scenario fan-outs).
struct SchedMetrics {
  obs::Counter& preemptions = obs::Registry::instance().counter(
      "sim.sched.preemptions", "context switches onto a ready task");
  obs::Counter& deadline_misses = obs::Registry::instance().counter(
      "sim.sched.deadline_misses", "jobs that missed their deadline");
  obs::Counter& jobs_released = obs::Registry::instance().counter(
      "sim.sched.jobs_released", "periodic job releases");
  obs::Counter& jobs_completed = obs::Registry::instance().counter(
      "sim.sched.jobs_completed", "jobs run to completion");
  obs::Counter& syscalls = obs::Registry::instance().counter(
      "sim.sched.syscalls", "kernel service invocations");
  obs::Gauge& hyperperiod_phase_ns = obs::Registry::instance().gauge(
      "sim.sched.hyperperiod_phase_ns",
      "now() mod hyperperiod of the most recent scheduler tick");
};

SchedMetrics& sched_metrics() {
  static SchedMetrics m;
  return m;
}

}  // namespace

Scheduler::Scheduler(const ServiceCatalog& catalog, hw::MemoryBus& bus,
                     Rng rng)
    : catalog_(&catalog), bus_(&bus), rng_(rng) {
  extra_latency_.assign(catalog.size(), 0);
  svc_tick_ = catalog.id("sched_tick");
  svc_switch_ = catalog.id("context_switch");
  svc_idle_ = catalog.id("idle_loop");
  svc_fork_ = catalog.id("do_fork");
  svc_execve_ = catalog.id("do_execve");
  svc_exit_ = catalog.id("do_exit");
  next_tick_ = kTickPeriod;
}

std::size_t Scheduler::add_task(const TaskSpec& spec, bool emit_launch) {
  spec.validate();
  for (const auto& t : tasks_) {
    if (t.active && t.spec.name == spec.name) {
      throw ConfigError("Scheduler: task '" + spec.name + "' already exists");
    }
  }
  TaskRuntime rt;
  rt.spec = spec;
  rt.rng = rng_.fork(0x7A5Cull + tasks_.size());
  if (emit_launch) {
    // Process creation: fork + execve kernel paths run right now, then the
    // first job is released after a short startup delay.
    run_service_now("do_fork");
    run_service_now("do_execve");
    rt.next_release = now_ + spec.phase + 2 * kMillisecond;
  } else {
    rt.next_release = now_ + spec.phase;
  }
  tasks_.push_back(std::move(rt));
  reassign_priorities();
  return tasks_.size() - 1;
}

void Scheduler::kill_task(const std::string& name) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    TaskRuntime& t = tasks_[i];
    if (t.active && t.spec.name == name) {
      run_service_now("do_exit");
      t.active = false;
      t.job_pending = false;
      t.plan.clear();
      if (running_ && *running_ == i) running_.reset();
      return;
    }
  }
  throw ConfigError("Scheduler::kill_task: no active task '" + name + "'");
}

void Scheduler::inject_payload(const std::string& task,
                               std::vector<std::string> services,
                               bool kill_host) {
  for (auto& t : tasks_) {
    if (t.active && t.spec.name == task) {
      for (const auto& s : services) (void)catalog_->id(s);  // validate names
      t.injected_payload = std::move(services);
      t.kill_after_payload = kill_host;
      return;
    }
  }
  throw ConfigError("Scheduler::inject_payload: no active task '" + task +
                    "'");
}

void Scheduler::set_service_latency(const std::string& service,
                                    SimTime extra) {
  extra_latency_[catalog_->id(service)] = extra;
}

void Scheduler::run_service_now(const std::string& service) {
  const ServiceId sid = catalog_->id(service);
  (void)catalog_->invoke(sid, now_, *bus_, rng_, extra_latency_[sid]);
  ++stats_.syscalls;
  sched_metrics().syscalls.add();
}

void Scheduler::block_cpu(SimTime duration) {
  kernel_block_until_ = std::max(kernel_block_until_, now_ + duration);
}

void Scheduler::at(SimTime when, std::function<void()> action) {
  MHM_ASSERT(when >= now_, "Scheduler::at: cannot schedule in the past");
  actions_.emplace(when, std::move(action));
}

const TaskRuntime& Scheduler::task(const std::string& name) const {
  for (const auto& t : tasks_) {
    if (t.spec.name == name) return t;
  }
  throw ConfigError("Scheduler::task: unknown task '" + name + "'");
}

void Scheduler::reassign_priorities() {
  // Hyperperiod = LCM of active periods; capped so pathological period sets
  // cannot overflow SimTime (the phase gauge then simply never wraps).
  hyperperiod_ = 0;
  for (const auto& t : tasks_) {
    if (!t.active) continue;
    if (hyperperiod_ == 0) {
      hyperperiod_ = t.spec.period;
    } else if (hyperperiod_ / std::gcd(hyperperiod_, t.spec.period) <=
               std::numeric_limits<SimTime>::max() / t.spec.period) {
      hyperperiod_ = std::lcm(hyperperiod_, t.spec.period);
    } else {
      hyperperiod_ = std::numeric_limits<SimTime>::max();
    }
  }

  // Rate-monotonic: shorter period = higher priority (lower value); ties
  // broken by name for determinism.
  std::vector<std::size_t> order(tasks_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks_[a].spec.period != tasks_[b].spec.period) {
      return tasks_[a].spec.period < tasks_[b].spec.period;
    }
    return tasks_[a].spec.name < tasks_[b].spec.name;
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    tasks_[order[rank]].priority = rank;
  }
}

std::optional<std::size_t> Scheduler::pick_ready() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const TaskRuntime& t = tasks_[i];
    if (!t.active || !t.job_pending) continue;
    if (!best || t.priority < tasks_[*best].priority) best = i;
  }
  return best;
}

SimTime Scheduler::service_latency(ServiceId sid) const {
  return extra_latency_[sid];
}

std::vector<JobSegment> Scheduler::build_plan(TaskRuntime& task) {
  std::vector<JobSegment> plan;

  // One-shot injected payload (shellcode scenario): the payload's syscalls
  // execute at the start of this job; if it kills the host, nothing of the
  // normal job runs.
  if (!task.injected_payload.empty()) {
    for (const auto& name : task.injected_payload) {
      plan.push_back(JobSegment{.kind = JobSegment::Kind::Syscall,
                                .remaining = 0,
                                .service = catalog_->id(name)});
    }
    task.injected_payload.clear();
    if (task.kill_after_payload) return plan;
  }

  const double exec_jitter = task.rng.lognormal_jitter(task.spec.exec_sigma);
  const auto exec_total = static_cast<SimTime>(
      std::max(1.0, static_cast<double>(task.spec.exec_time) * exec_jitter));

  // Place syscalls at fractional positions of the job's execution.
  struct Placed {
    double position;
    ServiceId service;
  };
  std::vector<Placed> placed;
  for (const auto& usage : task.spec.syscalls) {
    const ServiceId sid = catalog_->id(usage.service);
    const double jittered =
        usage.calls_per_job * task.rng.lognormal_jitter(0.05);
    const auto calls =
        static_cast<std::size_t>(std::max(0.0, std::round(jittered)));
    for (std::size_t c = 0; c < calls; ++c) {
      // Even spacing inside the window with a little random slack keeps the
      // pattern periodic but not robotic.
      const double span = usage.window_end - usage.window_begin;
      const double base_pos =
          usage.window_begin +
          span * (static_cast<double>(c) + 0.5) / static_cast<double>(calls);
      const double slack = span / static_cast<double>(calls) * 0.3;
      const double pos = std::clamp(
          base_pos + task.rng.uniform(-slack, slack), 0.0, 1.0);
      placed.push_back(Placed{pos, sid});
    }
  }
  std::sort(placed.begin(), placed.end(),
            [](const Placed& a, const Placed& b) {
              return a.position < b.position;
            });

  double prev_fraction = 0.0;
  for (const auto& p : placed) {
    const auto compute = static_cast<SimTime>(
        (p.position - prev_fraction) * static_cast<double>(exec_total));
    if (compute > 0) {
      plan.push_back(JobSegment{.kind = JobSegment::Kind::UserCompute,
                                .remaining = compute});
    }
    plan.push_back(JobSegment{.kind = JobSegment::Kind::Syscall,
                              .remaining = 0,
                              .service = p.service});
    prev_fraction = p.position;
  }
  const auto tail = static_cast<SimTime>(
      (1.0 - prev_fraction) * static_cast<double>(exec_total));
  if (tail > 0 || plan.empty()) {
    plan.push_back(JobSegment{.kind = JobSegment::Kind::UserCompute,
                              .remaining = std::max<SimTime>(tail, 1)});
  }
  return plan;
}

void Scheduler::release_job(std::size_t i) {
  TaskRuntime& t = tasks_[i];
  if (t.job_pending) {
    // Previous job overran its period: deadline miss; the stale job is
    // dropped so the task re-synchronizes (typical watchdog behaviour).
    ++t.deadline_misses;
    ++stats_.deadline_misses;
    sched_metrics().deadline_misses.add();
    if (running_ && *running_ == i) running_.reset();
  }
  t.job_pending = true;
  t.plan = build_plan(t);
  t.segment_index = 0;
  t.job_release_time = t.next_release;
  t.job_deadline = t.next_release + t.spec.period;
  ++t.jobs_released;
  ++stats_.jobs_released;
  sched_metrics().jobs_released.add();
  t.next_release += t.spec.period;
}

void Scheduler::complete_job(std::size_t i) {
  TaskRuntime& t = tasks_[i];
  t.job_pending = false;
  t.plan.clear();
  ++t.jobs_completed;
  ++stats_.jobs_completed;
  sched_metrics().jobs_completed.add();
  const SimTime response = now_ - t.job_release_time;
  t.worst_response = std::max(t.worst_response, response);
  t.total_response += response;
  if (now_ > t.job_deadline) {
    ++t.deadline_misses;
    ++stats_.deadline_misses;
    sched_metrics().deadline_misses.add();
  }
  if (running_ && *running_ == i) running_.reset();
  if (t.kill_after_payload) {
    // Shellcode spawned a shell and killed its host process.
    run_service_now("do_exit");
    t.active = false;
    t.kill_after_payload = false;
  }
}

void Scheduler::emit_idle(SimTime from, SimTime until) {
  MHM_ASSERT(until >= from, "emit_idle: inverted span");
  const SimTime span = until - from;
  if (span == 0) return;
  stats_.idle_time += span;
  // The idle loop sweeps its kernel functions at a rate proportional to the
  // idle duration (one nominal invocation per idle millisecond).
  const double scale =
      static_cast<double>(span) / static_cast<double>(kMillisecond);
  const KernelService& svc = catalog_->service(svc_idle_);
  for (const auto& step : svc.steps) {
    const auto& fn = catalog_->image().function(step.function);
    const double jitter = rng_.lognormal_jitter(svc.sweep_sigma);
    const auto sweeps = static_cast<std::uint64_t>(
        std::max(1.0, std::round(step.mean_sweeps * scale * jitter)));
    bus_->publish(hw::AccessBurst{.time = from,
                                  .base = fn.address,
                                  .size_bytes = fn.size_bytes,
                                  .sweeps = sweeps});
  }
}

void Scheduler::process_tick() {
  ++stats_.ticks;
  if (hyperperiod_ > 0) {
    sched_metrics().hyperperiod_phase_ns.set(
        static_cast<double>(now_ % hyperperiod_));
  }
  (void)catalog_->invoke(svc_tick_, now_, *bus_, rng_);
}

void Scheduler::execute_window(SimTime until) {
  while (now_ < until) {
    if (now_ < kernel_block_until_) {
      // Non-preemptible kernel work holds the core: time passes as busy
      // without any task progress.
      const SimTime span = std::min(until, kernel_block_until_) - now_;
      stats_.busy_time += span;
      now_ += span;
      continue;
    }
    const auto ready = pick_ready();
    if (ready != running_) {
      if (ready) {
        // Switching onto a (different) task: context-switch path runs.
        (void)catalog_->invoke(svc_switch_, now_, *bus_, rng_);
        ++stats_.context_switches;
        sched_metrics().preemptions.add();
      }
      running_ = ready;
    }
    if (!running_) {
      emit_idle(now_, until);
      now_ = until;
      return;
    }

    TaskRuntime& t = tasks_[*running_];
    MHM_ASSERT(t.segment_index < t.plan.size(),
               "execute_window: running job has no segments");
    JobSegment& seg = t.plan[t.segment_index];

    if (seg.kind == JobSegment::Kind::Syscall && !seg.service_emitted) {
      // Kernel path fetches hit the bus when the syscall enters; the
      // syscall's (jittered) duration plus any hijack latency becomes the
      // segment's CPU demand.
      seg.remaining = catalog_->invoke(seg.service, now_, *bus_, t.rng,
                                       service_latency(seg.service));
      seg.service_emitted = true;
      ++stats_.syscalls;
      sched_metrics().syscalls.add();
    }
    if (seg.kind == JobSegment::Kind::UserCompute && !seg.service_emitted) {
      // User-space instruction fetches: outside the monitored kernel region,
      // but published so the Memometer's address filter sees realistic
      // traffic. One burst over a slice of the task's text per segment.
      const std::uint64_t slice = std::max<std::uint64_t>(
          256, t.spec.user_text_size / 16);
      const auto offset = static_cast<std::uint64_t>(t.rng.uniform_int(
          0, static_cast<std::int64_t>(t.spec.user_text_size - slice)));
      bus_->publish(hw::AccessBurst{
          .time = now_,
          .base = t.spec.user_text_base + (offset & ~3ull),
          .size_bytes = slice,
          .sweeps = 1 + static_cast<std::uint64_t>(
                        seg.remaining / (100 * kMicrosecond))});
      seg.service_emitted = true;
    }

    const SimTime run = std::min<SimTime>(seg.remaining, until - now_);
    seg.remaining -= run;
    stats_.busy_time += run;
    now_ += run;

    if (seg.remaining == 0) {
      ++t.segment_index;
      if (t.segment_index >= t.plan.size()) complete_job(*running_);
    }
  }
}

void Scheduler::run_until(SimTime end_time) {
  MHM_ASSERT(end_time >= now_, "run_until: end time in the past");
  while (now_ < end_time) {
    // 1. Fire everything due at the current instant.
    bool fired = true;
    while (fired) {
      fired = false;
      while (next_tick_ <= now_) {
        process_tick();
        next_tick_ += kTickPeriod;
        fired = true;
      }
      while (!actions_.empty() && actions_.begin()->first <= now_) {
        auto action = std::move(actions_.begin()->second);
        actions_.erase(actions_.begin());
        action();
        fired = true;
      }
      for (std::size_t i = 0; i < tasks_.size(); ++i) {
        while (tasks_[i].active && tasks_[i].next_release <= now_) {
          release_job(i);
          fired = true;
        }
      }
    }

    // 2. Find the next event horizon.
    SimTime horizon = std::min(end_time, next_tick_);
    if (!actions_.empty()) horizon = std::min(horizon, actions_.begin()->first);
    for (const auto& t : tasks_) {
      if (t.active) horizon = std::min(horizon, t.next_release);
    }
    MHM_ASSERT(horizon > now_, "run_until: event horizon did not advance");

    // 3. Run the CPU up to the horizon.
    execute_window(horizon);
    bus_->advance_time(now_);
  }
}

}  // namespace mhm::sim
