#include "sim/system.hpp"

#include "common/error.hpp"

namespace mhm::sim {

SystemConfig SystemConfig::paper_default(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.kernel = KernelImage::Params{};
  cfg.monitor = MhmConfig::paper_default();
  cfg.tasks = paper_task_set();
  cfg.seed = seed;
  return cfg;
}

System::System(const SystemConfig& config)
    : config_(config),
      kernel_(config.kernel),
      catalog_(kernel_, config.jitter_scale),
      kworker_rng_(Rng(config.seed).fork(0xBEEF)) {
  config_.monitor.validate();
  // Make sure the monitored region matches the synthetic kernel image.
  if (config_.monitor.base < kernel_.base() ||
      config_.monitor.base + config_.monitor.size > kernel_.text_end()) {
    throw ConfigError(
        "System: monitored region must lie inside the kernel .text segment");
  }
  if (config_.monitor.interval % Scheduler::kTickPeriod != 0) {
    throw ConfigError(
        "System: monitoring interval must be a multiple of the 1 ms tick so "
        "interval boundaries align with bus time updates");
  }

  // Wire the snoop topology (Figure 3 / §5.5 ablation).
  auto on_ready = [this](const HeatMap& map) {
    trace_.push_back(map);
    if (observer_) observer_(map);
  };
  switch (config_.snoop_point) {
    case SnoopPoint::PreL1:
      memometer_ = std::make_unique<hw::Memometer>(config_.monitor, 0,
                                                   on_ready);
      bus_.attach(memometer_.get());
      break;
    case SnoopPoint::PostL1:
      memometer_ = std::make_unique<hw::Memometer>(config_.monitor, 0,
                                                   on_ready);
      post_l1_bus_.attach(memometer_.get());
      l1_ = std::make_unique<hw::CacheModel>(config_.l1, &post_l1_bus_);
      bus_.attach(l1_.get());
      break;
    case SnoopPoint::PostL2:
      memometer_ = std::make_unique<hw::Memometer>(config_.monitor, 0,
                                                   on_ready);
      post_l2_bus_.attach(memometer_.get());
      l2_ = std::make_unique<hw::CacheModel>(config_.l2, &post_l2_bus_);
      post_l1_bus_.attach(l2_.get());
      l1_ = std::make_unique<hw::CacheModel>(config_.l1, &post_l1_bus_);
      bus_.attach(l1_.get());
      break;
  }

  scheduler_ = std::make_unique<Scheduler>(catalog_, bus_, Rng(config.seed));
  for (const auto& spec : config_.tasks) {
    scheduler_->add_task(scaled_jitter(spec));
  }
  if (config_.kworker_mean_period > 0) schedule_kworker();
  if (config_.device_irq_mean_period > 0) schedule_device_irq();
}

TaskSpec System::scaled_jitter(TaskSpec spec) const {
  spec.exec_sigma *= config_.jitter_scale;
  return spec;
}

System::~System() = default;

void System::schedule_kworker() {
  // Background kernel-thread housekeeping fires at exponentially distributed
  // gaps; each occurrence runs the kworker service path and re-arms itself.
  const double mean = static_cast<double>(config_.kworker_mean_period);
  const auto gap = static_cast<SimTime>(
      std::max(1.0, kworker_rng_.exponential(1.0 / mean)));
  scheduler_->at(scheduler_->now() + gap, [this] {
    scheduler_->run_service_now("kworker");
    schedule_kworker();
  });
}

void System::schedule_device_irq() {
  // Sporadic peripheral interrupts: exponentially distributed arrivals
  // through the irq_dispatch kernel path, re-arming after each one.
  const double mean = static_cast<double>(config_.device_irq_mean_period);
  const auto gap = static_cast<SimTime>(
      std::max(1.0, kworker_rng_.exponential(1.0 / mean)));
  scheduler_->at(scheduler_->now() + gap, [this] {
    scheduler_->run_service_now("irq_dispatch");
    schedule_device_irq();
  });
}

void System::run_for(SimTime duration) {
  scheduler_->run_until(scheduler_->now() + duration);
}

void System::set_interval_observer(
    std::function<void(const HeatMap&)> observer) {
  observer_ = std::move(observer);
}

HeatMapTrace System::take_trace() {
  HeatMapTrace out = std::move(trace_);
  trace_.clear();
  return out;
}

}  // namespace mhm::sim
