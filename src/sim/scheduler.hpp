#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/memory_bus.hpp"
#include "sim/kernel_services.hpp"
#include "sim/task.hpp"

namespace mhm::sim {

/// One planned slice of a job's execution.
struct JobSegment {
  enum class Kind { UserCompute, Syscall };
  Kind kind = Kind::UserCompute;
  SimTime remaining = 0;     ///< CPU time left in this segment.
  ServiceId service = 0;     ///< For Syscall segments.
  bool service_emitted = false;  ///< Fetches emitted when the segment starts.
};

/// Scheduler-facing runtime state of one task.
struct TaskRuntime {
  TaskSpec spec;
  std::size_t priority = 0;       ///< Lower value = higher priority (RM).
  Rng rng;                        ///< Per-task jitter stream.
  bool active = true;             ///< False once killed/removed.
  SimTime next_release = 0;
  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t deadline_misses = 0;
  SimTime job_release_time = 0;   ///< Release instant of the pending job.
  SimTime worst_response = 0;     ///< Max observed release-to-completion.
  SimTime total_response = 0;     ///< Sum over completed jobs (for the mean).

  /// Mean observed response time (0 if no job completed yet).
  SimTime mean_response() const {
    return jobs_completed == 0 ? 0 : total_response / jobs_completed;
  }
  bool job_pending = false;       ///< A released job awaits/executes.
  SimTime job_deadline = 0;
  std::vector<JobSegment> plan;   ///< Remaining segments of the pending job.
  std::size_t segment_index = 0;
  /// One-shot syscall sequence prepended to the *next* job (attack hook:
  /// shellcode payload executes inside the victim's job).
  std::vector<std::string> injected_payload;
  bool kill_after_payload = false;
};

/// Aggregate statistics of a simulation run.
struct SchedulerStats {
  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t ticks = 0;
  std::uint64_t syscalls = 0;
  SimTime idle_time = 0;
  SimTime busy_time = 0;

  double cpu_utilization() const {
    const SimTime total = idle_time + busy_time;
    return total == 0 ? 0.0
                      : static_cast<double>(busy_time) /
                            static_cast<double>(total);
  }
};

/// Preemptive fixed-priority (rate-monotonic) scheduler for one monitored
/// core, driving kernel-service fetch emission onto the memory bus.
///
/// Time advances event-by-event: task releases, the 1 ms scheduler tick,
/// job segment boundaries and externally scheduled actions (attack hooks).
/// Between events the highest-priority pending job consumes CPU; when no
/// job is pending the core runs the kernel idle loop (which, like a real
/// idle loop, still fetches kernel text every millisecond tick).
class Scheduler {
 public:
  static constexpr SimTime kTickPeriod = 1 * kMillisecond;

  Scheduler(const ServiceCatalog& catalog, hw::MemoryBus& bus, Rng rng);

  /// Add a task before or during the run. Returns the task index. When
  /// `emit_launch` is set the kernel process-creation path (do_fork +
  /// do_execve) executes first — the application-addition scenario.
  std::size_t add_task(const TaskSpec& spec, bool emit_launch = false);

  /// Kill a task (do_exit path, job dropped, no further releases).
  void kill_task(const std::string& name);

  /// Inject a one-shot syscall payload into the next job of `task`
  /// (shellcode scenario). If `kill_host` the task dies after the payload.
  void inject_payload(const std::string& task,
                      std::vector<std::string> services, bool kill_host);

  /// Add extra latency to every invocation of `service` (rootkit hijack:
  /// the detour runs outside the monitored region, so it costs time but
  /// emits no monitored fetches).
  void set_service_latency(const std::string& service, SimTime extra);

  /// Execute a kernel service immediately at current time, outside any
  /// task context (e.g. the module loader running from insmod).
  void run_service_now(const std::string& service);

  /// Occupy the CPU with non-preemptible kernel work for `duration`
  /// starting now: no task makes progress and the core does not idle.
  /// Models heavyweight kernel paths (module loading/linking) that delay
  /// every task — the timing perturbation real attacks cause.
  void block_cpu(SimTime duration);

  /// Schedule `action` to run at absolute simulated time `when` (>= now).
  void at(SimTime when, std::function<void()> action);

  /// Advance the simulation until `end_time`.
  void run_until(SimTime end_time);

  SimTime now() const { return now_; }
  const SchedulerStats& stats() const { return stats_; }
  /// LCM of the active task periods (0 while no task is registered); the
  /// hyperperiod-phase gauge reports `now() % hyperperiod()`.
  SimTime hyperperiod() const { return hyperperiod_; }
  const std::vector<TaskRuntime>& tasks() const { return tasks_; }
  const TaskRuntime& task(const std::string& name) const;

 private:
  /// Index of the highest-priority task with a pending job, if any.
  std::optional<std::size_t> pick_ready() const;

  /// Build the execution plan (segments) for a newly released job.
  std::vector<JobSegment> build_plan(TaskRuntime& task);

  /// Release a job of task `i` at time `now_` and schedule the next release.
  void release_job(std::size_t i);

  /// Handle completion of the pending job of task `i`.
  void complete_job(std::size_t i);

  /// Run the CPU from now_ to `until` (exclusive), executing the current
  /// job or idling. Returns when `until` is reached or a job completes.
  void execute_window(SimTime until);

  /// Emit the idle loop's fetches for an idle span ending at `until`.
  void emit_idle(SimTime from, SimTime until);

  void process_tick();

  /// Assign rate-monotonic priorities from current periods.
  void reassign_priorities();

  SimTime service_latency(ServiceId sid) const;

  const ServiceCatalog* catalog_;
  hw::MemoryBus* bus_;
  Rng rng_;
  std::vector<TaskRuntime> tasks_;
  std::multimap<SimTime, std::function<void()>> actions_;
  std::vector<SimTime> extra_latency_;  ///< Indexed by ServiceId.
  SimTime now_ = 0;
  SimTime next_tick_ = 0;
  SimTime hyperperiod_ = 0;  ///< LCM of active periods (overflow-capped).
  SimTime kernel_block_until_ = 0;  ///< CPU reserved by block_cpu().
  std::optional<std::size_t> running_;  ///< Task currently on the CPU.
  SchedulerStats stats_;
  // Cached service ids used by internal paths.
  ServiceId svc_tick_;
  ServiceId svc_switch_;
  ServiceId svc_idle_;
  ServiceId svc_fork_;
  ServiceId svc_execve_;
  ServiceId svc_exit_;
};

}  // namespace mhm::sim
