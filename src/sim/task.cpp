#include "sim/task.hpp"

#include <numeric>

#include "common/error.hpp"

namespace mhm::sim {

double TaskSpec::utilization() const {
  MHM_ASSERT(period > 0, "TaskSpec::utilization: period must be positive");
  return static_cast<double>(exec_time) / static_cast<double>(period);
}

void TaskSpec::validate() const {
  if (name.empty()) throw ConfigError("TaskSpec: name must be non-empty");
  if (period == 0) throw ConfigError("TaskSpec '" + name + "': period == 0");
  if (exec_time == 0 || exec_time > period) {
    throw ConfigError("TaskSpec '" + name +
                      "': exec_time must be in (0, period]");
  }
  for (const auto& sc : syscalls) {
    if (sc.calls_per_job < 0.0 || sc.window_begin < 0.0 ||
        sc.window_end > 1.0 || sc.window_begin > sc.window_end) {
      throw ConfigError("TaskSpec '" + name + "': bad syscall usage for '" +
                        sc.service + "'");
    }
  }
}

std::vector<TaskSpec> paper_task_set() {
  std::vector<TaskSpec> tasks;

  {  // FFT — telecomm; samples a clock, light I/O.
    TaskSpec t;
    t.name = "FFT";
    t.exec_time = 2 * kMillisecond;
    t.period = 10 * kMillisecond;
    t.user_text_base = 0x0001'0000;
    t.syscalls = {
        {.service = "sys_gettimeofday", .calls_per_job = 2},
        {.service = "sys_read", .calls_per_job = 1, .window_begin = 0.0,
         .window_end = 0.2},
        {.service = "sys_write", .calls_per_job = 1, .window_begin = 0.8,
         .window_end = 1.0},
    };
    tasks.push_back(std::move(t));
  }
  {  // bitcount — automotive; almost pure computation.
    TaskSpec t;
    t.name = "bitcount";
    t.exec_time = 3 * kMillisecond;
    t.period = 20 * kMillisecond;
    t.user_text_base = 0x0003'0000;
    t.syscalls = {
        {.service = "sys_gettimeofday", .calls_per_job = 1},
        {.service = "sys_write", .calls_per_job = 1, .window_begin = 0.9,
         .window_end = 1.0},
    };
    tasks.push_back(std::move(t));
  }
  {  // basicmath — automotive; some memory management traffic.
    TaskSpec t;
    t.name = "basicmath";
    t.exec_time = 9 * kMillisecond;
    t.period = 50 * kMillisecond;
    t.user_text_base = 0x0005'0000;
    t.syscalls = {
        {.service = "sys_gettimeofday", .calls_per_job = 1},
        {.service = "sys_brk", .calls_per_job = 2, .window_begin = 0.0,
         .window_end = 0.3},
        {.service = "sys_write", .calls_per_job = 2, .window_begin = 0.5,
         .window_end = 1.0},
    };
    tasks.push_back(std::move(t));
  }
  {  // sha — security; streams its input through many read() calls, which
     // is what couples it to the rootkit's read hijack in §5.3-3.
    TaskSpec t;
    t.name = "sha";
    t.exec_time = 25 * kMillisecond;
    t.period = 100 * kMillisecond;
    t.user_text_base = 0x0007'0000;
    t.syscalls = {
        {.service = "sys_open", .calls_per_job = 1, .window_begin = 0.0,
         .window_end = 0.05},
        {.service = "sys_read", .calls_per_job = 100, .window_begin = 0.05,
         .window_end = 0.9},
        {.service = "sys_close", .calls_per_job = 1, .window_begin = 0.9,
         .window_end = 1.0},
        {.service = "sys_write", .calls_per_job = 1, .window_begin = 0.95,
         .window_end = 1.0},
    };
    tasks.push_back(std::move(t));
  }

  for (auto& t : tasks) t.validate();
  return tasks;
}

std::vector<TaskSpec> avionics_task_set() {
  // Harmonic rate groups, the classic avionics arrangement: each period
  // divides the next, so the hyperperiod equals the slowest period (80 ms)
  // and the schedule repeats quickly. Syscall usage is lean — mostly clock
  // reads and short I/O — as in a federated RTOS partition.
  struct Plan {
    const char* name;
    SimTime exec;
    SimTime period;
    Address text_base;
  };
  const Plan plans[] = {
      {"attitude_ctrl", 1 * kMillisecond, 5 * kMillisecond, 0x0011'0000},
      {"rate_damping", 2 * kMillisecond, 10 * kMillisecond, 0x0013'0000},
      {"nav_filter", 4 * kMillisecond, 20 * kMillisecond, 0x0015'0000},
      {"guidance", 6 * kMillisecond, 40 * kMillisecond, 0x0017'0000},
      {"telemetry", 8 * kMillisecond, 80 * kMillisecond, 0x0019'0000},
  };
  std::vector<TaskSpec> tasks;
  for (const auto& plan : plans) {
    TaskSpec t;
    t.name = plan.name;
    t.exec_time = plan.exec;
    t.period = plan.period;
    t.user_text_base = plan.text_base;
    t.exec_sigma = 0.005;  // RTOS-grade execution-time determinism
    t.syscalls = {
        {.service = "sys_gettimeofday", .calls_per_job = 1},
        {.service = "sys_read", .calls_per_job = 2, .window_begin = 0.0,
         .window_end = 0.3},
        {.service = "sys_write", .calls_per_job = 1, .window_begin = 0.8,
         .window_end = 1.0},
    };
    tasks.push_back(std::move(t));
  }
  // telemetry streams more output than the control loops.
  tasks.back().syscalls.push_back({.service = "sys_write",
                                   .calls_per_job = 10,
                                   .window_begin = 0.2,
                                   .window_end = 0.9});
  for (auto& t : tasks) t.validate();
  return tasks;
}

TaskSpec qsort_task_spec() {
  // §5.3-1's injected application: sorts a freshly read dataset each job,
  // so it streams its input through read(), grows its heap while building
  // the work array and writes the sorted output back.
  TaskSpec t;
  t.name = "qsort";
  t.exec_time = 6 * kMillisecond;
  t.period = 30 * kMillisecond;
  t.user_text_base = 0x0009'0000;
  t.syscalls = {
      {.service = "sys_open", .calls_per_job = 1, .window_begin = 0.0,
       .window_end = 0.05},
      {.service = "sys_read", .calls_per_job = 12, .window_begin = 0.05,
       .window_end = 0.35},
      {.service = "sys_brk", .calls_per_job = 3, .window_begin = 0.0,
       .window_end = 0.3},
      {.service = "sys_write", .calls_per_job = 5, .window_begin = 0.7,
       .window_end = 1.0},
      {.service = "sys_close", .calls_per_job = 1, .window_begin = 0.95,
       .window_end = 1.0},
  };
  t.validate();
  return t;
}

TaskSpec shell_task_spec() {
  TaskSpec t;
  t.name = "sh";
  t.exec_time = 500 * kMicrosecond;
  t.period = 40 * kMillisecond;
  t.user_text_base = 0x000B'0000;
  t.syscalls = {
      {.service = "sys_read", .calls_per_job = 2},
      {.service = "sys_write", .calls_per_job = 1},
      {.service = "sys_nanosleep", .calls_per_job = 1, .window_begin = 0.9,
       .window_end = 1.0},
  };
  t.validate();
  return t;
}

SimTime hyperperiod(const std::vector<TaskSpec>& tasks) {
  SimTime lcm = 1;
  for (const auto& t : tasks) {
    MHM_ASSERT(t.period > 0, "hyperperiod: zero period");
    lcm = std::lcm(lcm, t.period);
  }
  return lcm;
}

double total_utilization(const std::vector<TaskSpec>& tasks) {
  double u = 0.0;
  for (const auto& t : tasks) u += t.utilization();
  return u;
}

}  // namespace mhm::sim
