#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/heatmap.hpp"
#include "hw/cache_model.hpp"
#include "hw/memometer.hpp"
#include "hw/memory_bus.hpp"
#include "sim/kernel_image.hpp"
#include "sim/kernel_services.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace mhm::sim {

/// Where the Memometer snoops (§3.1 and §5.5):
///  * PreL1  — on the address line between core and L1 (the paper's choice;
///             sees every fetch).
///  * PostL1 — below the L1: only L1 misses are visible.
///  * PostL2 — below a shared L2: only L2 misses are visible.
enum class SnoopPoint { PreL1, PostL1, PostL2 };

/// Configuration of one simulated monitored system.
struct SystemConfig {
  KernelImage::Params kernel;          ///< Synthetic kernel layout.
  MhmConfig monitor;                   ///< Memometer parameters.
  std::vector<TaskSpec> tasks;         ///< Initial periodic task set.
  std::uint64_t seed = 1;              ///< Master seed for all jitter.
  SnoopPoint snoop_point = SnoopPoint::PreL1;
  hw::CacheGeometry l1 = hw::CacheGeometry::l1_default();
  hw::CacheGeometry l2 = hw::CacheGeometry::l2_default();
  /// Mean inter-arrival of background kworker activity (0 disables).
  SimTime kworker_mean_period = 7 * kMillisecond;
  /// Mean inter-arrival of device interrupts (irq_dispatch path;
  /// 0 disables). Models sporadic peripheral activity beyond the tick.
  SimTime device_irq_mean_period = 0;
  /// Scales every stochastic sigma in the workload (service durations,
  /// sweep counts, task execution demand). 1.0 = embedded-Linux-like
  /// default; 0.0 = fully deterministic RTOS (paper's conclusion); > 1 =
  /// noisy general-purpose system (§5.5's false-positive concern).
  double jitter_scale = 1.0;

  /// The paper's §5.1 prototype: four MiBench-like tasks, kernel .text
  /// monitoring at δ = 2 KB / 10 ms intervals, pre-L1 snooping.
  static SystemConfig paper_default(std::uint64_t seed = 1);
};

/// One fully wired monitored system: synthetic kernel + service catalog +
/// rate-monotonic scheduler + memory bus + (optional cache hierarchy) +
/// Memometer. Running it produces the stream of Memory Heat Maps that the
/// secure core analyzes.
class System {
 public:
  explicit System(const SystemConfig& config);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Advance the simulation; every completed monitoring interval appends an
  /// MHM to `trace()` and invokes the optional observer.
  void run_for(SimTime duration);

  /// Register an additional per-interval observer (the secure core's
  /// detector hook). Called after the map is appended to the trace.
  void set_interval_observer(std::function<void(const HeatMap&)> observer);

  /// --- attack / runtime-manipulation hooks (delegate to the scheduler) ---
  void launch_task(const TaskSpec& spec) {
    scheduler_->add_task(scaled_jitter(spec), true);
  }
  void kill_task(const std::string& name) { scheduler_->kill_task(name); }
  void inject_payload(const std::string& task,
                      std::vector<std::string> services, bool kill_host) {
    scheduler_->inject_payload(task, std::move(services), kill_host);
  }
  void set_service_latency(const std::string& service, SimTime extra) {
    scheduler_->set_service_latency(service, extra);
  }
  void run_service_now(const std::string& service) {
    scheduler_->run_service_now(service);
  }
  void at(SimTime when, std::function<void()> action) {
    scheduler_->at(when, std::move(action));
  }

  /// --- accessors ---
  SimTime now() const { return scheduler_->now(); }
  const HeatMapTrace& trace() const { return trace_; }
  HeatMapTrace take_trace();  ///< Move the trace out and clear it.
  const KernelImage& kernel() const { return kernel_; }
  const ServiceCatalog& services() const { return catalog_; }
  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  const hw::Memometer& memometer() const { return *memometer_; }
  const hw::MemoryBus& bus() const { return bus_; }
  const hw::CacheModel* l1_cache() const { return l1_.get(); }
  const hw::CacheModel* l2_cache() const { return l2_.get(); }
  const SystemConfig& config() const { return config_; }

 private:
  void schedule_kworker();
  void schedule_device_irq();

  /// Apply the config's jitter_scale to a task spec's stochastic knobs.
  TaskSpec scaled_jitter(TaskSpec spec) const;

  SystemConfig config_;
  KernelImage kernel_;
  ServiceCatalog catalog_;
  hw::MemoryBus bus_;            ///< Core-to-L1 address bus.
  hw::MemoryBus post_l1_bus_;    ///< L1 miss stream.
  hw::MemoryBus post_l2_bus_;    ///< L2 miss stream.
  std::unique_ptr<hw::CacheModel> l1_;
  std::unique_ptr<hw::CacheModel> l2_;
  std::unique_ptr<hw::Memometer> memometer_;
  std::unique_ptr<Scheduler> scheduler_;
  Rng kworker_rng_;
  HeatMapTrace trace_;
  std::function<void(const HeatMap&)> observer_;
};

}  // namespace mhm::sim
