#include "sim/kernel_image.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mhm::sim {

namespace {

struct SubsystemPlan {
  const char* name;
  double fraction;  ///< Share of .text; normalized during layout.
};

/// Link-order plan loosely following an embedded Linux kernel's section map.
/// Fractions approximate the relative .text footprint of each subsystem.
constexpr SubsystemPlan kPlan[] = {
    {"entry", 0.010},      // low-level entry/exit stubs, vector handling
    {"sched", 0.045},      // scheduler core, context switch
    {"irq", 0.025},        // interrupt dispatch
    {"time", 0.030},       // timers, clock events, hrtimers
    {"syscall", 0.015},    // syscall dispatch table + wrappers
    {"signal", 0.030},     // signal delivery
    {"fork_exec", 0.060},  // process creation/teardown (fork/exec/exit)
    {"mm", 0.110},         // memory management, page fault, mmap/brk
    {"fs", 0.180},         // VFS + embedded filesystem
    {"ipc", 0.030},        // pipes, futex, sysv ipc
    {"module", 0.025},     // module loader
    {"security", 0.020},   // LSM hooks, capability checks
    {"drivers", 0.190},    // char/block/console drivers
    {"net", 0.130},        // network stack
    {"crypto", 0.040},     // crypto primitives
    {"lib", 0.060},        // memcpy/string/bitops helpers
};

}  // namespace

KernelImage::KernelImage(const Params& params) : params_(params) {
  if (params_.text_size == 0) {
    throw ConfigError("KernelImage: text_size must be positive");
  }
  build_layout();
}

void KernelImage::build_layout() {
  double fraction_sum = 0.0;
  for (const auto& plan : kPlan) fraction_sum += plan.fraction;

  Rng rng(params_.seed);
  Address cursor = params_.base;
  const Address text_end_addr = text_end();

  for (const auto& plan : kPlan) {
    KernelSubsystem sub;
    sub.name = plan.name;
    sub.text_fraction = plan.fraction / fraction_sum;
    sub.begin = cursor;
    const auto span = static_cast<std::uint64_t>(
        sub.text_fraction * static_cast<double>(params_.text_size));
    Address sub_end = std::min<Address>(cursor + span, text_end_addr);
    if (&plan == &kPlan[std::size(kPlan) - 1]) {
      sub_end = text_end_addr;  // last subsystem absorbs rounding slack
    }
    sub.first_function = functions_.size();

    Rng sub_rng = rng.fork(subsystems_.size() + 1);
    std::size_t fn_counter = 0;
    while (cursor + 16 <= sub_end) {
      // Log-normal function sizes, 4-byte aligned, min 16 bytes.
      const double raw = params_.mean_function_size *
                         sub_rng.lognormal_jitter(params_.function_size_sigma);
      std::uint64_t size =
          std::max<std::uint64_t>(16, static_cast<std::uint64_t>(raw) & ~3ull);
      size = std::min<std::uint64_t>(size, sub_end - cursor);
      KernelFunction fn;
      fn.name = sub.name + "_fn" + std::to_string(fn_counter++);
      fn.address = cursor;
      fn.size_bytes = size;
      fn.subsystem = subsystems_.size();
      functions_.push_back(std::move(fn));
      cursor += size;
    }
    // Any tail smaller than a minimal function merges into the last one.
    if (cursor < sub_end && !functions_.empty() &&
        functions_.back().subsystem == subsystems_.size()) {
      functions_.back().size_bytes += sub_end - cursor;
    }
    cursor = sub_end;
    sub.end = sub_end;
    sub.function_count = functions_.size() - sub.first_function;
    subsystem_by_name_[sub.name] = subsystems_.size();
    subsystems_.push_back(std::move(sub));
  }
  MHM_ASSERT(cursor == text_end_addr, "KernelImage: layout must cover .text");
}

const KernelFunction& KernelImage::function(std::size_t index) const {
  MHM_ASSERT(index < functions_.size(), "KernelImage: function out of range");
  return functions_[index];
}

std::size_t KernelImage::subsystem_index(const std::string& name) const {
  const auto it = subsystem_by_name_.find(name);
  if (it == subsystem_by_name_.end()) {
    throw ConfigError("KernelImage: unknown subsystem '" + name + "'");
  }
  return it->second;
}

const KernelSubsystem& KernelImage::subsystem(const std::string& name) const {
  return subsystems_[subsystem_index(name)];
}

std::vector<std::size_t> KernelImage::pick_functions(
    const std::string& subsystem_name, std::size_t count,
    std::uint64_t salt) const {
  const KernelSubsystem& sub = subsystems_[subsystem_index(subsystem_name)];
  MHM_ASSERT(sub.function_count > 0, "pick_functions: empty subsystem");
  count = std::min(count, sub.function_count);

  // Deterministic spread: stride through the subsystem starting at a
  // salt-dependent offset, so distinct services touch distinct (but
  // overlapping, as in a real call graph) function sets.
  Rng rng(params_.seed ^ (salt * 0x9E3779B97F4A7C15ull));
  std::vector<std::size_t> out;
  out.reserve(count);
  const std::size_t start = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(sub.function_count) - 1));
  const std::size_t stride =
      std::max<std::size_t>(1, sub.function_count / (count + 1));
  for (std::size_t k = 0; k < count; ++k) {
    out.push_back(sub.first_function +
                  (start + k * stride) % sub.function_count);
  }
  return out;
}

const KernelFunction* KernelImage::function_at(Address addr) const {
  if (addr < params_.base || addr >= text_end()) return nullptr;
  // Binary search over the sorted function start addresses.
  auto it = std::upper_bound(
      functions_.begin(), functions_.end(), addr,
      [](Address a, const KernelFunction& f) { return a < f.address; });
  if (it == functions_.begin()) return nullptr;
  --it;
  return addr < it->end() ? &*it : nullptr;
}

}  // namespace mhm::sim
