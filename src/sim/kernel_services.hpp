#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/memory_bus.hpp"
#include "sim/kernel_image.hpp"

namespace mhm::sim {

/// One step of a kernel service's execution path: execute `function` bodies
/// `mean_sweeps` times (loops / repeated helper calls).
struct ServiceStep {
  std::size_t function = 0;   ///< Index into KernelImage::functions().
  double mean_sweeps = 1.0;   ///< Average times the body is swept.
};

/// A kernel service: the code path executed by one syscall / interrupt /
/// scheduler operation. Invoking a service emits instruction-fetch bursts
/// for every step and consumes `mean_duration` of CPU time (with jitter).
struct KernelService {
  std::string name;
  std::vector<ServiceStep> steps;
  SimTime mean_duration = 2 * kMicrosecond;
  double duration_sigma = 0.05;   ///< Log-normal jitter on duration.
  double sweep_sigma = 0.10;      ///< Log-normal jitter on sweep counts.

  /// Expected fetches per invocation (pre-jitter), for calibration tests.
  double expected_accesses(const KernelImage& image) const;
};

/// Identifier of a service inside a ServiceCatalog.
using ServiceId = std::size_t;

/// The catalog of kernel services built over a KernelImage.
///
/// The default catalog models the services the paper's workload exercises:
/// syscalls used by the MiBench-like tasks (read/write/open/close/
/// gettimeofday/nanosleep/mmap/brk), process management (fork/execve/exit/
/// kill/waitpid), the scheduler tick, context switch, IRQ dispatch, the
/// module loader (rootkit scenario), the page-fault path, the idle loop and
/// background kworker activity. Every service is a weighted walk over the
/// subsystems a real kernel's equivalent path would traverse.
class ServiceCatalog {
 public:
  /// `jitter_scale` multiplies every service's duration/sweep sigmas:
  /// 1.0 is the default embedded-Linux-like variability; 0.0 models a
  /// fully deterministic RTOS (the paper's conclusion conjectures the
  /// technique gets stronger there); > 1 models a noisy general-purpose
  /// system.
  explicit ServiceCatalog(const KernelImage& image, double jitter_scale = 1.0);

  const KernelImage& image() const { return *image_; }

  ServiceId id(const std::string& name) const;  ///< Throws if unknown.
  bool contains(const std::string& name) const;
  const KernelService& service(ServiceId id) const;
  const KernelService& service(const std::string& name) const;
  std::size_t size() const { return services_.size(); }

  /// Invoke a service at `time`: emit its fetch bursts onto `bus` and return
  /// the consumed CPU time (jittered duration + `extra_latency`).
  /// `extra_latency` models out-of-region work such as a hijacked syscall
  /// handler running from module space (rootkit scenario §5.3-3): it adds
  /// time but no monitored fetches.
  SimTime invoke(ServiceId id, SimTime time, hw::MemoryBus& bus, Rng& rng,
                 SimTime extra_latency = 0) const;

  /// Register a custom service; returns its id. Name must be unique.
  ServiceId add(KernelService service);

 private:
  void build_default_catalog();

  /// Helper used by the builder: append steps touching `count` functions of
  /// `subsystem`, each swept `sweeps` times on average.
  void add_path(KernelService& svc, const std::string& subsystem,
                std::size_t count, double sweeps, std::uint64_t salt) const;

  const KernelImage* image_;
  std::vector<KernelService> services_;
  std::unordered_map<std::string, ServiceId> by_name_;
};

}  // namespace mhm::sim
