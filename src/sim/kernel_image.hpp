#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace mhm::sim {

/// One kernel function: a contiguous chunk of the synthetic .text segment.
struct KernelFunction {
  std::string name;
  Address address = 0;
  std::uint64_t size_bytes = 0;
  std::size_t subsystem = 0;  ///< Index into KernelImage::subsystems().

  Address end() const { return address + size_bytes; }
};

/// A kernel subsystem: a named, contiguous group of functions (sched, mm,
/// fs, ...), mirroring how a real kernel's link order clusters related code.
struct KernelSubsystem {
  std::string name;
  double text_fraction = 0.0;  ///< Share of the .text segment.
  Address begin = 0;
  Address end = 0;
  std::size_t first_function = 0;
  std::size_t function_count = 0;
};

/// Synthetic kernel .text image.
///
/// Substitutes for the embedded Linux 3.4 kernel of the paper's prototype:
/// the monitored region is a fixed, linearly mapped segment starting at
/// 0xC0008000 and spanning 3,013,284 bytes (1,472 cells at δ = 2 KB).
/// Subsystems are laid out in link order; each contains functions whose
/// sizes follow a log-normal distribution, generated deterministically from
/// a seed. Kernel *services* (sim/kernel_services.hpp) reference these
/// functions to describe which code a syscall path executes.
class KernelImage {
 public:
  /// Layout parameters.
  struct Params {
    Address base = 0xC0008000;
    std::uint64_t text_size = 3'013'284;
    double mean_function_size = 480.0;   ///< Bytes; log-normal median-ish.
    double function_size_sigma = 0.9;    ///< Log-normal shape.
    std::uint64_t seed = 0xCAFE;
  };

  /// Build the default subsystem plan (entry/sched/irq/time/syscall-dispatch/
  /// fs/mm/kernel-core/ipc/drivers/net/crypto/lib) and generate functions.
  explicit KernelImage(const Params& params);
  KernelImage() : KernelImage(Params{}) {}

  Address base() const { return params_.base; }
  std::uint64_t text_size() const { return params_.text_size; }
  Address text_end() const { return params_.base + params_.text_size; }

  const std::vector<KernelFunction>& functions() const { return functions_; }
  const std::vector<KernelSubsystem>& subsystems() const { return subsystems_; }

  const KernelFunction& function(std::size_t index) const;

  /// Index of the subsystem with this name; throws ConfigError if unknown.
  std::size_t subsystem_index(const std::string& name) const;
  const KernelSubsystem& subsystem(const std::string& name) const;

  /// Pick `count` function indices from a subsystem, deterministically
  /// spread across it (used to build service call paths). `salt`
  /// de-correlates different services drawing from the same subsystem.
  std::vector<std::size_t> pick_functions(const std::string& subsystem_name,
                                          std::size_t count,
                                          std::uint64_t salt) const;

  /// The function containing `addr`, or nullptr if the address falls outside
  /// every function (alignment padding / outside .text).
  const KernelFunction* function_at(Address addr) const;

 private:
  void build_layout();

  Params params_;
  std::vector<KernelSubsystem> subsystems_;
  std::vector<KernelFunction> functions_;
  std::unordered_map<std::string, std::size_t> subsystem_by_name_;
};

}  // namespace mhm::sim
