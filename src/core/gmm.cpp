#include "core/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace mhm {

using linalg::Matrix;

namespace {

constexpr double kLog2Pi = 1.8378770664093453;  // ln(2π)

double log_sum_exp(const std::vector<double>& xs) {
  double peak = -std::numeric_limits<double>::infinity();
  for (double x : xs) peak = std::max(peak, x);
  if (!std::isfinite(peak)) return peak;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - peak);
  return peak + std::log(sum);
}

}  // namespace

std::vector<std::vector<double>> kmeans_plus_plus_init(
    const std::vector<std::vector<double>>& data, std::size_t k, Rng& rng) {
  MHM_ASSERT(!data.empty() && k > 0 && k <= data.size(),
             "kmeans_plus_plus_init: need at least k samples");
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  centers.push_back(
      data[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1))]);

  // Running min squared distance to the chosen centers, refreshed against
  // only the newest center: O(k·n) distance evaluations instead of the
  // naive O(k²·n) full rescan. min() over the same distance set, so d2 —
  // and therefore the sampled centers — are unchanged.
  std::vector<double> d2(data.size(),
                         std::numeric_limits<double>::infinity());
  const auto fold_in = [&](const std::vector<double>& center) {
    parallel_for(data.size(), 0, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        d2[i] = std::min(d2[i], linalg::squared_distance(data[i], center));
      }
    });
  };
  fold_in(centers.back());
  while (centers.size() < k) {
    double total = 0.0;
    for (double d : d2) total += d;
    if (total <= 0.0) {
      // All points coincide with existing centers; duplicate one (the
      // duplicate adds no new distance information, so d2 stays valid).
      centers.push_back(centers.back());
      continue;
    }
    centers.push_back(data[rng.discrete(d2)]);
    fold_in(centers.back());
  }
  return centers;
}

void Gmm::rebuild_cache() {
  cache_.clear();
  cache_.reserve(components_.size());
  for (const auto& comp : components_) {
    auto reg = linalg::cholesky_with_regularization(comp.covariance);
    const double log_det = reg.factor.log_det();
    const double log_norm =
        -0.5 * static_cast<double>(dim_) * kLog2Pi - 0.5 * log_det;
    const double log_joint_const =
        std::log(std::max(comp.weight, 1e-300)) + log_norm;
    cache_.push_back(
        ComponentCache{std::move(reg.factor), log_norm, log_joint_const});
  }
}

void Gmm::log_joint_terms(std::span<const double> x, Scratch& s) const {
  s.terms.resize(components_.size());
  s.diff.resize(dim_);
  for (std::size_t j = 0; j < components_.size(); ++j) {
    const auto& comp = components_[j];
    for (std::size_t i = 0; i < dim_; ++i) s.diff[i] = x[i] - comp.mean[i];
    const double maha = cache_[j].chol.mahalanobis_squared(s.diff, s.solve);
    s.terms[j] = cache_[j].log_joint_const - 0.5 * maha;
  }
}

double Gmm::log_density(std::span<const double> x, Scratch& scratch) const {
  MHM_ASSERT(x.size() == dim_, "Gmm::log_density: dimension mismatch");
  log_joint_terms(x, scratch);
  return log_sum_exp(scratch.terms);
}

double Gmm::log_density(const std::vector<double>& x) const {
  thread_local Scratch scratch;
  return log_density(x, scratch);
}

double Gmm::log10_density(const std::vector<double>& x) const {
  return log_density(x) / kLn10;
}

double Gmm::responsibilities_into(std::span<const double> x, Scratch& scratch,
                                  std::vector<double>& gamma) const {
  MHM_ASSERT(x.size() == dim_, "Gmm::responsibilities: dimension mismatch");
  log_joint_terms(x, scratch);
  const double lse = log_sum_exp(scratch.terms);
  gamma.resize(components_.size());
  for (std::size_t j = 0; j < gamma.size(); ++j) {
    gamma[j] = std::exp(scratch.terms[j] - lse);
  }
  return lse;
}

void Gmm::responsibilities_batch(std::span<const double> x_soa,
                                 std::size_t batch, BatchScratch& s,
                                 std::vector<double>& terms,
                                 std::vector<double>& gamma,
                                 std::span<double> ln_density) const {
  MHM_ASSERT(x_soa.size() == dim_ * batch,
             "Gmm::responsibilities_batch: SoA block size mismatch");
  MHM_ASSERT(ln_density.size() == batch,
             "Gmm::responsibilities_batch: output length mismatch");
  const std::size_t j_count = components_.size();
  terms.resize(j_count * batch);
  gamma.resize(j_count * batch);
  s.diff.resize(dim_ * batch);
  s.solve.resize(dim_ * batch);
  s.maha.resize(batch);

  for (std::size_t j = 0; j < j_count; ++j) {
    const auto& comp = components_[j];
    const linalg::Matrix& lmat = cache_[j].chol.lower();
    // Mean shift, all columns of the block at once.
    for (std::size_t i = 0; i < dim_; ++i) {
      const double m = comp.mean[i];
      const double* x = x_soa.data() + i * batch;
      double* d = s.diff.data() + i * batch;
      for (std::size_t b = 0; b < batch; ++b) d[b] = x[b] - m;
    }
    // Forward substitution L·y = diff over the whole block: row i of every
    // column is y_i = (diff_i − Σ_{k<i} L_ik·y_k) / L_ii with the k-ascending
    // subtraction order and trailing division of forward_solve_into(). Each
    // column is an independent chain, so vectorizing across b reorders no
    // single sample's arithmetic.
    for (std::size_t i = 0; i < dim_; ++i) {
      double* yi = s.solve.data() + i * batch;
      const double* di = s.diff.data() + i * batch;
      for (std::size_t b = 0; b < batch; ++b) yi[b] = di[b];
      for (std::size_t k = 0; k < i; ++k) {
        const double lik = lmat(i, k);
        const double* yk = s.solve.data() + k * batch;
        for (std::size_t b = 0; b < batch; ++b) yi[b] -= lik * yk[b];
      }
      const double lii = lmat(i, i);
      for (std::size_t b = 0; b < batch; ++b) yi[b] /= lii;
    }
    // maha = ‖y‖² accumulated in ascending row order — the dot() order.
    double* mh = s.maha.data();
    for (std::size_t b = 0; b < batch; ++b) mh[b] = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
      const double* yi = s.solve.data() + i * batch;
      for (std::size_t b = 0; b < batch; ++b) mh[b] += yi[b] * yi[b];
    }
    const double cj = cache_[j].log_joint_const;
    double* tj = terms.data() + j * batch;
    for (std::size_t b = 0; b < batch; ++b) tj[b] = cj - 0.5 * mh[b];
  }

  // Per-sample log-sum-exp and responsibilities: the same component-order
  // peak/sum fold (and non-finite-peak early out) as log_sum_exp().
  for (std::size_t b = 0; b < batch; ++b) {
    double peak = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < j_count; ++j) {
      peak = std::max(peak, terms[j * batch + b]);
    }
    double lse = peak;
    if (std::isfinite(peak)) {
      double sum = 0.0;
      for (std::size_t j = 0; j < j_count; ++j) {
        sum += std::exp(terms[j * batch + b] - peak);
      }
      lse = peak + std::log(sum);
    }
    ln_density[b] = lse;
    for (std::size_t j = 0; j < j_count; ++j) {
      gamma[j * batch + b] = std::exp(terms[j * batch + b] - lse);
    }
  }
}

std::vector<double> Gmm::responsibilities(const std::vector<double>& x) const {
  thread_local Scratch scratch;
  std::vector<double> gamma;
  responsibilities_into(x, scratch, gamma);
  return gamma;
}

std::size_t Gmm::classify(const std::vector<double>& x) const {
  const auto gamma = responsibilities(x);
  return static_cast<std::size_t>(
      std::max_element(gamma.begin(), gamma.end()) - gamma.begin());
}

std::vector<double> Gmm::sample(Rng& rng) const {
  std::vector<double> weights(components_.size());
  for (std::size_t j = 0; j < weights.size(); ++j) {
    weights[j] = components_[j].weight;
  }
  const std::size_t j = rng.discrete(weights);
  std::vector<double> z(dim_);
  for (double& v : z) v = rng.normal();
  auto sample = cache_[j].chol.transform_standard_normal(z);
  for (std::size_t i = 0; i < dim_; ++i) sample[i] += components_[j].mean[i];
  return sample;
}

double Gmm::total_log_likelihood(
    const std::vector<std::vector<double>>& data) const {
  return total_log_likelihood(data, nullptr);
}

double Gmm::total_log_likelihood(const std::vector<std::vector<double>>& data,
                                 std::vector<double>* per_sample) const {
  // Score samples in parallel (index-owned writes), then fold serially in
  // sample order — bit-identical to the serial accumulation. The scores
  // stay available to the caller through `per_sample`.
  std::vector<double> local;
  std::vector<double>& scores = per_sample != nullptr ? *per_sample : local;
  scores.resize(data.size());
  parallel_for(data.size(), 0, [&](std::size_t i0, std::size_t i1) {
    Scratch scratch;
    for (std::size_t i = i0; i < i1; ++i) {
      scores[i] = log_density(data[i], scratch);
    }
  });
  return sum_log_likelihood(scores);
}

double Gmm::sum_log_likelihood(std::span<const double> per_sample) {
  double total = 0.0;
  for (double v : per_sample) total += v;
  return total;
}

std::size_t Gmm::parameter_count() const {
  const std::size_t d = dim_;
  const std::size_t per_comp = d + d * (d + 1) / 2;
  return components_.size() * per_comp + (components_.size() - 1);
}

double Gmm::bic(const std::vector<std::vector<double>>& data) const {
  return -2.0 * total_log_likelihood(data) +
         static_cast<double>(parameter_count()) *
             std::log(static_cast<double>(data.size()));
}

Gmm Gmm::from_components(std::vector<GmmComponent> components) {
  if (components.empty()) {
    throw ConfigError("Gmm::from_components: no components");
  }
  const std::size_t d = components.front().mean.size();
  if (d == 0) throw ConfigError("Gmm::from_components: zero-dimensional");
  double weight_sum = 0.0;
  for (const auto& comp : components) {
    if (comp.mean.size() != d || comp.covariance.rows() != d ||
        comp.covariance.cols() != d) {
      throw ConfigError("Gmm::from_components: inconsistent dimensions");
    }
    if (comp.weight < 0.0) {
      throw ConfigError("Gmm::from_components: negative weight");
    }
    weight_sum += comp.weight;
  }
  if (std::abs(weight_sum - 1.0) > 1e-6) {
    throw ConfigError("Gmm::from_components: weights must sum to 1");
  }
  Gmm model;
  model.dim_ = d;
  model.components_ = std::move(components);
  model.rebuild_cache();  // throws NumericalError on non-PD covariances
  return model;
}

Gmm Gmm::fit(const std::vector<std::vector<double>>& data,
             const Options& options) {
  OBS_SPAN("gmm.fit");
  PROF_ZONE(kTrainEm);
  if (data.empty()) throw ConfigError("Gmm::fit: empty training set");
  const std::size_t n = data.size();
  const std::size_t d = data.front().size();
  if (d == 0) throw ConfigError("Gmm::fit: zero-dimensional data");
  const std::size_t j_count = options.components;
  if (j_count == 0) throw ConfigError("Gmm::fit: components must be positive");
  if (n < j_count) {
    throw ConfigError("Gmm::fit: fewer samples than mixture components");
  }
  for (const auto& x : data) {
    if (x.size() != d) throw ConfigError("Gmm::fit: ragged training set");
  }

  // Global data variance used to scale the covariance floor sensibly.
  std::vector<double> global_mean(d, 0.0);
  for (const auto& x : data) {
    for (std::size_t i = 0; i < d; ++i) global_mean[i] += x[i];
  }
  for (double& m : global_mean) m /= static_cast<double>(n);
  double global_var = 0.0;
  for (const auto& x : data) {
    global_var += linalg::squared_distance(x, global_mean);
  }
  global_var /= static_cast<double>(n) * static_cast<double>(d);
  const double floor = std::max(options.covariance_floor,
                                options.covariance_floor * global_var);

  Rng master(options.seed);
  Gmm best;
  double best_ll = -std::numeric_limits<double>::infinity();

  obs::Counter& em_iterations = obs::Registry::instance().counter(
      "core.gmm.em_iterations", "EM iterations run across fits and restarts");
  obs::Gauge& ll_gauge = obs::Registry::instance().gauge(
      "core.gmm.log_likelihood",
      "training log-likelihood after the most recent EM iteration");

  for (std::size_t restart = 0; restart < std::max<std::size_t>(1, options.restarts);
       ++restart) {
    OBS_SPAN("gmm.restart");
    Rng rng = master.fork(restart + 1);

    // --- initialization: k-means++ means, shared spherical covariance ---
    Gmm model;
    model.dim_ = d;
    model.components_.resize(j_count);
    const auto centers = kmeans_plus_plus_init(data, j_count, rng);
    Matrix init_cov = Matrix::identity(d);
    for (std::size_t i = 0; i < d; ++i) {
      init_cov(i, i) = std::max(global_var, floor);
    }
    for (std::size_t j = 0; j < j_count; ++j) {
      model.components_[j].mean = centers[j];
      model.components_[j].covariance = init_cov;
      model.components_[j].weight = 1.0 / static_cast<double>(j_count);
    }
    model.rebuild_cache();

    // --- EM iterations ---
    double prev_ll = -std::numeric_limits<double>::infinity();
    bool failed = false;
    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
      // E-step: responsibilities and log-likelihood in one pass. Samples
      // only write their own gamma row and ll slot; the log-likelihood is
      // then folded serially in sample order, so the rounding matches the
      // serial loop bit-for-bit at any thread count.
      std::vector<std::vector<double>> gamma(n);
      std::vector<double> sample_ll(n);
      parallel_for(n, 0, [&](std::size_t i0, std::size_t i1) {
        Scratch scratch;
        for (std::size_t i = i0; i < i1; ++i) {
          sample_ll[i] =
              model.responsibilities_into(data[i], scratch, gamma[i]);
        }
      });
      double ll = 0.0;
      for (double v : sample_ll) ll += v;
      em_iterations.add();
      ll_gauge.set(ll);

      // M-step. Effective counts first; then the dead-component re-seeds are
      // drawn serially in component order (the RNG stream must not depend on
      // the execution order); the remaining per-component updates are
      // independent and run in parallel.
      std::vector<double> nj(j_count, 0.0);
      parallel_for(j_count, 1, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t j = b0; j < b1; ++j) {
          double s = 0.0;
          for (std::size_t i = 0; i < n; ++i) s += gamma[i][j];
          nj[j] = s;
        }
      });
      std::vector<std::ptrdiff_t> reseed(j_count, -1);
      for (std::size_t j = 0; j < j_count; ++j) {
        if (nj[j] < 1e-8) {
          reseed[j] = static_cast<std::ptrdiff_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(n) - 1));
        }
      }
      parallel_for(j_count, 1, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t j = b0; j < b1; ++j) {
          auto& comp = model.components_[j];
          if (reseed[j] >= 0) {
            // Dead component: re-seed it at the pre-drawn random sample.
            comp.mean = data[static_cast<std::size_t>(reseed[j])];
            comp.covariance = init_cov;
            comp.weight = 1.0 / static_cast<double>(n);
            continue;
          }
          comp.weight = nj[j] / static_cast<double>(n);
          // Mean.
          std::vector<double> mu(d, 0.0);
          for (std::size_t i = 0; i < n; ++i) {
            linalg::axpy(gamma[i][j], data[i], mu);
          }
          linalg::scale(mu, 1.0 / nj[j]);
          comp.mean = mu;
          // Covariance (with diagonal floor).
          Matrix cov(d, d, 0.0);
          std::vector<double> diff(d);
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t c = 0; c < d; ++c) diff[c] = data[i][c] - mu[c];
            linalg::syr_update(cov, gamma[i][j], diff);
          }
          for (double& v : cov.data()) v /= nj[j];
          for (std::size_t k = 0; k < d; ++k) cov(k, k) += floor;
          comp.covariance = std::move(cov);
        }
      });
      // Renormalize weights (re-seeded components can distort the sum).
      double wsum = 0.0;
      for (const auto& comp : model.components_) wsum += comp.weight;
      for (auto& comp : model.components_) comp.weight /= wsum;

      try {
        model.rebuild_cache();
      } catch (const NumericalError&) {
        failed = true;
        break;
      }

      if (std::isfinite(prev_ll) &&
          std::abs(ll - prev_ll) <=
              options.tolerance * std::max(1.0, std::abs(prev_ll))) {
        prev_ll = ll;
        break;
      }
      prev_ll = ll;
    }
    if (failed) continue;

    const double final_ll = model.total_log_likelihood(data);
    if (final_ll > best_ll) {
      best_ll = final_ll;
      best = std::move(model);
    }
  }

  if (best.components_.empty()) {
    throw NumericalError("Gmm::fit: every EM restart failed");
  }
  return best;
}

Gmm Gmm::select_components(const std::vector<std::vector<double>>& data,
                           std::size_t min_components,
                           std::size_t max_components, const Options& options,
                           std::size_t* chosen) {
  if (min_components == 0 || min_components > max_components) {
    throw ConfigError("Gmm::select_components: invalid component range");
  }
  Gmm best;
  double best_bic = std::numeric_limits<double>::infinity();
  std::size_t best_j = 0;
  for (std::size_t j = min_components; j <= max_components; ++j) {
    if (j > data.size()) break;
    Options opts = options;
    opts.components = j;
    Gmm model = fit(data, opts);
    const double score = model.bic(data);
    if (score < best_bic) {
      best_bic = score;
      best = std::move(model);
      best_j = j;
    }
  }
  if (best.components_.empty()) {
    throw ConfigError("Gmm::select_components: no model could be fit");
  }
  if (chosen != nullptr) *chosen = best_j;
  return best;
}

}  // namespace mhm
