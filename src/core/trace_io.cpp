#include "core/trace_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace mhm {

namespace {

constexpr char kTraceMagic[4] = {'M', 'H', 'M', 'T'};
constexpr std::uint32_t kTraceVersion = 1;
constexpr std::uint64_t kSanityLimit = 1ull << 28;

void write_u32(std::ostream& out, std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_u64(std::ostream& out, std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw SerializationError("trace_io: truncated stream (u32)");
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw SerializationError("trace_io: truncated stream (u64)");
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  return v;
}

}  // namespace

void save_trace(const RecordedTrace& trace, std::ostream& out) {
  trace.config.validate();
  const std::size_t cells = trace.config.cell_count();
  for (const auto& map : trace.maps) {
    if (map.cell_count() != cells) {
      throw SerializationError(
          "trace_io: map cell count does not match the trace config");
    }
  }
  out.write(kTraceMagic, sizeof kTraceMagic);
  write_u32(out, kTraceVersion);
  write_u64(out, trace.config.base);
  write_u64(out, trace.config.size);
  write_u64(out, trace.config.granularity);
  write_u64(out, trace.config.interval);
  write_u64(out, trace.maps.size());
  for (const auto& map : trace.maps) {
    write_u64(out, map.interval_index);
    write_u64(out, map.interval_start);
    for (std::uint32_t c : map.counts()) write_u32(out, c);
  }
  if (!out) throw SerializationError("trace_io: write failure");
}

RecordedTrace load_trace(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kTraceMagic, sizeof kTraceMagic) != 0) {
    throw SerializationError("trace_io: bad magic (not an MHM trace file)");
  }
  const std::uint32_t version = read_u32(in);
  if (version != kTraceVersion) {
    throw SerializationError("trace_io: unsupported version " +
                             std::to_string(version));
  }
  RecordedTrace trace;
  trace.config.base = read_u64(in);
  trace.config.size = read_u64(in);
  trace.config.granularity = read_u64(in);
  trace.config.interval = read_u64(in);
  try {
    trace.config.validate();
  } catch (const ConfigError& e) {
    throw SerializationError(std::string("trace_io: invalid config: ") +
                             e.what());
  }
  const std::uint64_t count = read_u64(in);
  const std::size_t cells = trace.config.cell_count();
  if (count > kSanityLimit || cells > kSanityLimit ||
      count * cells > kSanityLimit) {
    throw SerializationError("trace_io: implausible trace size");
  }
  trace.maps.reserve(count);
  for (std::uint64_t m = 0; m < count; ++m) {
    HeatMap map(cells);
    map.interval_index = read_u64(in);
    map.interval_start = read_u64(in);
    for (std::size_t c = 0; c < cells; ++c) {
      const std::uint32_t v = read_u32(in);
      if (v > 0) map.increment(c, v);
    }
    trace.maps.push_back(std::move(map));
  }
  return trace;
}

void save_trace_file(const RecordedTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("save_trace_file: cannot open " + path);
  save_trace(trace, out);
}

RecordedTrace load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("load_trace_file: cannot open " + path);
  return load_trace(in);
}

}  // namespace mhm
