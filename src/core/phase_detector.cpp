#include "core/phase_detector.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace mhm {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;
}  // namespace

PhaseAwareDetector PhaseAwareDetector::train(const HeatMapTrace& training,
                                             const HeatMapTrace& validation,
                                             const Options& options) {
  if (options.phases == 0) {
    throw ConfigError("PhaseAwareDetector: phases must be positive");
  }
  if (training.empty() || validation.empty()) {
    throw ConfigError("PhaseAwareDetector: empty training/validation set");
  }

  PhaseAwareDetector det;
  det.pca_ = Eigenmemory::fit(training, options.pca);
  const std::size_t dim = det.pca_.components();

  // Partition reduced training maps by hyperperiod phase.
  std::vector<std::vector<std::vector<double>>> by_phase(options.phases);
  for (const auto& map : training) {
    by_phase[map.interval_index % options.phases].push_back(
        det.pca_.project(map));
  }

  // Closed-form Gaussian per phase (mean + covariance + Cholesky cache).
  for (std::size_t p = 0; p < options.phases; ++p) {
    const auto& samples = by_phase[p];
    if (samples.size() < 3) {
      throw ConfigError("PhaseAwareDetector: phase " + std::to_string(p) +
                        " has only " + std::to_string(samples.size()) +
                        " training maps; record more hyperperiods");
    }
    PhaseModel model{std::vector<double>(dim, 0.0),
                     linalg::Cholesky(linalg::Matrix::identity(dim)), 0.0};
    for (const auto& x : samples) {
      linalg::axpy(1.0, x, model.mean);
    }
    linalg::scale(model.mean, 1.0 / static_cast<double>(samples.size()));

    linalg::Matrix cov(dim, dim, 0.0);
    for (const auto& x : samples) {
      const auto diff = linalg::subtract(x, model.mean);
      linalg::syr_update(cov, 1.0, diff);
    }
    for (double& v : cov.data()) {
      v /= static_cast<double>(samples.size());
    }
    double scale = cov.max_abs();
    const double floor =
        std::max(options.covariance_floor, 1e-9 * std::max(1.0, scale));
    for (std::size_t i = 0; i < dim; ++i) cov(i, i) += floor;

    auto reg = linalg::cholesky_with_regularization(cov);
    model.log_norm = -0.5 * static_cast<double>(dim) * kLog2Pi -
                     0.5 * reg.factor.log_det();
    model.chol = std::move(reg.factor);
    det.phase_models_.push_back(std::move(model));
  }

  // Calibrate a global threshold on validation scores.
  std::vector<double> scores;
  scores.reserve(validation.size());
  for (const auto& map : validation) scores.push_back(det.score(map));
  det.threshold_ = quantile(scores, options.primary_p);
  return det;
}

double PhaseAwareDetector::score(const std::vector<double>& raw,
                                 std::size_t phase) const {
  MHM_ASSERT(phase < phase_models_.size(),
             "PhaseAwareDetector::score: phase out of range");
  const auto reduced = pca_.project(raw);
  const PhaseModel& model = phase_models_[phase];
  const auto diff = linalg::subtract(reduced, model.mean);
  const double log_density =
      model.log_norm - 0.5 * model.chol.mahalanobis_squared(diff);
  return log_density / std::log(10.0);
}

double PhaseAwareDetector::score(const HeatMap& map) const {
  return score(map.as_vector(), map.interval_index % phase_models_.size());
}

bool PhaseAwareDetector::anomalous(const HeatMap& map) const {
  return score(map) < threshold_;
}

const std::vector<double>& PhaseAwareDetector::phase_mean(
    std::size_t phase) const {
  MHM_ASSERT(phase < phase_models_.size(),
             "PhaseAwareDetector::phase_mean: phase out of range");
  return phase_models_[phase].mean;
}

}  // namespace mhm
