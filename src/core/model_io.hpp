#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/gmm.hpp"
#include "core/pca.hpp"
#include "core/snapshot.hpp"

namespace mhm {

/// Versioned binary serialization of trained models.
///
/// The paper's workflow separates profiling (pre-deployment, in a trusted
/// environment — §2 assumption iii) from detection (on the deployed secure
/// core). That split requires shipping the trained model: the eigenmemory
/// basis and mean, the GMM parameters and the calibrated thresholds. This
/// module provides a compact little-endian binary format for exactly that.
///
/// Format: magic "MHMM", format version, then tagged sections. Numbers are
/// fixed-width little-endian; doubles are raw IEEE-754 bits. Readers reject
/// unknown versions and truncated/corrupt payloads with SerializationError.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// Serialized-model container: everything the secure core needs at runtime.
struct DetectorModel {
  Eigenmemory eigenmemory;
  Gmm gmm;
  std::vector<double> validation_scores;  ///< For re-deriving any θ_p.
  double primary_p = 0.01;

  /// Reassemble a working detector (recomputes GMM caches, θ_p).
  AnomalyDetector to_detector() const;

  /// Reassemble an immutable scoring snapshot (the engine-layer artifact);
  /// `version` becomes the Verdict::model_version stamp. The snapshot
  /// carries no CellBaseline — the raw training set is not serialized.
  std::shared_ptr<const ModelSnapshot> to_snapshot(
      std::uint64_t version = 0) const;

  /// Capture a trained detector.
  static DetectorModel from_detector(const AnomalyDetector& detector);
  /// Capture a snapshot (the CellBaseline, if any, is not serialized).
  static DetectorModel from_snapshot(const ModelSnapshot& snapshot);
};

/// Stream I/O.
void save_model(const DetectorModel& model, std::ostream& out);
DetectorModel load_model(std::istream& in);

/// File I/O convenience (throws SerializationError / ConfigError).
void save_model_file(const DetectorModel& model, const std::string& path);
DetectorModel load_model_file(const std::string& path);

/// Versioned on-disk model store: a directory of `model-NNNNNN.mhmm` files
/// with monotonically increasing version ids. This is the deployment
/// hand-off the paper's §2 workflow implies — profiling produces a model
/// artifact; the secure core (or `mhm_tool replay`, or a DetectionEngine
/// hot swap) loads it by version. save() never overwrites: each call claims
/// `latest + 1`. Loads re-validate PCA↔GMM dimension compatibility so a
/// registry poisoned with mismatched sections is rejected with
/// SerializationError instead of producing a detector that throws later.
class ModelRegistry {
 public:
  /// Opens (and creates, if missing) the registry directory.
  explicit ModelRegistry(std::string directory);

  /// Persist a model under the next free version id; returns that id (≥ 1).
  std::uint64_t save(const DetectorModel& model);

  /// Load one version (throws SerializationError if absent or invalid).
  DetectorModel load(std::uint64_t version) const;
  /// Load the highest version (throws SerializationError on empty registry).
  DetectorModel load_latest() const;
  /// Convenience: load + to_snapshot, stamped with the registry version.
  std::shared_ptr<const ModelSnapshot> load_snapshot(
      std::uint64_t version) const;
  std::shared_ptr<const ModelSnapshot> load_latest_snapshot() const;

  /// Stored version ids, ascending. Non-model files are ignored.
  std::vector<std::uint64_t> list() const;
  std::optional<std::uint64_t> latest_version() const;

  std::string path_for(std::uint64_t version) const;
  const std::string& directory() const { return directory_; }

 private:
  std::string directory_;
};

/// --- lower-level pieces, exposed for reuse and tests ---
void save_eigenmemory(const Eigenmemory& em, std::ostream& out);
Eigenmemory load_eigenmemory(std::istream& in);
void save_gmm(const Gmm& gmm, std::ostream& out);
Gmm load_gmm(std::istream& in);

}  // namespace mhm
