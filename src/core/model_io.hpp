#pragma once

#include <iosfwd>
#include <string>

#include "core/detector.hpp"
#include "core/gmm.hpp"
#include "core/pca.hpp"

namespace mhm {

/// Versioned binary serialization of trained models.
///
/// The paper's workflow separates profiling (pre-deployment, in a trusted
/// environment — §2 assumption iii) from detection (on the deployed secure
/// core). That split requires shipping the trained model: the eigenmemory
/// basis and mean, the GMM parameters and the calibrated thresholds. This
/// module provides a compact little-endian binary format for exactly that.
///
/// Format: magic "MHMM", format version, then tagged sections. Numbers are
/// fixed-width little-endian; doubles are raw IEEE-754 bits. Readers reject
/// unknown versions and truncated/corrupt payloads with SerializationError.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// Serialized-model container: everything the secure core needs at runtime.
struct DetectorModel {
  Eigenmemory eigenmemory;
  Gmm gmm;
  std::vector<double> validation_scores;  ///< For re-deriving any θ_p.
  double primary_p = 0.01;

  /// Reassemble a working detector (recomputes GMM caches, θ_p).
  AnomalyDetector to_detector() const;

  /// Capture a trained detector.
  static DetectorModel from_detector(const AnomalyDetector& detector);
};

/// Stream I/O.
void save_model(const DetectorModel& model, std::ostream& out);
DetectorModel load_model(std::istream& in);

/// File I/O convenience (throws SerializationError / ConfigError).
void save_model_file(const DetectorModel& model, const std::string& path);
DetectorModel load_model_file(const std::string& path);

/// --- lower-level pieces, exposed for reuse and tests ---
void save_eigenmemory(const Eigenmemory& em, std::ostream& out);
Eigenmemory load_eigenmemory(std::istream& in);
void save_gmm(const Gmm& gmm, std::ostream& out);
Gmm load_gmm(std::istream& in);

}  // namespace mhm
