#include "core/model_io.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>

namespace mhm {

namespace {

constexpr char kMagic[4] = {'M', 'H', 'M', 'M'};
constexpr std::uint32_t kFormatVersion = 1;

// Section tags.
constexpr std::uint32_t kTagEigenmemory = 0x454D454D;  // "MEME"
constexpr std::uint32_t kTagGmm = 0x004D4D47;          // "GMM\0"
constexpr std::uint32_t kTagDetector = 0x00544544;     // "DET\0"

void write_u32(std::ostream& out, std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_u64(std::ostream& out, std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_f64(std::ostream& out, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  write_u64(out, bits);
}

void write_f64_span(std::ostream& out, std::span<const double> xs) {
  write_u64(out, xs.size());
  for (double x : xs) write_f64(out, x);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw SerializationError("model_io: truncated stream (u32)");
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw SerializationError("model_io: truncated stream (u64)");
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  return v;
}

double read_f64(std::istream& in) {
  const std::uint64_t bits = read_u64(in);
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

std::vector<double> read_f64_vector(std::istream& in,
                                    std::uint64_t sanity_limit) {
  const std::uint64_t count = read_u64(in);
  if (count > sanity_limit) {
    throw SerializationError("model_io: implausible vector length " +
                             std::to_string(count));
  }
  std::vector<double> out(count);
  for (auto& v : out) v = read_f64(in);
  return out;
}

void expect_tag(std::istream& in, std::uint32_t tag, const char* what) {
  if (read_u32(in) != tag) {
    throw SerializationError(std::string("model_io: expected ") + what +
                             " section");
  }
}

/// Largest believable dimension in any serialized model (cells, samples).
constexpr std::uint64_t kSanityLimit = 1 << 24;

}  // namespace

void save_eigenmemory(const Eigenmemory& em, std::ostream& out) {
  write_u32(out, kTagEigenmemory);
  write_u64(out, em.input_dim());
  write_u64(out, em.components());
  write_f64_span(out, em.mean());
  for (std::size_t k = 0; k < em.components(); ++k) {
    for (double v : em.basis().row(k)) write_f64(out, v);
  }
  write_f64_span(out, em.eigenvalues());
  write_f64_span(out, em.spectrum());
}

Eigenmemory load_eigenmemory(std::istream& in) {
  expect_tag(in, kTagEigenmemory, "eigenmemory");
  const std::uint64_t dim = read_u64(in);
  const std::uint64_t components = read_u64(in);
  if (dim == 0 || dim > kSanityLimit || components == 0 || components > dim) {
    throw SerializationError("model_io: implausible eigenmemory shape");
  }
  std::vector<double> mean = read_f64_vector(in, kSanityLimit);
  if (mean.size() != dim) {
    throw SerializationError("model_io: mean length mismatch");
  }
  linalg::Matrix basis(components, dim);
  for (std::size_t k = 0; k < components; ++k) {
    for (std::size_t i = 0; i < dim; ++i) basis(k, i) = read_f64(in);
  }
  std::vector<double> eigenvalues = read_f64_vector(in, kSanityLimit);
  std::vector<double> spectrum = read_f64_vector(in, kSanityLimit);
  return Eigenmemory::from_parts(std::move(mean), std::move(basis),
                                 std::move(eigenvalues), std::move(spectrum));
}

void save_gmm(const Gmm& gmm, std::ostream& out) {
  write_u32(out, kTagGmm);
  write_u64(out, gmm.dimension());
  write_u64(out, gmm.component_count());
  for (const auto& comp : gmm.components()) {
    write_f64(out, comp.weight);
    write_f64_span(out, comp.mean);
    for (double v : comp.covariance.data()) write_f64(out, v);
  }
}

Gmm load_gmm(std::istream& in) {
  expect_tag(in, kTagGmm, "gmm");
  const std::uint64_t dim = read_u64(in);
  const std::uint64_t count = read_u64(in);
  if (dim == 0 || dim > kSanityLimit || count == 0 || count > kSanityLimit) {
    throw SerializationError("model_io: implausible GMM shape");
  }
  std::vector<GmmComponent> components(count);
  for (auto& comp : components) {
    comp.weight = read_f64(in);
    comp.mean = read_f64_vector(in, kSanityLimit);
    if (comp.mean.size() != dim) {
      throw SerializationError("model_io: GMM mean length mismatch");
    }
    comp.covariance = linalg::Matrix(dim, dim);
    for (double& v : comp.covariance.data()) v = read_f64(in);
  }
  try {
    return Gmm::from_components(std::move(components));
  } catch (const Error& e) {
    throw SerializationError(std::string("model_io: invalid GMM payload: ") +
                             e.what());
  }
}

AnomalyDetector DetectorModel::to_detector() const {
  return AnomalyDetector::assemble(eigenmemory, gmm,
                                   ThresholdCalibrator(validation_scores),
                                   primary_p);
}

std::shared_ptr<const ModelSnapshot> DetectorModel::to_snapshot(
    std::uint64_t version) const {
  return ModelSnapshot::assemble(eigenmemory, gmm,
                                 ThresholdCalibrator(validation_scores),
                                 primary_p, nullptr, version);
}

DetectorModel DetectorModel::from_detector(const AnomalyDetector& detector) {
  DetectorModel model;
  model.eigenmemory = detector.eigenmemory();
  model.gmm = detector.gmm();
  model.validation_scores = detector.thresholds().validation_scores();
  model.primary_p = detector.primary_threshold().p;
  return model;
}

DetectorModel DetectorModel::from_snapshot(const ModelSnapshot& snapshot) {
  DetectorModel model;
  model.eigenmemory = snapshot.pca;
  model.gmm = snapshot.gmm;
  model.validation_scores = snapshot.calibrator.validation_scores();
  model.primary_p = snapshot.primary.p;
  return model;
}

void save_model(const DetectorModel& model, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  write_u32(out, kFormatVersion);
  save_eigenmemory(model.eigenmemory, out);
  save_gmm(model.gmm, out);
  write_u32(out, kTagDetector);
  write_f64(out, model.primary_p);
  write_f64_span(out, model.validation_scores);
  if (!out) throw SerializationError("model_io: write failure");
}

DetectorModel load_model(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw SerializationError("model_io: bad magic (not an MHM model file)");
  }
  const std::uint32_t version = read_u32(in);
  if (version != kFormatVersion) {
    throw SerializationError("model_io: unsupported format version " +
                             std::to_string(version));
  }
  DetectorModel model;
  model.eigenmemory = load_eigenmemory(in);
  model.gmm = load_gmm(in);
  expect_tag(in, kTagDetector, "detector");
  model.primary_p = read_f64(in);
  if (!(model.primary_p > 0.0 && model.primary_p < 1.0)) {
    throw SerializationError("model_io: primary_p out of range");
  }
  model.validation_scores = read_f64_vector(in, kSanityLimit);
  if (model.validation_scores.empty()) {
    throw SerializationError("model_io: empty validation score set");
  }
  return model;
}

namespace {

/// Parse "model-NNNNNN.mhmm" → NNNNNN; nullopt for anything else.
std::optional<std::uint64_t> parse_registry_name(const std::string& name) {
  constexpr const char* kPrefix = "model-";
  constexpr const char* kSuffix = ".mhmm";
  const std::size_t prefix_len = std::strlen(kPrefix);
  const std::size_t suffix_len = std::strlen(kSuffix);
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t version = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    version = version * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return version;
}

}  // namespace

ModelRegistry::ModelRegistry(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec || !std::filesystem::is_directory(directory_)) {
    throw ConfigError("ModelRegistry: cannot open directory " + directory_);
  }
}

std::string ModelRegistry::path_for(std::uint64_t version) const {
  char name[32];
  std::snprintf(name, sizeof name, "model-%06" PRIu64 ".mhmm", version);
  return (std::filesystem::path(directory_) / name).string();
}

std::vector<std::uint64_t> ModelRegistry::list() const {
  std::vector<std::uint64_t> versions;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (!entry.is_regular_file()) continue;
    if (auto v = parse_registry_name(entry.path().filename().string())) {
      versions.push_back(*v);
    }
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

std::optional<std::uint64_t> ModelRegistry::latest_version() const {
  const auto versions = list();
  if (versions.empty()) return std::nullopt;
  return versions.back();
}

std::uint64_t ModelRegistry::save(const DetectorModel& model) {
  const std::uint64_t version = latest_version().value_or(0) + 1;
  save_model_file(model, path_for(version));
  return version;
}

DetectorModel ModelRegistry::load(std::uint64_t version) const {
  const std::string path = path_for(version);
  if (!std::filesystem::is_regular_file(path)) {
    throw SerializationError("ModelRegistry: no version " +
                             std::to_string(version) + " in " + directory_);
  }
  DetectorModel model = load_model_file(path);
  // The sections deserialize independently; re-validate that they belong
  // together before anyone builds a scorer from them.
  if (model.gmm.dimension() != model.eigenmemory.components()) {
    throw SerializationError(
        "ModelRegistry: version " + std::to_string(version) +
        " has a GMM dimension incompatible with its eigenmemory basis");
  }
  return model;
}

DetectorModel ModelRegistry::load_latest() const {
  const auto latest = latest_version();
  if (!latest) {
    throw SerializationError("ModelRegistry: empty registry " + directory_);
  }
  return load(*latest);
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::load_snapshot(
    std::uint64_t version) const {
  return load(version).to_snapshot(version);
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::load_latest_snapshot()
    const {
  const auto latest = latest_version();
  if (!latest) {
    throw SerializationError("ModelRegistry: empty registry " + directory_);
  }
  return load_snapshot(*latest);
}

void save_model_file(const DetectorModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("save_model_file: cannot open " + path);
  save_model(model, out);
}

DetectorModel load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("load_model_file: cannot open " + path);
  return load_model(in);
}

}  // namespace mhm
