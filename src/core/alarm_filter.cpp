#include "core/alarm_filter.hpp"

namespace mhm {

AlarmFilter::AlarmFilter(std::size_t k, std::size_t n) : k_(k), n_(n) {
  if (k == 0 || n == 0 || k > n) {
    throw ConfigError("AlarmFilter: requires 1 <= k <= n");
  }
}

bool AlarmFilter::feed(bool interval_anomalous) {
  history_.push_back(interval_anomalous);
  count_ += interval_anomalous;
  if (history_.size() > n_) {
    count_ -= history_.front();
    history_.pop_front();
  }
  return count_ >= k_;
}

void AlarmFilter::reset() {
  history_.clear();
  count_ = 0;
}

}  // namespace mhm
