#include "core/alarm_filter.hpp"

#include "obs/metrics.hpp"

namespace mhm {

namespace {

struct FilterMetrics {
  obs::Counter& raised = obs::Registry::instance().counter(
      "core.alarm_filter.raised",
      "filtered alarm output transitions from clear to raised");
  obs::Counter& cleared = obs::Registry::instance().counter(
      "core.alarm_filter.cleared",
      "filtered alarm output transitions from raised to clear");
};

FilterMetrics& filter_metrics() {
  static FilterMetrics m;
  return m;
}

}  // namespace

AlarmFilter::AlarmFilter(std::size_t k, std::size_t n) : k_(k), n_(n) {
  if (k == 0 || n == 0 || k > n) {
    throw ConfigError("AlarmFilter: requires 1 <= k <= n");
  }
}

bool AlarmFilter::feed(bool interval_anomalous) {
  history_.push_back(interval_anomalous);
  count_ += interval_anomalous;
  if (history_.size() > n_) {
    count_ -= history_.front();
    history_.pop_front();
  }
  const bool out = count_ >= k_;
  if (out != last_output_) {
    (out ? filter_metrics().raised : filter_metrics().cleared).add();
  }
  last_output_ = out;
  return out;
}

void AlarmFilter::reset() {
  history_.clear();
  count_ = 0;
  last_output_ = false;
}

}  // namespace mhm
