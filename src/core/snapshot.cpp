#include "core/snapshot.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace mhm {

ThresholdCalibrator::ThresholdCalibrator(std::vector<double> validation_log10)
    : scores_(std::move(validation_log10)) {
  if (scores_.empty()) {
    throw ConfigError("ThresholdCalibrator: empty validation set");
  }
}

Threshold ThresholdCalibrator::at(double p) const {
  if (p <= 0.0 || p >= 1.0) {
    throw ConfigError("ThresholdCalibrator::at: p must be in (0,1)");
  }
  return Threshold{.p = p, .log10_value = quantile(scores_, p)};
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::assemble(
    Eigenmemory pca, Gmm gmm, ThresholdCalibrator calibrator, double primary_p,
    std::shared_ptr<const CellBaseline> baseline, std::uint64_t version) {
  if (gmm.dimension() != pca.components()) {
    throw ConfigError(
        "ModelSnapshot::assemble: GMM dimension does not match the "
        "eigenmemory count");
  }
  const Threshold primary = calibrator.at(primary_p);
  return std::make_shared<const ModelSnapshot>(
      ModelSnapshot{.pca = std::move(pca),
                    .gmm = std::move(gmm),
                    .calibrator = std::move(calibrator),
                    .primary = primary,
                    .baseline = std::move(baseline),
                    .version = version});
}

Verdict score_snapshot(const ModelSnapshot& snapshot,
                       std::span<const double> raw,
                       std::uint64_t interval_index, ScoreScratch& scratch) {
  // One projection + one responsibilities pass yields density and nearest
  // pattern together; the scratch buffers reach their final size on the
  // first interval and every later call is allocation-free.
  const auto t0 = std::chrono::steady_clock::now();
  snapshot.pca.project_into(raw, scratch.phi, scratch.reduced);
  const double ln_density = snapshot.gmm.responsibilities_into(
      scratch.reduced, scratch.gmm, scratch.gamma);
  const double log10_density = ln_density / std::log(10.0);
  const std::size_t pattern = static_cast<std::size_t>(
      std::max_element(scratch.gamma.begin(), scratch.gamma.end()) -
      scratch.gamma.begin());
  const auto t1 = std::chrono::steady_clock::now();

  Verdict v;
  v.interval_index = interval_index;
  v.log10_density = log10_density;
  v.anomalous = log10_density < snapshot.primary.log10_value;
  v.nearest_pattern = pattern;
  v.model_version = snapshot.version;
  v.analysis_time =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0);
  // SPE from the projection scratch: the basis rows are orthonormal, so the
  // reconstruction residual ‖Φ − B^T w‖² is ‖Φ‖² − ‖w‖² — no reconstruction,
  // no allocation. Untimed: analysis_time stays the §5.4 measurement.
  double phi_sq = 0.0;
  for (double c : scratch.phi) phi_sq += c * c;
  double w_sq = 0.0;
  for (double c : scratch.reduced) w_sq += c * c;
  v.spe = std::max(0.0, phi_sq - w_sq);
  return v;
}

}  // namespace mhm
