#include "core/snapshot.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "obs/prof.hpp"

namespace mhm {

ThresholdCalibrator::ThresholdCalibrator(std::vector<double> validation_log10)
    : scores_(std::move(validation_log10)) {
  if (scores_.empty()) {
    throw ConfigError("ThresholdCalibrator: empty validation set");
  }
}

Threshold ThresholdCalibrator::at(double p) const {
  if (p <= 0.0 || p >= 1.0) {
    throw ConfigError("ThresholdCalibrator::at: p must be in (0,1)");
  }
  return Threshold{.p = p, .log10_value = quantile(scores_, p)};
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::assemble(
    Eigenmemory pca, Gmm gmm, ThresholdCalibrator calibrator, double primary_p,
    std::shared_ptr<const CellBaseline> baseline, std::uint64_t version) {
  if (gmm.dimension() != pca.components()) {
    throw ConfigError(
        "ModelSnapshot::assemble: GMM dimension does not match the "
        "eigenmemory count");
  }
  const Threshold primary = calibrator.at(primary_p);
  return std::make_shared<const ModelSnapshot>(
      ModelSnapshot{.pca = std::move(pca),
                    .gmm = std::move(gmm),
                    .calibrator = std::move(calibrator),
                    .primary = primary,
                    .baseline = std::move(baseline),
                    .version = version});
}

Verdict score_snapshot(const ModelSnapshot& snapshot,
                       std::span<const double> raw,
                       std::uint64_t interval_index, ScoreScratch& scratch) {
  // One projection + one responsibilities pass yields density and nearest
  // pattern together; the scratch buffers reach their final size on the
  // first interval and every later call is allocation-free.
  const auto t0 = std::chrono::steady_clock::now();
  {
    PROF_ZONE(kScoreProject);
    snapshot.pca.project_into(raw, scratch.phi, scratch.reduced);
  }
  double log10_density;
  std::size_t pattern;
  {
    PROF_ZONE(kScoreGmm);
    const double ln_density = snapshot.gmm.responsibilities_into(
        scratch.reduced, scratch.gmm, scratch.gamma);
    log10_density = ln_density / kLn10;
    pattern = static_cast<std::size_t>(
        std::max_element(scratch.gamma.begin(), scratch.gamma.end()) -
        scratch.gamma.begin());
  }
  const auto t1 = std::chrono::steady_clock::now();

  Verdict v;
  v.interval_index = interval_index;
  v.log10_density = log10_density;
  v.anomalous = log10_density < snapshot.primary.log10_value;
  v.nearest_pattern = pattern;
  v.model_version = snapshot.version;
  v.analysis_time =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0);
  // SPE from the projection scratch: the basis rows are orthonormal, so the
  // reconstruction residual ‖Φ − B^T w‖² is ‖Φ‖² − ‖w‖² — no reconstruction,
  // no allocation. Untimed: analysis_time stays the §5.4 measurement.
  PROF_ZONE(kScoreSpe);
  double phi_sq = 0.0;
  for (double c : scratch.phi) phi_sq += c * c;
  double w_sq = 0.0;
  for (double c : scratch.reduced) w_sq += c * c;
  v.spe = std::max(0.0, phi_sq - w_sq);
  return v;
}

void ScoreBatch::clear(std::size_t input_dim) {
  input_dim_ = input_dim;
  raws_.clear();
  intervals_.clear();
  model_version = 0;
  batch_time = std::chrono::nanoseconds{0};
}

void ScoreBatch::push(std::span<const double> raw,
                      std::uint64_t interval_index) {
  MHM_ASSERT(raw.size() == input_dim_, "ScoreBatch::push: bad map length");
  raws_.push_back(raw);
  intervals_.push_back(interval_index);
}

Verdict ScoreBatch::verdict(std::size_t b) const {
  MHM_ASSERT(b < size() && log10_density.size() == size(),
             "ScoreBatch::verdict: unscored or out-of-range sample");
  Verdict v;
  v.interval_index = intervals_[b];
  v.log10_density = log10_density[b];
  v.anomalous = anomalous[b] != 0;
  v.nearest_pattern = nearest[b];
  v.spe = spe[b];
  v.model_version = model_version;
  v.analysis_time = batch_time / static_cast<std::int64_t>(size());
  return v;
}

void ScoreBatch::extract_reduced(std::size_t b, std::vector<double>& out) const {
  const std::size_t n = size();
  const std::size_t k_count = n == 0 ? 0 : reduced.size() / n;
  out.resize(k_count);
  for (std::size_t k = 0; k < k_count; ++k) out[k] = reduced[k * n + b];
}

void score_snapshot_batch(const ModelSnapshot& snapshot, ScoreBatch& batch,
                          BatchScoreScratch& scratch) {
  const std::size_t n = batch.size();
  batch.model_version = snapshot.version;
  if (n == 0) {
    batch.batch_time = std::chrono::nanoseconds{0};
    return;
  }
  // Timed region mirrors score_snapshot(): projection + mixture density +
  // verdict columns; the SPE identity stays outside the clock.
  const auto t0 = std::chrono::steady_clock::now();
  {
    PROF_ZONE(kScoreProject);
    snapshot.pca.project_batch(batch.raws(), batch.phi, batch.reduced,
                               &scratch.phi_sq);
  }
  {
    PROF_ZONE(kScoreGmm);
    batch.ln_density.resize(n);
    snapshot.gmm.responsibilities_batch(batch.reduced, n, scratch.gmm,
                                        batch.terms, batch.gamma,
                                        batch.ln_density);
    batch.log10_density.resize(n);
    batch.anomalous.resize(n);
    batch.nearest.resize(n);
    const std::size_t j_count = snapshot.gmm.component_count();
    for (std::size_t b = 0; b < n; ++b) {
      const double log10_density = batch.ln_density[b] / kLn10;
      batch.log10_density[b] = log10_density;
      batch.anomalous[b] =
          log10_density < snapshot.primary.log10_value ? 1 : 0;
      // First strictly-greatest responsibility — std::max_element's tie rule.
      // The argmax must run over gamma (not terms): exp can round two distinct
      // terms to equal responsibilities, and the serial path breaks that tie
      // on gamma order.
      std::size_t best = 0;
      for (std::size_t j = 1; j < j_count; ++j) {
        if (batch.gamma[best * n + b] < batch.gamma[j * n + b]) best = j;
      }
      batch.nearest[b] = best;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  batch.batch_time =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0);

  // SPE columns: ‖Φ‖² was folded into the projection pass; ‖w‖² accumulates
  // here in ascending-k order — the serial loop over scratch.reduced.
  PROF_ZONE(kScoreSpe);
  const std::size_t k_count = snapshot.pca.components();
  scratch.w_sq.assign(n, 0.0);
  batch.spe.resize(n);
  for (std::size_t k = 0; k < k_count; ++k) {
    const double* w = batch.reduced.data() + k * n;
    for (std::size_t b = 0; b < n; ++b) scratch.w_sq[b] += w[b] * w[b];
  }
  for (std::size_t b = 0; b < n; ++b) {
    batch.spe[b] = std::max(0.0, scratch.phi_sq[b] - scratch.w_sq[b]);
  }
}

}  // namespace mhm
