#include "core/heatmap.hpp"

#include <limits>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace mhm {

void MhmConfig::validate() const {
  if (size == 0) throw ConfigError("MhmConfig: size must be positive");
  if (!is_power_of_two(granularity)) {
    throw ConfigError("MhmConfig: granularity must be a power of two");
  }
  if (interval == 0) throw ConfigError("MhmConfig: interval must be positive");
}

MhmConfig MhmConfig::paper_default() { return MhmConfig{}; }

void HeatMap::increment(std::size_t cell, std::uint64_t by) {
  MHM_ASSERT(cell < counts_.size(), "HeatMap::increment: cell out of range");
  constexpr std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
  // Saturating add; guard the uint64 sum itself against wrap-around for
  // pathologically large `by`.
  if (by >= kMax || static_cast<std::uint64_t>(counts_[cell]) + by > kMax) {
    counts_[cell] = kMax;
  } else {
    counts_[cell] = static_cast<std::uint32_t>(counts_[cell] + by);
  }
}

void HeatMap::reset() {
  std::fill(counts_.begin(), counts_.end(), 0u);
}

std::uint64_t HeatMap::total_accesses() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

std::size_t HeatMap::active_cells() const {
  std::size_t n = 0;
  for (auto c : counts_) n += (c != 0);
  return n;
}

std::vector<double> HeatMap::as_vector() const {
  std::vector<double> v;
  as_vector_into(v);
  return v;
}

void HeatMap::as_vector_into(std::vector<double>& out) const {
  out.resize(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]);
  }
}

std::string summarize(const HeatMap& map) {
  std::ostringstream os;
  os << "interval=" << map.interval_index << " cells=" << map.cell_count()
     << " total=" << map.total_accesses() << " active=" << map.active_cells();
  return os.str();
}

}  // namespace mhm
