#pragma once

#include <iosfwd>
#include <string>

#include "core/heatmap.hpp"
#include "core/model_io.hpp"

namespace mhm {

/// Binary persistence for heat-map traces.
///
/// The paper's workflow profiles the system in a trusted environment before
/// deployment (§2, assumption iii). Persisting the raw MHM traces decouples
/// *collection* from *training*: traces recorded once can be re-used to fit
/// detectors with different hyper-parameters (L', J, thresholds) without
/// re-running the system — which is also how the ablation studies work.
///
/// Format: magic "MHMT", version, the MhmConfig that produced the trace,
/// map count, then per map: interval index, interval start and the cell
/// counts (u32 each). Little-endian throughout; readers validate magic,
/// version, bounds and cell-count consistency.

/// A trace plus the monitoring configuration it was recorded under.
struct RecordedTrace {
  MhmConfig config;
  HeatMapTrace maps;
};

void save_trace(const RecordedTrace& trace, std::ostream& out);
RecordedTrace load_trace(std::istream& in);

void save_trace_file(const RecordedTrace& trace, const std::string& path);
RecordedTrace load_trace_file(const std::string& path);

}  // namespace mhm
