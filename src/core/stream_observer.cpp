#include "core/stream_observer.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/flight.hpp"
#include "obs/history.hpp"
#include "obs/metrics.hpp"
#include "obs/model_health.hpp"

namespace mhm {

namespace {

struct DetectorMetrics {
  obs::Counter& intervals = obs::Registry::instance().counter(
      "detector.intervals_analyzed", "MHM intervals scored by analyze()");
  obs::Counter& alarms = obs::Registry::instance().counter(
      "detector.alarms", "intervals below the primary threshold");
  // Log-spaced bounds, ~4 per decade (10^0.25 steps) from 1 µs to 100 ms:
  // the analyze path sits near 10 µs, and decade-wide buckets put its whole
  // distribution in one bin — quarter-decade resolution separates the ~6 µs
  // batch-amortized path from the ~10 µs serial one and resolves tail
  // regressions a decade bucket would hide.
  obs::Histogram& analysis_ns = obs::Registry::instance().histogram(
      "detector.analysis_ns",
      {1.00e3, 1.78e3, 3.16e3, 5.62e3, 1.00e4, 1.78e4, 3.16e4, 5.62e4,
       1.00e5, 1.78e5, 3.16e5, 5.62e5, 1.00e6, 1.78e6, 3.16e6, 5.62e6,
       1.00e7, 1.78e7, 3.16e7, 5.62e7, 1.00e8},
      "wall-clock nanoseconds of projection + density per interval");
};

DetectorMetrics& detector_metrics() {
  static DetectorMetrics m;
  return m;
}

std::shared_ptr<obs::ModelHealthMonitor> build_health(
    const ModelSnapshot& snapshot, const StreamObserver::Options& options) {
  // The monitor's training baseline is the same validation-score vector
  // θ_p was calibrated from — persisted by model_io, so assembled models
  // get a monitor too. No re-scoring anywhere.
  if (!options.attach_health) return nullptr;
  obs::ModelHealthOptions mh = obs::ModelHealthOptions::from_env();
  if (!mh.attach) return nullptr;
  mh.expected_p = snapshot.primary.p;
  // Per-session sizing overrides (the fleet preset): kFromEnv keeps the
  // environment/global default, anything else replaces it.
  constexpr std::size_t kFromEnv = StreamObserver::Options::kFromEnv;
  if (options.health_history != kFromEnv) mh.history = options.health_history;
  if (options.health_row_stride != kFromEnv) {
    mh.row_stride = options.health_row_stride;
  }
  if (options.health_max_events != kFromEnv) {
    mh.max_events = options.health_max_events;
  }
  std::vector<double> weights;
  weights.reserve(snapshot.gmm.component_count());
  for (const auto& c : snapshot.gmm.components()) weights.push_back(c.weight);
  return std::make_shared<obs::ModelHealthMonitor>(
      snapshot.calibrator.validation_scores(), std::move(weights), mh);
}

}  // namespace

obs::Histogram& StreamObserver::analysis_time_histogram() {
  return detector_metrics().analysis_ns;
}

StreamObserver::StreamObserver(const ModelSnapshot& snapshot,
                               const Options& options)
    : journal_(options.journal_capacity != 0
                   ? std::make_shared<obs::DecisionJournal>(
                         options.journal_capacity)
                   : std::make_shared<obs::DecisionJournal>()),
      phases_(std::max<std::size_t>(1, options.phases)),
      top_cells_(options.top_cells),
      options_(options) {
  auto& registry = obs::Registry::instance();
  phase_metrics_.reserve(phases_);
  for (std::size_t p = 0; p < phases_; ++p) {
    const std::string suffix = std::to_string(p);
    PhaseMetrics pm;
    pm.intervals = &registry.counter(
        "detector.intervals_by_phase." + suffix,
        "intervals analyzed at hyperperiod phase " + suffix);
    pm.alarms = &registry.counter(
        "detector.alarms_by_phase." + suffix,
        "alarms raised at hyperperiod phase " + suffix);
    pm.rate = &registry.gauge(
        "detector.alarm_rate_by_phase." + suffix,
        "alarms / intervals at hyperperiod phase " + suffix);
    phase_metrics_.push_back(pm);
  }
  health_ = build_health(snapshot, options_);
  if (options_.history_raw > 0) {
    obs::HistoryOptions ho;
    ho.raw_capacity = options_.history_raw;
    ho.bin_capacity = options_.history_bins;
    ho.fold = options_.history_fold;
    ho.tiers = options_.history_tiers;
    history_ = std::make_shared<obs::ScoreHistory>(ho);
  }
}

void StreamObserver::rebind(const ModelSnapshot& snapshot) {
  // The health baseline belongs to the model being scored with; the score
  // history and the incident recorder deliberately span the swap — the
  // model_version column records where the transition happened.
  health_ = build_health(snapshot, options_);
}

void StreamObserver::annotate_next(std::string note) {
  std::lock_guard<std::mutex> lk(note_mu_);
  pending_note_ = std::move(note);
  note_pending_.store(true, std::memory_order_release);
}

void StreamObserver::attach_incidents(
    const obs::IncidentOptions& options,
    std::shared_ptr<obs::IncidentStore> store) {
  incidents_ = store != nullptr
                   ? std::make_shared<obs::IncidentRecorder>(options,
                                                             std::move(store))
                   : nullptr;
}

obs::ModelHealthStatus StreamObserver::record(const ModelSnapshot& snapshot,
                                              const Verdict& verdict,
                                              std::span<const double> raw,
                                              std::span<const double> reduced) {
  if (!obs::enabled()) return obs::ModelHealthStatus::kOk;
  obs::mark_analysis();
  DetectorMetrics& m = detector_metrics();
  m.intervals.add();
  if (verdict.anomalous) m.alarms.add();
  m.analysis_ns.observe(static_cast<double>(verdict.analysis_time.count()));

  // Hyperperiod-phase-bucketed alarm telemetry: one counter add and one
  // gauge store per interval, cached handles only.
  const std::size_t phase =
      static_cast<std::size_t>(verdict.interval_index % phases_);
  if (phase < phase_metrics_.size()) {
    const PhaseMetrics& pm = phase_metrics_[phase];
    pm.intervals->add();
    if (verdict.anomalous) pm.alarms->add();
    pm.rate->set(static_cast<double>(pm.alarms->value()) /
                 static_cast<double>(pm.intervals->value()));
  }

  // Model-health monitor: consumes the score/SPE/pattern the scoring call
  // already computed — the hook adds no E-step work. The returned status
  // feeds the history ring and the incident trigger below without a second
  // lock acquisition.
  obs::ModelHealthStatus status = obs::ModelHealthStatus::kOk;
  if (health_ != nullptr) {
    status = health_->observe(verdict.log10_density, verdict.spe,
                              verdict.nearest_pattern, verdict.anomalous,
                              verdict.interval_index, raw);
  }

  if (history_ != nullptr) {
    obs::HistorySample sample;
    sample.interval = verdict.interval_index;
    sample.score = verdict.log10_density;
    sample.spe = verdict.spe;
    sample.alarm = verdict.anomalous;
    sample.status = static_cast<std::uint8_t>(status);
    sample.model_version = verdict.model_version;
    history_->append(sample);
  }

  if (incidents_ != nullptr) {
    const CellBaseline* bl = snapshot.baseline.get();
    const std::span<const double> bl_mean =
        bl != nullptr ? std::span<const double>(bl->mean)
                      : std::span<const double>{};
    const std::span<const double> bl_stddev =
        bl != nullptr ? std::span<const double>(bl->stddev)
                      : std::span<const double>{};
    incidents_->note(verdict.interval_index, verdict.log10_density,
                     verdict.spe, verdict.anomalous, verdict.nearest_pattern,
                     verdict.model_version, snapshot.primary.log10_value,
                     static_cast<std::uint8_t>(status), raw, bl_mean,
                     bl_stddev);
  }

  // The record is thread_local and handed to the journal by swap, so its
  // vectors trade buffers with the evicted ring slot instead of
  // allocating — the append path is allocation-free in steady state.
  thread_local obs::DecisionRecord rec;
  rec.note.clear();
  if (note_pending_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(note_mu_);
    rec.note = std::move(pending_note_);
    pending_note_.clear();
    note_pending_.store(false, std::memory_order_release);
  }
  rec.interval_index = verdict.interval_index;
  rec.phase = verdict.interval_index % phases_;
  rec.reduced_coords.assign(reduced.begin(), reduced.end());
  rec.log10_density = verdict.log10_density;
  rec.threshold = snapshot.primary.log10_value;
  rec.alarm = verdict.anomalous;
  rec.nearest_pattern = verdict.nearest_pattern;
  rec.model_version = verdict.model_version;
  rec.top_cells.clear();
  const CellBaseline* baseline = snapshot.baseline.get();
  if (verdict.anomalous && baseline != nullptr && top_cells_ > 0 &&
      baseline->mean.size() == raw.size()) {
    // Rank cells by |z| against the training baseline — O(L), alarms only.
    std::vector<std::size_t> order(raw.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    // Cells hold integer fetch counts, so one count is the natural floor
    // for the spread: a never-touched training cell that lights up scores
    // z = observed instead of blowing up on a zero stddev.
    const auto z_of = [&](std::size_t i) {
      return (raw[i] - baseline->mean[i]) / std::max(baseline->stddev[i], 1.0);
    };
    const std::size_t keep = std::min(top_cells_, order.size());
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(keep),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        const double za = std::abs(z_of(a));
                        const double zb = std::abs(z_of(b));
                        if (za != zb) return za > zb;
                        return a < b;
                      });
    rec.top_cells.reserve(keep);
    for (std::size_t r = 0; r < keep; ++r) {
      const std::size_t i = order[r];
      rec.top_cells.push_back(obs::CellContribution{.cell = i,
                                                    .observed = raw[i],
                                                    .expected =
                                                        baseline->mean[i],
                                                    .z_score = z_of(i)});
    }
  }
  journal_->append_swap(rec);
  // Crash-safe black box: remember the raw row and, on alarm, leave a
  // rate-limited .mhmdump on disk. One relaxed load while unarmed.
  obs::FlightRecorder::instance().note_interval(raw, verdict.interval_index,
                                                verdict.anomalous);
  return status;
}

}  // namespace mhm
