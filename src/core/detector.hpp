#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/gmm.hpp"
#include "core/heatmap.hpp"
#include "core/pca.hpp"
#include "core/snapshot.hpp"
#include "core/stream_observer.hpp"
#include "obs/journal.hpp"

namespace mhm::obs {
class Histogram;
class ModelHealthMonitor;
}  // namespace mhm::obs

namespace mhm {

/// The complete learning + detection pipeline of the paper (§4):
/// eigenmemory projection -> GMM density -> threshold test.
///
/// Since the engine layer landed this is a thin single-stream façade over
/// the same primitives engine::Session uses: an immutable ModelSnapshot
/// scored with score_snapshot() and observed through a StreamObserver
/// (journal, phase metrics, model health). It is kept for API
/// compatibility — the batch pipeline and the benches drive it directly.
/// The scoring scratch is per-instance (like engine::Session), so one
/// detector must not be scored from several threads at once; copies are
/// cheap (two shared_ptrs plus empty scratch) and share the model, the
/// journal and the health monitor, so concurrent scenario runs give each
/// thread its own copy and still aggregate into one observation stream —
/// run_scenarios does exactly that.
class AnomalyDetector {
 public:
  struct Options {
    Eigenmemory::Options pca;  ///< Defaults: retain 99.99 % variance.
    Gmm::Options gmm;          ///< Defaults: J = 5, 10 restarts.
    double primary_p = 0.01;   ///< Threshold quantile for verdicts (θ_1).
    /// Decision-journal ring capacity (0 keeps the journal default).
    std::size_t journal_capacity = 0;
    /// Modulus for the journal's hyperperiod-phase label (matches
    /// PhaseAwareDetector::Options::phases).
    std::size_t journal_phases = 10;
    /// Cells ranked by |z| against the training baseline in each alarm's
    /// journal record (0 disables the per-alarm explanation).
    std::size_t journal_top_cells = 8;
  };

  /// Train from normal-behaviour maps and calibrate thresholds on a second,
  /// disjoint set of normal maps.
  static AnomalyDetector train(const HeatMapTrace& training,
                               const HeatMapTrace& validation,
                               const Options& options);
  static AnomalyDetector train(const HeatMapTrace& training,
                               const HeatMapTrace& validation) {
    return train(training, validation, Options{});
  }

  /// Same, over raw vectors.
  static AnomalyDetector train(
      const std::vector<std::vector<double>>& training,
      const std::vector<std::vector<double>>& validation,
      const Options& options);
  static AnomalyDetector train(
      const std::vector<std::vector<double>>& training,
      const std::vector<std::vector<double>>& validation) {
    return train(training, validation, Options{});
  }

  /// Analyze one MHM: project, score, compare against the primary threshold.
  /// Timed — `Verdict::analysis_time` is the wall-clock cost of projection +
  /// density evaluation (the §5.4 measurement). Allocation-free in steady
  /// state (per-instance scratch buffers); score concurrently through
  /// per-thread copies, not one shared instance.
  Verdict analyze(const HeatMap& map) const;
  Verdict analyze(const std::vector<double>& raw,
                  std::uint64_t interval_index = 0) const;

  /// Score only (log10 density), untimed.
  double score(const std::vector<double>& raw) const;

  const Eigenmemory& eigenmemory() const { return snap_->pca; }
  const Gmm& gmm() const { return snap_->gmm; }
  const ThresholdCalibrator& thresholds() const { return snap_->calibrator; }
  Threshold primary_threshold() const { return snap_->primary; }

  /// The immutable model this detector scores with — the handle a
  /// DetectionEngine (or a ModelRegistry save) takes, shared, not copied.
  std::shared_ptr<const ModelSnapshot> snapshot() const { return snap_; }

  /// The process-wide `detector.analysis_ns` registry histogram — every
  /// analyze() call in the process observes into it. Benches and tests that
  /// want a per-run mean reset it before the run and read sum()/count()
  /// after (it records nothing while observability is disabled).
  static obs::Histogram& analysis_time_histogram();

  /// Per-interval decision journal (shared between copies of the detector).
  /// Always present; empty while observability is disabled.
  obs::DecisionJournal& journal() const { return observer_->journal(); }
  /// Shared handle for consumers that outlive this detector object — the
  /// monitoring endpoint and the flight recorder hold one.
  std::shared_ptr<const obs::DecisionJournal> journal_ptr() const {
    return observer_->journal_ptr();
  }

  /// Online model-health monitor fed by analyze(): score-drift detectors,
  /// calibration tracking and component occupancy (src/obs/model_health).
  /// Shared between copies of the detector; null when detached
  /// (set_model_health(nullptr) or MHM_DRIFT_DISABLE=1).
  std::shared_ptr<obs::ModelHealthMonitor> model_health() const {
    return observer_->model_health();
  }
  /// Swap or detach (nullptr) the monitor — the perf bench measures the
  /// hook's cost by detaching and re-attaching.
  void set_model_health(std::shared_ptr<obs::ModelHealthMonitor> monitor) {
    observer_->set_model_health(std::move(monitor));
  }

  /// Multi-resolution score history fed by analyze() (src/obs/history).
  std::shared_ptr<obs::ScoreHistory> score_history() const {
    return observer_->score_history();
  }
  /// Attach the incident black box: alarm bursts / health transitions on
  /// this detector's stream commit `.mhmi` bundles into `store`.
  void attach_incidents(const obs::IncidentOptions& options,
                        std::shared_ptr<obs::IncidentStore> store) {
    observer_->attach_incidents(options, std::move(store));
  }
  std::shared_ptr<obs::IncidentRecorder> incident_recorder() const {
    return observer_->incident_recorder();
  }

  /// Reassemble from previously trained parts (deserialization): dimension
  /// compatibility between the PCA output and the GMM is validated. The
  /// assembled detector carries no CellBaseline (the raw training set is
  /// gone after serialization), so its journal records have no top_cells.
  static AnomalyDetector assemble(Eigenmemory pca, Gmm gmm,
                                  ThresholdCalibrator calibrator,
                                  double primary_p);

  /// Façade over an existing snapshot — keeps the snapshot's CellBaseline
  /// and version stamp. This is how `mhm_tool serve` re-hangs a freshly
  /// registry-saved model (now carrying its registry version) in front of
  /// the same observation stack.
  static AnomalyDetector from_snapshot(
      std::shared_ptr<const ModelSnapshot> snapshot,
      const StreamObserver::Options& obs_options = {}) {
    return AnomalyDetector(std::move(snapshot), obs_options);
  }

 private:
  AnomalyDetector(std::shared_ptr<const ModelSnapshot> snapshot,
                  const StreamObserver::Options& obs_options);

  std::shared_ptr<const ModelSnapshot> snap_;
  /// Shared between copies so a copied detector journals into (and reports
  /// health through) the same stream — the run_scenarios fan-out relies on
  /// one aggregated journal.
  std::shared_ptr<StreamObserver> observer_;
  /// Per-instance scoring scratch (reaches its final size on the first
  /// analyze, then allocation-free). Mutable: analyze() is logically const.
  mutable ScoreScratch scratch_;
};

/// Baseline detector from Figure 9's discussion: watch only the total
/// memory-traffic volume per interval and flag values outside a calibrated
/// band. Cheap, but blind to compositional changes that keep volume steady —
/// which is exactly why the rootkit's post-load phase evades it.
class TrafficVolumeDetector {
 public:
  /// Calibrate on normal traffic volumes: the band is
  /// [q_{p} − margin·IQR, q_{1−p} + margin·IQR].
  TrafficVolumeDetector(const std::vector<double>& normal_volumes, double p,
                        double margin = 0.5);

  static TrafficVolumeDetector from_trace(const HeatMapTrace& normal, double p,
                                          double margin = 0.5);

  bool anomalous(double volume) const;
  bool anomalous(const HeatMap& map) const;

  double lower_bound() const { return lower_; }
  double upper_bound() const { return upper_; }

 private:
  double lower_ = 0.0;
  double upper_ = 0.0;
};

/// Baseline the paper dismisses as "computationally prohibitive" (§4.1):
/// keep every training MHM and score a test map by its distance to the
/// nearest neighbour in the raw L-dimensional space. Used in the ablation
/// benches to quantify the cost/accuracy trade-off against eigenmemory+GMM.
class NearestNeighborDetector {
 public:
  /// Stores the training set; calibrates the distance threshold as the
  /// p-quantile of validation nearest-neighbour distances.
  NearestNeighborDetector(std::vector<std::vector<double>> training,
                          const std::vector<std::vector<double>>& validation,
                          double p);

  /// Distance of `x` to the nearest stored map (O(N·L) per query).
  double nearest_distance(const std::vector<double>& x) const;

  bool anomalous(const std::vector<double>& x) const;

  double threshold() const { return threshold_; }
  std::size_t stored_maps() const { return training_.size(); }
  /// Bytes of storage the raw training set occupies — the cost the paper
  /// calls prohibitive for on-chip secure-core memory.
  std::size_t storage_bytes() const;

 private:
  std::vector<std::vector<double>> training_;
  double threshold_ = 0.0;
};

}  // namespace mhm
