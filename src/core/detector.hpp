#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/gmm.hpp"
#include "core/heatmap.hpp"
#include "core/pca.hpp"
#include "obs/journal.hpp"

namespace mhm::obs {
class Histogram;
class Counter;
class Gauge;
class ModelHealthMonitor;
}  // namespace mhm::obs

namespace mhm {

/// Detection threshold θ_p (paper §5.2): the p-quantile of the log densities
/// of a held-out set of *normal* MHMs. The expected false-positive rate is p.
/// The figures draw θ_{0.5} (p = 0.005) and θ_1 (p = 0.01).
struct Threshold {
  double p = 0.01;          ///< Quantile level (e.g. 0.005 for θ_{0.5}).
  double log10_value = 0.0; ///< Threshold on log10 Pr(M).
};

/// Calibrates one or more θ_p thresholds from validation log-densities.
class ThresholdCalibrator {
 public:
  /// `validation_log10` — log10 densities of held-out normal MHMs.
  explicit ThresholdCalibrator(std::vector<double> validation_log10);

  /// θ at quantile p (p in (0,1)).
  Threshold at(double p) const;

  /// Shorthands used throughout the evaluation.
  Threshold theta_05() const { return at(0.005); }  ///< θ_{0.5}
  Threshold theta_1() const { return at(0.01); }    ///< θ_1

  const std::vector<double>& validation_scores() const { return scores_; }

 private:
  std::vector<double> scores_;
};

/// Verdict for one analyzed MHM.
struct Verdict {
  std::uint64_t interval_index = 0;
  double log10_density = 0.0;
  bool anomalous = false;          ///< Against the primary threshold.
  std::size_t nearest_pattern = 0; ///< Most responsible GMM component.
  /// PCA residual (squared prediction error): ‖Φ − B^T w‖², the energy the
  /// eigenmemory basis failed to capture. With an orthonormal basis this is
  /// ‖Φ‖² − ‖w‖², so it falls out of the projection scratch for free.
  double spe = 0.0;
  std::chrono::nanoseconds analysis_time{0};  ///< Secure-core compute time.
};

/// The complete learning + detection pipeline of the paper (§4):
/// eigenmemory projection -> GMM density -> threshold test. The secure core
/// holds one of these and feeds it every completed MHM.
class AnomalyDetector {
 public:
  struct Options {
    Eigenmemory::Options pca;  ///< Defaults: retain 99.99 % variance.
    Gmm::Options gmm;          ///< Defaults: J = 5, 10 restarts.
    double primary_p = 0.01;   ///< Threshold quantile for verdicts (θ_1).
    /// Decision-journal ring capacity (0 keeps the journal default).
    std::size_t journal_capacity = 0;
    /// Modulus for the journal's hyperperiod-phase label (matches
    /// PhaseAwareDetector::Options::phases).
    std::size_t journal_phases = 10;
    /// Cells ranked by |z| against the training baseline in each alarm's
    /// journal record (0 disables the per-alarm explanation).
    std::size_t journal_top_cells = 8;
  };

  /// Train from normal-behaviour maps and calibrate thresholds on a second,
  /// disjoint set of normal maps.
  static AnomalyDetector train(const HeatMapTrace& training,
                               const HeatMapTrace& validation,
                               const Options& options);
  static AnomalyDetector train(const HeatMapTrace& training,
                               const HeatMapTrace& validation) {
    return train(training, validation, Options{});
  }

  /// Same, over raw vectors.
  static AnomalyDetector train(
      const std::vector<std::vector<double>>& training,
      const std::vector<std::vector<double>>& validation,
      const Options& options);
  static AnomalyDetector train(
      const std::vector<std::vector<double>>& training,
      const std::vector<std::vector<double>>& validation) {
    return train(training, validation, Options{});
  }

  /// Analyze one MHM: project, score, compare against the primary threshold.
  /// Timed — `Verdict::analysis_time` is the wall-clock cost of projection +
  /// density evaluation (the §5.4 measurement). Allocation-free in steady
  /// state (thread_local scratch buffers) and safe to call concurrently
  /// from several scenario runs sharing one detector.
  Verdict analyze(const HeatMap& map) const;
  Verdict analyze(const std::vector<double>& raw,
                  std::uint64_t interval_index = 0) const;

  /// Score only (log10 density), untimed.
  double score(const std::vector<double>& raw) const;

  const Eigenmemory& eigenmemory() const { return pca_; }
  const Gmm& gmm() const { return gmm_; }
  const ThresholdCalibrator& thresholds() const { return calibrator_; }
  Threshold primary_threshold() const { return primary_; }

  /// The process-wide `detector.analysis_ns` registry histogram — every
  /// analyze() call in the process observes into it. Benches and tests that
  /// want a per-run mean reset it before the run and read sum()/count()
  /// after (it records nothing while observability is disabled).
  static obs::Histogram& analysis_time_histogram();

  /// Per-interval decision journal (shared between copies of the detector).
  /// Always present; empty while observability is disabled.
  obs::DecisionJournal& journal() const { return *journal_; }
  /// Shared handle for consumers that outlive this detector object — the
  /// monitoring endpoint and the flight recorder hold one.
  std::shared_ptr<const obs::DecisionJournal> journal_ptr() const {
    return journal_;
  }

  /// Online model-health monitor fed by analyze(): score-drift detectors,
  /// calibration tracking and component occupancy (src/obs/model_health).
  /// Shared between copies of the detector; null when detached
  /// (set_model_health(nullptr) or MHM_DRIFT_DISABLE=1).
  std::shared_ptr<obs::ModelHealthMonitor> model_health() const {
    return health_;
  }
  /// Swap or detach (nullptr) the monitor — the perf bench measures the
  /// hook's cost by detaching and re-attaching.
  void set_model_health(std::shared_ptr<obs::ModelHealthMonitor> monitor);

  /// Reassemble from previously trained parts (deserialization): dimension
  /// compatibility between the PCA output and the GMM is validated.
  static AnomalyDetector assemble(Eigenmemory pca, Gmm gmm,
                                  ThresholdCalibrator calibrator,
                                  double primary_p);

 private:
  AnomalyDetector(Eigenmemory pca, Gmm gmm, ThresholdCalibrator calibrator,
                  double primary_p);

  /// Registry handles for one hyperperiod phase bucket: drift confined to
  /// one phase of the schedule shows up as that phase's alarm rate
  /// diverging in /metrics.
  struct PhaseMetrics {
    obs::Counter* intervals = nullptr;
    obs::Counter* alarms = nullptr;
    obs::Gauge* rate = nullptr;
  };

  /// (Re)build the per-phase metric handle cache for journal_phases_
  /// buckets and attach the model-health monitor. Called at construction
  /// and again by train() after the options override journal_phases_.
  void init_observers();

  /// Per-cell first/second moments of the raw training maps, used to rank
  /// the cells that drive an alarm. Absent on assemble()d detectors (the
  /// raw training set is gone after serialization).
  struct CellBaseline {
    std::vector<double> mean;
    std::vector<double> stddev;
  };

  Eigenmemory pca_;
  Gmm gmm_;
  ThresholdCalibrator calibrator_;
  Threshold primary_;
  std::shared_ptr<const CellBaseline> baseline_;
  std::shared_ptr<obs::DecisionJournal> journal_ =
      std::make_shared<obs::DecisionJournal>();
  std::size_t journal_phases_ = 10;
  std::size_t journal_top_cells_ = 8;
  std::vector<PhaseMetrics> phase_metrics_;
  std::shared_ptr<obs::ModelHealthMonitor> health_;
};

/// Baseline detector from Figure 9's discussion: watch only the total
/// memory-traffic volume per interval and flag values outside a calibrated
/// band. Cheap, but blind to compositional changes that keep volume steady —
/// which is exactly why the rootkit's post-load phase evades it.
class TrafficVolumeDetector {
 public:
  /// Calibrate on normal traffic volumes: the band is
  /// [q_{p} − margin·IQR, q_{1−p} + margin·IQR].
  TrafficVolumeDetector(const std::vector<double>& normal_volumes, double p,
                        double margin = 0.5);

  static TrafficVolumeDetector from_trace(const HeatMapTrace& normal, double p,
                                          double margin = 0.5);

  bool anomalous(double volume) const;
  bool anomalous(const HeatMap& map) const;

  double lower_bound() const { return lower_; }
  double upper_bound() const { return upper_; }

 private:
  double lower_ = 0.0;
  double upper_ = 0.0;
};

/// Baseline the paper dismisses as "computationally prohibitive" (§4.1):
/// keep every training MHM and score a test map by its distance to the
/// nearest neighbour in the raw L-dimensional space. Used in the ablation
/// benches to quantify the cost/accuracy trade-off against eigenmemory+GMM.
class NearestNeighborDetector {
 public:
  /// Stores the training set; calibrates the distance threshold as the
  /// p-quantile of validation nearest-neighbour distances.
  NearestNeighborDetector(std::vector<std::vector<double>> training,
                          const std::vector<std::vector<double>>& validation,
                          double p);

  /// Distance of `x` to the nearest stored map (O(N·L) per query).
  double nearest_distance(const std::vector<double>& x) const;

  bool anomalous(const std::vector<double>& x) const;

  double threshold() const { return threshold_; }
  std::size_t stored_maps() const { return training_.size(); }
  /// Bytes of storage the raw training set occupies — the cost the paper
  /// calls prohibitive for on-chip secure-core memory.
  std::size_t storage_bytes() const;

 private:
  std::vector<std::vector<double>> training_;
  double threshold_ = 0.0;
};

}  // namespace mhm
