#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/detector.hpp"
#include "core/heatmap.hpp"
#include "core/pca.hpp"
#include "linalg/cholesky.hpp"

namespace mhm {

/// Phase-conditioned anomaly detector (extension).
///
/// The paper's GMM must *rediscover* the workload's interval phases as
/// mixture components (§4.3's intuition: each pattern corresponds to a
/// combination of activities — in a periodic system, essentially a
/// hyperperiod phase). But in a real-time system the phase of every
/// monitoring interval is known exactly: interval_index mod (hyperperiod /
/// interval). Conditioning on it replaces the J-component mixture with one
/// Gaussian per phase, which
///   * removes the EM local-optimum lottery (closed-form fit),
///   * sharpens the density (no mass wasted on other phases' patterns),
///   * catches "wrong pattern for this phase" anomalies that a pooled
///     mixture scores as normal because the pattern exists *somewhere*.
/// The cost: it needs the phase count and a phase-stable interval clock
/// (both available by construction in the paper's setting).
class PhaseAwareDetector {
 public:
  struct Options {
    std::size_t phases = 10;        ///< Hyperperiod / monitoring interval.
    Eigenmemory::Options pca;       ///< Shared reduction stage.
    double covariance_floor = 1e-9; ///< Diagonal regularization.
    double primary_p = 0.01;        ///< Threshold quantile (θ_1).
  };

  /// Train from normal maps (interval_index must be meaningful) and
  /// calibrate the per-detector threshold on `validation`.
  /// Throws ConfigError if any phase has fewer than 3 training maps.
  static PhaseAwareDetector train(const HeatMapTrace& training,
                                  const HeatMapTrace& validation,
                                  const Options& options);

  /// log10 density of `map` under its phase's Gaussian.
  double score(const HeatMap& map) const;
  /// Score with an explicit phase (for raw vectors).
  double score(const std::vector<double>& raw, std::size_t phase) const;

  bool anomalous(const HeatMap& map) const;

  std::size_t phases() const { return phase_models_.size(); }
  const Eigenmemory& eigenmemory() const { return pca_; }
  double threshold() const { return threshold_; }

  /// Per-phase mean reduced weights (diagnostics).
  const std::vector<double>& phase_mean(std::size_t phase) const;

 private:
  struct PhaseModel {
    std::vector<double> mean;
    linalg::Cholesky chol;
    double log_norm = 0.0;
  };

  PhaseAwareDetector() = default;

  Eigenmemory pca_;
  std::vector<PhaseModel> phase_models_;
  double threshold_ = 0.0;
};

}  // namespace mhm
