#pragma once

#include <cstddef>
#include <deque>

#include "common/error.hpp"

namespace mhm {

/// Temporal k-of-n alarm voting.
///
/// §5.5 notes that bursty-but-legitimate activity can raise isolated false
/// positives. Real attacks in the paper's evaluation (app addition,
/// shellcode, rootkit stealth phase) depress densities over *runs* of
/// intervals, while calibration noise produces isolated dips. Requiring k
/// anomalous verdicts within the last n intervals trades a bounded amount
/// of detection latency (at most n-1 intervals) for a sharply lower
/// false-alarm rate: with per-interval FP rate p, the filtered rate is
/// roughly C(n,k) p^k.
class AlarmFilter {
 public:
  /// Requires 1 <= k <= n. k = n = 1 is a transparent pass-through.
  AlarmFilter(std::size_t k, std::size_t n);

  /// Feed one per-interval verdict; returns the filtered alarm decision.
  bool feed(bool interval_anomalous);

  /// Forget all history (e.g. after a recovery action).
  void reset();

  std::size_t window() const { return n_; }
  std::size_t required() const { return k_; }
  /// Anomalous verdicts currently inside the window.
  std::size_t current_count() const { return count_; }
  /// Filtered decision of the most recent feed() (false after reset()).
  bool last_output() const { return last_output_; }

 private:
  std::size_t k_;
  std::size_t n_;
  std::deque<bool> history_;
  std::size_t count_ = 0;
  bool last_output_ = false;
};

}  // namespace mhm
