#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "obs/incident.hpp"
#include "obs/journal.hpp"

namespace mhm::obs {
class Counter;
class Gauge;
class Histogram;
enum class ModelHealthStatus;
class ModelHealthMonitor;
class ScoreHistory;
}  // namespace mhm::obs

namespace mhm {

/// Per-stream observation bundle: the decision journal, the hyperperiod-
/// phase metric handles and the model-health monitor that ride on one
/// scored MHM stream. Both the single-stream AnomalyDetector façade and
/// every engine::Session carry one, so a stream's telemetry travels with
/// the stream instead of hanging off a process-global detector.
///
/// The journal and the health monitor are per-observer (per-stream); the
/// counters and gauges resolve through the process-wide Registry by name,
/// so concurrent streams aggregate into the same /metrics series.
class StreamObserver {
 public:
  struct Options {
    /// "Keep the environment/global default" sentinel for the model-health
    /// sizing overrides below.
    static constexpr std::size_t kFromEnv = static_cast<std::size_t>(-1);

    /// Decision-journal ring capacity (0 keeps the journal default).
    std::size_t journal_capacity = 0;
    /// Modulus for the journal's hyperperiod-phase label. The phase metric
    /// handles are registered once, here, under this final count — never
    /// re-keyed — so no stale per-phase gauges are left in the registry.
    std::size_t phases = 10;
    /// Cells ranked by |z| against the training baseline in each alarm's
    /// journal record (0 disables the per-alarm explanation).
    std::size_t top_cells = 8;
    /// Per-session model-health sketch sizing (fleet preset): a lone
    /// monitored stream can afford the full dashboard buffers; 10k fleet
    /// sessions cannot. kFromEnv keeps ModelHealthOptions::from_env();
    /// explicit values override just that knob. history is the recent-score
    /// ring (0 = none), row_stride the raw-row copy cadence (0 = never
    /// copy), max_events the transition log (0 = none).
    std::size_t health_history = kFromEnv;
    std::size_t health_row_stride = kFromEnv;
    std::size_t health_max_events = kFromEnv;
    /// False skips the per-session ModelHealthMonitor entirely (drift /
    /// calibration state is then someone else's job — e.g. the fleet
    /// aggregator's rollup of a sampled subset).
    bool attach_health = true;
    /// Multi-resolution score history ring (obs/history): raw last-N ring
    /// plus min/mean/max folded tiers. history_raw = 0 skips the history
    /// entirely; the fleet preset shrinks it to fit the session budget.
    std::size_t history_raw = 256;
    std::size_t history_bins = 128;
    std::size_t history_fold = 8;
    std::size_t history_tiers = 2;
  };

  /// Builds the phase handle cache and (unless MHM_DRIFT_DISABLE=1) a
  /// ModelHealthMonitor seeded from the snapshot's validation scores and
  /// mixture weights.
  StreamObserver(const ModelSnapshot& snapshot, const Options& options);

  /// Record one scored interval: process + per-phase metrics, model-health
  /// observation, journal append, flight-recorder note. `raw` and `reduced`
  /// are views of the map and its projection from the scoring call (a batch
  /// scatter passes SoA column gathers; nothing is re-scored) — they are
  /// copied where retained, never stored as views. No-op while observability
  /// is disabled. Thread-safe: the façade shares one observer across
  /// concurrent scenario threads. Returns the model-health verdict for this
  /// interval (kOk when no monitor is attached or observability is off) so
  /// callers — the engine's clean-interval reservoir — can gate on it
  /// without a second lock acquisition on the monitor.
  obs::ModelHealthStatus record(const ModelSnapshot& snapshot,
                                const Verdict& verdict,
                                std::span<const double> raw,
                                std::span<const double> reduced);

  /// Rebuild the model-health monitor against a new snapshot (hot model
  /// swap): the health baseline always belongs to the model being scored
  /// with. The journal and phase handles are untouched.
  void rebind(const ModelSnapshot& snapshot);

  obs::DecisionJournal& journal() const { return *journal_; }
  std::shared_ptr<const obs::DecisionJournal> journal_ptr() const {
    return journal_;
  }

  std::shared_ptr<obs::ModelHealthMonitor> model_health() const {
    return health_;
  }
  void set_model_health(std::shared_ptr<obs::ModelHealthMonitor> monitor) {
    health_ = std::move(monitor);
  }

  /// Multi-resolution score history (null when history_raw = 0).
  std::shared_ptr<obs::ScoreHistory> score_history() const {
    return history_;
  }

  /// Attach the incident black box: the recorder watches this stream's
  /// verdict/health sequence and commits `.mhmi` bundles into `store` on an
  /// alarm burst or an OK→degraded health transition. Null store detaches.
  void attach_incidents(const obs::IncidentOptions& options,
                        std::shared_ptr<obs::IncidentStore> store);
  std::shared_ptr<obs::IncidentRecorder> incident_recorder() const {
    return incidents_;
  }

  /// Stamp `note` onto the next recorded interval's journal record
  /// (one-shot; a pending note is replaced). Thread-safe — the retrain
  /// loop annotates from its worker thread while the scoring thread keeps
  /// recording; the hot path pays one relaxed atomic load while no note is
  /// pending.
  void annotate_next(std::string note);

  std::size_t phases() const { return phases_; }

  /// The process-wide `detector.analysis_ns` registry histogram — every
  /// recorded verdict observes into it.
  static obs::Histogram& analysis_time_histogram();

 private:
  /// Registry handles for one hyperperiod phase bucket: drift confined to
  /// one phase of the schedule shows up as that phase's alarm rate
  /// diverging in /metrics.
  struct PhaseMetrics {
    obs::Counter* intervals = nullptr;
    obs::Counter* alarms = nullptr;
    obs::Gauge* rate = nullptr;
  };

  std::shared_ptr<obs::DecisionJournal> journal_;
  std::size_t phases_ = 10;
  std::size_t top_cells_ = 8;
  Options options_;  ///< Kept so rebind() re-applies the health overrides.
  std::vector<PhaseMetrics> phase_metrics_;
  std::shared_ptr<obs::ModelHealthMonitor> health_;
  std::shared_ptr<obs::ScoreHistory> history_;
  std::shared_ptr<obs::IncidentRecorder> incidents_;
  std::atomic<bool> note_pending_{false};
  std::mutex note_mu_;       ///< Guards pending_note_ when the flag is set.
  std::string pending_note_;
};

}  // namespace mhm
