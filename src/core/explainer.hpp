#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/heatmap.hpp"
#include "core/pca.hpp"

namespace mhm {

/// Squared-prediction-error (SPE / Q-statistic) detector on the eigenmemory
/// residual.
///
/// The GMM scores the MHM's position *inside* the retained subspace; it is
/// structurally blind to deviations orthogonal to that subspace (e.g. a
/// burst of accesses to cells that carried no training variance — exactly
/// what this repo's rootkit load burst looks like, see EXPERIMENTS.md E7).
/// The classic remedy from PCA-based process monitoring is to also track
/// the reconstruction residual
///     SPE(M) = |Φ − U U^T Φ|²,  Φ = M − Ψ,
/// which is ~zero for maps the basis can express and large for novel
/// activity. Calibrated, like θ_p, as a quantile of validation SPEs.
class SpeDetector {
 public:
  /// `p` — target false-positive rate; threshold is the (1−p) quantile of
  /// the validation maps' SPE.
  SpeDetector(const Eigenmemory& basis,
              const std::vector<std::vector<double>>& validation, double p);

  /// Residual energy of one raw MHM.
  double spe(const std::vector<double>& map) const;
  double spe(const HeatMap& map) const { return spe(map.as_vector()); }

  bool anomalous(const std::vector<double>& map) const;
  bool anomalous(const HeatMap& map) const { return anomalous(map.as_vector()); }

  double threshold() const { return threshold_; }

 private:
  const Eigenmemory* basis_;  ///< Non-owning; must outlive the detector.
  double threshold_ = 0.0;
};

/// One cell's contribution to an anomaly.
struct CellDeviation {
  std::size_t cell = 0;
  double observed = 0.0;
  double expected = 0.0;   ///< Training mean of the cell.
  double z_score = 0.0;    ///< (observed − mean) / std  (std floored).
};

/// Post-alarm forensics: which cells of an anomalous MHM deviate most from
/// the training distribution. Works on raw maps, so it sees deviations the
/// reduced space may have projected away. Cell indices can be mapped to
/// kernel addresses/subsystems by the caller (cell c covers
/// [base + c·δ, base + (c+1)·δ)).
class AnomalyExplainer {
 public:
  /// Learns per-cell mean and standard deviation from normal maps.
  explicit AnomalyExplainer(const std::vector<std::vector<double>>& training);

  static AnomalyExplainer from_trace(const HeatMapTrace& training);

  /// Top `k` cells of `map` ranked by |z-score| (descending).
  std::vector<CellDeviation> explain(const std::vector<double>& map,
                                     std::size_t k = 10) const;
  std::vector<CellDeviation> explain(const HeatMap& map,
                                     std::size_t k = 10) const {
    return explain(map.as_vector(), k);
  }

  std::size_t cell_count() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace mhm
