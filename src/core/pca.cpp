#include "core/pca.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace mhm {

using linalg::Matrix;
using linalg::Vector;

namespace {

std::vector<double> compute_mean(const std::vector<std::vector<double>>& xs) {
  std::vector<double> mean(xs.front().size(), 0.0);
  for (const auto& x : xs) {
    MHM_ASSERT(x.size() == mean.size(), "Eigenmemory: ragged training set");
    for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += x[i];
  }
  for (double& m : mean) m /= static_cast<double>(xs.size());
  return mean;
}

/// Mean-shifted copies Φ_n = x_n − Ψ of the whole training set.
std::vector<std::vector<double>> mean_shifted(
    const std::vector<std::vector<double>>& xs,
    const std::vector<double>& mean) {
  const std::size_t l = mean.size();
  std::vector<std::vector<double>> phis(xs.size());
  parallel_for(xs.size(), 0, [&](std::size_t a0, std::size_t a1) {
    for (std::size_t a = a0; a < a1; ++a) {
      phis[a].resize(l);
      for (std::size_t i = 0; i < l; ++i) phis[a][i] = xs[a][i] - mean[i];
    }
  });
  return phis;
}

/// Upper-triangle accumulation of C = (1/N) Σ Φ Φ^T, mirrored at the end.
/// Parallel over row blocks: each row's partial sums accumulate over the
/// samples in index order, so every element sees the exact addition sequence
/// of the serial sample-major loop — the result is bit-identical for any
/// thread count.
Matrix covariance_direct(const std::vector<std::vector<double>>& xs,
                         const std::vector<double>& mean) {
  const std::size_t l = mean.size();
  const auto phis = mean_shifted(xs, mean);
  Matrix c(l, l, 0.0);
  parallel_for(l, 0, [&](std::size_t i0, std::size_t i1) {
    for (const auto& phi : phis) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double pi = phi[i];
        if (pi == 0.0) continue;
        auto row = c.row(i);
        for (std::size_t j = i; j < l; ++j) row[j] += pi * phi[j];
      }
    }
  });
  const double inv_n = 1.0 / static_cast<double>(xs.size());
  parallel_for(l, 0, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      c(i, i) *= inv_n;
      for (std::size_t j = i + 1; j < l; ++j) {
        c(i, j) *= inv_n;
        c(j, i) = c(i, j);
      }
    }
  });
  return c;
}

/// Gram matrix G = (1/N) A^T A with A = [Φ_1 … Φ_N] (N x N). Each (a, b)
/// entry is one independent dot product; row blocks are parallel and the
/// mirror write targets a distinct element, so no two threads touch the
/// same location.
Matrix gram_matrix(const std::vector<std::vector<double>>& xs,
                   const std::vector<double>& mean) {
  const std::size_t n = xs.size();
  const auto phis = mean_shifted(xs, mean);
  Matrix g(n, n, 0.0);
  const double inv_n = 1.0 / static_cast<double>(n);
  parallel_for(n, 0, [&](std::size_t a0, std::size_t a1) {
    for (std::size_t a = a0; a < a1; ++a) {
      for (std::size_t b = a; b < n; ++b) {
        const double v = linalg::dot(phis[a], phis[b]) * inv_n;
        g(a, b) = v;
        g(b, a) = v;
      }
    }
  });
  return g;
}

}  // namespace

Eigenmemory Eigenmemory::fit(const std::vector<std::vector<double>>& training,
                             const Options& options) {
  OBS_SPAN("pca.fit");
  if (training.empty()) {
    throw ConfigError("Eigenmemory::fit: empty training set");
  }
  const std::size_t l = training.front().size();
  if (l == 0) throw ConfigError("Eigenmemory::fit: zero-dimensional maps");
  const std::size_t n = training.size();
  if (options.components > std::min(l, n)) {
    throw ConfigError(
        "Eigenmemory::fit: requested more components than min(L, N)");
  }

  Eigenmemory em;
  em.mean_ = compute_mean(training);

  const bool use_gram = options.allow_gram_trick && n < l;
  Matrix moment;
  {
    PROF_ZONE(kTrainCovariance);
    moment = use_gram ? gram_matrix(training, em.mean_)
                      : covariance_direct(training, em.mean_);
  }
  linalg::SymmetricEigenResult eig;
  {
    PROF_ZONE(kTrainEigensolve);
    eig = linalg::eigen_symmetric(moment);
  }

  // Clamp tiny negative round-off eigenvalues to zero; record the spectrum.
  em.spectrum_ = eig.eigenvalues;
  for (double& v : em.spectrum_) v = std::max(v, 0.0);
  em.total_variance_ = 0.0;
  for (double v : em.spectrum_) em.total_variance_ += v;

  // Decide how many eigenmemories to retain.
  std::size_t keep = options.components;
  if (keep == 0) {
    if (options.variance_target <= 0.0 || options.variance_target > 1.0) {
      throw ConfigError("Eigenmemory::fit: variance_target must be in (0,1]");
    }
    double cumulative = 0.0;
    keep = em.spectrum_.size();
    for (std::size_t k = 0; k < em.spectrum_.size(); ++k) {
      cumulative += em.spectrum_[k];
      if (em.total_variance_ == 0.0 ||
          cumulative >= options.variance_target * em.total_variance_) {
        keep = k + 1;
        break;
      }
    }
  }
  // Never keep numerically-zero directions.
  const double floor = 1e-12 * std::max(1.0, em.total_variance_);
  while (keep > 1 && em.spectrum_[keep - 1] <= floor) --keep;

  em.eigenvalues_.assign(em.spectrum_.begin(),
                         em.spectrum_.begin() + static_cast<std::ptrdiff_t>(keep));
  em.basis_ = Matrix(keep, l, 0.0);

  if (use_gram) {
    // Map Gram eigenvectors v back to input space: u = A v (then normalize).
    // Basis rows are independent of each other — parallel over k.
    parallel_for(keep, 1, [&](std::size_t k0, std::size_t k1) {
      for (std::size_t k = k0; k < k1; ++k) {
        auto urow = em.basis_.row(k);
        for (std::size_t a = 0; a < n; ++a) {
          const double vak = eig.eigenvectors(a, k);
          if (vak == 0.0) continue;
          for (std::size_t i = 0; i < l; ++i) {
            urow[i] += vak * (training[a][i] - em.mean_[i]);
          }
        }
        linalg::normalize(urow);
      }
    });
  } else {
    for (std::size_t k = 0; k < keep; ++k) {
      auto urow = em.basis_.row(k);
      for (std::size_t i = 0; i < l; ++i) urow[i] = eig.eigenvectors(i, k);
    }
  }
  obs::Registry::instance()
      .gauge("core.pca.components_retained",
             "eigenmemories kept by the most recent fit")
      .set(static_cast<double>(keep));
  obs::Registry::instance()
      .gauge("core.pca.variance_explained",
             "variance fraction captured by the retained eigenmemories")
      .set(em.variance_explained());
  return em;
}

Eigenmemory Eigenmemory::fit(const HeatMapTrace& maps,
                             const Options& options) {
  std::vector<std::vector<double>> raw;
  raw.reserve(maps.size());
  for (const auto& m : maps) raw.push_back(m.as_vector());
  return fit(raw, options);
}

namespace {

/// Z = A Q: one row per sample, z[a][j] = Φ_a · q_j. Every output element is
/// an independent i-ascending dot, so row blocks parallelize bit-exactly.
void data_times_basis(const std::vector<std::vector<double>>& phis,
                      const std::vector<std::vector<double>>& q_cols,
                      std::vector<std::vector<double>>& z) {
  const std::size_t m = q_cols.size();
  z.resize(phis.size());
  parallel_for(phis.size(), 0, [&](std::size_t a0, std::size_t a1) {
    for (std::size_t a = a0; a < a1; ++a) {
      z[a].resize(m);
      for (std::size_t j = 0; j < m; ++j) {
        z[a][j] = linalg::dot(phis[a], q_cols[j]);
      }
    }
  });
}

/// Y_j = (1/N) A^T z_(·,j) = C q_j without forming C. Row blocks of the
/// output are parallel; each element accumulates over samples in ascending
/// index order (the covariance_direct contract), so the result is
/// bit-identical at any thread count.
void covariance_apply(const std::vector<std::vector<double>>& phis,
                      const std::vector<std::vector<double>>& z,
                      std::size_t l, std::vector<std::vector<double>>& y) {
  const std::size_t m = y.size();
  const double inv_n = 1.0 / static_cast<double>(phis.size());
  for (auto& col : y) col.assign(l, 0.0);
  parallel_for(l, 0, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t a = 0; a < phis.size(); ++a) {
      const auto& phi = phis[a];
      for (std::size_t j = 0; j < m; ++j) {
        const double zaj = z[a][j];
        if (zaj == 0.0) continue;
        auto& col = y[j];
        for (std::size_t i = i0; i < i1; ++i) col[i] += zaj * phi[i];
      }
    }
  });
  for (auto& col : y) {
    for (double& v : col) v *= inv_n;
  }
}

/// In-place modified Gram–Schmidt over the columns. Serial by design: the
/// column count is k + oversample (tiny), and a fixed sweep order keeps the
/// orthonormalization deterministic. A column that collapses to numerical
/// zero (rank-deficient data) is re-seeded with a canonical basis vector so
/// the sweep always yields a full orthonormal set.
void orthonormalize_columns(std::vector<std::vector<double>>& cols) {
  const std::size_t l = cols.empty() ? 0 : cols.front().size();
  for (std::size_t j = 0; j < cols.size(); ++j) {
    for (std::size_t p = 0; p < j; ++p) {
      const double r = linalg::dot(cols[p], cols[j]);
      for (std::size_t i = 0; i < l; ++i) cols[j][i] -= r * cols[p][i];
    }
    double nrm = linalg::norm2(cols[j]);
    if (!(nrm > 1e-12)) {
      // Deterministic re-seed: e_{j mod L}, re-orthogonalized.
      std::fill(cols[j].begin(), cols[j].end(), 0.0);
      cols[j][j % l] = 1.0;
      for (std::size_t p = 0; p < j; ++p) {
        const double r = linalg::dot(cols[p], cols[j]);
        for (std::size_t i = 0; i < l; ++i) cols[j][i] -= r * cols[p][i];
      }
      nrm = linalg::norm2(cols[j]);
    }
    const double inv = 1.0 / nrm;
    for (double& v : cols[j]) v *= inv;
  }
}

}  // namespace

Eigenmemory Eigenmemory::fit_topk(
    const std::vector<std::vector<double>>& training,
    const TopkOptions& options) {
  OBS_SPAN("pca.fit_topk");
  if (training.empty()) {
    throw ConfigError("Eigenmemory::fit_topk: empty training set");
  }
  const std::size_t l = training.front().size();
  if (l == 0) throw ConfigError("Eigenmemory::fit_topk: zero-dimensional maps");
  const std::size_t n = training.size();
  const std::size_t rank_cap = std::min(l, n);
  if (options.components == 0) {
    throw ConfigError("Eigenmemory::fit_topk: components must be > 0");
  }
  if (options.components > rank_cap) {
    throw ConfigError(
        "Eigenmemory::fit_topk: requested more components than min(L, N)");
  }
  const std::size_t keep = options.components;
  const std::size_t m = std::min(keep + options.oversample, rank_cap);

  // Small-N route: the N×N Gram eigensolve is exact and already cheap —
  // reuse the full fit() (it auto-selects the Turk–Pentland trick when
  // N < L), which also yields the complete spectrum. The same fallback
  // covers the degenerate case where the oversampled subspace would span
  // the whole rank anyway — the randomized route would do strictly more
  // work than the exact one.
  if ((n < l && n <= options.gram_limit) || m >= rank_cap) {
    Options exact;
    exact.components = keep;
    return fit(training, exact);
  }

  Eigenmemory em;
  em.mean_ = compute_mean(training);
  const auto phis = mean_shifted(training, em.mean_);

  // trace(C) = (1/N) Σ ‖Φ_a‖² — the total variance, exact, without C.
  double trace = 0.0;
  for (const auto& phi : phis) trace += linalg::dot(phi, phi);
  trace /= static_cast<double>(n);

  // Randomized range finder with subspace (power) iteration:
  //   Q ← orth(C Ω);  repeat q times: Q ← orth(C Q)
  // where every C·X product is computed as A^T(A X)/N on the data matrix.
  // Ω is filled serially from a fixed-seed generator, and every parallel
  // product above is element-independent, so the whole pipeline is
  // bit-deterministic at any MHM_THREADS.
  std::vector<std::vector<double>> q_cols(m);
  {
    PROF_ZONE(kTrainCovariance);
    Rng rng(options.seed);
    std::vector<std::vector<double>> omega(m);
    for (auto& col : omega) col.resize(l);
    // Fill in (row, column) order so the stream matches a column-major Ω.
    for (std::size_t i = 0; i < l; ++i) {
      for (std::size_t j = 0; j < m; ++j) omega[j][i] = rng.normal();
    }
    std::vector<std::vector<double>> z;
    data_times_basis(phis, omega, z);
    for (auto& col : q_cols) col.resize(l);
    covariance_apply(phis, z, l, q_cols);
    orthonormalize_columns(q_cols);
    for (std::size_t it = 0; it < options.power_iterations; ++it) {
      data_times_basis(phis, q_cols, z);
      covariance_apply(phis, z, l, q_cols);
      orthonormalize_columns(q_cols);
    }
  }

  // Rayleigh–Ritz: B = Q^T C Q = (A Q)^T (A Q) / N, then the small m×m
  // eigensolve recovers the eigenpairs inside the captured subspace.
  linalg::SymmetricEigenResult eig;
  {
    PROF_ZONE(kTrainEigensolve);
    std::vector<std::vector<double>> w;
    data_times_basis(phis, q_cols, w);
    Matrix b(m, m, 0.0);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i; j < m; ++j) {
        double acc = 0.0;
        for (std::size_t a = 0; a < n; ++a) acc += w[a][i] * w[a][j];
        acc *= inv_n;
        b(i, j) = acc;
        b(j, i) = acc;
      }
    }
    eig = linalg::eigen_symmetric(b);
  }

  // The m Ritz values are the best available spectrum estimate; the trace
  // (exact) anchors variance_explained. spectrum_ keeps all m so that
  // from_parts-style invariants (spectrum ≥ retained) hold downstream.
  em.spectrum_ = eig.eigenvalues;
  for (double& v : em.spectrum_) v = std::max(v, 0.0);
  em.total_variance_ = trace;

  em.eigenvalues_.assign(
      em.spectrum_.begin(),
      em.spectrum_.begin() + static_cast<std::ptrdiff_t>(keep));
  em.basis_ = Matrix(keep, l, 0.0);
  // U = Q V: rotate the orthonormal range onto the Ritz vectors. Rows are
  // independent — parallel over k; each element is a fixed j-ascending sum.
  parallel_for(keep, 1, [&](std::size_t k0, std::size_t k1) {
    for (std::size_t k = k0; k < k1; ++k) {
      auto urow = em.basis_.row(k);
      for (std::size_t j = 0; j < m; ++j) {
        const double vjk = eig.eigenvectors(j, k);
        if (vjk == 0.0) continue;
        const auto& qcol = q_cols[j];
        for (std::size_t i = 0; i < l; ++i) urow[i] += vjk * qcol[i];
      }
      linalg::normalize(urow);
    }
  });
  obs::Registry::instance()
      .gauge("core.pca.components_retained",
             "eigenmemories kept by the most recent fit")
      .set(static_cast<double>(keep));
  obs::Registry::instance()
      .gauge("core.pca.variance_explained",
             "variance fraction captured by the retained eigenmemories")
      .set(em.variance_explained());
  return em;
}

Eigenmemory Eigenmemory::fit_topk(const HeatMapTrace& maps,
                                  const TopkOptions& options) {
  std::vector<std::vector<double>> raw;
  raw.reserve(maps.size());
  for (const auto& m : maps) raw.push_back(m.as_vector());
  return fit_topk(raw, options);
}

void Eigenmemory::project_into(std::span<const double> map,
                               std::vector<double>& phi_scratch,
                               std::vector<double>& weights) const {
  MHM_ASSERT(map.size() == mean_.size(), "Eigenmemory::project: bad length");
  phi_scratch.resize(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    phi_scratch[i] = map[i] - mean_[i];
  }
  weights.resize(components());
  for (std::size_t k = 0; k < components(); ++k) {
    weights[k] = linalg::dot(basis_.row(k), phi_scratch);
  }
}

namespace {

/// Batch tile width of project_batch (mirrors Eigenmemory::kBatchTile; a
/// local name keeps the kernels below self-contained).
constexpr std::size_t kProjTile = Eigenmemory::kBatchTile;

/// Full-width tile pass, generic ISA: two basis rows swept together over a
/// *contiguous* Φ tile (tile[i * 16 + t] = cell i of lane t — 128-byte rows
/// read front-to-back, so the tile streams through the prefetcher once per
/// row pair). Each lane is an independent i-ascending accumulator chain —
/// the linalg::dot order; pairing two rows halves the tile re-reads and
/// doubles the number of independent chains in flight, which is what turns
/// the latency-bound serial matvec into a throughput-bound block product.
void tile_pass2_generic(const double* brow0, const double* brow1,
                        std::size_t l, const double* tile, double* w0,
                        double* w1) {
  double a0[kProjTile] = {0.0};
  double a1[kProjTile] = {0.0};
  for (std::size_t i = 0; i < l; ++i) {
    const double c0 = brow0[i];
    const double c1 = brow1[i];
    const double* ph = tile + i * kProjTile;
    for (std::size_t t = 0; t < kProjTile; ++t) a0[t] += c0 * ph[t];
    for (std::size_t t = 0; t < kProjTile; ++t) a1[t] += c1 * ph[t];
  }
  for (std::size_t t = 0; t < kProjTile; ++t) w0[t] = a0[t];
  for (std::size_t t = 0; t < kProjTile; ++t) w1[t] = a1[t];
}

void tile_pass1_generic(const double* brow0, std::size_t l,
                        const double* tile, double* w0) {
  double a0[kProjTile] = {0.0};
  for (std::size_t i = 0; i < l; ++i) {
    const double c0 = brow0[i];
    const double* ph = tile + i * kProjTile;
    for (std::size_t t = 0; t < kProjTile; ++t) a0[t] += c0 * ph[t];
  }
  for (std::size_t t = 0; t < kProjTile; ++t) w0[t] = a0[t];
}

// AVX2 / AVX-512 tile kernels, dispatched at runtime so the portable
// baseline binary still runs everywhere. GCC's autovectorizer keeps the 16
// lane accumulators in memory for the generic loops above (and its
// outer-loop vectorization strategy is a shuffle storm), so the hot passes
// are written with explicit vector-extension accumulators: one broadcast
// per basis row per cell, 4 ymm (or 2 zmm) registers of lane accumulators
// per row. Element-wise vector ops preserve each lane's serial chain
// exactly, and the build compiles with -ffp-contract=off, so no mul+add is
// ever fused — results are bit-identical to the generic pass and to serial
// project_into() on every ISA.
#if defined(__x86_64__) && defined(__GNUC__)
#define MHM_PCA_AVX2_TILE 1

// The vector helpers below are internal and always inlined into the
// target-attributed kernels, so the vector-ABI warning about plain
// functions taking vector arguments does not apply.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

typedef double V4df __attribute__((vector_size(32)));
// Unaligned view type: tile rows are only guaranteed 8-byte aligned.
typedef double V4dfU __attribute__((vector_size(32), aligned(8)));

// always_inline: these must fold into their (target-attributed) callers —
// a standalone out-of-line copy would also re-trip -Wpsabi past the
// diagnostic region below.
__attribute__((always_inline)) inline V4df v4load(const double* p) {
  return *reinterpret_cast<const V4dfU*>(p);
}
__attribute__((always_inline)) inline void v4store(double* p, V4df v) {
  *reinterpret_cast<V4dfU*>(p) = v;
}

typedef double V8df __attribute__((vector_size(64)));
typedef double V8dfU __attribute__((vector_size(64), aligned(8)));

__attribute__((always_inline)) inline V8df v8load(const double* p) {
  return *reinterpret_cast<const V8dfU*>(p);
}
__attribute__((always_inline)) inline void v8store(double* p, V8df v) {
  *reinterpret_cast<V8dfU*>(p) = v;
}

__attribute__((target("avx2"))) void tile_pass2_avx2(
    const double* brow0, const double* brow1, std::size_t l,
    const double* tile, double* w0, double* w1) {
  V4df a00{}, a01{}, a02{}, a03{};
  V4df a10{}, a11{}, a12{}, a13{};
  for (std::size_t i = 0; i < l; ++i) {
    const double* ph = tile + i * kProjTile;
    const V4df p0 = v4load(ph);
    const V4df p1 = v4load(ph + 4);
    const V4df p2 = v4load(ph + 8);
    const V4df p3 = v4load(ph + 12);
    const V4df c0 = {brow0[i], brow0[i], brow0[i], brow0[i]};
    const V4df c1 = {brow1[i], brow1[i], brow1[i], brow1[i]};
    a00 += c0 * p0;
    a01 += c0 * p1;
    a02 += c0 * p2;
    a03 += c0 * p3;
    a10 += c1 * p0;
    a11 += c1 * p1;
    a12 += c1 * p2;
    a13 += c1 * p3;
  }
  v4store(w0, a00);
  v4store(w0 + 4, a01);
  v4store(w0 + 8, a02);
  v4store(w0 + 12, a03);
  v4store(w1, a10);
  v4store(w1 + 4, a11);
  v4store(w1 + 8, a12);
  v4store(w1 + 12, a13);
}

__attribute__((target("avx2"))) void tile_pass1_avx2(const double* brow0,
                                                     std::size_t l,
                                                     const double* tile,
                                                     double* w0) {
  V4df a00{}, a01{}, a02{}, a03{};
  for (std::size_t i = 0; i < l; ++i) {
    const double* ph = tile + i * kProjTile;
    const V4df c0 = {brow0[i], brow0[i], brow0[i], brow0[i]};
    a00 += c0 * v4load(ph);
    a01 += c0 * v4load(ph + 4);
    a02 += c0 * v4load(ph + 8);
    a03 += c0 * v4load(ph + 12);
  }
  v4store(w0, a00);
  v4store(w0 + 4, a01);
  v4store(w0 + 8, a02);
  v4store(w0 + 12, a03);
}

// AVX-512 variant: a 16-lane tile row is exactly two zmm registers, and 32
// architectural zmm registers fit up to 8 basis rows of accumulators in one
// pass — the 47 KB tile is streamed once per 8 rows instead of once per
// row pair, which matters because the pass is cache-bandwidth-shaped, not
// FLOP-shaped. R is a compile-time constant so the accumulator arrays fully
// unroll into registers. Same element-wise lane structure, same bit-exact
// chains.
template <int R>
__attribute__((target("avx512f"))) void tile_passR_avx512(
    const double* const* brows, std::size_t l, const double* tile,
    double* const* ws) {
  const double* b[R];
  for (int r = 0; r < R; ++r) b[r] = brows[r];
  V8df a0[R] = {};
  V8df a1[R] = {};
  for (std::size_t i = 0; i < l; ++i) {
    const double* ph = tile + i * kProjTile;
    const V8df p0 = v8load(ph);
    const V8df p1 = v8load(ph + 8);
    for (int r = 0; r < R; ++r) {
      const double br = b[r][i];
      const V8df c = {br, br, br, br, br, br, br, br};
      a0[r] += c * p0;
      a1[r] += c * p1;
    }
  }
  for (int r = 0; r < R; ++r) {
    v8store(ws[r], a0[r]);
    v8store(ws[r] + 8, a1[r]);
  }
}

// Tile fill, AVX2: mean-shift 4 lanes × 4 cells at a time through a 4×4
// register transpose (maps are row-contiguous, the tile is lane-
// interleaved). The mean shift is element-wise (no chain to preserve), and
// each lane's ‖Φ‖² accumulator takes its c·c adds in strictly ascending
// cell order — the exact serial sequence.
/// One 4-lane × 4-cell transpose block: mean-shift, scatter into the tile,
/// and fold the four cells into the group's ‖Φ‖² accumulator in ascending
/// cell order. always_inline so the caller keeps all four group chains in
/// registers at once.
__attribute__((target("avx2"), always_inline)) inline void fill_block4(
    const double* const* rp, V4df m, std::size_t i, double* out, V4df& sqv) {
  const V4df r0 = v4load(rp[0] + i) - m;
  const V4df r1 = v4load(rp[1] + i) - m;
  const V4df r2 = v4load(rp[2] + i) - m;
  const V4df r3 = v4load(rp[3] + i) - m;
  const V4df t0 = __builtin_shufflevector(r0, r1, 0, 4, 2, 6);
  const V4df t1 = __builtin_shufflevector(r0, r1, 1, 5, 3, 7);
  const V4df t2 = __builtin_shufflevector(r2, r3, 0, 4, 2, 6);
  const V4df t3 = __builtin_shufflevector(r2, r3, 1, 5, 3, 7);
  const V4df c0 = __builtin_shufflevector(t0, t2, 0, 1, 4, 5);
  const V4df c1 = __builtin_shufflevector(t1, t3, 0, 1, 4, 5);
  const V4df c2 = __builtin_shufflevector(t0, t2, 2, 3, 6, 7);
  const V4df c3 = __builtin_shufflevector(t1, t3, 2, 3, 6, 7);
  v4store(out, c0);
  v4store(out + kProjTile, c1);
  v4store(out + 2 * kProjTile, c2);
  v4store(out + 3 * kProjTile, c3);
  sqv += c0 * c0;
  sqv += c1 * c1;
  sqv += c2 * c2;
  sqv += c3 * c3;
}

__attribute__((target("avx2"))) void fill_tile_avx2(
    const double* const* rowp, const double* mean, std::size_t l,
    double* tile, double* sq) {
  const std::size_t l4 = l & ~std::size_t{3};
  // All four lane groups advance through one i-loop so their ‖Φ‖² chains
  // (one serial add per cell per group — the order contract) interleave
  // and hide each other's add latency.
  V4df sq0{}, sq1{}, sq2{}, sq3{};
  for (std::size_t i = 0; i < l4; i += 4) {
    const V4df m = v4load(mean + i);
    double* out = tile + i * kProjTile;
    fill_block4(rowp, m, i, out, sq0);
    fill_block4(rowp + 4, m, i, out + 4, sq1);
    fill_block4(rowp + 8, m, i, out + 8, sq2);
    fill_block4(rowp + 12, m, i, out + 12, sq3);
  }
  v4store(sq, sq0);
  v4store(sq + 4, sq1);
  v4store(sq + 8, sq2);
  v4store(sq + 12, sq3);
  for (std::size_t i = l4; i < l; ++i) {
    const double m = mean[i];
    for (std::size_t t = 0; t < kProjTile; ++t) {
      const double v = rowp[t][i] - m;
      tile[i * kProjTile + t] = v;
      sq[t] += v * v;
    }
  }
}

enum class TileIsa { generic, avx2, avx512 };

TileIsa tile_isa() {
  static const TileIsa isa =
      __builtin_cpu_supports("avx512f") != 0
          ? TileIsa::avx512
          : (__builtin_cpu_supports("avx2") != 0 ? TileIsa::avx2
                                                 : TileIsa::generic);
  return isa;
}

#pragma GCC diagnostic pop
#endif  // x86-64 GCC/clang

/// Sweep all L' basis rows over one full 16-lane tile, writing the weights
/// into the k-major column block at lanes [b0, b0 + 16).
void project_full_tile(const Matrix& basis, std::size_t k_count,
                       const double* tile, double* weights_soa,
                       std::size_t batch, std::size_t b0) {
  const std::size_t l = basis.cols();
  double wtmp0[kProjTile];
  double wtmp1[kProjTile];
  std::size_t k = 0;
#ifdef MHM_PCA_AVX2_TILE
  if (tile_isa() == TileIsa::avx512) {
    // Up to 8 basis rows per tile read; the dispatch switch keeps the row
    // count a compile-time constant so the accumulators live in registers.
    double wbuf[8][kProjTile];
    while (k < k_count) {
      const std::size_t rows = std::min<std::size_t>(k_count - k, 8);
      const double* brows[8];
      double* ws[8];
      for (std::size_t r = 0; r < rows; ++r) {
        brows[r] = basis.row(k + r).data();
        ws[r] = wbuf[r];
      }
      switch (rows) {
        case 8: tile_passR_avx512<8>(brows, l, tile, ws); break;
        case 7: tile_passR_avx512<7>(brows, l, tile, ws); break;
        case 6: tile_passR_avx512<6>(brows, l, tile, ws); break;
        case 5: tile_passR_avx512<5>(brows, l, tile, ws); break;
        case 4: tile_passR_avx512<4>(brows, l, tile, ws); break;
        case 3: tile_passR_avx512<3>(brows, l, tile, ws); break;
        case 2: tile_passR_avx512<2>(brows, l, tile, ws); break;
        default: tile_passR_avx512<1>(brows, l, tile, ws); break;
      }
      for (std::size_t r = 0; r < rows; ++r) {
        double* w = weights_soa + (k + r) * batch + b0;
        for (std::size_t t = 0; t < kProjTile; ++t) w[t] = wbuf[r][t];
      }
      k += rows;
    }
    return;
  }
#endif
  for (; k + 1 < k_count; k += 2) {
#ifdef MHM_PCA_AVX2_TILE
    if (tile_isa() == TileIsa::avx2) {
      tile_pass2_avx2(basis.row(k).data(), basis.row(k + 1).data(), l, tile,
                      wtmp0, wtmp1);
    } else
#endif
    {
      tile_pass2_generic(basis.row(k).data(), basis.row(k + 1).data(), l,
                         tile, wtmp0, wtmp1);
    }
    double* w0 = weights_soa + k * batch + b0;
    double* w1 = weights_soa + (k + 1) * batch + b0;
    for (std::size_t t = 0; t < kProjTile; ++t) w0[t] = wtmp0[t];
    for (std::size_t t = 0; t < kProjTile; ++t) w1[t] = wtmp1[t];
  }
  for (; k < k_count; ++k) {
#ifdef MHM_PCA_AVX2_TILE
    if (tile_isa() == TileIsa::avx2) {
      tile_pass1_avx2(basis.row(k).data(), l, tile, wtmp0);
    } else
#endif
    {
      tile_pass1_generic(basis.row(k).data(), l, tile, wtmp0);
    }
    double* w0 = weights_soa + k * batch + b0;
    for (std::size_t t = 0; t < kProjTile; ++t) w0[t] = wtmp0[t];
  }
}

}  // namespace

void Eigenmemory::project_batch(std::span<const std::span<const double>> maps,
                                std::vector<double>& phi_tiles,
                                std::vector<double>& weights_soa,
                                std::vector<double>* phi_sq) const {
  const std::size_t batch = maps.size();
  const std::size_t l = mean_.size();
  const std::size_t k_count = components();
  const std::size_t tiles = (batch + kProjTile - 1) / kProjTile;
  phi_tiles.resize(tiles * l * kProjTile);
  weights_soa.resize(k_count * batch);
  if (phi_sq != nullptr) phi_sq->resize(batch);

  for (std::size_t b0 = 0; b0 < batch; b0 += kProjTile) {
    const std::size_t width = std::min(kProjTile, batch - b0);
    double* tile = phi_tiles.data() + (b0 / kProjTile) * l * kProjTile;
    // Mean-shift fill, cell-major: row i of the tile is `width` consecutive
    // doubles, so every write is a short contiguous run at any batch size
    // (a lane-major Φ block at large B would stride the cache by batch·8
    // bytes and thrash one L1 set). Each lane's Φ values and its ‖Φ‖² chain
    // accumulate in ascending cell order — the project_into() /
    // score_snapshot() sequence.
    const double* rowp[kProjTile];
    for (std::size_t t = 0; t < width; ++t) {
      MHM_ASSERT(maps[b0 + t].size() == l,
                 "Eigenmemory::project_batch: bad length");
      rowp[t] = maps[b0 + t].data();
    }
    double sq[kProjTile] = {0.0};
#ifdef MHM_PCA_AVX2_TILE
    if (width == kProjTile && tile_isa() != TileIsa::generic) {
      fill_tile_avx2(rowp, mean_.data(), l, tile, sq);
    } else
#endif
    {
      for (std::size_t i = 0; i < l; ++i) {
        const double m = mean_[i];
        double* trow = tile + i * kProjTile;
        for (std::size_t t = 0; t < width; ++t) {
          const double v = rowp[t][i] - m;
          trow[t] = v;
          sq[t] += v * v;
        }
      }
    }
    if (phi_sq != nullptr) {
      for (std::size_t t = 0; t < width; ++t) (*phi_sq)[b0 + t] = sq[t];
    }
    if (width == kProjTile) {
      project_full_tile(basis_, k_count, tile, weights_soa.data(), batch, b0);
    } else {
      // Ragged tail: per-lane scalar dots over the tile column, ascending i
      // — exactly the serial project_into() sequence. Sub-tile batches have
      // no cross-lane parallelism to exploit, so they run at serial speed.
      for (std::size_t t = 0; t < width; ++t) {
        for (std::size_t k = 0; k < k_count; ++k) {
          const double* brow = basis_.row(k).data();
          double acc = 0.0;
          for (std::size_t i = 0; i < l; ++i) {
            acc += brow[i] * tile[i * kProjTile + t];
          }
          weights_soa[k * batch + b0 + t] = acc;
        }
      }
    }
  }
}

std::vector<double> Eigenmemory::project(const std::vector<double>& map) const {
  std::vector<double> phi;
  std::vector<double> w;
  project_into(map, phi, w);
  return w;
}

std::vector<double> Eigenmemory::project(const HeatMap& map) const {
  return project(map.as_vector());
}

std::vector<std::vector<double>> Eigenmemory::project_all(
    const std::vector<std::vector<double>>& maps) const {
  OBS_SPAN("pca.project_all");
  std::vector<std::vector<double>> out(maps.size());
  parallel_for(maps.size(), 0, [&](std::size_t i0, std::size_t i1) {
    std::vector<double> phi;
    for (std::size_t i = i0; i < i1; ++i) {
      project_into(maps[i], phi, out[i]);
    }
  });
  return out;
}

std::vector<double> Eigenmemory::reconstruct(
    const std::vector<double>& weights) const {
  MHM_ASSERT(weights.size() == components(),
             "Eigenmemory::reconstruct: weight count mismatch");
  std::vector<double> out = mean_;
  for (std::size_t k = 0; k < components(); ++k) {
    linalg::axpy(weights[k], basis_.row(k), out);
  }
  return out;
}

double Eigenmemory::reconstruction_error(const std::vector<double>& map) const {
  const auto approx = reconstruct(project(map));
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 0; i < map.size(); ++i) {
    const double d = map[i] - approx[i];
    const double r = map[i] - mean_[i];
    err += d * d;
    ref += r * r;
  }
  if (ref == 0.0) return 0.0;
  return std::sqrt(err / ref);
}

Eigenmemory Eigenmemory::from_parts(std::vector<double> mean,
                                    linalg::Matrix basis,
                                    std::vector<double> eigenvalues,
                                    std::vector<double> spectrum) {
  if (mean.empty()) throw ConfigError("Eigenmemory::from_parts: empty mean");
  if (basis.cols() != mean.size()) {
    throw ConfigError("Eigenmemory::from_parts: basis width != mean length");
  }
  if (basis.rows() == 0 || basis.rows() != eigenvalues.size()) {
    throw ConfigError(
        "Eigenmemory::from_parts: eigenvalue count != basis rows");
  }
  if (spectrum.size() < eigenvalues.size()) {
    throw ConfigError("Eigenmemory::from_parts: spectrum shorter than basis");
  }
  for (std::size_t k = 0; k < basis.rows(); ++k) {
    const double n = linalg::norm2(basis.row(k));
    if (std::abs(n - 1.0) > 1e-6) {
      throw ConfigError("Eigenmemory::from_parts: basis row " +
                        std::to_string(k) + " is not unit-norm");
    }
    if (eigenvalues[k] < 0.0) {
      throw ConfigError("Eigenmemory::from_parts: negative eigenvalue");
    }
  }
  Eigenmemory em;
  em.mean_ = std::move(mean);
  em.basis_ = std::move(basis);
  em.eigenvalues_ = std::move(eigenvalues);
  em.spectrum_ = std::move(spectrum);
  em.total_variance_ = 0.0;
  for (double v : em.spectrum_) em.total_variance_ += v;
  return em;
}

double Eigenmemory::variance_explained(std::size_t k) const {
  if (total_variance_ == 0.0) return 1.0;
  if (k == 0 || k > eigenvalues_.size()) k = eigenvalues_.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) sum += eigenvalues_[i];
  return sum / total_variance_;
}

}  // namespace mhm
