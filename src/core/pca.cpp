#include "core/pca.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mhm {

using linalg::Matrix;
using linalg::Vector;

namespace {

std::vector<double> compute_mean(const std::vector<std::vector<double>>& xs) {
  std::vector<double> mean(xs.front().size(), 0.0);
  for (const auto& x : xs) {
    MHM_ASSERT(x.size() == mean.size(), "Eigenmemory: ragged training set");
    for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += x[i];
  }
  for (double& m : mean) m /= static_cast<double>(xs.size());
  return mean;
}

/// Mean-shifted copies Φ_n = x_n − Ψ of the whole training set.
std::vector<std::vector<double>> mean_shifted(
    const std::vector<std::vector<double>>& xs,
    const std::vector<double>& mean) {
  const std::size_t l = mean.size();
  std::vector<std::vector<double>> phis(xs.size());
  parallel_for(xs.size(), 0, [&](std::size_t a0, std::size_t a1) {
    for (std::size_t a = a0; a < a1; ++a) {
      phis[a].resize(l);
      for (std::size_t i = 0; i < l; ++i) phis[a][i] = xs[a][i] - mean[i];
    }
  });
  return phis;
}

/// Upper-triangle accumulation of C = (1/N) Σ Φ Φ^T, mirrored at the end.
/// Parallel over row blocks: each row's partial sums accumulate over the
/// samples in index order, so every element sees the exact addition sequence
/// of the serial sample-major loop — the result is bit-identical for any
/// thread count.
Matrix covariance_direct(const std::vector<std::vector<double>>& xs,
                         const std::vector<double>& mean) {
  const std::size_t l = mean.size();
  const auto phis = mean_shifted(xs, mean);
  Matrix c(l, l, 0.0);
  parallel_for(l, 0, [&](std::size_t i0, std::size_t i1) {
    for (const auto& phi : phis) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double pi = phi[i];
        if (pi == 0.0) continue;
        auto row = c.row(i);
        for (std::size_t j = i; j < l; ++j) row[j] += pi * phi[j];
      }
    }
  });
  const double inv_n = 1.0 / static_cast<double>(xs.size());
  parallel_for(l, 0, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      c(i, i) *= inv_n;
      for (std::size_t j = i + 1; j < l; ++j) {
        c(i, j) *= inv_n;
        c(j, i) = c(i, j);
      }
    }
  });
  return c;
}

/// Gram matrix G = (1/N) A^T A with A = [Φ_1 … Φ_N] (N x N). Each (a, b)
/// entry is one independent dot product; row blocks are parallel and the
/// mirror write targets a distinct element, so no two threads touch the
/// same location.
Matrix gram_matrix(const std::vector<std::vector<double>>& xs,
                   const std::vector<double>& mean) {
  const std::size_t n = xs.size();
  const auto phis = mean_shifted(xs, mean);
  Matrix g(n, n, 0.0);
  const double inv_n = 1.0 / static_cast<double>(n);
  parallel_for(n, 0, [&](std::size_t a0, std::size_t a1) {
    for (std::size_t a = a0; a < a1; ++a) {
      for (std::size_t b = a; b < n; ++b) {
        const double v = linalg::dot(phis[a], phis[b]) * inv_n;
        g(a, b) = v;
        g(b, a) = v;
      }
    }
  });
  return g;
}

}  // namespace

Eigenmemory Eigenmemory::fit(const std::vector<std::vector<double>>& training,
                             const Options& options) {
  OBS_SPAN("pca.fit");
  if (training.empty()) {
    throw ConfigError("Eigenmemory::fit: empty training set");
  }
  const std::size_t l = training.front().size();
  if (l == 0) throw ConfigError("Eigenmemory::fit: zero-dimensional maps");
  const std::size_t n = training.size();
  if (options.components > std::min(l, n)) {
    throw ConfigError(
        "Eigenmemory::fit: requested more components than min(L, N)");
  }

  Eigenmemory em;
  em.mean_ = compute_mean(training);

  const bool use_gram = options.allow_gram_trick && n < l;
  linalg::SymmetricEigenResult eig;
  if (use_gram) {
    eig = linalg::eigen_symmetric(gram_matrix(training, em.mean_));
  } else {
    eig = linalg::eigen_symmetric(covariance_direct(training, em.mean_));
  }

  // Clamp tiny negative round-off eigenvalues to zero; record the spectrum.
  em.spectrum_ = eig.eigenvalues;
  for (double& v : em.spectrum_) v = std::max(v, 0.0);
  em.total_variance_ = 0.0;
  for (double v : em.spectrum_) em.total_variance_ += v;

  // Decide how many eigenmemories to retain.
  std::size_t keep = options.components;
  if (keep == 0) {
    if (options.variance_target <= 0.0 || options.variance_target > 1.0) {
      throw ConfigError("Eigenmemory::fit: variance_target must be in (0,1]");
    }
    double cumulative = 0.0;
    keep = em.spectrum_.size();
    for (std::size_t k = 0; k < em.spectrum_.size(); ++k) {
      cumulative += em.spectrum_[k];
      if (em.total_variance_ == 0.0 ||
          cumulative >= options.variance_target * em.total_variance_) {
        keep = k + 1;
        break;
      }
    }
  }
  // Never keep numerically-zero directions.
  const double floor = 1e-12 * std::max(1.0, em.total_variance_);
  while (keep > 1 && em.spectrum_[keep - 1] <= floor) --keep;

  em.eigenvalues_.assign(em.spectrum_.begin(),
                         em.spectrum_.begin() + static_cast<std::ptrdiff_t>(keep));
  em.basis_ = Matrix(keep, l, 0.0);

  if (use_gram) {
    // Map Gram eigenvectors v back to input space: u = A v (then normalize).
    // Basis rows are independent of each other — parallel over k.
    parallel_for(keep, 1, [&](std::size_t k0, std::size_t k1) {
      for (std::size_t k = k0; k < k1; ++k) {
        auto urow = em.basis_.row(k);
        for (std::size_t a = 0; a < n; ++a) {
          const double vak = eig.eigenvectors(a, k);
          if (vak == 0.0) continue;
          for (std::size_t i = 0; i < l; ++i) {
            urow[i] += vak * (training[a][i] - em.mean_[i]);
          }
        }
        linalg::normalize(urow);
      }
    });
  } else {
    for (std::size_t k = 0; k < keep; ++k) {
      auto urow = em.basis_.row(k);
      for (std::size_t i = 0; i < l; ++i) urow[i] = eig.eigenvectors(i, k);
    }
  }
  obs::Registry::instance()
      .gauge("core.pca.components_retained",
             "eigenmemories kept by the most recent fit")
      .set(static_cast<double>(keep));
  obs::Registry::instance()
      .gauge("core.pca.variance_explained",
             "variance fraction captured by the retained eigenmemories")
      .set(em.variance_explained());
  return em;
}

Eigenmemory Eigenmemory::fit(const HeatMapTrace& maps,
                             const Options& options) {
  std::vector<std::vector<double>> raw;
  raw.reserve(maps.size());
  for (const auto& m : maps) raw.push_back(m.as_vector());
  return fit(raw, options);
}

void Eigenmemory::project_into(std::span<const double> map,
                               std::vector<double>& phi_scratch,
                               std::vector<double>& weights) const {
  MHM_ASSERT(map.size() == mean_.size(), "Eigenmemory::project: bad length");
  phi_scratch.resize(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    phi_scratch[i] = map[i] - mean_[i];
  }
  weights.resize(components());
  for (std::size_t k = 0; k < components(); ++k) {
    weights[k] = linalg::dot(basis_.row(k), phi_scratch);
  }
}

std::vector<double> Eigenmemory::project(const std::vector<double>& map) const {
  std::vector<double> phi;
  std::vector<double> w;
  project_into(map, phi, w);
  return w;
}

std::vector<double> Eigenmemory::project(const HeatMap& map) const {
  return project(map.as_vector());
}

std::vector<std::vector<double>> Eigenmemory::project_all(
    const std::vector<std::vector<double>>& maps) const {
  OBS_SPAN("pca.project_all");
  std::vector<std::vector<double>> out(maps.size());
  parallel_for(maps.size(), 0, [&](std::size_t i0, std::size_t i1) {
    std::vector<double> phi;
    for (std::size_t i = i0; i < i1; ++i) {
      project_into(maps[i], phi, out[i]);
    }
  });
  return out;
}

std::vector<double> Eigenmemory::reconstruct(
    const std::vector<double>& weights) const {
  MHM_ASSERT(weights.size() == components(),
             "Eigenmemory::reconstruct: weight count mismatch");
  std::vector<double> out = mean_;
  for (std::size_t k = 0; k < components(); ++k) {
    linalg::axpy(weights[k], basis_.row(k), out);
  }
  return out;
}

double Eigenmemory::reconstruction_error(const std::vector<double>& map) const {
  const auto approx = reconstruct(project(map));
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 0; i < map.size(); ++i) {
    const double d = map[i] - approx[i];
    const double r = map[i] - mean_[i];
    err += d * d;
    ref += r * r;
  }
  if (ref == 0.0) return 0.0;
  return std::sqrt(err / ref);
}

Eigenmemory Eigenmemory::from_parts(std::vector<double> mean,
                                    linalg::Matrix basis,
                                    std::vector<double> eigenvalues,
                                    std::vector<double> spectrum) {
  if (mean.empty()) throw ConfigError("Eigenmemory::from_parts: empty mean");
  if (basis.cols() != mean.size()) {
    throw ConfigError("Eigenmemory::from_parts: basis width != mean length");
  }
  if (basis.rows() == 0 || basis.rows() != eigenvalues.size()) {
    throw ConfigError(
        "Eigenmemory::from_parts: eigenvalue count != basis rows");
  }
  if (spectrum.size() < eigenvalues.size()) {
    throw ConfigError("Eigenmemory::from_parts: spectrum shorter than basis");
  }
  for (std::size_t k = 0; k < basis.rows(); ++k) {
    const double n = linalg::norm2(basis.row(k));
    if (std::abs(n - 1.0) > 1e-6) {
      throw ConfigError("Eigenmemory::from_parts: basis row " +
                        std::to_string(k) + " is not unit-norm");
    }
    if (eigenvalues[k] < 0.0) {
      throw ConfigError("Eigenmemory::from_parts: negative eigenvalue");
    }
  }
  Eigenmemory em;
  em.mean_ = std::move(mean);
  em.basis_ = std::move(basis);
  em.eigenvalues_ = std::move(eigenvalues);
  em.spectrum_ = std::move(spectrum);
  em.total_variance_ = 0.0;
  for (double v : em.spectrum_) em.total_variance_ += v;
  return em;
}

double Eigenmemory::variance_explained(std::size_t k) const {
  if (total_variance_ == 0.0) return 1.0;
  if (k == 0 || k > eigenvalues_.size()) k = eigenvalues_.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) sum += eigenvalues_[i];
  return sum / total_variance_;
}

}  // namespace mhm
