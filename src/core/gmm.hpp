#pragma once

#include <cmath>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace mhm {

/// ln(10), the divisor converting natural-log densities to the paper's
/// log10 scale. Hoisted into one constant (computed the same way every call
/// site used to: std::log(10.0)) so the serial and batch scoring paths — and
/// training-time calibration — divide by bit-identical values.
inline const double kLn10 = std::log(10.0);

/// One multivariate Gaussian component of the mixture: mean μ_j, covariance
/// Σ_j and mixing weight λ_j (prior probability of the component).
struct GmmComponent {
  std::vector<double> mean;
  linalg::Matrix covariance;
  double weight = 0.0;
};

/// Gaussian Mixture Model over reduced MHMs (paper §4.3).
///
/// Normal memory behaviour is treated as generated from a small set of
/// significant patterns, each a multivariate Gaussian over the eigenmemory
/// weights; anomalies score a low density under the mixture. Fit with the
/// EM algorithm (Dempster–Laird–Rubin), restarted several times with
/// k-means++ initialization and keeping the best log-likelihood, exactly as
/// the paper does (10 restarts, J chosen manually; a BIC-based automatic
/// choice is provided as the `select_components` extension).
class Gmm {
 public:
  /// Empty (untrained) mixture; usable only as an assignment target.
  Gmm() = default;

  struct Options {
    std::size_t components = 5;     ///< J (paper: 5).
    std::size_t restarts = 10;      ///< EM restarts (paper: 10).
    std::size_t max_iterations = 200;
    double tolerance = 1e-7;        ///< Relative log-likelihood improvement.
    double covariance_floor = 1e-9; ///< Diagonal regularization added to Σ.
    std::uint64_t seed = 12345;
  };

  /// Fit on reduced training vectors (all the same dimension).
  /// Throws ConfigError on degenerate input (fewer samples than components).
  static Gmm fit(const std::vector<std::vector<double>>& data,
                 const Options& options);
  static Gmm fit(const std::vector<std::vector<double>>& data) {
    return fit(data, Options{});
  }

  /// Extension: fit for each J in [min_components, max_components] and keep
  /// the model minimizing the Bayesian Information Criterion. Returns the
  /// winning model; `chosen` (if non-null) receives the winning J.
  static Gmm select_components(const std::vector<std::vector<double>>& data,
                               std::size_t min_components,
                               std::size_t max_components,
                               const Options& options,
                               std::size_t* chosen = nullptr);

  /// Reusable workspace for the allocation-free scoring calls. The online
  /// path (`AnomalyDetector::analyze`, every 10 ms interval) keeps one of
  /// these per thread; after the first call the buffers never reallocate.
  struct Scratch {
    std::vector<double> terms;  ///< Per-component log joint density.
    std::vector<double> diff;   ///< x − μ_j.
    std::vector<double> solve;  ///< Cholesky forward-solve output.
  };

  /// Natural-log density log Pr(M; Θ) of one reduced MHM (Eq. 2).
  double log_density(const std::vector<double>& x) const;

  /// Allocation-free variant reusing `scratch`.
  double log_density(std::span<const double> x, Scratch& scratch) const;

  /// log10 of the density — the quantity plotted in Figures 7, 8 and 10.
  double log10_density(const std::vector<double>& x) const;

  /// Per-component posterior responsibilities γ_j(x) (sums to 1).
  std::vector<double> responsibilities(const std::vector<double>& x) const;

  /// Allocation-free responsibilities: fills `gamma` (resized to the
  /// component count) and returns the natural-log density — the E-step and
  /// the online verdict need both from the same pass.
  double responsibilities_into(std::span<const double> x, Scratch& scratch,
                               std::vector<double>& gamma) const;

  /// Column-block workspace for the batch scoring path. Every block stores
  /// the batch dimension contiguously (element [row * batch + b] belongs to
  /// sample b), so the per-row loops vectorize across samples. Buffers reach
  /// a high-water mark on first use, then never reallocate.
  struct BatchScratch {
    std::vector<double> diff;   ///< d × B: x − μ_j for the current component.
    std::vector<double> solve;  ///< d × B: triangular-solve output rows.
    std::vector<double> maha;   ///< B: squared Mahalanobis distances.
  };

  /// Batched responsibilities over `batch` reduced samples laid out as
  /// batch-contiguous columns (`x_soa[i * batch + b]` is coordinate i of
  /// sample b). Fills `terms` (J × B log joint densities), `gamma` (J × B
  /// responsibilities) and `ln_density` (length-B natural-log densities).
  ///
  /// Determinism contract: per sample this performs the exact operation
  /// sequence of responsibilities_into() — same mean-shift order, same
  /// forward-substitution row order, same log-sum-exp fold — only with the
  /// batch as the inner loop over *independent* accumulation chains, so the
  /// results are bit-identical to the serial path at every batch size.
  void responsibilities_batch(std::span<const double> x_soa, std::size_t batch,
                              BatchScratch& scratch,
                              std::vector<double>& terms,
                              std::vector<double>& gamma,
                              std::span<double> ln_density) const;

  /// Index of the most responsible component.
  std::size_t classify(const std::vector<double>& x) const;

  /// Draw one sample from the mixture (tests / synthetic data).
  std::vector<double> sample(Rng& rng) const;

  std::size_t dimension() const { return dim_; }
  std::size_t component_count() const { return components_.size(); }
  const std::vector<GmmComponent>& components() const { return components_; }

  /// Total log-likelihood of a data set under this model.
  double total_log_likelihood(
      const std::vector<std::vector<double>>& data) const;

  /// Single-pass variant: additionally writes each sample's natural-log
  /// density into `per_sample` (resized to data.size()). Callers that need
  /// both the per-sample scores and their sum — threshold calibration, BIC,
  /// the model-health training baseline — score the set once instead of
  /// running a second E-step-equivalent pass.
  double total_log_likelihood(const std::vector<std::vector<double>>& data,
                              std::vector<double>* per_sample) const;

  /// Serial sample-order fold of scores computed elsewhere — bit-identical
  /// to the accumulation the variants above perform, so anything already
  /// holding per-interval log densities (the analyze hot path, a journal
  /// snapshot) sums them without touching the mixture again.
  static double sum_log_likelihood(std::span<const double> per_sample);

  /// Number of free parameters (for BIC): J·(d + d(d+1)/2) + (J−1).
  std::size_t parameter_count() const;

  /// BIC = −2·logL + params·ln(N); lower is better.
  double bic(const std::vector<std::vector<double>>& data) const;

  /// Rebuild from previously extracted components (deserialization).
  /// Validates shapes/weights and recomputes the density caches; throws
  /// ConfigError / NumericalError on inconsistent input.
  static Gmm from_components(std::vector<GmmComponent> components);

 private:
  /// Per-component cached Cholesky factor and log normalizers, precomputed
  /// at assemble time so scoring never re-derives them.
  struct ComponentCache {
    linalg::Cholesky chol;
    double log_norm = 0.0;  ///< -d/2·ln(2π) - 1/2·ln|Σ|.
    /// log(max(λ_j, 1e-300)) + log_norm, the maha-independent part of the
    /// log joint term. Folding it here is bit-identical to the old per-call
    /// sum because the serial expression was left-associated the same way.
    double log_joint_const = 0.0;
  };

  void rebuild_cache();

  /// Fill scratch.terms with log(λ_j) + log N(x; μ_j, Σ_j) for every j.
  void log_joint_terms(std::span<const double> x, Scratch& scratch) const;

  std::size_t dim_ = 0;
  std::vector<GmmComponent> components_;
  std::vector<ComponentCache> cache_;
};

/// k-means++ initial means over `data`; exposed for tests and reuse.
std::vector<std::vector<double>> kmeans_plus_plus_init(
    const std::vector<std::vector<double>>& data, std::size_t k, Rng& rng);

}  // namespace mhm
