#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/heatmap.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/matrix.hpp"

namespace mhm {

/// The "eigenmemory" dimensionality-reduction stage (paper §4.2).
///
/// Given a training set of MHMs, computes the empirical mean Ψ, the
/// covariance C = (1/N) Σ Φ_n Φ_n^T of the mean-shifted maps Φ_n = M_n − Ψ,
/// and its leading eigenvectors u_1..u_L' ("eigenmemories", the analogue of
/// eigenfaces). A map is reduced by projecting its mean-shifted form onto
/// the eigenmemory basis: M'_n = u^T Φ_n, an L'-vector of weights that
/// measures how strongly each primary activity contributes to the map.
class Eigenmemory {
 public:
  /// Empty (untrained) basis; usable only as an assignment target.
  Eigenmemory() = default;

  struct Options {
    /// Number of eigenmemories L' to keep. 0 = choose automatically so that
    /// `variance_target` of the training variance is retained.
    std::size_t components = 0;
    double variance_target = 0.9999;  ///< Used when components == 0.
    /// When N < L the covariance has rank < L; the solver always runs on
    /// the smaller Gram matrix in that case (Turk–Pentland trick).
    bool allow_gram_trick = true;
  };

  /// Fit on raw MHM cell-count vectors (each of equal length L).
  /// Throws ConfigError on an empty/ragged training set.
  static Eigenmemory fit(const std::vector<std::vector<double>>& training,
                         const Options& options);
  static Eigenmemory fit(const std::vector<std::vector<double>>& training) {
    return fit(training, Options{});
  }

  /// Convenience: fit directly on heat maps.
  static Eigenmemory fit(const HeatMapTrace& maps, const Options& options);
  static Eigenmemory fit(const HeatMapTrace& maps) {
    return fit(maps, Options{});
  }

  struct TopkOptions {
    /// Number of eigenmemories to keep. Must be > 0 and ≤ min(N, L) —
    /// unlike fit(), the truncated path has no variance-target mode.
    std::size_t components = 0;
    /// Extra subspace columns carried through the randomized iteration
    /// (Halko et al. oversampling); the final basis drops them.
    std::size_t oversample = 8;
    /// Subspace (power) iterations: each multiplies the spectral gap's
    /// effect by λ_{k+1}/λ_k, so a handful suffice for heat-map spectra.
    std::size_t power_iterations = 6;
    /// Largest N for which the N×N Gram eigensolve is used instead of the
    /// randomized path (the Gram route is exact; the cube of this bound is
    /// the cost ceiling accepted for exactness).
    std::size_t gram_limit = 1024;
    /// Seed for the Gaussian test matrix Ω. Fixed default keeps retrains
    /// reproducible; results are deterministic at any MHM_THREADS either way.
    std::uint64_t seed = 20150607;
  };

  /// Truncated top-k fit for the (re)training path: never forms the L×L
  /// covariance or runs the full eigensolve. Picks between two routes —
  /// the exact Turk–Pentland Gram eigendecomposition (N×N) when N < L and
  /// N ≤ gram_limit, and randomized subspace iteration with oversampling
  /// (Halko–Martinsson–Tropp) on the N×L data matrix otherwise. The
  /// returned basis spans the same top-k eigenspace as fit() up to
  /// round-off / iteration tolerance (the cross-check tests pin principal
  /// angles against the exact solver). Deterministic at any MHM_THREADS.
  /// Throws ConfigError when components is 0 or exceeds min(N, L).
  static Eigenmemory fit_topk(const std::vector<std::vector<double>>& training,
                              const TopkOptions& options);
  static Eigenmemory fit_topk(const HeatMapTrace& maps,
                              const TopkOptions& options);

  /// Project one raw MHM into the reduced space (length L' weights).
  std::vector<double> project(const std::vector<double>& map) const;
  std::vector<double> project(const HeatMap& map) const;

  /// Allocation-free projection for the online scoring path: reuses
  /// `phi_scratch` for the mean-shifted map and writes the weights into
  /// `weights` (both resized on first use, then stable).
  void project_into(std::span<const double> map,
                    std::vector<double>& phi_scratch,
                    std::vector<double>& weights) const;

  /// Batch tile width of project_batch: lanes per register tile. Fixed so
  /// the Φ block layout below is a compile-time contract.
  static constexpr std::size_t kBatchTile = 16;

  /// Batched, cache-blocked projection of B maps at once — the GEMM-shaped
  /// core of score_snapshot_batch(). `phi_tiles` receives the mean-shifted
  /// maps as tile-blocked columns: element
  /// `[(b / kBatchTile) * L * kBatchTile + i * kBatchTile + b % kBatchTile]`
  /// is cell i of map b, so each 16-lane tile is one contiguous L × 16 slab
  /// the inner kernel streams front-to-back. `weights_soa` gets the
  /// projections as an L' × B column block (element [k * B + b] belongs to
  /// map b); `phi_sq`, when non-null, receives each map's ‖Φ‖² (the SPE
  /// identity needs it, and folding it into the mean-shift pass saves a
  /// re-read of Φ).
  ///
  /// Determinism contract: every per-map accumulation (mean shift in cell
  /// order, each weight as an i-ascending single-accumulator dot — the
  /// linalg::dot order, ‖Φ‖² in cell order) is the exact serial sequence of
  /// project_into(); only *independent* chains run side by side in a
  /// register tile (including the runtime-dispatched AVX2 tile kernel,
  /// whose vector lanes are element-wise and never fused — the build pins
  /// -ffp-contract=off), so the weights are bit-identical to the serial
  /// path on every ISA.
  void project_batch(std::span<const std::span<const double>> maps,
                     std::vector<double>& phi_tiles,
                     std::vector<double>& weights_soa,
                     std::vector<double>* phi_sq = nullptr) const;

  /// Project a batch.
  std::vector<std::vector<double>> project_all(
      const std::vector<std::vector<double>>& maps) const;

  /// Approximate reconstruction Ψ + Σ_k w_k u_k from reduced weights.
  std::vector<double> reconstruct(const std::vector<double>& weights) const;

  /// Relative reconstruction error |M − reconstruct(project(M))| / |M − Ψ|
  /// (0 when the map lies fully inside the retained subspace).
  double reconstruction_error(const std::vector<double>& map) const;

  std::size_t input_dim() const { return mean_.size(); }
  std::size_t components() const { return basis_.rows(); }
  const std::vector<double>& mean() const { return mean_; }
  /// Basis row k is the k-th eigenmemory (unit length, decreasing
  /// eigenvalue order).
  const linalg::Matrix& basis() const { return basis_; }
  const std::vector<double>& eigenvalues() const { return eigenvalues_; }
  /// All eigenvalues of the covariance (not just the retained ones).
  const std::vector<double>& spectrum() const { return spectrum_; }

  /// Fraction of total training variance captured by the first k retained
  /// eigenmemories (k defaults to all retained).
  double variance_explained(std::size_t k = 0) const;

  /// Rebuild from previously extracted parts (deserialization). `basis`
  /// must be L' x L with unit-norm rows; `eigenvalues` length L';
  /// `spectrum` the full (possibly longer) eigenvalue list. Validated.
  static Eigenmemory from_parts(std::vector<double> mean,
                                linalg::Matrix basis,
                                std::vector<double> eigenvalues,
                                std::vector<double> spectrum);

 private:
  std::vector<double> mean_;       ///< Ψ, length L.
  linalg::Matrix basis_;           ///< L' x L; rows are eigenmemories.
  std::vector<double> eigenvalues_;///< Retained eigenvalues, length L'.
  std::vector<double> spectrum_;   ///< Full eigenvalue spectrum.
  double total_variance_ = 0.0;
};

}  // namespace mhm
