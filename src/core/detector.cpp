#include "core/detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace mhm {

obs::Histogram& AnomalyDetector::analysis_time_histogram() {
  return StreamObserver::analysis_time_histogram();
}

AnomalyDetector::AnomalyDetector(std::shared_ptr<const ModelSnapshot> snapshot,
                                 const StreamObserver::Options& obs_options)
    : snap_(std::move(snapshot)),
      observer_(std::make_shared<StreamObserver>(*snap_, obs_options)) {}

AnomalyDetector AnomalyDetector::assemble(Eigenmemory pca, Gmm gmm,
                                          ThresholdCalibrator calibrator,
                                          double primary_p) {
  if (gmm.dimension() != pca.components()) {
    throw ConfigError(
        "AnomalyDetector::assemble: GMM dimension does not match the "
        "eigenmemory count");
  }
  return AnomalyDetector(
      ModelSnapshot::assemble(std::move(pca), std::move(gmm),
                              std::move(calibrator), primary_p),
      StreamObserver::Options{});
}

AnomalyDetector AnomalyDetector::train(
    const std::vector<std::vector<double>>& training,
    const std::vector<std::vector<double>>& validation,
    const Options& options) {
  if (training.empty()) {
    throw ConfigError("AnomalyDetector::train: empty training set");
  }
  if (validation.empty()) {
    throw ConfigError("AnomalyDetector::train: empty validation set");
  }
  Eigenmemory pca = Eigenmemory::fit(training, options.pca);
  const auto reduced = pca.project_all(training);
  Gmm gmm = Gmm::fit(reduced, options.gmm);

  // Single-pass calibration scoring: one parallel projection, one parallel
  // density sweep that keeps the per-sample scores (Gmm::total_log_likelihood
  // would otherwise be re-run by anyone wanting the total). The same vector
  // seeds θ_p and the model-health training baseline.
  const auto reduced_valid = pca.project_all(validation);
  std::vector<double> ln_scores;
  gmm.total_log_likelihood(reduced_valid, &ln_scores);
  std::vector<double> validation_scores(ln_scores.size());
  for (std::size_t i = 0; i < ln_scores.size(); ++i) {
    validation_scores[i] = ln_scores[i] / kLn10;
  }

  // Per-cell baseline of the raw training maps: alarms are explained in the
  // journal by the cells deviating most (in z) from this baseline.
  const std::size_t l = training.front().size();
  auto baseline = std::make_shared<CellBaseline>();
  baseline->mean.assign(l, 0.0);
  baseline->stddev.assign(l, 0.0);
  for (const auto& x : training) {
    for (std::size_t i = 0; i < l; ++i) baseline->mean[i] += x[i];
  }
  const double inv_n = 1.0 / static_cast<double>(training.size());
  for (double& m : baseline->mean) m *= inv_n;
  for (const auto& x : training) {
    for (std::size_t i = 0; i < l; ++i) {
      const double d = x[i] - baseline->mean[i];
      baseline->stddev[i] += d * d;
    }
  }
  for (double& s : baseline->stddev) s = std::sqrt(s * inv_n);

  // The observer is built once, with the final phase count from the
  // options — per-phase metric handles are never re-keyed, so the registry
  // carries no stale gauges from a pre-override bucket count.
  StreamObserver::Options obs_options;
  obs_options.journal_capacity = options.journal_capacity;
  obs_options.phases = std::max<std::size_t>(1, options.journal_phases);
  obs_options.top_cells = options.journal_top_cells;
  return AnomalyDetector(
      ModelSnapshot::assemble(std::move(pca), std::move(gmm),
                              ThresholdCalibrator(std::move(validation_scores)),
                              options.primary_p, std::move(baseline)),
      obs_options);
}

AnomalyDetector AnomalyDetector::train(const HeatMapTrace& training,
                                       const HeatMapTrace& validation,
                                       const Options& options) {
  std::vector<std::vector<double>> train_raw;
  train_raw.reserve(training.size());
  for (const auto& m : training) train_raw.push_back(m.as_vector());
  std::vector<std::vector<double>> valid_raw;
  valid_raw.reserve(validation.size());
  for (const auto& m : validation) valid_raw.push_back(m.as_vector());
  return train(train_raw, valid_raw, options);
}

double AnomalyDetector::score(const std::vector<double>& raw) const {
  return snap_->gmm.log10_density(snap_->pca.project(raw));
}

Verdict AnomalyDetector::analyze(const std::vector<double>& raw,
                                 std::uint64_t interval_index) const {
  // Steady-state allocation-free: the scratch is per-instance, so two
  // detectors with different model dimensions never resize each other's
  // buffers (the old thread_local was shared by every detector on the
  // thread). Concurrent scoring goes through per-thread copies — see the
  // class comment.
  PROF_ZONE(kAnalyze);
  const Verdict v = score_snapshot(*snap_, raw, interval_index, scratch_);
  {
    PROF_ZONE(kScoreObserve);
    observer_->record(*snap_, v, raw, scratch_.reduced);
  }
  return v;
}

Verdict AnomalyDetector::analyze(const HeatMap& map) const {
  return analyze(map.as_vector(), map.interval_index);
}

TrafficVolumeDetector::TrafficVolumeDetector(
    const std::vector<double>& normal_volumes, double p, double margin) {
  if (normal_volumes.empty()) {
    throw ConfigError("TrafficVolumeDetector: empty calibration set");
  }
  if (p <= 0.0 || p >= 0.5) {
    throw ConfigError("TrafficVolumeDetector: p must be in (0, 0.5)");
  }
  const double q_lo = quantile(normal_volumes, p);
  const double q_hi = quantile(normal_volumes, 1.0 - p);
  const double iqr = quantile(normal_volumes, 0.75) -
                     quantile(normal_volumes, 0.25);
  lower_ = q_lo - margin * iqr;
  upper_ = q_hi + margin * iqr;
}

TrafficVolumeDetector TrafficVolumeDetector::from_trace(
    const HeatMapTrace& normal, double p, double margin) {
  std::vector<double> volumes;
  volumes.reserve(normal.size());
  for (const auto& m : normal) {
    volumes.push_back(static_cast<double>(m.total_accesses()));
  }
  return TrafficVolumeDetector(volumes, p, margin);
}

bool TrafficVolumeDetector::anomalous(double volume) const {
  return volume < lower_ || volume > upper_;
}

bool TrafficVolumeDetector::anomalous(const HeatMap& map) const {
  return anomalous(static_cast<double>(map.total_accesses()));
}

NearestNeighborDetector::NearestNeighborDetector(
    std::vector<std::vector<double>> training,
    const std::vector<std::vector<double>>& validation, double p)
    : training_(std::move(training)) {
  if (training_.empty()) {
    throw ConfigError("NearestNeighborDetector: empty training set");
  }
  if (validation.empty()) {
    throw ConfigError("NearestNeighborDetector: empty validation set");
  }
  std::vector<double> distances;
  distances.reserve(validation.size());
  for (const auto& v : validation) distances.push_back(nearest_distance(v));
  // Large distance = anomalous, so the threshold sits at the (1-p) quantile.
  threshold_ = quantile(distances, 1.0 - p);
}

double NearestNeighborDetector::nearest_distance(
    const std::vector<double>& x) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& t : training_) {
    best = std::min(best, linalg::squared_distance(x, t));
  }
  return std::sqrt(best);
}

bool NearestNeighborDetector::anomalous(const std::vector<double>& x) const {
  return nearest_distance(x) > threshold_;
}

std::size_t NearestNeighborDetector::storage_bytes() const {
  return training_.size() *
         (training_.empty() ? 0 : training_.front().size()) * sizeof(double);
}

}  // namespace mhm
