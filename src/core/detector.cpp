#include "core/detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/model_health.hpp"

namespace mhm {

namespace {

struct DetectorMetrics {
  obs::Counter& intervals = obs::Registry::instance().counter(
      "detector.intervals_analyzed", "MHM intervals scored by analyze()");
  obs::Counter& alarms = obs::Registry::instance().counter(
      "detector.alarms", "intervals below the primary threshold");
  obs::Histogram& analysis_ns = obs::Registry::instance().histogram(
      "detector.analysis_ns",
      {1e3, 1e4, 1e5, 1e6, 1e7, 1e8},
      "wall-clock nanoseconds of projection + density per interval");
};

DetectorMetrics& detector_metrics() {
  static DetectorMetrics m;
  return m;
}

}  // namespace

obs::Histogram& AnomalyDetector::analysis_time_histogram() {
  return detector_metrics().analysis_ns;
}

ThresholdCalibrator::ThresholdCalibrator(std::vector<double> validation_log10)
    : scores_(std::move(validation_log10)) {
  if (scores_.empty()) {
    throw ConfigError("ThresholdCalibrator: empty validation set");
  }
}

Threshold ThresholdCalibrator::at(double p) const {
  if (p <= 0.0 || p >= 1.0) {
    throw ConfigError("ThresholdCalibrator::at: p must be in (0,1)");
  }
  return Threshold{.p = p, .log10_value = quantile(scores_, p)};
}

AnomalyDetector::AnomalyDetector(Eigenmemory pca, Gmm gmm,
                                 ThresholdCalibrator calibrator,
                                 double primary_p)
    : pca_(std::move(pca)),
      gmm_(std::move(gmm)),
      calibrator_(std::move(calibrator)),
      primary_(calibrator_.at(primary_p)) {
  init_observers();
}

void AnomalyDetector::init_observers() {
  auto& registry = obs::Registry::instance();
  phase_metrics_.clear();
  phase_metrics_.reserve(journal_phases_);
  for (std::size_t p = 0; p < journal_phases_; ++p) {
    const std::string suffix = std::to_string(p);
    PhaseMetrics pm;
    pm.intervals = &registry.counter(
        "detector.intervals_by_phase." + suffix,
        "intervals analyzed at hyperperiod phase " + suffix);
    pm.alarms = &registry.counter(
        "detector.alarms_by_phase." + suffix,
        "alarms raised at hyperperiod phase " + suffix);
    pm.rate = &registry.gauge(
        "detector.alarm_rate_by_phase." + suffix,
        "alarms / intervals at hyperperiod phase " + suffix);
    phase_metrics_.push_back(pm);
  }

  // The monitor's training baseline is the same validation-score vector
  // θ_p was calibrated from — persisted by model_io, so assembled
  // detectors get a monitor too. No re-scoring anywhere.
  obs::ModelHealthOptions mh = obs::ModelHealthOptions::from_env();
  if (!mh.attach) {
    health_ = nullptr;
    return;
  }
  mh.expected_p = primary_.p;
  std::vector<double> weights;
  weights.reserve(gmm_.component_count());
  for (const auto& c : gmm_.components()) weights.push_back(c.weight);
  health_ = std::make_shared<obs::ModelHealthMonitor>(
      calibrator_.validation_scores(), std::move(weights), mh);
}

void AnomalyDetector::set_model_health(
    std::shared_ptr<obs::ModelHealthMonitor> monitor) {
  health_ = std::move(monitor);
}

AnomalyDetector AnomalyDetector::assemble(Eigenmemory pca, Gmm gmm,
                                          ThresholdCalibrator calibrator,
                                          double primary_p) {
  if (gmm.dimension() != pca.components()) {
    throw ConfigError(
        "AnomalyDetector::assemble: GMM dimension does not match the "
        "eigenmemory count");
  }
  return AnomalyDetector(std::move(pca), std::move(gmm),
                         std::move(calibrator), primary_p);
}

AnomalyDetector AnomalyDetector::train(
    const std::vector<std::vector<double>>& training,
    const std::vector<std::vector<double>>& validation,
    const Options& options) {
  if (training.empty()) {
    throw ConfigError("AnomalyDetector::train: empty training set");
  }
  if (validation.empty()) {
    throw ConfigError("AnomalyDetector::train: empty validation set");
  }
  Eigenmemory pca = Eigenmemory::fit(training, options.pca);
  const auto reduced = pca.project_all(training);
  Gmm gmm = Gmm::fit(reduced, options.gmm);

  // Single-pass calibration scoring: one parallel projection, one parallel
  // density sweep that keeps the per-sample scores (Gmm::total_log_likelihood
  // would otherwise be re-run by anyone wanting the total). The same vector
  // seeds θ_p and the model-health training baseline.
  const auto reduced_valid = pca.project_all(validation);
  std::vector<double> ln_scores;
  gmm.total_log_likelihood(reduced_valid, &ln_scores);
  std::vector<double> validation_scores(ln_scores.size());
  for (std::size_t i = 0; i < ln_scores.size(); ++i) {
    validation_scores[i] = ln_scores[i] / std::log(10.0);
  }
  AnomalyDetector det(std::move(pca), std::move(gmm),
                      ThresholdCalibrator(std::move(validation_scores)),
                      options.primary_p);

  // Per-cell baseline of the raw training maps: alarms are explained in the
  // journal by the cells deviating most (in z) from this baseline.
  const std::size_t l = training.front().size();
  auto baseline = std::make_shared<CellBaseline>();
  baseline->mean.assign(l, 0.0);
  baseline->stddev.assign(l, 0.0);
  for (const auto& x : training) {
    for (std::size_t i = 0; i < l; ++i) baseline->mean[i] += x[i];
  }
  const double inv_n = 1.0 / static_cast<double>(training.size());
  for (double& m : baseline->mean) m *= inv_n;
  for (const auto& x : training) {
    for (std::size_t i = 0; i < l; ++i) {
      const double d = x[i] - baseline->mean[i];
      baseline->stddev[i] += d * d;
    }
  }
  for (double& s : baseline->stddev) s = std::sqrt(s * inv_n);
  det.baseline_ = std::move(baseline);

  if (options.journal_capacity != 0) {
    det.journal_ =
        std::make_shared<obs::DecisionJournal>(options.journal_capacity);
  }
  det.journal_phases_ = std::max<std::size_t>(1, options.journal_phases);
  det.journal_top_cells_ = options.journal_top_cells;
  if (det.journal_phases_ != det.phase_metrics_.size()) det.init_observers();
  return det;
}

AnomalyDetector AnomalyDetector::train(const HeatMapTrace& training,
                                       const HeatMapTrace& validation,
                                       const Options& options) {
  std::vector<std::vector<double>> train_raw;
  train_raw.reserve(training.size());
  for (const auto& m : training) train_raw.push_back(m.as_vector());
  std::vector<std::vector<double>> valid_raw;
  valid_raw.reserve(validation.size());
  for (const auto& m : validation) valid_raw.push_back(m.as_vector());
  return train(train_raw, valid_raw, options);
}

double AnomalyDetector::score(const std::vector<double>& raw) const {
  return gmm_.log10_density(pca_.project(raw));
}

Verdict AnomalyDetector::analyze(const std::vector<double>& raw,
                                 std::uint64_t interval_index) const {
  // Steady-state allocation-free: the scratch buffers are thread_local and
  // reach their final size on the first interval. One projection + one
  // responsibilities pass yields density and nearest pattern together
  // (the serial code evaluated the mixture twice).
  thread_local std::vector<double> phi;
  thread_local std::vector<double> reduced;
  thread_local std::vector<double> gamma;
  thread_local Gmm::Scratch scratch;

  const auto t0 = std::chrono::steady_clock::now();
  pca_.project_into(raw, phi, reduced);
  const double ln_density = gmm_.responsibilities_into(reduced, scratch, gamma);
  const double log10_density = ln_density / std::log(10.0);
  const std::size_t pattern = static_cast<std::size_t>(
      std::max_element(gamma.begin(), gamma.end()) - gamma.begin());
  const auto t1 = std::chrono::steady_clock::now();

  Verdict v;
  v.interval_index = interval_index;
  v.log10_density = log10_density;
  v.anomalous = log10_density < primary_.log10_value;
  v.nearest_pattern = pattern;
  v.analysis_time = std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0);
  // SPE from the projection scratch: the basis rows are orthonormal, so the
  // reconstruction residual ‖Φ − B^T w‖² is ‖Φ‖² − ‖w‖² — no reconstruction,
  // no allocation. Untimed: analysis_time stays the §5.4 measurement.
  double phi_sq = 0.0;
  for (double c : phi) phi_sq += c * c;
  double w_sq = 0.0;
  for (double c : reduced) w_sq += c * c;
  v.spe = std::max(0.0, phi_sq - w_sq);

  if (obs::enabled()) {
    obs::mark_analysis();
    DetectorMetrics& m = detector_metrics();
    m.intervals.add();
    if (v.anomalous) m.alarms.add();
    m.analysis_ns.observe(static_cast<double>(v.analysis_time.count()));

    // Hyperperiod-phase-bucketed alarm telemetry: one counter add and one
    // gauge store per interval, cached handles only.
    const std::size_t phase =
        static_cast<std::size_t>(interval_index % journal_phases_);
    if (phase < phase_metrics_.size()) {
      const PhaseMetrics& pm = phase_metrics_[phase];
      pm.intervals->add();
      if (v.anomalous) pm.alarms->add();
      pm.rate->set(static_cast<double>(pm.alarms->value()) /
                   static_cast<double>(pm.intervals->value()));
    }

    // Model-health monitor: consumes the score/SPE/pattern this call
    // already computed — the hook adds no E-step work.
    if (health_ != nullptr) {
      health_->observe(log10_density, v.spe, pattern, v.anomalous,
                       interval_index, raw);
    }

    // The record is thread_local and handed to the journal by swap, so its
    // vectors trade buffers with the evicted ring slot instead of
    // allocating — the append path is allocation-free in steady state.
    thread_local obs::DecisionRecord rec;
    rec.interval_index = interval_index;
    rec.phase = interval_index % journal_phases_;
    rec.reduced_coords = reduced;
    rec.log10_density = log10_density;
    rec.threshold = primary_.log10_value;
    rec.alarm = v.anomalous;
    rec.nearest_pattern = pattern;
    rec.top_cells.clear();
    if (v.anomalous && baseline_ && journal_top_cells_ > 0 &&
        baseline_->mean.size() == raw.size()) {
      // Rank cells by |z| against the training baseline — O(L), alarms only.
      std::vector<std::size_t> order(raw.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      // Cells hold integer fetch counts, so one count is the natural floor
      // for the spread: a never-touched training cell that lights up scores
      // z = observed instead of blowing up on a zero stddev.
      const auto z_of = [&](std::size_t i) {
        return (raw[i] - baseline_->mean[i]) /
               std::max(baseline_->stddev[i], 1.0);
      };
      const std::size_t keep = std::min(journal_top_cells_, order.size());
      std::partial_sort(order.begin(),
                        order.begin() + static_cast<std::ptrdiff_t>(keep),
                        order.end(), [&](std::size_t a, std::size_t b) {
                          const double za = std::abs(z_of(a));
                          const double zb = std::abs(z_of(b));
                          if (za != zb) return za > zb;
                          return a < b;
                        });
      rec.top_cells.reserve(keep);
      for (std::size_t r = 0; r < keep; ++r) {
        const std::size_t i = order[r];
        rec.top_cells.push_back(obs::CellContribution{
            .cell = i,
            .observed = raw[i],
            .expected = baseline_->mean[i],
            .z_score = z_of(i)});
      }
    }
    journal_->append_swap(rec);
    // Crash-safe black box: remember the raw row and, on alarm, leave a
    // rate-limited .mhmdump on disk. One relaxed load while unarmed.
    obs::FlightRecorder::instance().note_interval(raw, interval_index,
                                                  v.anomalous);
  }
  return v;
}

Verdict AnomalyDetector::analyze(const HeatMap& map) const {
  return analyze(map.as_vector(), map.interval_index);
}

TrafficVolumeDetector::TrafficVolumeDetector(
    const std::vector<double>& normal_volumes, double p, double margin) {
  if (normal_volumes.empty()) {
    throw ConfigError("TrafficVolumeDetector: empty calibration set");
  }
  if (p <= 0.0 || p >= 0.5) {
    throw ConfigError("TrafficVolumeDetector: p must be in (0, 0.5)");
  }
  const double q_lo = quantile(normal_volumes, p);
  const double q_hi = quantile(normal_volumes, 1.0 - p);
  const double iqr = quantile(normal_volumes, 0.75) -
                     quantile(normal_volumes, 0.25);
  lower_ = q_lo - margin * iqr;
  upper_ = q_hi + margin * iqr;
}

TrafficVolumeDetector TrafficVolumeDetector::from_trace(
    const HeatMapTrace& normal, double p, double margin) {
  std::vector<double> volumes;
  volumes.reserve(normal.size());
  for (const auto& m : normal) {
    volumes.push_back(static_cast<double>(m.total_accesses()));
  }
  return TrafficVolumeDetector(volumes, p, margin);
}

bool TrafficVolumeDetector::anomalous(double volume) const {
  return volume < lower_ || volume > upper_;
}

bool TrafficVolumeDetector::anomalous(const HeatMap& map) const {
  return anomalous(static_cast<double>(map.total_accesses()));
}

NearestNeighborDetector::NearestNeighborDetector(
    std::vector<std::vector<double>> training,
    const std::vector<std::vector<double>>& validation, double p)
    : training_(std::move(training)) {
  if (training_.empty()) {
    throw ConfigError("NearestNeighborDetector: empty training set");
  }
  if (validation.empty()) {
    throw ConfigError("NearestNeighborDetector: empty validation set");
  }
  std::vector<double> distances;
  distances.reserve(validation.size());
  for (const auto& v : validation) distances.push_back(nearest_distance(v));
  // Large distance = anomalous, so the threshold sits at the (1-p) quantile.
  threshold_ = quantile(distances, 1.0 - p);
}

double NearestNeighborDetector::nearest_distance(
    const std::vector<double>& x) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& t : training_) {
    best = std::min(best, linalg::squared_distance(x, t));
  }
  return std::sqrt(best);
}

bool NearestNeighborDetector::anomalous(const std::vector<double>& x) const {
  return nearest_distance(x) > threshold_;
}

std::size_t NearestNeighborDetector::storage_bytes() const {
  return training_.size() *
         (training_.empty() ? 0 : training_.front().size()) * sizeof(double);
}

}  // namespace mhm
