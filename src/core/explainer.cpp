#include "core/explainer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "linalg/vector_ops.hpp"

namespace mhm {

SpeDetector::SpeDetector(const Eigenmemory& basis,
                         const std::vector<std::vector<double>>& validation,
                         double p)
    : basis_(&basis) {
  if (validation.empty()) {
    throw ConfigError("SpeDetector: empty validation set");
  }
  if (p <= 0.0 || p >= 1.0) {
    throw ConfigError("SpeDetector: p must be in (0,1)");
  }
  std::vector<double> spes;
  spes.reserve(validation.size());
  for (const auto& v : validation) spes.push_back(spe(v));
  threshold_ = quantile(spes, 1.0 - p);
}

double SpeDetector::spe(const std::vector<double>& map) const {
  MHM_ASSERT(map.size() == basis_->input_dim(),
             "SpeDetector::spe: dimension mismatch");
  const auto approx = basis_->reconstruct(basis_->project(map));
  double energy = 0.0;
  for (std::size_t i = 0; i < map.size(); ++i) {
    const double r = map[i] - approx[i];
    energy += r * r;
  }
  return energy;
}

bool SpeDetector::anomalous(const std::vector<double>& map) const {
  return spe(map) > threshold_;
}

AnomalyExplainer::AnomalyExplainer(
    const std::vector<std::vector<double>>& training) {
  if (training.empty()) {
    throw ConfigError("AnomalyExplainer: empty training set");
  }
  const std::size_t l = training.front().size();
  mean_.assign(l, 0.0);
  stddev_.assign(l, 0.0);
  for (const auto& x : training) {
    if (x.size() != l) throw ConfigError("AnomalyExplainer: ragged input");
    for (std::size_t c = 0; c < l; ++c) mean_[c] += x[c];
  }
  const double n = static_cast<double>(training.size());
  for (double& m : mean_) m /= n;
  for (const auto& x : training) {
    for (std::size_t c = 0; c < l; ++c) {
      const double d = x[c] - mean_[c];
      stddev_[c] += d * d;
    }
  }
  for (double& s : stddev_) s = std::sqrt(s / std::max(1.0, n - 1.0));
}

AnomalyExplainer AnomalyExplainer::from_trace(const HeatMapTrace& training) {
  std::vector<std::vector<double>> raw;
  raw.reserve(training.size());
  for (const auto& m : training) raw.push_back(m.as_vector());
  return AnomalyExplainer(raw);
}

std::vector<CellDeviation> AnomalyExplainer::explain(
    const std::vector<double>& map, std::size_t k) const {
  MHM_ASSERT(map.size() == mean_.size(),
             "AnomalyExplainer::explain: dimension mismatch");
  // Floor the per-cell std so cold-but-touched cells do not produce
  // infinite z-scores; the floor is a fraction of the global scale.
  double global_std = 0.0;
  for (double s : stddev_) global_std = std::max(global_std, s);
  const double floor = std::max(1.0, 0.01 * global_std);

  std::vector<CellDeviation> all(map.size());
  for (std::size_t c = 0; c < map.size(); ++c) {
    all[c].cell = c;
    all[c].observed = map[c];
    all[c].expected = mean_[c];
    all[c].z_score = (map[c] - mean_[c]) / std::max(stddev_[c], floor);
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const CellDeviation& a, const CellDeviation& b) {
                      return std::abs(a.z_score) > std::abs(b.z_score);
                    });
  all.resize(k);
  return all;
}

}  // namespace mhm
