#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/gmm.hpp"
#include "core/pca.hpp"

namespace mhm {

/// Detection threshold θ_p (paper §5.2): the p-quantile of the log densities
/// of a held-out set of *normal* MHMs. The expected false-positive rate is p.
/// The figures draw θ_{0.5} (p = 0.005) and θ_1 (p = 0.01).
struct Threshold {
  double p = 0.01;          ///< Quantile level (e.g. 0.005 for θ_{0.5}).
  double log10_value = 0.0; ///< Threshold on log10 Pr(M).
};

/// Calibrates one or more θ_p thresholds from validation log-densities.
class ThresholdCalibrator {
 public:
  /// `validation_log10` — log10 densities of held-out normal MHMs.
  explicit ThresholdCalibrator(std::vector<double> validation_log10);

  /// θ at quantile p (p in (0,1)).
  Threshold at(double p) const;

  /// Shorthands used throughout the evaluation.
  Threshold theta_05() const { return at(0.005); }  ///< θ_{0.5}
  Threshold theta_1() const { return at(0.01); }    ///< θ_1

  const std::vector<double>& validation_scores() const { return scores_; }

 private:
  std::vector<double> scores_;
};

/// Verdict for one analyzed MHM.
struct Verdict {
  std::uint64_t interval_index = 0;
  double log10_density = 0.0;
  bool anomalous = false;          ///< Against the primary threshold.
  std::size_t nearest_pattern = 0; ///< Most responsible GMM component.
  /// PCA residual (squared prediction error): ‖Φ − B^T w‖², the energy the
  /// eigenmemory basis failed to capture. With an orthonormal basis this is
  /// ‖Φ‖² − ‖w‖², so it falls out of the projection scratch for free.
  double spe = 0.0;
  /// Version of the ModelSnapshot that scored this interval — after a hot
  /// model swap the stamp flips at the interval boundary where the session
  /// picked the new model up.
  std::uint64_t model_version = 0;
  std::chrono::nanoseconds analysis_time{0};  ///< Secure-core compute time.
};

/// Per-cell first/second moments of the raw training maps, used to rank the
/// cells that drive an alarm in the decision journal. Absent (null) on
/// models reassembled from serialized parts — the raw training set is gone
/// after serialization, so assembled detectors journal no top_cells.
struct CellBaseline {
  std::vector<double> mean;
  std::vector<double> stddev;
};

/// The immutable, shareable artifact of training: everything needed to score
/// an MHM stream. The engine layer hands one `shared_ptr<const ModelSnapshot>`
/// to any number of concurrent sessions; hot model swap is a pointer swap.
struct ModelSnapshot {
  Eigenmemory pca;
  Gmm gmm;
  ThresholdCalibrator calibrator;
  Threshold primary;
  std::shared_ptr<const CellBaseline> baseline;  ///< Null when assembled.
  /// Model artifact version (registry id, or 0 for ad-hoc in-process
  /// models). Stamped on every Verdict scored against this snapshot.
  std::uint64_t version = 0;

  /// Build a snapshot from trained parts, validating that the GMM operates
  /// in the eigenmemory's reduced space (throws ConfigError otherwise).
  static std::shared_ptr<const ModelSnapshot> assemble(
      Eigenmemory pca, Gmm gmm, ThresholdCalibrator calibrator,
      double primary_p,
      std::shared_ptr<const CellBaseline> baseline = nullptr,
      std::uint64_t version = 0);
};

/// Per-stream scoring scratch: reaches its final size on the first interval,
/// then every score is allocation-free. One per session / per thread — never
/// shared across concurrent scorers.
struct ScoreScratch {
  std::vector<double> phi;      ///< Mean-shifted map Φ.
  std::vector<double> reduced;  ///< Projected weights w (M').
  std::vector<double> gamma;    ///< Per-component responsibilities.
  Gmm::Scratch gmm;
};

/// Score one raw MHM against a snapshot: project, evaluate the mixture,
/// compare against the primary threshold. Timed — `Verdict::analysis_time`
/// is the wall-clock cost of projection + density (the §5.4 measurement);
/// the SPE falls out of the projection scratch untimed. Pure: no metrics, no
/// journal — observation is the StreamObserver's job.
Verdict score_snapshot(const ModelSnapshot& snapshot,
                       std::span<const double> raw,
                       std::uint64_t interval_index, ScoreScratch& scratch);

}  // namespace mhm
