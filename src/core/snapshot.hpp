#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/gmm.hpp"
#include "core/pca.hpp"

namespace mhm {

/// Detection threshold θ_p (paper §5.2): the p-quantile of the log densities
/// of a held-out set of *normal* MHMs. The expected false-positive rate is p.
/// The figures draw θ_{0.5} (p = 0.005) and θ_1 (p = 0.01).
struct Threshold {
  double p = 0.01;          ///< Quantile level (e.g. 0.005 for θ_{0.5}).
  double log10_value = 0.0; ///< Threshold on log10 Pr(M).
};

/// Calibrates one or more θ_p thresholds from validation log-densities.
class ThresholdCalibrator {
 public:
  /// `validation_log10` — log10 densities of held-out normal MHMs.
  explicit ThresholdCalibrator(std::vector<double> validation_log10);

  /// θ at quantile p (p in (0,1)).
  Threshold at(double p) const;

  /// Shorthands used throughout the evaluation.
  Threshold theta_05() const { return at(0.005); }  ///< θ_{0.5}
  Threshold theta_1() const { return at(0.01); }    ///< θ_1

  const std::vector<double>& validation_scores() const { return scores_; }

 private:
  std::vector<double> scores_;
};

/// Verdict for one analyzed MHM.
struct Verdict {
  std::uint64_t interval_index = 0;
  double log10_density = 0.0;
  bool anomalous = false;          ///< Against the primary threshold.
  std::size_t nearest_pattern = 0; ///< Most responsible GMM component.
  /// PCA residual (squared prediction error): ‖Φ − B^T w‖², the energy the
  /// eigenmemory basis failed to capture. With an orthonormal basis this is
  /// ‖Φ‖² − ‖w‖², so it falls out of the projection scratch for free.
  double spe = 0.0;
  /// Version of the ModelSnapshot that scored this interval — after a hot
  /// model swap the stamp flips at the interval boundary where the session
  /// picked the new model up.
  std::uint64_t model_version = 0;
  std::chrono::nanoseconds analysis_time{0};  ///< Secure-core compute time.
};

/// Per-cell first/second moments of the raw training maps, used to rank the
/// cells that drive an alarm in the decision journal. Absent (null) on
/// models reassembled from serialized parts — the raw training set is gone
/// after serialization, so assembled detectors journal no top_cells.
struct CellBaseline {
  std::vector<double> mean;
  std::vector<double> stddev;
};

/// The immutable, shareable artifact of training: everything needed to score
/// an MHM stream. The engine layer hands one `shared_ptr<const ModelSnapshot>`
/// to any number of concurrent sessions; hot model swap is a pointer swap.
struct ModelSnapshot {
  Eigenmemory pca;
  Gmm gmm;
  ThresholdCalibrator calibrator;
  Threshold primary;
  std::shared_ptr<const CellBaseline> baseline;  ///< Null when assembled.
  /// Model artifact version (registry id, or 0 for ad-hoc in-process
  /// models). Stamped on every Verdict scored against this snapshot.
  std::uint64_t version = 0;

  /// Build a snapshot from trained parts, validating that the GMM operates
  /// in the eigenmemory's reduced space (throws ConfigError otherwise).
  static std::shared_ptr<const ModelSnapshot> assemble(
      Eigenmemory pca, Gmm gmm, ThresholdCalibrator calibrator,
      double primary_p,
      std::shared_ptr<const CellBaseline> baseline = nullptr,
      std::uint64_t version = 0);
};

/// Per-stream scoring scratch: reaches its final size on the first interval,
/// then every score is allocation-free. One per session / per thread — never
/// shared across concurrent scorers.
struct ScoreScratch {
  std::vector<double> phi;      ///< Mean-shifted map Φ.
  std::vector<double> reduced;  ///< Projected weights w (M').
  std::vector<double> gamma;    ///< Per-component responsibilities.
  Gmm::Scratch gmm;
};

/// Score one raw MHM against a snapshot: project, evaluate the mixture,
/// compare against the primary threshold. Timed — `Verdict::analysis_time`
/// is the wall-clock cost of projection + density (the §5.4 measurement);
/// the SPE falls out of the projection scratch untimed. Pure: no metrics, no
/// journal — observation is the StreamObserver's job.
Verdict score_snapshot(const ModelSnapshot& snapshot,
                       std::span<const double> raw,
                       std::uint64_t interval_index, ScoreScratch& scratch);

/// Structure-of-arrays batch for shard-at-a-time scoring: raw-map views in,
/// verdict columns out. Inputs are spans — push() stores a view, so the
/// backing storage must outlive the score + scatter. Intermediates and
/// outputs are batch-contiguous column blocks (element [row * size() + b]
/// belongs to sample b). Every buffer grows to a high-water mark and is
/// reused across clear()/push() cycles: once a batch size has been seen,
/// refilling and rescoring at that size (or smaller) allocates nothing.
class ScoreBatch {
 public:
  /// Drop all samples and stamp the expected cell count L; capacity is kept.
  void clear(std::size_t input_dim);

  /// Append one raw-map view (length L) with its interval index.
  void push(std::span<const double> raw, std::uint64_t interval_index);

  std::size_t size() const { return raws_.size(); }
  bool empty() const { return raws_.empty(); }
  std::size_t input_dim() const { return input_dim_; }

  std::span<const std::span<const double>> raws() const { return raws_; }
  std::span<const double> raw(std::size_t b) const { return raws_[b]; }
  std::uint64_t interval_index(std::size_t b) const { return intervals_[b]; }

  /// Assemble sample b's Verdict from the output columns (valid after
  /// score_snapshot_batch). `analysis_time` is the batch's amortized share
  /// (batch_time / size()) — the timing is per-batch by construction and is
  /// explicitly *not* part of the bit-identity contract.
  Verdict verdict(std::size_t b) const;

  /// Gather sample b's reduced weights (a strided column read) into `out`.
  void extract_reduced(std::size_t b, std::vector<double>& out) const;

  // Output columns, filled by score_snapshot_batch().
  /// Mean-shifted maps Φ as Eigenmemory::kBatchTile-blocked column tiles
  /// (see project_batch); the projection kernel streams each L × 16 tile
  /// directly from this buffer.
  std::vector<double> phi;
  std::vector<double> reduced;         ///< L' × B projected weights.
  std::vector<double> terms;           ///< J × B per-component log joints.
  std::vector<double> gamma;           ///< J × B responsibilities.
  std::vector<double> ln_density;      ///< B natural-log densities.
  std::vector<double> log10_density;   ///< B log10 densities.
  std::vector<double> spe;             ///< B PCA residuals.
  std::vector<std::size_t> nearest;    ///< B most responsible components.
  std::vector<std::uint8_t> anomalous; ///< B primary-threshold verdicts.
  std::uint64_t model_version = 0;     ///< Snapshot version that scored us.
  std::chrono::nanoseconds batch_time{0};  ///< Projection + density, whole batch.

 private:
  std::size_t input_dim_ = 0;
  std::vector<std::span<const double>> raws_;
  std::vector<std::uint64_t> intervals_;
};

/// Reusable workspace for score_snapshot_batch — one per scoring thread,
/// never shared across concurrent batch scorers.
struct BatchScoreScratch {
  Gmm::BatchScratch gmm;
  std::vector<double> phi_sq;  ///< B running ‖Φ‖² (fed by the projection).
  std::vector<double> w_sq;    ///< B running ‖w‖².
};

/// Score a whole ScoreBatch against one snapshot in a single GEMM-shaped
/// pass: cache-blocked batch projection, vectorized per-component mixture
/// densities, columnwise SPE via the ‖Φ‖² − ‖w‖² identity. Bit-identical to
/// calling score_snapshot() per sample — every per-sample accumulation keeps
/// its serial operation order; only independent samples run side by side
/// (see the determinism notes on project_batch / responsibilities_batch).
/// Allocation-free once the batch size has been seen. Pure, like
/// score_snapshot: no metrics, no journal.
void score_snapshot_batch(const ModelSnapshot& snapshot, ScoreBatch& batch,
                          BatchScoreScratch& scratch);

}  // namespace mhm
