#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace mhm {

/// Monitoring parameters of a Memory Heat Map (paper §2): where and at what
/// detail the memory behaviour is observed. An MHM is fully described by the
/// triple (AddrBase, S, δ) plus the monitoring interval.
struct MhmConfig {
  Address base = 0xC0008000;        ///< AddrBase: start of monitored region.
  std::uint64_t size = 3'013'284;   ///< S: region size in bytes.
  std::uint64_t granularity = 2048; ///< δ: cell size in bytes (power of 2).
  SimTime interval = 10 * kMillisecond;  ///< MHM sampling interval.

  /// Number of cells L = ceil(S / δ).
  std::size_t cell_count() const {
    return static_cast<std::size_t>((size + granularity - 1) / granularity);
  }

  /// log2(δ); the Memometer's shift amount g.
  unsigned shift_bits() const { return log2_floor(granularity); }

  /// Throws ConfigError unless granularity is a power of two, size > 0 and
  /// interval > 0.
  void validate() const;

  /// The paper's default configuration (Linux kernel .text on the prototype:
  /// base 0xC0008000, 3,013,284 bytes, δ = 2 KB -> 1,472 cells, 10 ms).
  static MhmConfig paper_default();
};

/// One Memory Heat Map: a vector of per-cell access counts aggregated over a
/// monitoring interval. Plain data; all learning happens on projections.
class HeatMap {
 public:
  HeatMap() = default;
  explicit HeatMap(std::size_t cells) : counts_(cells, 0) {}

  std::size_t cell_count() const { return counts_.size(); }

  std::uint32_t operator[](std::size_t i) const { return counts_[i]; }

  /// Saturating increment (hardware counters are 32-bit).
  void increment(std::size_t cell, std::uint64_t by = 1);

  void reset();

  /// Sum of all cells — the "memory traffic volume" of Figure 9.
  std::uint64_t total_accesses() const;

  /// Number of cells with at least one access.
  std::size_t active_cells() const;

  const std::vector<std::uint32_t>& counts() const { return counts_; }

  /// Cell counts as doubles (input to the learning pipeline).
  std::vector<double> as_vector() const;

  /// Same conversion into a caller-owned buffer — the shard scoring path
  /// reuses one row buffer per slot so steady-state pumping allocates
  /// nothing.
  void as_vector_into(std::vector<double>& out) const;

  /// Interval index stamped by the monitoring hardware (which interval of
  /// the run this map covers), and its start time.
  std::uint64_t interval_index = 0;
  SimTime interval_start = 0;

 private:
  std::vector<std::uint32_t> counts_;
};

/// A sequence of heat maps from one monitored run.
using HeatMapTrace = std::vector<HeatMap>;

/// Human-readable one-line summary ("cells=1472 total=83521 active=311 ...").
std::string summarize(const HeatMap& map);

}  // namespace mhm
