#include "attacks/attacks.hpp"

#include "common/error.hpp"

namespace mhm::attacks {

AppAdditionAttack::AppAdditionAttack(sim::TaskSpec app, SimTime exit_after)
    : app_(std::move(app)), exit_after_(exit_after) {
  app_.validate();
}

void AppAdditionAttack::arm(sim::System& system, SimTime trigger_time) {
  system.at(trigger_time, [this, &system] {
    system.launch_task(app_);
  });
  if (exit_after_ > 0) {
    system.at(trigger_time + exit_after_, [this, &system] {
      system.kill_task(app_.name);
    });
  }
}

ShellcodeAttack::ShellcodeAttack(std::string victim, bool spawn_shell)
    : victim_(std::move(victim)), spawn_shell_(spawn_shell) {}

void ShellcodeAttack::arm(sim::System& system, SimTime trigger_time) {
  system.at(trigger_time, [this, &system] {
    // The payload executes inside the victim's next job: flip the ASLR
    // personality bit, make the payload page executable, then fork+exec a
    // shell. The exec replaces the host image, killing the original task
    // (modelled by kill_host = true, which also runs the do_exit path).
    system.inject_payload(
        victim_,
        {"sys_personality", "sys_mprotect", "do_fork", "do_execve"},
        /*kill_host=*/true);
    if (spawn_shell_) {
      // The spawned shell shows up shortly after as a low-rate process.
      system.at(system.now() + 5 * kMillisecond, [&system] {
        system.scheduler().add_task(sim::shell_task_spec(),
                                    /*emit_launch=*/false);
      });
    }
  });
}

RootkitAttack::RootkitAttack(SimTime hijack_overhead,
                             std::string hijacked_service)
    : hijack_overhead_(hijack_overhead),
      hijacked_service_(std::move(hijacked_service)) {}

void RootkitAttack::arm(sim::System& system, SimTime trigger_time) {
  system.at(trigger_time, [this, &system] {
    // insmod: the module-loader kernel path runs once (the big visible
    // burst of Figure 9) and holds the CPU while relocating/linking,
    // delaying every task — the timing side effect real module loads have.
    system.run_service_now("load_module");
    system.scheduler().block_cpu(
        system.services().service("load_module").mean_duration);
    // From now on the hijacked syscall detours through module space: no
    // monitored fetches, only added latency before the original handler.
    system.set_service_latency(hijacked_service_, hijack_overhead_);
  });
}

std::unique_ptr<AttackScenario> make_scenario(const std::string& name) {
  if (name == "app_addition") return std::make_unique<AppAdditionAttack>();
  if (name == "shellcode") return std::make_unique<ShellcodeAttack>();
  if (name == "rootkit") return std::make_unique<RootkitAttack>();
  throw ConfigError("make_scenario: unknown scenario '" + name + "'");
}

}  // namespace mhm::attacks
