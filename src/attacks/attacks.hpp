#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/system.hpp"
#include "sim/task.hpp"

namespace mhm::attacks {

/// An attack scenario arms itself on a System before the run starts and
/// manifests at `trigger_time`. Everything the attack does goes through the
/// System's runtime-manipulation hooks, i.e. the same kernel paths a real
/// attack would exercise.
class AttackScenario {
 public:
  virtual ~AttackScenario() = default;

  /// Human-readable scenario name (used by benches and EXPERIMENTS.md).
  virtual std::string name() const = 0;

  /// Install the attack's scheduled actions on `system`.
  virtual void arm(sim::System& system, SimTime trigger_time) = 0;

  /// The interval index (for interval length `interval`) at which the
  /// attack manifests — benches mark this in their plots.
  static std::uint64_t trigger_interval(SimTime trigger_time,
                                        SimTime interval) {
    return trigger_time / interval;
  }
};

/// §5.3-1 Application Addition/Deletion: a new application (qsort, 6 ms /
/// 30 ms) is launched mid-run via the kernel's fork+exec path and later
/// (optionally) exits. The abnormality is both the launch burst and the
/// persistent change in kernel-service composition while qsort runs.
class AppAdditionAttack final : public AttackScenario {
 public:
  /// `exit_after` — how long the rogue app runs before exiting
  /// (0 = never exits).
  explicit AppAdditionAttack(sim::TaskSpec app = sim::qsort_task_spec(),
                             SimTime exit_after = 0);

  std::string name() const override { return "app_addition"; }
  void arm(sim::System& system, SimTime trigger_time) override;

  const sim::TaskSpec& app() const { return app_; }

 private:
  sim::TaskSpec app_;
  SimTime exit_after_;
};

/// §5.3-2 Shellcode Execution: a shellcode injected into a victim task
/// (bitcount) runs inside one of its jobs — it disables ASLR via
/// personality(2), makes its page executable, spawns a shell and thereby
/// kills the host process. After the trigger the victim's periodic kernel
/// footprint disappears and a shell process appears.
class ShellcodeAttack final : public AttackScenario {
 public:
  explicit ShellcodeAttack(std::string victim = "bitcount",
                           bool spawn_shell = true);

  std::string name() const override { return "shellcode"; }
  void arm(sim::System& system, SimTime trigger_time) override;

  const std::string& victim() const { return victim_; }

 private:
  std::string victim_;
  bool spawn_shell_;
};

/// §5.3-3 Kernel Rootkit (LKM, syscall-table hijack): at the trigger the
/// module loader runs (visible burst); afterwards every read(2) is detoured
/// through a handler living in module space — *outside* the monitored .text
/// region — which only adds latency before invoking the original handler.
/// Post-load traffic volume stays normal (Figure 9); only the timing shift
/// it induces on read-heavy tasks (sha) perturbs the MHMs (Figure 10).
class RootkitAttack final : public AttackScenario {
 public:
  /// `hijack_overhead` — extra latency the malicious wrapper adds to every
  /// read syscall (the "reads the returned buffer" work of the paper's LKM).
  explicit RootkitAttack(SimTime hijack_overhead = 40 * kMicrosecond,
                         std::string hijacked_service = "sys_read");

  std::string name() const override { return "rootkit"; }
  void arm(sim::System& system, SimTime trigger_time) override;

  SimTime hijack_overhead() const { return hijack_overhead_; }

 private:
  SimTime hijack_overhead_;
  std::string hijacked_service_;
};

/// Convenience: construct a scenario by name ("app_addition", "shellcode",
/// "rootkit"); throws ConfigError for unknown names.
std::unique_ptr<AttackScenario> make_scenario(const std::string& name);

}  // namespace mhm::attacks
