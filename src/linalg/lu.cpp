#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace mhm::linalg {

Lu::Lu(const Matrix& a) : lu_(a) {
  MHM_ASSERT(a.rows() == a.cols(), "Lu: matrix must be square");
  const std::size_t n = a.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest-magnitude entry in column k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(lu_(i, k)) > best) {
        best = std::abs(lu_(i, k));
        pivot = i;
      }
    }
    if (best < 1e-300) {
      throw NumericalError("Lu: matrix is singular at pivot " +
                           std::to_string(k));
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu_(pivot, j), lu_(k, j));
      }
      std::swap(perm_[pivot], perm_[k]);
      pivot_sign_ = -pivot_sign_;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) /= lu_(k, k);
      const double lik = lu_(i, k);
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= lik * lu_(k, j);
      }
    }
  }
}

Vector Lu::solve(std::span<const double> b) const {
  MHM_ASSERT(b.size() == dim(), "Lu::solve: dimension mismatch");
  const std::size_t n = dim();
  Vector x(n);
  // Apply permutation, then forward substitution (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) x[i] -= lu_(i, k) * x[k];
  }
  // Backward substitution with U.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t k = i + 1; k < n; ++k) x[i] -= lu_(i, k) * x[k];
    x[i] /= lu_(i, i);
  }
  return x;
}

Matrix Lu::inverse() const {
  const std::size_t n = dim();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e.assign(n, 0.0);
    e[c] = 1.0;
    const Vector col = solve(e);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

double Lu::det() const {
  double d = static_cast<double>(pivot_sign_);
  for (std::size_t i = 0; i < dim(); ++i) d *= lu_(i, i);
  return d;
}

}  // namespace mhm::linalg
