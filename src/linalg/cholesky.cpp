#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mhm::linalg {

Cholesky::Cholesky(const Matrix& a, double jitter) {
  MHM_ASSERT(a.rows() == a.cols(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  l_ = Matrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      if (i == j) sum += jitter;
      for (std::size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          throw NumericalError(
              "Cholesky: matrix is not positive definite (pivot " +
              std::to_string(i) + " = " + std::to_string(sum) + ")");
        }
        l_(i, i) = std::sqrt(sum);
      } else {
        l_(i, j) = sum / l_(j, j);
      }
    }
  }
}

void Cholesky::forward_solve_into(std::span<const double> b, Vector& y) const {
  MHM_ASSERT(b.size() == dim(), "forward_solve: dimension mismatch");
  y.resize(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
}

Vector Cholesky::forward_solve(std::span<const double> b) const {
  Vector y;
  forward_solve_into(b, y);
  return y;
}

Vector Cholesky::solve(std::span<const double> b) const {
  Vector y = forward_solve(b);
  // Backward substitution with L^T.
  const std::size_t n = dim();
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l_(k, i) * y[k];
    y[i] = sum / l_(i, i);
  }
  return y;
}

double Cholesky::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

double Cholesky::mahalanobis_squared(std::span<const double> x) const {
  const Vector y = forward_solve(x);
  return dot(y, y);
}

double Cholesky::mahalanobis_squared(std::span<const double> x,
                                     Vector& scratch) const {
  forward_solve_into(x, scratch);
  return dot(scratch, scratch);
}

Vector Cholesky::transform_standard_normal(std::span<const double> z) const {
  MHM_ASSERT(z.size() == dim(), "transform_standard_normal: dim mismatch");
  Vector out(dim(), 0.0);
  for (std::size_t i = 0; i < dim(); ++i) {
    double sum = 0.0;
    for (std::size_t k = 0; k <= i; ++k) sum += l_(i, k) * z[k];
    out[i] = sum;
  }
  return out;
}

RegularizedCholesky cholesky_with_regularization(const Matrix& a,
                                                 double initial_jitter,
                                                 double max_jitter) {
  double jitter = initial_jitter;
  for (;;) {
    try {
      return RegularizedCholesky{Cholesky(a, jitter), jitter};
    } catch (const NumericalError&) {
      if (jitter == 0.0) {
        // Scale the first attempt to the matrix magnitude.
        jitter = 1e-9 * std::max(1.0, a.max_abs());
      } else {
        jitter *= 10.0;
      }
      if (jitter > max_jitter) {
        throw NumericalError(
            "cholesky_with_regularization: matrix remained indefinite up to "
            "jitter " +
            std::to_string(max_jitter));
      }
    }
  }
}

}  // namespace mhm::linalg
