#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace mhm::linalg {

namespace {

/// sqrt(a^2 + b^2) without destructive underflow/overflow.
double hypot_stable(double a, double b) { return std::hypot(a, b); }

/// Reduce symmetric `a` (overwritten) to tridiagonal form.
/// On output: `diag` holds the diagonal, `off` holds the subdiagonal
/// (off[0] unused), and `a` accumulates the orthogonal transform Q such
/// that Q^T A Q = T.
///
/// Standard Householder reduction: for each column k (from the last down),
/// build the reflector that annihilates a[k][0..k-2], apply it two-sided,
/// and accumulate the product of reflectors into `a`.
void householder_tridiagonalize(Matrix& a, Vector& diag, Vector& off) {
  const std::size_t n = a.rows();
  diag.assign(n, 0.0);
  off.assign(n, 0.0);
  if (n == 0) return;

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;  // length of the row segment minus one
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(a(i, k));
      if (scale == 0.0) {
        // Segment already zero; skip the transform.
        off[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        off[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        // p = A u / h, accumulate u in rows of `a`.
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;  // store u/h for eigenvector accumulation
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          off[j] = g / h;
          f += off[j] * a(i, j);
        }
        const double hh = f / (h + h);
        // A := A - u p^T - p u^T (two-sided reflector application)
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          g = off[j] - hh * f;
          off[j] = g;
          for (std::size_t k = 0; k <= j; ++k) {
            a(j, k) -= f * off[k] + g * a(i, k);
          }
        }
        diag[i] = h;
        continue;
      }
    } else {
      off[i] = a(i, l);
    }
    diag[i] = 0.0;
  }

  diag[0] = 0.0;
  off[0] = 0.0;
  // Accumulate transformation matrix in `a`.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t l = i;  // columns [0, l) already transformed
    if (diag[i] != 0.0) {
      for (std::size_t j = 0; j < l; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < l; ++k) g += a(i, k) * a(k, j);
        for (std::size_t k = 0; k < l; ++k) a(k, j) -= g * a(k, i);
      }
    }
    diag[i] = a(i, i);
    a(i, i) = 1.0;
    for (std::size_t j = 0; j < l; ++j) {
      a(j, i) = 0.0;
      a(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix.
/// `diag`/`off` as produced by householder_tridiagonalize (off[0] unused);
/// `z` accumulates eigenvectors (columns). Throws NumericalError if any
/// eigenvalue fails to converge within `max_iter` sweeps.
void tridiagonal_ql(Vector& diag, Vector& off, Matrix& z, int max_iter = 50) {
  const std::size_t n = diag.size();
  if (n == 0) return;
  // Shift the subdiagonal for convenient indexing: off[i] pairs (i, i+1).
  for (std::size_t i = 1; i < n; ++i) off[i - 1] = off[i];
  off[n - 1] = 0.0;

  // Absolute negligibility floor. Covariance matrices of heat maps have
  // many identically-cold cells: the reduced tridiagonal form then carries
  // denormal entries (~1e-320) for which the relative test
  // |off| <= eps*(|d_m|+|d_m+1|) underflows to `|off| <= 0` and can never
  // be met. Couplings this far below the matrix scale are exact zeros for
  // every practical purpose.
  const double eps = std::numeric_limits<double>::epsilon();
  double anorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    anorm = std::max(anorm, std::abs(diag[i]) + std::abs(off[i]));
  }
  const double abs_floor = eps * eps * std::max(anorm, 1.0);

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      // Find a negligible subdiagonal element to split the matrix.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(diag[m]) + std::abs(diag[m + 1]);
        if (std::abs(off[m]) <= eps * dd + abs_floor) {
          break;
        }
      }
      if (m != l) {
        if (++iter > max_iter) {
          throw mhm::NumericalError(
              "tridiagonal_ql: eigenvalue failed to converge");
        }
        // Form the implicit Wilkinson shift.
        double g = (diag[l + 1] - diag[l]) / (2.0 * off[l]);
        double r = hypot_stable(g, 1.0);
        g = diag[m] - diag[l] + off[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * off[i];
          const double b = c * off[i];
          r = hypot_stable(f, g);
          off[i + 1] = r;
          if (r == 0.0) {
            // Recover from underflow: deflate and restart this eigenvalue.
            diag[i + 1] -= p;
            off[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = diag[i + 1] - p;
          r = (diag[i] - g) * s + 2.0 * c * b;
          p = s * r;
          diag[i + 1] = g + p;
          g = c * r - b;
          // Accumulate the rotation into the eigenvector matrix.
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        diag[l] -= p;
        off[l] = g;
        off[m] = 0.0;
      }
    } while (m != l);
  }
}

void sort_decreasing(SymmetricEigenResult& res) {
  const std::size_t n = res.eigenvalues.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return res.eigenvalues[a] > res.eigenvalues[b];
  });
  Vector sorted_vals(n);
  Matrix sorted_vecs(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    sorted_vals[k] = res.eigenvalues[order[k]];
    for (std::size_t r = 0; r < n; ++r) {
      sorted_vecs(r, k) = res.eigenvectors(r, order[k]);
    }
  }
  res.eigenvalues = std::move(sorted_vals);
  res.eigenvectors = std::move(sorted_vecs);
}

/// Fix eigenvector sign convention: largest-magnitude component positive.
/// Makes decompositions deterministic across solver paths.
void canonicalize_signs(Matrix& vecs) {
  for (std::size_t c = 0; c < vecs.cols(); ++c) {
    double best = 0.0;
    for (std::size_t r = 0; r < vecs.rows(); ++r) {
      if (std::abs(vecs(r, c)) > std::abs(best)) best = vecs(r, c);
    }
    if (best < 0.0) {
      for (std::size_t r = 0; r < vecs.rows(); ++r) vecs(r, c) = -vecs(r, c);
    }
  }
}

void check_square_symmetric(const Matrix& a, double tol) {
  MHM_ASSERT(a.rows() == a.cols(), "eigen_symmetric: matrix must be square");
  const double scale = std::max(1.0, a.max_abs());
  if (a.rows() > 0 && max_asymmetry(a) > tol * scale) {
    throw mhm::LogicError("eigen_symmetric: matrix is not symmetric");
  }
}

}  // namespace

SymmetricEigenResult eigen_symmetric(const Matrix& a, double symmetry_tol) {
  check_square_symmetric(a, symmetry_tol);
  const std::size_t n = a.rows();
  SymmetricEigenResult res;
  if (n == 0) return res;

  Matrix work = a;
  // Symmetrize exactly to remove round-off asymmetry before reduction.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (work(i, j) + work(j, i));
      work(i, j) = avg;
      work(j, i) = avg;
    }
  }

  Vector diag;
  Vector off;
  householder_tridiagonalize(work, diag, off);
  tridiagonal_ql(diag, off, work);

  res.eigenvalues = std::move(diag);
  res.eigenvectors = std::move(work);
  sort_decreasing(res);
  canonicalize_signs(res.eigenvectors);
  return res;
}

SymmetricEigenResult eigen_symmetric_jacobi(const Matrix& a, int max_sweeps,
                                            double tol) {
  check_square_symmetric(a, 1e-8);
  const std::size_t n = a.rows();
  SymmetricEigenResult res;
  if (n == 0) return res;

  Matrix m = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius norm for the convergence test.
    double off_norm = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off_norm += 2.0 * m(p, q) * m(p, q);
    }
    if (std::sqrt(off_norm) <= tol * std::max(1.0, m.max_abs())) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(1.0, theta) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation G(p, q, theta) on both sides.
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  res.eigenvalues.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.eigenvalues[i] = m(i, i);
  res.eigenvectors = std::move(v);
  sort_decreasing(res);
  canonicalize_signs(res.eigenvectors);
  return res;
}

Matrix reconstruct(const SymmetricEigenResult& eig) {
  const std::size_t n = eig.eigenvalues.size();
  Matrix out(n, n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const Vector col = eig.eigenvectors.col_vector(k);
    syr_update(out, eig.eigenvalues[k], col);
  }
  return out;
}

}  // namespace mhm::linalg
