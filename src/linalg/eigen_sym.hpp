#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace mhm::linalg {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
/// Eigenvalues are sorted in *decreasing* order (the order the eigenmemory
/// selection step wants); eigenvectors_ column k corresponds to value k and
/// has unit norm.
struct SymmetricEigenResult {
  Vector eigenvalues;    ///< size n, decreasing
  Matrix eigenvectors;   ///< n x n; column k is the k-th eigenvector
};

/// Full symmetric eigendecomposition via Householder tridiagonalization
/// followed by the implicit-shift QL iteration. O(n^3), robust for the
/// dense covariance matrices produced by MHM training sets (n up to ~2000).
///
/// Throws NumericalError if QL fails to converge (pathological input) and
/// LogicError if `a` is not square/symmetric within `symmetry_tol`.
SymmetricEigenResult eigen_symmetric(const Matrix& a,
                                     double symmetry_tol = 1e-8);

/// Cyclic Jacobi eigendecomposition. Slower (used for cross-checking the
/// QL path in tests and for small matrices) but unconditionally stable.
SymmetricEigenResult eigen_symmetric_jacobi(const Matrix& a,
                                            int max_sweeps = 64,
                                            double tol = 1e-12);

/// Reconstruct V diag(w) V^T — used by tests to verify decompositions.
Matrix reconstruct(const SymmetricEigenResult& eig);

}  // namespace mhm::linalg
