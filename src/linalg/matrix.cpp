#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mhm::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    MHM_ASSERT(rows[r].size() == m.cols(), "from_rows: ragged input");
    std::copy(rows[r].begin(), rows[r].end(), m.row(r).begin());
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::col_vector(std::size_t c) const {
  MHM_ASSERT(c < cols_, "col_vector: column out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  MHM_ASSERT(a.cols() == b.rows(), "multiply: inner dimensions mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  // i-k-j loop order keeps the inner loop contiguous for row-major storage.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Vector multiply(const Matrix& a, std::span<const double> x) {
  MHM_ASSERT(a.cols() == x.size(), "multiply(Mv): dimension mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
  return y;
}

Vector multiply_transpose(const Matrix& a, std::span<const double> x) {
  MHM_ASSERT(a.rows() == x.size(), "multiply_transpose: dimension mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    axpy(x[i], a.row(i), y);
  }
  return y;
}

Matrix add(const Matrix& a, const Matrix& b) {
  MHM_ASSERT(a.same_shape(b), "add: shape mismatch");
  Matrix c = a;
  for (std::size_t i = 0; i < c.data().size(); ++i) c.data()[i] += b.data()[i];
  return c;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  MHM_ASSERT(a.same_shape(b), "subtract: shape mismatch");
  Matrix c = a;
  for (std::size_t i = 0; i < c.data().size(); ++i) c.data()[i] -= b.data()[i];
  return c;
}

Matrix scaled(const Matrix& a, double alpha) {
  Matrix c = a;
  for (double& v : c.data()) v *= alpha;
  return c;
}

void syr_update(Matrix& a, double alpha, std::span<const double> x) {
  MHM_ASSERT(a.rows() == a.cols() && a.rows() == x.size(),
             "syr_update: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double axi = alpha * x[i];
    if (axi == 0.0) continue;
    auto arow = a.row(i);
    for (std::size_t j = 0; j < x.size(); ++j) arow[j] += axi * x[j];
  }
}

double max_asymmetry(const Matrix& a) {
  MHM_ASSERT(a.rows() == a.cols(), "max_asymmetry: square matrix required");
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j) - a(j, i)));
    }
  }
  return m;
}

}  // namespace mhm::linalg
