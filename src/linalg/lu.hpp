#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace mhm::linalg {

/// LU factorization with partial pivoting, P A = L U.
/// Used for general (non-SPD) solves and matrix inversion in tests and the
/// PCA whitening utilities.
class Lu {
 public:
  /// Factorizes `a` (must be square). Throws NumericalError if singular to
  /// working precision.
  explicit Lu(const Matrix& a);

  std::size_t dim() const { return lu_.rows(); }

  /// Solve A x = b.
  Vector solve(std::span<const double> b) const;

  /// Inverse of A (column-by-column solve).
  Matrix inverse() const;

  /// Determinant of A.
  double det() const;

 private:
  Matrix lu_;                      ///< Combined L (unit diag) and U.
  std::vector<std::size_t> perm_;  ///< Row permutation.
  int pivot_sign_ = 1;
};

}  // namespace mhm::linalg
