#include "linalg/vector_ops.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mhm::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  MHM_ASSERT(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  MHM_ASSERT(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  MHM_ASSERT(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  MHM_ASSERT(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  MHM_ASSERT(a.size() == b.size(), "squared_distance: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double normalize(std::span<double> a) {
  const double n = norm2(a);
  if (n > 0.0) scale(a, 1.0 / n);
  return n;
}

}  // namespace mhm::linalg
