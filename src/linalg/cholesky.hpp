#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace mhm::linalg {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
///
/// The GMM stage evaluates multivariate Gaussian log densities thousands of
/// times per second; it keeps one Cholesky factor per mixture component and
/// uses `solve_in_place` / `log_det` for the quadratic form and normalizer.
class Cholesky {
 public:
  /// Factorizes `a`. Throws NumericalError if `a` is not (numerically)
  /// positive definite. `jitter` is added to the diagonal before
  /// factorization (covariance regularization), 0 to disable.
  explicit Cholesky(const Matrix& a, double jitter = 0.0);

  std::size_t dim() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }

  /// Solve A x = b; returns x.
  Vector solve(std::span<const double> b) const;

  /// Solve L y = b (forward substitution only). The Mahalanobis distance
  /// x^T A^{-1} x equals |y|^2 where L y = x, which is what the Gaussian
  /// density needs.
  Vector forward_solve(std::span<const double> b) const;

  /// As forward_solve, but writes into `y` (resized to dim()) instead of
  /// allocating — the online scoring path calls this every interval.
  void forward_solve_into(std::span<const double> b, Vector& y) const;

  /// log(det(A)) = 2 * sum_i log(L_ii).
  double log_det() const;

  /// Squared Mahalanobis distance x^T A^{-1} x.
  double mahalanobis_squared(std::span<const double> x) const;

  /// Allocation-free variant: `scratch` holds the forward-solve result.
  double mahalanobis_squared(std::span<const double> x, Vector& scratch) const;

  /// y = L * z maps iid standard normals z to samples with covariance A
  /// (used by tests and the synthetic GMM sampler).
  Vector transform_standard_normal(std::span<const double> z) const;

 private:
  Matrix l_;  ///< Lower-triangular factor (upper part kept zero).
};

/// Try to factorize with escalating diagonal jitter until success; returns
/// the factorization and the jitter actually used. Throws NumericalError if
/// even `max_jitter` fails. This is the standard EM covariance fix-up.
struct RegularizedCholesky {
  Cholesky factor;
  double jitter_used;
};
RegularizedCholesky cholesky_with_regularization(const Matrix& a,
                                                 double initial_jitter = 0.0,
                                                 double max_jitter = 1e3);

}  // namespace mhm::linalg
