#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace mhm::linalg {

/// Dense row-major matrix of doubles. Sized for the covariance matrices in
/// this project (up to ~2,000 x 2,000 for full-resolution MHMs).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer-style data; every row must have `cols()`
  /// entries.
  static Matrix from_rows(const std::vector<Vector>& rows);

  /// Identity matrix.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return std::span<double>(data_).subspan(r * cols_, cols_);
  }
  std::span<const double> row(std::size_t r) const {
    return std::span<const double>(data_).subspan(r * cols_, cols_);
  }

  /// Extract column `c` as a vector (copy).
  Vector col_vector(std::size_t c) const;

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  Matrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Largest |a_ij|.
  double max_abs() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Shapes must be compatible.
Matrix multiply(const Matrix& a, const Matrix& b);

/// y = A * x.
Vector multiply(const Matrix& a, std::span<const double> x);

/// y = A^T * x (without materializing the transpose).
Vector multiply_transpose(const Matrix& a, std::span<const double> x);

/// A + B and A - B.
Matrix add(const Matrix& a, const Matrix& b);
Matrix subtract(const Matrix& a, const Matrix& b);

/// alpha * A.
Matrix scaled(const Matrix& a, double alpha);

/// Symmetric rank-1 update A += alpha * x x^T (A must be square, |x|=n).
void syr_update(Matrix& a, double alpha, std::span<const double> x);

/// Maximum asymmetry |a_ij - a_ji|; 0 for exactly symmetric matrices.
double max_asymmetry(const Matrix& a);

}  // namespace mhm::linalg
