#pragma once

#include <span>
#include <vector>

namespace mhm::linalg {

/// Dense real vector. A plain std::vector<double> keeps interop with the
/// rest of the code trivial; all operations live in free functions below.
using Vector = std::vector<double>;

/// Inner product. Sizes must match.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void scale(std::span<double> x, double alpha);

/// Elementwise a - b.
Vector subtract(std::span<const double> a, std::span<const double> b);

/// Elementwise a + b.
Vector add(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance between a and b.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Normalize to unit 2-norm in place; returns the original norm. A zero
/// vector is left untouched and 0 is returned.
double normalize(std::span<double> a);

}  // namespace mhm::linalg
