#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace mhm::obs {

/// Process-wide registry of named counters, gauges and fixed-bucket
/// histograms — the always-on telemetry layer (netdata-style cheap
/// counters).
///
/// Increments are lock-free: every metric keeps `kShards` cache-line-padded
/// atomic slots and a thread adds to the slot picked by its (stable)
/// thread-local shard index. Export folds the shards in slot order 0..15 —
/// counter and histogram cells are integers, so the folded value is the
/// exact event count regardless of which thread landed where. Nothing the
/// registry records ever feeds back into a computation, which is how the
/// tier-1 determinism guarantees stay untouched.
///
/// Handles returned by the registry are stable for the process lifetime;
/// hot paths cache them (`static auto& c = Registry::instance().counter(...)`)
/// so the name lookup happens once.

/// Number of independent increment slots per metric.
inline constexpr std::size_t kShards = 16;

/// Stable shard slot of the calling thread (threads beyond kShards share).
std::size_t thread_shard();

namespace detail {
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(64) PaddedF64 {
  std::atomic<double> v{0.0};
};
}  // namespace detail

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (!enabled()) return;
    shards_[thread_shard()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Folded total (shards summed in slot order).
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedU64 shards_[kShards];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: upper bounds are set at registration and never
/// change. Out-of-range observations land in the implicit +Inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Folded per-bucket counts; last entry is the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;
  void reset();

 private:
  std::vector<double> bounds_;  ///< Ascending; +Inf bucket is implicit.
  /// Shard-major layout: shard s owns cells [s*(bounds+1), (s+1)*(bounds+1)).
  std::vector<detail::PaddedU64> cells_;
  detail::PaddedF64 sum_[kShards];
  detail::PaddedU64 count_[kShards];
};

/// One exported metric, ready for the text/JSON writers.
struct MetricSnapshot {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Type type = Type::kCounter;
  // Counter / gauge payload.
  double value = 0.0;
  // Histogram payload.
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;  ///< Includes the +Inf bucket.
  std::uint64_t count = 0;
  double sum = 0.0;
};

class Registry {
 public:
  /// The process-wide registry.
  static Registry& instance();

  /// Find-or-create. Names are dotted paths ("pipeline.alarms"); the
  /// Prometheus exporter mangles them to mhm_pipeline_alarms. Registering
  /// the same name with a different metric type throws LogicError-free:
  /// it is reported via std::logic_error (obs has no dependency on
  /// mhm_common).
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  /// `upper_bounds` must be ascending and non-empty; only the first
  /// registration's bounds are kept.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       std::string_view help = "");

  /// Deterministic export: metrics in lexicographic name order, shards
  /// folded in slot order.
  std::vector<MetricSnapshot> snapshot() const;

  /// Zero every value. Handles stay valid (tests and benches isolate runs
  /// without invalidating cached references).
  void reset_values();

 private:
  struct Entry {
    MetricSnapshot::Type type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

}  // namespace mhm::obs
