#include "obs/prof.hpp"

namespace mhm::obs::prof {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kAnalyze: return "analyze";
    case Stage::kScoreProject: return "score.project";
    case Stage::kScoreGmm: return "score.gmm";
    case Stage::kScoreSpe: return "score.spe";
    case Stage::kScoreObserve: return "score.observe";
    case Stage::kShardGather: return "shard.gather";
    case Stage::kShardScatter: return "shard.scatter";
    case Stage::kTrainCovariance: return "train.covariance";
    case Stage::kTrainEigensolve: return "train.eigensolve";
    case Stage::kTrainEm: return "train.em";
  }
  return "unknown";
}

}  // namespace mhm::obs::prof

#if !defined(MHM_OBS_DISABLED)

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#define MHM_PROF_HAVE_PERF 1
#else
#define MHM_PROF_HAVE_PERF 0
#endif

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace mhm::obs::prof {
namespace {

// ---------------------------------------------------------------------------
// Per-stage sharded accumulators (the metrics registry's fold discipline).

/// Exactly one cache line: eight u64 fields. A zone exit touches only its
/// thread's shard slot, so the hot path never bounces lines between threads.
struct alignas(64) StageShard {
  std::atomic<std::uint64_t> entries{0};
  std::atomic<std::uint64_t> ticks{0};
  std::atomic<std::uint64_t> cycles{0};
  std::atomic<std::uint64_t> instructions{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> branch_misses{0};
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> cpu_ns{0};
};
static_assert(sizeof(StageShard) == 64, "one cache line per shard slot");

StageShard g_stages[kStageCount][kShards];

std::atomic<bool>& prof_flag() {
  static std::atomic<bool> flag{[] {
    const char* v = std::getenv("MHM_PROF");
    return !(v != nullptr && v[0] == '0' && v[1] == '\0');
  }()};
  return flag;
}

// ---------------------------------------------------------------------------
// Tick source: raw TSC on x86-64 (≈8 ns a read, calibrated against
// steady_clock at export time), steady_clock elsewhere.

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline std::uint64_t read_ticks() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return monotonic_ns();
#endif
}

#if defined(__x86_64__)
struct TickBase {
  std::uint64_t ticks0;
  std::uint64_t ns0;
};
const TickBase& tick_base() {
  static const TickBase base{read_ticks(), monotonic_ns()};
  return base;
}
#endif

/// ns per tick, from the elapsed (steady_clock, TSC) pair since the base
/// anchor. Export-time only; the baseline is forced to ≥1 ms once so the
/// very first export cannot divide a noise-sized interval.
double ns_per_tick() {
#if defined(__x86_64__)
  const TickBase& base = tick_base();
  std::uint64_t ns = monotonic_ns();
  while (ns - base.ns0 < 1000000) ns = monotonic_ns();
  const std::uint64_t ticks = read_ticks();
  if (ticks <= base.ticks0) return 1.0;
  return static_cast<double>(ns - base.ns0) /
         static_cast<double>(ticks - base.ticks0);
#else
  return 1.0;
#endif
}

// ---------------------------------------------------------------------------
// Hardware counters: one perf_event group per thread (cycles leader +
// instructions + cache misses + branch misses), CLOCK_THREAD_CPUTIME_ID
// fallback. The source is probed once, process-wide.

enum class Source : int { kUnknown = 0, kPerf = 1, kCpuTime = 2 };

std::uint64_t thread_cpu_ns() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

#if MHM_PROF_HAVE_PERF
int open_perf_counter(int group_fd, std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.read_format = PERF_FORMAT_GROUP;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(::syscall(__NR_perf_event_open, &attr, 0, -1,
                                    group_fd, 0));
}

/// Open the 4-counter group for the calling thread; -1 when any member
/// fails (all or nothing — a partial group would skew the ratios).
int open_thread_group() {
  const int leader =
      open_perf_counter(-1, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  if (leader < 0) return -1;
  const int members[3] = {
      open_perf_counter(leader, PERF_TYPE_HARDWARE,
                        PERF_COUNT_HW_INSTRUCTIONS),
      open_perf_counter(leader, PERF_TYPE_HARDWARE,
                        PERF_COUNT_HW_CACHE_MISSES),
      open_perf_counter(leader, PERF_TYPE_HARDWARE,
                        PERF_COUNT_HW_BRANCH_MISSES),
  };
  for (const int fd : members) {
    if (fd >= 0) continue;
    for (const int open_fd : members) {
      if (open_fd >= 0) ::close(open_fd);
    }
    ::close(leader);
    return -1;
  }
  return leader;
}

/// Group order matches open order: cycles, instructions, cache, branch.
bool read_group(int fd, std::uint64_t out[4]) {
  std::uint64_t buf[5] = {0, 0, 0, 0, 0};
  const ssize_t n = ::read(fd, buf, sizeof buf);
  if (n != static_cast<ssize_t>(sizeof buf) || buf[0] != 4) return false;
  std::memcpy(out, buf + 1, 4 * sizeof(std::uint64_t));
  return true;
}
#endif  // MHM_PROF_HAVE_PERF

std::atomic<int> g_source{static_cast<int>(Source::kUnknown)};

Source probe_source() {
  const int known = g_source.load(std::memory_order_acquire);
  if (known != static_cast<int>(Source::kUnknown)) {
    return static_cast<Source>(known);
  }
  Source result = Source::kCpuTime;
#if MHM_PROF_HAVE_PERF
  const char* no_perf = std::getenv("MHM_PROF_NO_PERF");
  if (no_perf == nullptr || no_perf[0] != '1') {
    const int fd = open_thread_group();
    if (fd >= 0) {
      std::uint64_t probe[4];
      if (read_group(fd, probe)) result = Source::kPerf;
      ::close(fd);
    }
  }
#endif
  g_source.store(static_cast<int>(result), std::memory_order_release);
  return result;
}

/// Per-thread zone state: nesting depth and decimation counter per stage,
/// plus the thread's (lazily opened) perf group.
struct ThreadProfState {
  std::uint32_t depth[kStageCount] = {};
  std::uint64_t entry_count[kStageCount] = {};
  int perf_fd = -2;  ///< -2 = not yet opened, -1 = unavailable.

  ~ThreadProfState() {
#if MHM_PROF_HAVE_PERF
    if (perf_fd >= 0) ::close(perf_fd);
#endif
  }
};
thread_local ThreadProfState tl_prof;

int thread_group_fd() {
  ThreadProfState& st = tl_prof;
  if (st.perf_fd == -2) {
    st.perf_fd = -1;
#if MHM_PROF_HAVE_PERF
    if (probe_source() == Source::kPerf) st.perf_fd = open_thread_group();
#endif
  }
  return st.perf_fd;
}

/// Counter-sample decimation: the first handful of entries (so once-only
/// train stages always get counters), then every 64th.
inline bool sample_this_entry(std::uint64_t n) {
  return n < 8 || (n & 63) == 0;
}

// ---------------------------------------------------------------------------
// Sampling profiler: per-thread shadow stacks of borrowed literal names,
// written with relaxed/release stores by the owning thread and read with
// acquire loads by the sampler thread. A torn read (depth moved mid-walk)
// at worst drops one sample — acceptable for a statistical profile, and
// race-free as far as the memory model (and TSan) is concerned.

constexpr std::size_t kSamplerSlots = 64;
constexpr std::size_t kMaxFrames = 16;

struct ThreadStack {
  std::atomic<std::uint32_t> depth{0};
  std::atomic<const char*> frames[kMaxFrames] = {};
};

ThreadStack g_thread_stacks[kSamplerSlots];
std::atomic<std::uint32_t> g_next_stack_slot{0};
std::atomic<bool> g_sampler_active{false};

thread_local std::int32_t tl_stack_slot = -2;  ///< -2 unclaimed, -1 full.

ThreadStack* claim_stack() {
  if (tl_stack_slot == -2) {
    const std::uint32_t idx =
        g_next_stack_slot.fetch_add(1, std::memory_order_relaxed);
    tl_stack_slot = idx < kSamplerSlots ? static_cast<std::int32_t>(idx) : -1;
  }
  return tl_stack_slot >= 0 ? &g_thread_stacks[tl_stack_slot] : nullptr;
}

struct SamplerState {
  std::mutex mu;
  std::map<std::string, std::uint64_t> agg;  ///< collapsed key -> samples.
  std::uint64_t samples = 0;
  std::thread thread;
  std::atomic<bool> stop{false};
  bool running = false;
};

SamplerState& sampler() {
  static SamplerState* s = new SamplerState;  // Leaked: outlives statics.
  return *s;
}

void sampler_loop(double hz) {
  SamplerState& s = sampler();
  const auto period = std::chrono::nanoseconds(
      static_cast<std::uint64_t>(1e9 / std::max(1.0, hz)));
  std::string key;
  key.reserve(256);
  while (!s.stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    const std::uint32_t slots = std::min<std::uint32_t>(
        g_next_stack_slot.load(std::memory_order_acquire), kSamplerSlots);
    for (std::uint32_t i = 0; i < slots; ++i) {
      ThreadStack& st = g_thread_stacks[i];
      const std::uint32_t depth = std::min<std::uint32_t>(
          st.depth.load(std::memory_order_acquire), kMaxFrames);
      if (depth == 0) continue;
      key.clear();
      for (std::uint32_t f = 0; f < depth; ++f) {
        const char* name = st.frames[f].load(std::memory_order_acquire);
        if (name == nullptr) {
          key.clear();
          break;
        }
        if (f != 0) key += ';';
        key += name;
      }
      if (key.empty()) continue;
      std::lock_guard<std::mutex> lk(s.mu);
      ++s.agg[key];
      ++s.samples;
    }
  }
}

// ---------------------------------------------------------------------------
// Export helpers.

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                          sizeof buf - 1));
  }
}

bool is_scoring_stage(std::size_t s) {
  const auto stage = static_cast<Stage>(s);
  return stage == Stage::kScoreProject || stage == Stage::kScoreGmm ||
         stage == Stage::kScoreSpe || stage == Stage::kScoreObserve;
}

bool is_attributed_stage(std::size_t s) {
  const auto stage = static_cast<Stage>(s);
  return is_scoring_stage(s) || stage == Stage::kShardGather ||
         stage == Stage::kShardScatter;
}

}  // namespace

// ---------------------------------------------------------------------------
// ZoneScope.

ZoneScope::ZoneScope(Stage stage) {
  if (!enabled() || !prof_flag().load(std::memory_order_relaxed)) return;
  const auto s = static_cast<std::size_t>(stage);
  ThreadProfState& st = tl_prof;
  stage_ = static_cast<std::uint8_t>(s);
  if (st.depth[s]++ != 0) return;  // Nested same-stage zone: depth only.
  outer_ = true;
  pushed_ = sampler_push_frame(stage_name(stage));
  const std::uint64_t n = st.entry_count[s]++;
  if (sample_this_entry(n)) {
    sampled_ = true;
    if (probe_source() == Source::kPerf) {
      const int fd = thread_group_fd();
      if (fd < 0 || !read_group(fd, start_counters_)) sampled_ = false;
    } else {
      start_cpu_ns_ = thread_cpu_ns();
    }
  }
  start_ticks_ = read_ticks();
}

ZoneScope::~ZoneScope() {
  if (stage_ == 0xff) return;
  const std::size_t s = stage_;
  --tl_prof.depth[s];
  if (!outer_) return;
  const std::uint64_t dt = read_ticks() - start_ticks_;
  StageShard& shard = g_stages[s][thread_shard()];
  shard.entries.fetch_add(1, std::memory_order_relaxed);
  shard.ticks.fetch_add(dt, std::memory_order_relaxed);
  if (sampled_) {
    if (probe_source() == Source::kPerf) {
      std::uint64_t end_counters[4];
      const int fd = thread_group_fd();
      if (fd >= 0 && read_group(fd, end_counters)) {
        shard.cycles.fetch_add(end_counters[0] - start_counters_[0],
                               std::memory_order_relaxed);
        shard.instructions.fetch_add(end_counters[1] - start_counters_[1],
                                     std::memory_order_relaxed);
        shard.cache_misses.fetch_add(end_counters[2] - start_counters_[2],
                                     std::memory_order_relaxed);
        shard.branch_misses.fetch_add(end_counters[3] - start_counters_[3],
                                      std::memory_order_relaxed);
        shard.samples.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      shard.cpu_ns.fetch_add(thread_cpu_ns() - start_cpu_ns_,
                             std::memory_order_relaxed);
      shard.samples.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (pushed_) sampler_pop_frame();
}

// ---------------------------------------------------------------------------
// Switches and probes.

bool prof_enabled() {
  return prof_flag().load(std::memory_order_relaxed);
}

void set_prof_enabled(bool on) {
  prof_flag().store(on, std::memory_order_relaxed);
}

const char* counter_source() {
  return probe_source() == Source::kPerf ? "perf_event" : "thread_cputime";
}

std::uint64_t thread_work_counter() {
  if (!enabled() || !prof_enabled()) return 0;
#if MHM_PROF_HAVE_PERF
  if (probe_source() == Source::kPerf) {
    const int fd = thread_group_fd();
    std::uint64_t counters[4];
    if (fd >= 0 && read_group(fd, counters)) return counters[0];
  }
#endif
  return thread_cpu_ns();
}

// ---------------------------------------------------------------------------
// Sampler lifecycle and hooks.

bool sampler_push_frame(const char* name) {
  if (!g_sampler_active.load(std::memory_order_relaxed)) return false;
  ThreadStack* st = claim_stack();
  if (st == nullptr) return false;
  const std::uint32_t depth = st->depth.load(std::memory_order_relaxed);
  if (depth >= kMaxFrames) return false;
  st->frames[depth].store(name, std::memory_order_relaxed);
  st->depth.store(depth + 1, std::memory_order_release);
  return true;
}

void sampler_pop_frame() {
  ThreadStack* st = claim_stack();
  if (st == nullptr) return;
  const std::uint32_t depth = st->depth.load(std::memory_order_relaxed);
  if (depth > 0) st->depth.store(depth - 1, std::memory_order_release);
}

void start_sampler(double hz) {
  if (!enabled()) return;
  SamplerState& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.running) return;
  s.stop.store(false, std::memory_order_release);
  g_sampler_active.store(true, std::memory_order_release);
  s.thread = std::thread(sampler_loop, hz);
  s.running = true;
}

void stop_sampler() {
  SamplerState& s = sampler();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.running) return;
    s.running = false;
  }
  g_sampler_active.store(false, std::memory_order_release);
  s.stop.store(true, std::memory_order_release);
  s.thread.join();
}

std::uint64_t sampler_samples() {
  SamplerState& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.samples;
}

// ---------------------------------------------------------------------------
// Export.

std::vector<StageSnapshot> snapshot_stages() {
  const double npt = ns_per_tick();
  std::vector<StageSnapshot> out(kStageCount);
  for (std::size_t s = 0; s < kStageCount; ++s) {
    StageSnapshot& snap = out[s];
    snap.name = stage_name(static_cast<Stage>(s));
    std::uint64_t ticks = 0;
    for (std::size_t i = 0; i < kShards; ++i) {  // Slot order 0..15.
      const StageShard& shard = g_stages[s][i];
      snap.entries += shard.entries.load(std::memory_order_relaxed);
      ticks += shard.ticks.load(std::memory_order_relaxed);
      snap.cycles += shard.cycles.load(std::memory_order_relaxed);
      snap.instructions +=
          shard.instructions.load(std::memory_order_relaxed);
      snap.cache_misses +=
          shard.cache_misses.load(std::memory_order_relaxed);
      snap.branch_misses +=
          shard.branch_misses.load(std::memory_order_relaxed);
      snap.counter_samples += shard.samples.load(std::memory_order_relaxed);
      snap.cpu_ns += shard.cpu_ns.load(std::memory_order_relaxed);
    }
    snap.wall_ns =
        static_cast<std::uint64_t>(static_cast<double>(ticks) * npt);
  }
  return out;
}

std::string profile_json() {
  const std::vector<StageSnapshot> stages = snapshot_stages();
  const std::uint64_t analyze_wall =
      stages[static_cast<std::size_t>(Stage::kAnalyze)].wall_ns;
  std::uint64_t attributed_wall = 0;
  const char* top_stage = "";
  std::uint64_t top_wall = 0;
  const char* top_scoring = "";
  std::uint64_t top_scoring_wall = 0;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    if (is_attributed_stage(s)) attributed_wall += stages[s].wall_ns;
    if (s != static_cast<std::size_t>(Stage::kAnalyze) &&
        stages[s].wall_ns > top_wall) {
      top_wall = stages[s].wall_ns;
      top_stage = stages[s].name;
    }
    if (is_attributed_stage(s) && stages[s].wall_ns > top_scoring_wall) {
      top_scoring_wall = stages[s].wall_ns;
      top_scoring = stages[s].name;
    }
  }
  const double fraction =
      analyze_wall > 0 ? static_cast<double>(attributed_wall) /
                             static_cast<double>(analyze_wall)
                       : 0.0;

  std::string out;
  out.reserve(2048);
  append_fmt(out, "{\"source\":\"%s\",", counter_source());
  {
    SamplerState& s = sampler();
    std::lock_guard<std::mutex> lk(s.mu);
    append_fmt(out, "\"sampler\":{\"active\":%s,\"samples\":%llu},",
               g_sampler_active.load(std::memory_order_relaxed) ? "true"
                                                                : "false",
               static_cast<unsigned long long>(s.samples));
  }
  append_fmt(out,
             "\"analyze_wall_ns\":%llu,\"attributed_wall_ns\":%llu,"
             "\"attributed_fraction\":%.6g,",
             static_cast<unsigned long long>(analyze_wall),
             static_cast<unsigned long long>(attributed_wall), fraction);
  append_fmt(out, "\"top_stage\":\"%s\",\"top_scoring_stage\":\"%s\",",
             top_stage, top_scoring);
  out += "\"stages\":[";
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const StageSnapshot& snap = stages[s];
    if (s != 0) out += ',';
    const double ipc =
        snap.cycles > 0 ? static_cast<double>(snap.instructions) /
                              static_cast<double>(snap.cycles)
                        : 0.0;
    const double wall_per_entry =
        snap.entries > 0 ? static_cast<double>(snap.wall_ns) /
                               static_cast<double>(snap.entries)
                         : 0.0;
    append_fmt(out,
               "{\"stage\":\"%s\",\"entries\":%llu,\"wall_ns\":%llu,"
               "\"wall_ns_per_entry\":%.6g,\"cycles\":%llu,"
               "\"instructions\":%llu,\"ipc\":%.6g,\"cache_misses\":%llu,"
               "\"branch_misses\":%llu,\"counter_samples\":%llu,"
               "\"cpu_ns\":%llu}",
               snap.name, static_cast<unsigned long long>(snap.entries),
               static_cast<unsigned long long>(snap.wall_ns), wall_per_entry,
               static_cast<unsigned long long>(snap.cycles),
               static_cast<unsigned long long>(snap.instructions), ipc,
               static_cast<unsigned long long>(snap.cache_misses),
               static_cast<unsigned long long>(snap.branch_misses),
               static_cast<unsigned long long>(snap.counter_samples),
               static_cast<unsigned long long>(snap.cpu_ns));
  }
  out += "]}";
  return out;
}

std::string collapsed_stacks() {
  {
    SamplerState& s = sampler();
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.agg.empty()) {
      std::string out;
      out.reserve(64 * s.agg.size());
      for (const auto& [key, count] : s.agg) {
        append_fmt(out, "%s %llu\n", key.c_str(),
                   static_cast<unsigned long long>(count));
      }
      return out;
    }
  }
  // No samples yet (sampler off or just started): derive stacks from the
  // zone accumulators so the collapsed format is always loadable. Weights
  // are microseconds of stage wall time.
  const std::vector<StageSnapshot> stages = snapshot_stages();
  std::string out;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const StageSnapshot& snap = stages[s];
    if (snap.wall_ns == 0) continue;
    const std::uint64_t weight = std::max<std::uint64_t>(
        1, snap.wall_ns / 1000);
    if (s == static_cast<std::size_t>(Stage::kAnalyze)) {
      append_fmt(out, "analyze %llu\n",
                 static_cast<unsigned long long>(weight));
    } else if (is_attributed_stage(s)) {
      append_fmt(out, "analyze;%s %llu\n", snap.name,
                 static_cast<unsigned long long>(weight));
    } else {
      append_fmt(out, "train;%s %llu\n", snap.name,
                 static_cast<unsigned long long>(weight));
    }
  }
  return out;
}

std::string dump_section() {
  const std::vector<StageSnapshot> stages = snapshot_stages();
  std::string out;
  out.reserve(1024);
  append_fmt(out, "source %s\n", counter_source());
  append_fmt(out, "sampler_samples %llu\n",
             static_cast<unsigned long long>(sampler_samples()));
  for (const StageSnapshot& snap : stages) {
    if (snap.entries == 0) continue;
    const double ipc =
        snap.cycles > 0 ? static_cast<double>(snap.instructions) /
                              static_cast<double>(snap.cycles)
                        : 0.0;
    append_fmt(out,
               "%s entries=%llu wall_ns=%llu cycles=%llu instructions=%llu "
               "ipc=%.3f cache_misses=%llu branch_misses=%llu samples=%llu "
               "cpu_ns=%llu\n",
               snap.name, static_cast<unsigned long long>(snap.entries),
               static_cast<unsigned long long>(snap.wall_ns),
               static_cast<unsigned long long>(snap.cycles),
               static_cast<unsigned long long>(snap.instructions), ipc,
               static_cast<unsigned long long>(snap.cache_misses),
               static_cast<unsigned long long>(snap.branch_misses),
               static_cast<unsigned long long>(snap.counter_samples),
               static_cast<unsigned long long>(snap.cpu_ns));
  }
  return out;
}

void refresh_registry_metrics() {
  if (!enabled()) return;
  struct StageGauges {
    Gauge* entries;
    Gauge* wall_seconds;
    Gauge* ipc;
    Gauge* cache_misses;
  };
  static const auto* gauges = [] {
    auto* v = new std::vector<StageGauges>;
    Registry& reg = Registry::instance();
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const std::string base =
          std::string("prof.") + stage_name(static_cast<Stage>(s));
      v->push_back(StageGauges{
          &reg.gauge(base + ".entries", "zone entries recorded"),
          &reg.gauge(base + ".wall_seconds", "summed stage wall time"),
          &reg.gauge(base + ".ipc",
                     "instructions per cycle over sampled entries"),
          &reg.gauge(base + ".cache_misses",
                     "cache misses over sampled entries"),
      });
    }
    return v;
  }();
  static Gauge& fraction_gauge = Registry::instance().gauge(
      "prof.attributed_fraction",
      "share of analyze wall time attributed to named stages");
  static Gauge& source_gauge = Registry::instance().gauge(
      "prof.counter_source_perf",
      "1 when perf_event counters are live, 0 on thread-cputime fallback");

  const std::vector<StageSnapshot> stages = snapshot_stages();
  std::uint64_t analyze_wall = 0;
  std::uint64_t attributed_wall = 0;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const StageSnapshot& snap = stages[s];
    const StageGauges& g = (*gauges)[s];
    g.entries->set(static_cast<double>(snap.entries));
    g.wall_seconds->set(static_cast<double>(snap.wall_ns) * 1e-9);
    g.ipc->set(snap.cycles > 0
                   ? static_cast<double>(snap.instructions) /
                         static_cast<double>(snap.cycles)
                   : 0.0);
    g.cache_misses->set(static_cast<double>(snap.cache_misses));
    if (s == static_cast<std::size_t>(Stage::kAnalyze)) {
      analyze_wall = snap.wall_ns;
    } else if (is_attributed_stage(s)) {
      attributed_wall += snap.wall_ns;
    }
  }
  fraction_gauge.set(analyze_wall > 0
                         ? static_cast<double>(attributed_wall) /
                               static_cast<double>(analyze_wall)
                         : 0.0);
  source_gauge.set(probe_source() == Source::kPerf ? 1.0 : 0.0);
}

void reset() {
  for (std::size_t s = 0; s < kStageCount; ++s) {
    for (std::size_t i = 0; i < kShards; ++i) {
      StageShard& shard = g_stages[s][i];
      shard.entries.store(0, std::memory_order_relaxed);
      shard.ticks.store(0, std::memory_order_relaxed);
      shard.cycles.store(0, std::memory_order_relaxed);
      shard.instructions.store(0, std::memory_order_relaxed);
      shard.cache_misses.store(0, std::memory_order_relaxed);
      shard.branch_misses.store(0, std::memory_order_relaxed);
      shard.samples.store(0, std::memory_order_relaxed);
      shard.cpu_ns.store(0, std::memory_order_relaxed);
    }
  }
  SamplerState& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  s.agg.clear();
  s.samples = 0;
}

}  // namespace mhm::obs::prof

#endif  // !MHM_OBS_DISABLED
