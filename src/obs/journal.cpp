#include "obs/journal.hpp"

#include <algorithm>
#include <utility>

namespace mhm::obs {

DecisionJournal::DecisionJournal(std::size_t capacity) : ring_(capacity) {}

void DecisionJournal::append(DecisionRecord record) { append_swap(record); }

void DecisionJournal::append_swap(DecisionRecord& record) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.empty()) return;
  std::swap(ring_[head_], record);
  head_ = (head_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  ++total_;
}

std::vector<DecisionRecord> DecisionJournal::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<DecisionRecord> out;
  out.reserve(size_);
  const std::size_t first = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

std::vector<DecisionRecord> DecisionJournal::alarms() const {
  auto all = snapshot();
  std::vector<DecisionRecord> out;
  for (auto& rec : all) {
    if (rec.alarm) out.push_back(std::move(rec));
  }
  return out;
}

std::optional<DecisionRecord> DecisionJournal::find(
    std::uint64_t interval_index) const {
  const auto all = snapshot();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (it->interval_index == interval_index) return *it;
  }
  return std::nullopt;
}

std::size_t DecisionJournal::capacity() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.size();
}

std::size_t DecisionJournal::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return size_;
}

std::uint64_t DecisionJournal::total_appended() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

void DecisionJournal::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  head_ = 0;
  size_ = 0;
  total_ = 0;
  for (auto& rec : ring_) rec = DecisionRecord{};
}

}  // namespace mhm::obs
