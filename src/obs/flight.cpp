#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "obs/build_info.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/model_health.hpp"
#include "obs/prof.hpp"

namespace mhm::obs {

#if defined(MHM_OBS_DISABLED)

// Compiled-out build: every entry point is a no-op so callers need no #ifs.
FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* fr = new FlightRecorder();
  return *fr;
}
bool FlightRecorder::arm(const Options&,
                         std::shared_ptr<const DecisionJournal>) {
  return false;
}
void FlightRecorder::disarm() {}
void FlightRecorder::set_model_health(
    std::shared_ptr<const ModelHealthMonitor>) {}
void FlightRecorder::set_fleet(std::function<std::string()>) {}
void FlightRecorder::set_incidents(std::function<std::string()>) {}
bool FlightRecorder::armed() const { return false; }
void FlightRecorder::note_interval(std::span<const double>, std::uint64_t,
                                   bool) {}
std::string FlightRecorder::dump(const std::string&) { return ""; }
std::string FlightRecorder::crash_file() const { return ""; }

#else

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string wall_stamp() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  localtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y%m%d-%H%M%S", &tm);
  return buf;
}

/// State the signal handler touches. Kept in plain atomics at file scope —
/// the handler may not take the recorder's mutex, allocate, or format.
std::atomic<bool> g_armed{false};
std::atomic<int> g_crash_fd{-1};
std::vector<char> g_snapshot[2];
std::atomic<std::size_t> g_snapshot_len[2] = {0, 0};
std::atomic<int> g_published{-1};
std::atomic<bool> g_handlers_installed{false};
struct sigaction g_old_segv;
struct sigaction g_old_abrt;

/// Async-signal-safe: write() loop of the published prerendered snapshot to
/// the pre-opened fd, fsync, then re-raise with the default disposition so
/// the process still dies with the original signal.
void crash_handler(int sig) {
  static std::atomic<bool> entered{false};
  if (!entered.exchange(true, std::memory_order_relaxed)) {
    const int fd = g_crash_fd.load(std::memory_order_relaxed);
    const int idx = g_published.load(std::memory_order_acquire);
    if (fd >= 0 && idx >= 0) {
      const char* p = g_snapshot[idx].data();
      std::size_t left = g_snapshot_len[idx].load(std::memory_order_acquire);
      while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        if (n == 0) break;
        p += n;
        left -= static_cast<std::size_t>(n);
      }
      ::fsync(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* fr =
      new FlightRecorder();  // Leaked: outlives static dtors.
  return *fr;
}

bool FlightRecorder::arm(const Options& options,
                         std::shared_ptr<const DecisionJournal> journal) {
  std::lock_guard<std::mutex> lk(mu_);
  if (g_armed.load(std::memory_order_relaxed)) return false;
  options_ = options;
  journal_ = std::move(journal);
  have_row_ = false;
  have_alarm_row_ = false;
  last_alarm_dump_ns_ = 0;
  last_refresh_ns_ = 0;

  crash_path_ = options_.dir + "/mhm-" + wall_stamp() + "-signal-" +
                std::to_string(::getpid()) + ".mhmdump";
  const int fd = ::open(crash_path_.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    crash_path_.clear();
    journal_.reset();
    return false;
  }
  g_crash_fd.store(fd, std::memory_order_relaxed);
  g_snapshot[0].assign(options_.buffer_bytes, '\0');
  g_snapshot[1].assign(options_.buffer_bytes, '\0');
  g_snapshot_len[0].store(0, std::memory_order_relaxed);
  g_snapshot_len[1].store(0, std::memory_order_relaxed);
  g_published.store(-1, std::memory_order_relaxed);
  refresh_locked(steady_ns());

  if (options_.handle_signals) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = crash_handler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGSEGV, &sa, &g_old_segv);
    ::sigaction(SIGABRT, &sa, &g_old_abrt);
    g_handlers_installed.store(true, std::memory_order_relaxed);
  }
  g_armed.store(true, std::memory_order_release);
  return true;
}

void FlightRecorder::disarm() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!g_armed.load(std::memory_order_relaxed)) return;
  g_armed.store(false, std::memory_order_relaxed);
  if (g_handlers_installed.exchange(false, std::memory_order_relaxed)) {
    ::sigaction(SIGSEGV, &g_old_segv, nullptr);
    ::sigaction(SIGABRT, &g_old_abrt, nullptr);
  }
  const int fd = g_crash_fd.exchange(-1, std::memory_order_relaxed);
  g_published.store(-1, std::memory_order_relaxed);
  if (fd >= 0) {
    // The crash file only has content if a handler actually fired (in which
    // case this code never runs) — an empty one is clutter, remove it.
    struct stat st;
    const bool empty = ::fstat(fd, &st) == 0 && st.st_size == 0;
    ::close(fd);
    if (empty) ::unlink(crash_path_.c_str());
  }
  crash_path_.clear();
  journal_.reset();
  model_health_.reset();
  fleet_ = nullptr;
  incidents_ = nullptr;
}

void FlightRecorder::set_model_health(
    std::shared_ptr<const ModelHealthMonitor> monitor) {
  std::lock_guard<std::mutex> lk(mu_);
  model_health_ = std::move(monitor);
}

void FlightRecorder::set_fleet(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lk(mu_);
  fleet_ = std::move(provider);
}

void FlightRecorder::set_incidents(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lk(mu_);
  incidents_ = std::move(provider);
}

bool FlightRecorder::armed() const {
  return g_armed.load(std::memory_order_relaxed);
}

std::string FlightRecorder::crash_file() const {
  std::lock_guard<std::mutex> lk(mu_);
  return crash_path_;
}

void FlightRecorder::note_interval(std::span<const double> raw,
                                   std::uint64_t interval_index, bool alarm) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  const std::uint64_t now = steady_ns();
  std::lock_guard<std::mutex> lk(mu_);
  if (!g_armed.load(std::memory_order_relaxed)) return;
  // assign() reuses capacity — no steady-state allocation.
  last_row_.assign(raw.begin(), raw.end());
  last_interval_ = interval_index;
  have_row_ = true;
  if (alarm) {
    alarm_row_.assign(raw.begin(), raw.end());
    alarm_interval_ = interval_index;
    have_alarm_row_ = true;
    if (last_alarm_dump_ns_ == 0 ||
        now - last_alarm_dump_ns_ >= options_.alarm_dump_gap_ns) {
      last_alarm_dump_ns_ = now;
      dump_locked("alarm", now);
    }
  }
  if (now - last_refresh_ns_ >= options_.refresh_gap_ns) refresh_locked(now);
}

std::string FlightRecorder::dump(const std::string& reason) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!g_armed.load(std::memory_order_relaxed)) return "";
  return dump_locked(reason, steady_ns());
}

std::string FlightRecorder::render_locked(const std::string& reason) const {
  std::ostringstream os;
  os << "MHMDUMP 1\n";
  os << "reason " << reason << "\n";
  os << "pid " << ::getpid() << "\n";
  os << "wall_time_s " << std::time(nullptr) << "\n";
  os << build_info_text("build.");
  os << "== metrics ==\n" << prometheus_text();
  std::size_t tail = 0;
  std::vector<DecisionRecord> records;
  if (journal_ != nullptr) {
    records = journal_->snapshot();
    tail = std::min(options_.journal_tail, records.size());
  }
  os << "== journal tail=" << tail << " ==\n";
  for (std::size_t i = records.size() - tail; i < records.size(); ++i) {
    os << decision_json(records[i]) << "\n";
  }
  os << "== trace ==\n" << chrome_trace_json();
  if (model_health_ != nullptr) {
    os << "== model_health ==\n"
       << model_health_json(model_health_->snapshot()) << "\n";
  }
  if (fleet_) {
    os << "== fleet ==\n" << fleet_() << "\n";
  }
  if (incidents_) {
    os << "== incidents ==\n" << incidents_();
  }
  os << "== profile ==\n" << prof::dump_section();
  const bool alarm_row = have_alarm_row_;
  if (alarm_row || have_row_) {
    const auto& row = alarm_row ? alarm_row_ : last_row_;
    os << "== heatmap kind=" << (alarm_row ? "alarm" : "last")
       << " interval=" << (alarm_row ? alarm_interval_ : last_interval_)
       << " cells=" << row.size() << " ==\n";
    os << std::setprecision(17);
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i] << ((i + 1) % 16 == 0 || i + 1 == row.size() ? '\n' : ' ');
    }
  }
  os << "== end ==\n";
  return os.str();
}

void FlightRecorder::refresh_locked(std::uint64_t now_ns) {
  const std::string text = render_locked("signal");
  const int current = g_published.load(std::memory_order_relaxed);
  const int idx = current == 0 ? 1 : 0;
  const std::size_t n = std::min(text.size(), g_snapshot[idx].size());
  std::memcpy(g_snapshot[idx].data(), text.data(), n);
  g_snapshot_len[idx].store(n, std::memory_order_release);
  g_published.store(idx, std::memory_order_release);
  last_refresh_ns_ = now_ns;
}

std::string FlightRecorder::dump_locked(const std::string& reason,
                                        std::uint64_t now_ns) {
  (void)now_ns;
  const std::string path = options_.dir + "/mhm-" + wall_stamp() + "-" +
                           std::to_string(dump_counter_++) + "-" + reason +
                           "-" + std::to_string(::getpid()) + ".mhmdump";
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return "";
  file << render_locked(reason);
  return file ? path : "";
}

#endif  // MHM_OBS_DISABLED

}  // namespace mhm::obs
