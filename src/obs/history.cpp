#include "obs/history.hpp"

#include <algorithm>
#include <cstdio>

namespace mhm::obs {
namespace {

void json_num(std::string& out, const char* key, double v, bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.9g%s", key, v, comma ? "," : "");
  out += buf;
}

void json_u64(std::string& out, const char* key, std::uint64_t v,
              bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%llu%s", key,
                static_cast<unsigned long long>(v), comma ? "," : "");
  out += buf;
}

bool wants(const std::string& series, const char* name) {
  return series == "all" || series == name;
}

HistoryBin bin_of(const HistorySample& s) {
  HistoryBin b;
  b.first_interval = s.interval;
  b.last_interval = s.interval;
  b.count = 1;
  b.alarms = s.alarm ? 1 : 0;
  b.worst_status = s.status;
  b.score_min = b.score_mean = b.score_max = s.score;
  b.spe_min = b.spe_mean = b.spe_max = s.spe;
  return b;
}

void merge_into(HistoryBin& acc, const HistoryBin& fine) {
  if (acc.count == 0) {
    acc = fine;
    return;
  }
  const double n_acc = static_cast<double>(acc.count);
  const double n_fine = static_cast<double>(fine.count);
  const double n = n_acc + n_fine;
  acc.score_mean = (acc.score_mean * n_acc + fine.score_mean * n_fine) / n;
  acc.spe_mean = (acc.spe_mean * n_acc + fine.spe_mean * n_fine) / n;
  acc.score_min = std::min(acc.score_min, fine.score_min);
  acc.score_max = std::max(acc.score_max, fine.score_max);
  acc.spe_min = std::min(acc.spe_min, fine.spe_min);
  acc.spe_max = std::max(acc.spe_max, fine.spe_max);
  acc.count += fine.count;
  acc.alarms += fine.alarms;
  acc.worst_status = std::max(acc.worst_status, fine.worst_status);
  acc.first_interval = std::min(acc.first_interval, fine.first_interval);
  acc.last_interval = std::max(acc.last_interval, fine.last_interval);
}

}  // namespace

ScoreHistory::ScoreHistory(const HistoryOptions& options) : options_(options) {
  options_.raw_capacity = std::max<std::size_t>(1, options_.raw_capacity);
  options_.bin_capacity = std::max<std::size_t>(1, options_.bin_capacity);
  options_.fold = std::max<std::size_t>(2, options_.fold);
  raw_.resize(options_.raw_capacity);
  tiers_.resize(options_.tiers);
  for (Tier& t : tiers_) t.ring.resize(options_.bin_capacity);
}

void ScoreHistory::append(const HistorySample& sample) {
  std::lock_guard<std::mutex> lock(mu_);
  raw_[raw_head_] = sample;
  raw_head_ = (raw_head_ + 1) % raw_.size();
  raw_size_ = std::min(raw_size_ + 1, raw_.size());
  ++total_;
  if (!tiers_.empty()) feed_tier(0, bin_of(sample));
}

void ScoreHistory::feed_tier(std::size_t t, const HistoryBin& fine) {
  Tier& tier = tiers_[t];
  merge_into(tier.acc, fine);
  if (++tier.acc_fill < options_.fold) return;
  tier.ring[tier.head] = tier.acc;
  tier.head = (tier.head + 1) % tier.ring.size();
  tier.size = std::min(tier.size + 1, tier.ring.size());
  const HistoryBin committed = tier.acc;
  tier.acc = HistoryBin{};
  tier.acc_fill = 0;
  if (t + 1 < tiers_.size()) feed_tier(t + 1, committed);
}

std::vector<HistorySample> ScoreHistory::raw_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistorySample> out;
  out.reserve(raw_size_);
  const std::size_t start = (raw_head_ + raw_.size() - raw_size_) % raw_.size();
  for (std::size_t i = 0; i < raw_size_; ++i) {
    out.push_back(raw_[(start + i) % raw_.size()]);
  }
  return out;
}

std::vector<HistoryBin> ScoreHistory::tier_snapshot(std::size_t tier) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistoryBin> out;
  if (tier == 0 || tier > tiers_.size()) return out;
  const Tier& t = tiers_[tier - 1];
  out.reserve(t.size);
  const std::size_t start = (t.head + t.ring.size() - t.size) % t.ring.size();
  for (std::size_t i = 0; i < t.size; ++i) {
    out.push_back(t.ring[(start + i) % t.ring.size()]);
  }
  return out;
}

std::uint64_t ScoreHistory::span_at(std::size_t res) const {
  std::uint64_t span = 1;
  for (std::size_t i = 0; i < res; ++i) span *= options_.fold;
  return span;
}

std::uint64_t ScoreHistory::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::size_t ScoreHistory::memory_bytes() const {
  return raw_.capacity() * sizeof(HistorySample) +
         tiers_.size() * (options_.bin_capacity * sizeof(HistoryBin) +
                          sizeof(Tier));
}

std::string history_json(const ScoreHistory& history, const std::string& series,
                         std::size_t res, std::uint64_t from) {
  std::string out;
  out.reserve(4096);
  out += "{";
  json_u64(out, "res", res);
  json_u64(out, "span_intervals", history.span_at(res));
  json_u64(out, "fold", history.fold());
  json_u64(out, "tiers", history.tiers());
  json_u64(out, "total_appended", history.total_appended());
  out += "\"samples\":[";
  bool first_entry = true;
  if (res == 0) {
    const auto raw = history.raw_snapshot();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const HistorySample& s = raw[i];
      if (s.interval < from) continue;
      if (!first_entry) out += ",";
      first_entry = false;
      out += "{";
      json_u64(out, "interval", s.interval);
      if (wants(series, "score")) json_num(out, "score", s.score);
      if (wants(series, "spe")) json_num(out, "spe", s.spe);
      if (wants(series, "alarm")) json_u64(out, "alarm", s.alarm ? 1 : 0);
      if (wants(series, "status")) json_u64(out, "status", s.status);
      json_u64(out, "model_version", s.model_version, false);
      out += "}";
    }
  } else {
    const auto bins = history.tier_snapshot(res);
    for (std::size_t i = 0; i < bins.size(); ++i) {
      const HistoryBin& b = bins[i];
      if (b.last_interval < from) continue;
      if (!first_entry) out += ",";
      first_entry = false;
      out += "{";
      json_u64(out, "first", b.first_interval);
      json_u64(out, "last", b.last_interval);
      json_u64(out, "count", b.count);
      if (wants(series, "score")) {
        json_num(out, "score_min", b.score_min);
        json_num(out, "score_mean", b.score_mean);
        json_num(out, "score_max", b.score_max);
      }
      if (wants(series, "spe")) {
        json_num(out, "spe_min", b.spe_min);
        json_num(out, "spe_mean", b.spe_mean);
        json_num(out, "spe_max", b.spe_max);
      }
      if (wants(series, "alarm")) json_u64(out, "alarms", b.alarms);
      json_u64(out, "worst_status", b.worst_status, false);
      out += "}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace mhm::obs
