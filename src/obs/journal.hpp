#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/obs.hpp"

namespace mhm::obs {

/// Per-interval decision journal.
///
/// The detector appends one DecisionRecord per analyzed interval — the
/// projected coordinates, the density, the threshold it was compared
/// against, and (for alarms) the cells that deviated most from the training
/// baseline — so any alarm can be explained *after the fact* without
/// re-running the scenario. Bounded ring buffer: with the paper's 10 ms
/// intervals the default capacity retains the most recent ~20 s of
/// decisions.

/// One cell's contribution to a flagged interval.
struct CellContribution {
  std::size_t cell = 0;
  double observed = 0.0;
  double expected = 0.0;  ///< Training mean of the cell.
  double z_score = 0.0;   ///< (observed − expected) / std (std floored).
};

/// The full decision context of one analyzed interval.
struct DecisionRecord {
  std::uint64_t interval_index = 0;
  std::uint64_t phase = 0;             ///< Hyperperiod phase of the interval.
  std::vector<double> reduced_coords;  ///< Eigenmemory projection M'.
  double log10_density = 0.0;
  double threshold = 0.0;              ///< θ_p the density was compared to.
  bool alarm = false;
  std::size_t nearest_pattern = 0;     ///< Most responsible GMM component.
  /// Version of the model snapshot that scored this interval: after a hot
  /// model swap the stamp flips at the pickup boundary, so the journal
  /// records the transition.
  std::uint64_t model_version = 0;
  /// Top deviating cells (|z| descending). Filled only for alarms, and only
  /// when the detector carries a per-cell training baseline.
  std::vector<CellContribution> top_cells;
  /// Free-form annotation ("" for ordinary intervals). The retrain loop
  /// stamps the first post-publish record so the journal shows *why* the
  /// version flipped; serialized only when non-empty, so existing journal
  /// consumers see byte-identical lines for unannotated records.
  std::string note;
};

/// Thread-safe bounded ring of DecisionRecords (oldest overwritten).
class DecisionJournal {
 public:
  static constexpr std::size_t kDefaultCapacity = 2048;

  explicit DecisionJournal(std::size_t capacity = kDefaultCapacity);

  /// No-op while observability is disabled.
  void append(DecisionRecord record);

  /// Swap-based append for the per-interval hot path: `record` receives the
  /// evicted slot's buffers, so a caller that refills the same record next
  /// interval allocates nothing in steady state. No-op while disabled.
  void append_swap(DecisionRecord& record);

  /// Oldest-to-newest copy of the retained records.
  std::vector<DecisionRecord> snapshot() const;

  /// Retained records with `alarm` set, oldest first.
  std::vector<DecisionRecord> alarms() const;

  /// Most recent retained record for `interval_index`, if any.
  std::optional<DecisionRecord> find(std::uint64_t interval_index) const;

  std::size_t capacity() const;
  std::size_t size() const;
  /// Appends since construction/clear (including overwritten records).
  std::uint64_t total_appended() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<DecisionRecord> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mhm::obs
