#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "obs/obs.hpp"

namespace mhm::obs {

class ModelHealthMonitor;

/// Crash-safe flight recorder.
///
/// Once armed, the recorder keeps a preallocated, prerendered snapshot of the
/// process's observability state — metrics registry, decision-journal tail,
/// span ring as Chrome trace JSON, and the raw heatmap row of the most recent
/// (and the most recent *alarmed*) interval — and writes it out as a
/// timestamped `*.mhmdump` file in three situations:
///
///  - on alarm: the detector calls note_interval(alarm=true); dumps are
///    rate-limited (Options::alarm_dump_gap_ns) so an attack that alarms on
///    every 10 ms interval leaves one dump per second, not hundreds;
///  - on fatal signal (SIGSEGV/SIGABRT, via sigaction): the handler writes
///    the prerendered snapshot to a file descriptor opened at arm() time.
///    The signal path is async-signal-safe — write()/fsync() of a buffer
///    published through atomics, no allocation, no formatting, no locks;
///  - on demand: dump("manual"), also reachable over HTTP as /flush.
///
/// The prerendered snapshot is double-buffered: refreshes render into the
/// unpublished buffer and then atomically publish its index, so a signal
/// arriving mid-refresh always sees the previous complete snapshot.
/// Refreshes ride on note_interval() and are rate-limited
/// (Options::refresh_gap_ns); an unarmed recorder costs one relaxed atomic
/// load per interval. The file layout is documented in docs/FILE_FORMATS.md
/// ("Flight-recorder dump") and pretty-printed by `mhm_tool dump`.
class FlightRecorder {
 public:
  struct Options {
    std::string dir = ".";          ///< Where *.mhmdump files land.
    std::size_t journal_tail = 64;  ///< Decision records per dump.
    std::size_t buffer_bytes = 1 << 20;  ///< Crash-snapshot cap (truncates).
    std::uint64_t alarm_dump_gap_ns = 1'000'000'000;  ///< Min gap on alarms.
    std::uint64_t refresh_gap_ns = 250'000'000;  ///< Crash-snapshot cadence.
    bool handle_signals = true;  ///< Install SIGSEGV/SIGABRT handlers.
  };

  /// The process-wide recorder (the signal handler needs a single target).
  static FlightRecorder& instance();

  /// Preallocate buffers, open the crash file, render an initial snapshot
  /// and (optionally) install the signal handlers. `journal` may be null
  /// (dumps then carry an empty journal section). Returns false when
  /// already armed or when the crash file cannot be created.
  bool arm(const Options& options,
           std::shared_ptr<const DecisionJournal> journal);

  /// Restore previous signal handlers, close the crash file and remove it
  /// if no signal fired. Safe to call when not armed.
  void disarm();

  bool armed() const;

  /// Attach (or detach with null) a model-health monitor: dumps then carry
  /// a `== model_health ==` section with the monitor's JSON snapshot.
  /// Cleared by disarm().
  void set_model_health(std::shared_ptr<const ModelHealthMonitor> monitor);

  /// Attach (or detach with an empty function) a fleet JSON provider (the
  /// FleetAggregator's snapshot renderer): dumps then carry a `== fleet ==`
  /// section, so a crash mid-fleet-run leaves the rollup and top-K ranking
  /// in the black box. Cleared by disarm().
  void set_fleet(std::function<std::string()> provider);

  /// Attach (or detach with an empty function) an incident-summary provider
  /// (IncidentStore::dump_section): dumps then carry a `== incidents ==`
  /// section listing the committed `.mhmi` bundles. Cleared by disarm().
  void set_incidents(std::function<std::string()> provider);

  /// Per-interval hook (detector): remembers the raw row, refreshes the
  /// crash snapshot and — for alarms — writes a rate-limited dump. No-op
  /// while unarmed.
  void note_interval(std::span<const double> raw,
                     std::uint64_t interval_index, bool alarm);

  /// Render a fresh snapshot and write it to a new timestamped file.
  /// Returns the path, or "" when unarmed / the file cannot be written.
  std::string dump(const std::string& reason);

  /// Path the signal handler writes to (empty while unarmed).
  std::string crash_file() const;

 private:
  FlightRecorder() = default;

  std::string render_locked(const std::string& reason) const;
  void refresh_locked(std::uint64_t now_ns);
  std::string dump_locked(const std::string& reason, std::uint64_t now_ns);

  mutable std::mutex mu_;
  Options options_;
  std::shared_ptr<const DecisionJournal> journal_;
  std::shared_ptr<const ModelHealthMonitor> model_health_;
  std::function<std::string()> fleet_;
  std::function<std::string()> incidents_;
  std::vector<double> last_row_;
  std::uint64_t last_interval_ = 0;
  bool have_row_ = false;
  std::vector<double> alarm_row_;
  std::uint64_t alarm_interval_ = 0;
  bool have_alarm_row_ = false;
  std::uint64_t last_refresh_ns_ = 0;
  std::uint64_t last_alarm_dump_ns_ = 0;
  std::uint64_t dump_counter_ = 0;
  std::string crash_path_;
};

}  // namespace mhm::obs
