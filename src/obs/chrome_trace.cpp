#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mhm::obs {

namespace {

/// Microseconds with nanosecond precision — Perfetto accepts fractional ts.
std::string us_from_ns(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

std::string escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

}  // namespace

std::string chrome_trace_json(const SpanBuffer& buffer) {
  std::vector<SpanRecord> spans = buffer.snapshot();
  // The ring retains spans in completion order; trace viewers want begin
  // order. Sort by (start, id) — id breaks ties deterministically.
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.id < b.id;
            });
  const std::uint64_t epoch = spans.empty() ? 0 : spans.front().start_ns;

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"mhm\"}}";
  for (const auto& s : spans) {
    os << ",\n{\"name\":\"" << escape(s.name) << "\",\"cat\":\"mhm\","
       << "\"ph\":\"X\",\"ts\":" << us_from_ns(s.start_ns - epoch)
       << ",\"dur\":" << us_from_ns(s.duration_ns) << ",\"pid\":1,\"tid\":"
       << s.thread_shard << ",\"args\":{\"id\":" << s.id
       << ",\"parent\":" << s.parent_id << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace mhm::obs
