#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mhm::obs {

/// RRD-style multi-resolution score history.
///
/// One ScoreHistory rides on each scored stream and retains "what did the
/// last N hyperperiods look like" at a fixed memory cost: a raw ring of the
/// most recent intervals plus coarser tiers where every `fold` finer
/// entries collapse into one min/mean/max bin. Appends are O(tiers)
/// worst-case (amortized O(1)); nothing ever allocates after construction,
/// so the fleet preset can afford one per session inside the 64 KB budget.
///
/// Like the P² sketches, the class is a pure primitive — it touches no
/// process-global state, so it stays fully functional under
/// MHM_OBS_DISABLE; callers gate the append on obs::enabled().

/// One raw interval observation (resolution 0).
struct HistorySample {
  std::uint64_t interval = 0;
  double score = 0.0;   ///< log10 Pr(M') from the verdict.
  double spe = 0.0;     ///< PCA squared prediction error.
  bool alarm = false;
  std::uint8_t status = 0;  ///< ModelHealthStatus at the interval (0=OK).
  std::uint64_t model_version = 0;
};

/// One folded bin at resolution >= 1: `count` finer entries collapsed.
struct HistoryBin {
  std::uint64_t first_interval = 0;
  std::uint64_t last_interval = 0;
  std::uint32_t count = 0;
  std::uint32_t alarms = 0;
  std::uint8_t worst_status = 0;
  double score_min = 0.0;
  double score_mean = 0.0;
  double score_max = 0.0;
  double spe_min = 0.0;
  double spe_mean = 0.0;
  double spe_max = 0.0;
};

struct HistoryOptions {
  std::size_t raw_capacity = 256;  ///< Resolution-0 ring length.
  std::size_t bin_capacity = 128;  ///< Ring length of each folded tier.
  std::size_t fold = 8;            ///< Finer entries per coarser bin.
  std::size_t tiers = 2;           ///< Folded tiers beyond the raw ring.
};

class ScoreHistory {
 public:
  explicit ScoreHistory(const HistoryOptions& options = HistoryOptions{});

  /// Append one interval. Folds cascade: every `fold` raw samples commit a
  /// tier-1 bin, every `fold` tier-1 bins commit a tier-2 bin, and so on.
  void append(const HistorySample& sample);

  /// Raw samples, oldest first.
  std::vector<HistorySample> raw_snapshot() const;
  /// Bins of folded tier `tier` (1-based: tier 1 spans fold intervals per
  /// bin, tier 2 spans fold² ...), oldest first. Empty for out-of-range.
  std::vector<HistoryBin> tier_snapshot(std::size_t tier) const;

  std::size_t tiers() const { return tiers_.size(); }
  std::size_t fold() const { return options_.fold; }
  /// Intervals spanned by one bin at resolution `res` (fold^res).
  std::uint64_t span_at(std::size_t res) const;
  std::uint64_t total_appended() const;
  /// Fixed resident footprint of the rings (excludes sizeof(*this)).
  std::size_t memory_bytes() const;

  const HistoryOptions& options() const { return options_; }

 private:
  struct Tier {
    std::vector<HistoryBin> ring;
    std::size_t head = 0;   ///< Next write slot.
    std::size_t size = 0;
    HistoryBin acc;         ///< Partial bin accumulating finer entries.
    std::uint32_t acc_fill = 0;
  };

  /// Feed one committed finer bin into tier `t`'s accumulator; commits and
  /// cascades when the accumulator reaches `fold`.
  void feed_tier(std::size_t t, const HistoryBin& fine);

  HistoryOptions options_;
  mutable std::mutex mu_;
  std::vector<HistorySample> raw_;
  std::size_t raw_head_ = 0;
  std::size_t raw_size_ = 0;
  std::uint64_t total_ = 0;
  std::vector<Tier> tiers_;
};

/// JSON object for the /history route: `series` selects which columns are
/// rendered ("score", "spe", "alarm", "status" or "all"), `res` the
/// resolution (0 = raw, 1.. = folded tiers), `from` drops entries whose
/// newest interval predates it (0 keeps everything — a `from` beyond the
/// ring simply yields an empty samples array, not an error). Scores/SPE
/// render as plain decimals with enough digits for plotting; the bundle
/// format (.mhmi) carries the hexfloat truth.
std::string history_json(const ScoreHistory& history, const std::string& series,
                         std::size_t res, std::uint64_t from = 0);

}  // namespace mhm::obs
