#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mhm::obs {

/// Incident black box.
///
/// An alarm today leaves behind a point-in-time flight dump and a bounded
/// journal tail; neither is a self-contained record an operator can take
/// offline and re-examine. The incident engine turns every alarm burst or
/// health transition into a `.mhmi` bundle: the pre/post verdict window,
/// the raw heat-map rows that produced it, the top-|z| cell deltas against
/// the training baseline, and the model version — enough to re-score the
/// whole window through `ModelRegistry` and reproduce the verdicts
/// bit-identically (`mhm_tool incidents replay`).
///
/// Two layers, mirroring journal/flight:
///  - IncidentRecorder: per-stream trigger logic + bounded pre-ring. One per
///    Session (or the façade), fed from StreamObserver::record.
///  - IncidentStore: process-level sink shared by every recorder. Renders
///    bundles into a preallocated buffer (the flight recorder's discipline:
///    prerender, then one write(2) sweep, `== end ==` last — a crash mid-
///    write leaves a truncated file that parses as truncated, never a
///    corrupt one), rate-limits, and keeps bounded summaries for /incidents
///    and the `== incidents ==` dump section.

struct IncidentOptions {
  std::size_t pre = 16;           ///< Intervals retained before the trigger.
  std::size_t post = 16;          ///< Intervals captured after the trigger.
  std::size_t burst_count = 3;    ///< Alarms within burst_window that trigger.
  std::size_t burst_window = 8;   ///< Sliding window, intervals.
  /// Minimum intervals between two incidents on one stream: a sustained
  /// attack produces one bundle per gap, not one per alarm.
  std::uint64_t min_gap = 256;
  std::size_t top_cells = 8;      ///< |z|-ranked cell deltas in the bundle.
  /// Copy the raw heat-map rows into the bundle (the replay payload). Costs
  /// (pre+post+1) × L doubles per recorder — the single-stream default;
  /// fleet sessions keep recorders off entirely.
  bool capture_rows = true;
};

/// One interval inside an incident window.
struct IncidentEntry {
  std::uint64_t interval = 0;
  double score = 0.0;   ///< log10 Pr(M').
  double spe = 0.0;
  bool alarm = false;
  std::size_t nearest_pattern = 0;
  std::uint64_t model_version = 0;
  std::vector<double> row;  ///< Raw heat-map cells; empty unless captured.
};

/// One cell's deviation from the training baseline at the trigger interval.
struct IncidentCellDelta {
  std::size_t cell = 0;
  double observed = 0.0;
  double expected = 0.0;
  double z = 0.0;
};

/// A fully assembled incident, handed from recorder to store.
struct Incident {
  std::uint64_t id = 0;            ///< Assigned by the store on commit.
  std::string reason;              ///< "alarm_burst" | "health_transition".
  std::string detail;              ///< e.g. "OK->DRIFTING".
  std::uint64_t trigger_interval = 0;
  std::uint64_t model_version = 0;
  double threshold = 0.0;          ///< θ_p the window was judged against.
  std::size_t cells = 0;           ///< Heat-map dimension L.
  std::size_t pre = 0;
  std::size_t post = 0;
  std::vector<IncidentEntry> window;      ///< Oldest first.
  std::vector<IncidentCellDelta> top_cells;
  std::string path;                ///< Bundle file; set by the store.
};

/// Bounded scrape-visible record of a committed incident.
struct IncidentSummary {
  std::uint64_t id = 0;
  std::string reason;
  std::string detail;
  std::uint64_t trigger_interval = 0;
  std::uint64_t model_version = 0;
  std::size_t entries = 0;
  std::size_t alarms = 0;
  std::size_t bytes = 0;
  std::string path;
  /// Verdict sequence (no rows): enough for /incidents/<id> to show the
  /// score trajectory without re-reading the bundle file.
  std::vector<IncidentEntry> verdicts;
};

class IncidentStore {
 public:
  struct Options {
    std::string dir = ".";
    std::size_t max_incidents = 32;      ///< Summaries retained (ring).
    std::size_t buffer_bytes = 1 << 20;  ///< Prerender buffer capacity.
  };

  explicit IncidentStore(const Options& options);

  /// Render + write the bundle, assign its id, retain a summary. Returns
  /// the bundle path ("" when the write failed). Thread-safe.
  std::string commit(Incident incident);

  /// Called by recorders when a trigger was rate-limited away.
  void note_suppressed();

  std::vector<IncidentSummary> summaries() const;
  std::uint64_t total_committed() const;

  /// JSON array of summaries (the /incidents body).
  std::string json_list() const;
  /// JSON object for one incident, with the verdict sequence in hexfloat.
  /// Nullopt when the id is unknown.
  std::optional<std::string> json_one(std::uint64_t id) const;

  /// Text block for the flight dump's `== incidents ==` section.
  std::string dump_section() const;

  const Options& options() const { return options_; }

  /// Test hook: render `incident` and write only the first half of the
  /// bundle, simulating a crash mid-write. The file must still parse (as
  /// truncated). Returns the partial path.
  std::string debug_commit_partial(Incident incident);

 private:
  std::string commit_locked(Incident& incident, bool partial);

  Options options_;
  mutable std::mutex mu_;
  std::string buffer_;  ///< Preallocated render buffer.
  std::uint64_t next_id_ = 1;
  std::uint64_t total_ = 0;
  std::vector<IncidentSummary> ring_;  ///< Bounded, oldest dropped.
};

class IncidentRecorder {
 public:
  /// `store` may be null: the recorder then runs trigger logic but commits
  /// nothing (used by tests probing the window machinery in isolation).
  IncidentRecorder(const IncidentOptions& options,
                   std::shared_ptr<IncidentStore> store);

  /// Per-interval hook (from StreamObserver::record): `status` is the
  /// model-health status code after this interval (0 OK, 1 DRIFTING,
  /// 2 MISCALIBRATED), `threshold` the primary θ_p, `baseline_mean` /
  /// `baseline_stddev` the per-cell training baseline (empty spans when the
  /// model carries none). Thread-safe.
  void note(std::uint64_t interval, double score, double spe, bool alarm,
            std::size_t nearest_pattern, std::uint64_t model_version,
            double threshold, std::uint8_t status,
            std::span<const double> raw, std::span<const double> baseline_mean,
            std::span<const double> baseline_stddev);

  /// Incidents this recorder has committed / suppressed (rate limit).
  std::uint64_t committed() const;
  std::uint64_t suppressed() const;
  /// An incident is being assembled (post window still filling).
  bool pending() const;

  const IncidentOptions& options() const { return options_; }

 private:
  void trigger_locked(const char* reason, std::string detail,
                      std::uint64_t interval, double threshold,
                      std::span<const double> raw,
                      std::span<const double> baseline_mean,
                      std::span<const double> baseline_stddev);

  IncidentOptions options_;
  std::shared_ptr<IncidentStore> store_;
  mutable std::mutex mu_;
  std::vector<IncidentEntry> ring_;  ///< Pre-window (capacity pre+1).
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  std::vector<std::uint64_t> recent_alarms_;  ///< Intervals, for the burst.
  std::uint8_t prev_status_ = 0;
  bool has_prev_status_ = false;
  std::uint64_t last_trigger_ = 0;
  bool has_triggered_ = false;
  std::optional<Incident> pending_;
  std::size_t post_remaining_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t suppressed_ = 0;
};

/// A parsed `.mhmi` bundle (mhm_tool incidents show/replay).
struct IncidentBundle {
  Incident incident;
  bool truncated = false;       ///< `== end ==` marker missing.
  std::vector<std::string> build_info;  ///< Header `build.*` lines, verbatim.
};

/// Parse a bundle file. Returns false only on I/O failure or a malformed
/// header; a file cut off mid-write parses with `truncated` set and
/// whatever entries were complete.
bool parse_incident_file(const std::string& path, IncidentBundle* out,
                         std::string* error);

}  // namespace mhm::obs
