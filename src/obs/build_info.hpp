#pragma once

#include <string>

namespace mhm::obs {

/// Build identification stamped on every artifact that leaves the process:
/// the /version endpoint, `.mhmdump` flight-dump headers and `.mhmi`
/// incident bundles all carry the same block, so a bundle examined offline
/// names the exact build (and SIMD dispatch tier) that produced it.
struct BuildInfo {
  std::string git;       ///< `git describe` at configure time ("unknown" off-tree).
  std::string compiler;  ///< __VERSION__ of the compiler that built mhm_obs.
  std::string simd;      ///< Runtime-selected projection tier: avx512/avx2/generic.
  bool obs_disabled = false;  ///< True when built with MHM_OBS_DISABLE.
};

const BuildInfo& build_info();

/// Key-value text lines "<prefix>git <...>\n<prefix>compiler <...>\n..." —
/// the header block shared by .mhmdump and .mhmi files.
std::string build_info_text(const std::string& prefix);

/// One-line JSON object (the /version response body).
std::string build_info_json();

}  // namespace mhm::obs
