#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace mhm::obs::prof {

/// Continuous profiling: stage-attributed wall time and hardware counters.
///
/// `PROF_ZONE(kScoreProject)` opens a stage zone for the enclosing scope.
/// Zone entry/exit reads the TSC (steady_clock off x86) and folds the delta
/// into per-stage sharded accumulators — `kShards` cache-line-padded atomic
/// slots indexed by `obs::thread_shard()`, folded in slot order 0..15 at
/// export, the metrics registry's determinism discipline. Nothing a zone
/// records ever feeds back into scoring, so the bit-identity contract is
/// untouched.
///
/// Hardware counters (cycles / instructions / cache misses / branch misses)
/// come from a lazily-opened per-thread `perf_event_open` group, read on a
/// decimated subset of zone entries (the first few, then every 64th) so the
/// syscall cost never rides the hot path; `counter_samples` counts the
/// sampled entries so per-entry rates scale correctly. Where perf events are
/// unavailable (unprivileged containers, CI) the layer falls back to
/// `CLOCK_THREAD_CPUTIME_ID` deltas — `counter_source()` names which source
/// is live, and the same string is stamped into the build-info block.
/// `MHM_PROF_NO_PERF=1` forces the fallback (CI exercises it).
///
/// A low-rate sampling profiler (`start_sampler`, default ~97 Hz — prime,
/// so it never locks onto a periodic workload) walks per-thread shadow
/// stacks pushed by both OBS_SPAN spans and PROF_ZONE zones and aggregates
/// collapsed stacks ("a;b;c <count>") for flamegraph.pl / speedscope.
///
/// Everything compiles out under MHM_OBS_DISABLE and obeys the runtime
/// kill switches: `MHM_OBS=0` disables zones with the rest of the layer,
/// `MHM_PROF=0` / `set_prof_enabled(false)` disables profiling alone
/// (the bench overhead leg toggles this).

/// Instrumented pipeline stages. Scoring stages are `score.*`, the shard
/// batch plumbing `shard.*`, training `train.*`; `analyze` is the umbrella
/// around one analyzed interval (serial session or whole shard batch) that
/// the attribution fraction is measured against.
enum class Stage : std::uint8_t {
  kAnalyze = 0,       ///< One Session::analyze / analyze_shard call.
  kScoreProject,      ///< PCA projection (serial matvec or batch tiles).
  kScoreGmm,          ///< GMM responsibilities / Mahalanobis / log-sum-exp.
  kScoreSpe,          ///< Batch SPE column pass.
  kScoreObserve,      ///< StreamObserver::record (journal/health/history).
  kShardGather,       ///< analyze_shard gather of session rows into SoA.
  kShardScatter,      ///< analyze_shard verdict scatter through observers.
  kTrainCovariance,   ///< Covariance / Gram moment matrix assembly.
  kTrainEigensolve,   ///< Symmetric eigensolve of the moment matrix.
  kTrainEm,           ///< Full GMM EM fit.
};
inline constexpr std::size_t kStageCount = 10;

/// Stable export name of a stage ("analyze", "score.project", ...).
const char* stage_name(Stage stage);

/// One stage's folded accumulator state.
struct StageSnapshot {
  const char* name = "";
  std::uint64_t entries = 0;        ///< Outermost zone entries recorded.
  std::uint64_t wall_ns = 0;        ///< Summed wall time (ticks converted).
  std::uint64_t cycles = 0;         ///< Summed over sampled entries.
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t counter_samples = 0;  ///< Entries the counters were read on.
  std::uint64_t cpu_ns = 0;         ///< Fallback-source thread CPU time.
};

#if defined(MHM_OBS_DISABLED)

class ZoneScope {
 public:
  explicit ZoneScope(Stage) {}
};

inline bool prof_enabled() { return false; }
inline void set_prof_enabled(bool) {}
inline const char* counter_source() { return "disabled"; }
inline std::vector<StageSnapshot> snapshot_stages() { return {}; }
inline std::string profile_json() { return "{}"; }
inline std::string collapsed_stacks() { return ""; }
inline std::string dump_section() { return ""; }
inline void refresh_registry_metrics() {}
inline void reset() {}
inline void start_sampler(double = 97.0) {}
inline void stop_sampler() {}
inline std::uint64_t sampler_samples() { return 0; }
inline std::uint64_t thread_work_counter() { return 0; }
inline bool sampler_push_frame(const char*) { return false; }
inline void sampler_pop_frame() {}

#else

/// RAII stage zone. Cheap enough for the serial 10 µs analyze path: one
/// TSC read pair plus two relaxed fetch_adds on the thread's shard slot
/// (hardware counters ride only decimated entries). Nested zones of the
/// same stage on the same thread record only at the outermost level, so
/// `analyze` inside `analyze` (the shard serial fallback) never
/// double-counts.
class ZoneScope {
 public:
  explicit ZoneScope(Stage stage);
  ~ZoneScope();

  ZoneScope(const ZoneScope&) = delete;
  ZoneScope& operator=(const ZoneScope&) = delete;

 private:
  std::uint8_t stage_ = 0xff;  ///< 0xff = inactive (profiling disabled).
  bool outer_ = false;         ///< Outermost zone of its stage: records.
  bool sampled_ = false;       ///< Hardware counters read on this entry.
  bool pushed_ = false;        ///< Frame pushed onto the sampler stack.
  std::uint64_t start_ticks_ = 0;
  std::uint64_t start_counters_[4] = {0, 0, 0, 0};
  std::uint64_t start_cpu_ns_ = 0;
};

/// Runtime switch for profiling alone (zones + counter reads). Defaults on;
/// `MHM_PROF=0` in the environment starts it off. The obs-wide switches
/// still gate everything: profiling is active iff `obs::enabled() &&
/// prof_enabled()`.
bool prof_enabled();
void set_prof_enabled(bool on);

/// "perf_event" when a perf_event_open counter group is usable on this
/// process, else "thread_cputime" (probed once, on first use;
/// MHM_PROF_NO_PERF=1 forces the fallback).
const char* counter_source();

/// Folded per-stage state, enum order, shards summed in slot order.
std::vector<StageSnapshot> snapshot_stages();

/// The /profile?format=json document: per-stage wall/IPC/miss rates, the
/// top stage by wall time (umbrella excluded), the attributed fraction of
/// analyze wall time, and the sampler state.
std::string profile_json();

/// Collapsed stacks ("frame;frame;frame <count>"), flamegraph.pl /
/// speedscope "collapsed" flavour. Sampler aggregation when it has
/// samples; otherwise stage wall times rendered as parent-chained stacks
/// weighted in microseconds, so the format is always loadable.
std::string collapsed_stacks();

/// The `== profile ==` section body for flight dumps and .mhmi bundles.
std::string dump_section();

/// Publish prof.* gauges into the metrics registry (scrape-time push —
/// zones never touch the registry on the hot path).
void refresh_registry_metrics();

/// Zero all accumulators and sampler aggregates (tests, bench legs).
void reset();

/// Start/stop the sampling profiler thread. Idempotent; the thread owns
/// no locks while reading the shadow stacks (relaxed/acquire loads only).
void start_sampler(double hz = 97.0);
void stop_sampler();
/// Stacks aggregated since start (0 when never started).
std::uint64_t sampler_samples();

/// Per-thread monotone work counter for coarse rollups (fleet
/// cycles/interval): perf-group cycles when available, else
/// CLOCK_THREAD_CPUTIME_ID nanoseconds — units follow counter_source().
std::uint64_t thread_work_counter();

/// Sampler shadow-stack hooks (internal: SpanScope/ZoneScope call these).
/// `name` must outlive the process (string literals). Returns false when
/// the sampler is inactive or the stack is full — the caller then skips
/// the matching pop.
bool sampler_push_frame(const char* name);
void sampler_pop_frame();

#endif  // MHM_OBS_DISABLED

#define MHM_OBS_CONCAT_INNER_PROF(a, b) a##b
#define MHM_OBS_CONCAT_PROF(a, b) MHM_OBS_CONCAT_INNER_PROF(a, b)

/// Open a stage zone for the rest of the enclosing scope.
#define PROF_ZONE(stage)                                           \
  ::mhm::obs::prof::ZoneScope MHM_OBS_CONCAT_PROF(mhm_prof_zone_,  \
                                                  __LINE__)(       \
      ::mhm::obs::prof::Stage::stage)

}  // namespace mhm::obs::prof
