#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace mhm::obs {

namespace {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<std::uint64_t> g_next_span_id{1};

/// Innermost open span of the calling thread (0 = none).
thread_local std::uint64_t tl_current_span = 0;

}  // namespace

SpanBuffer::SpanBuffer(std::size_t capacity) : ring_(capacity) {}

SpanBuffer& SpanBuffer::instance() {
  static SpanBuffer* buf =
      new SpanBuffer(kDefaultCapacity);  // Leaked: outlives static dtors.
  return *buf;
}

void SpanBuffer::record(const SpanRecord& rec) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.empty()) return;
  ring_[head_] = rec;
  head_ = (head_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  ++total_;
}

std::vector<SpanRecord> SpanBuffer::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SpanRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the ring has wrapped.
  const std::size_t first = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t SpanBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

std::size_t SpanBuffer::capacity() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.size();
}

void SpanBuffer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.assign(capacity, SpanRecord{});
  head_ = 0;
  size_ = 0;
}

void SpanBuffer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

SpanScope::SpanScope(const char* name) : name_(name) {
  if (!enabled()) return;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = tl_current_span;
  tl_current_span = id_;
  pushed_ = prof::sampler_push_frame(name_);
  start_ns_ = monotonic_ns();
}

SpanScope::~SpanScope() {
  if (id_ == 0) return;  // Was disabled at construction.
  if (pushed_) prof::sampler_pop_frame();
  tl_current_span = parent_;
  SpanRecord rec;
  rec.id = id_;
  rec.parent_id = parent_;
  rec.name = name_;
  rec.thread_shard = thread_shard();
  rec.start_ns = start_ns_;
  rec.duration_ns = monotonic_ns() - start_ns_;
  // If observability was switched off while the span was open, drop it —
  // the invariant is "no records arrive while disabled".
  if (enabled()) SpanBuffer::instance().record(rec);
}

}  // namespace mhm::obs
