#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>

namespace mhm::obs {

#if !defined(MHM_OBS_DISABLED)
namespace detail {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("MHM_OBS");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return flag;
}

}  // namespace detail

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// 0 = no analysis yet.
std::atomic<std::uint64_t>& last_analysis_ns() {
  static std::atomic<std::uint64_t> ns{0};
  return ns;
}

}  // namespace

void mark_analysis() {
  last_analysis_ns().store(steady_ns(), std::memory_order_relaxed);
}

double last_analysis_age_seconds() {
  const std::uint64_t last = last_analysis_ns().load(std::memory_order_relaxed);
  if (last == 0) return -1.0;
  return static_cast<double>(steady_ns() - last) * 1e-9;
}
#endif

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      cells_(kShards * (bounds_.size() + 1)) {
  if (bounds_.empty()) {
    throw std::logic_error("obs::Histogram: needs at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("obs::Histogram: bounds must be ascending");
  }
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const std::size_t shard = thread_shard();
  // Linear scan: bucket lists are short (≤ ~20) and usually hit early.
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  cells_[shard * (bounds_.size() + 1) + b].v.fetch_add(
      1, std::memory_order_relaxed);
  count_[shard].v.fetch_add(1, std::memory_order_relaxed);
  sum_[shard].v.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += cells_[s * out.size() + b].v.load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : count_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& s : sum_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  for (auto& c : count_) c.v.store(0, std::memory_order_relaxed);
  for (auto& s : sum_) s.v.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry* reg = new Registry();  // Leaked: outlives static dtors.
  return *reg;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.type = MetricSnapshot::Type::kCounter;
    e.help = std::string(help);
    e.counter = std::make_unique<Counter>();
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.type != MetricSnapshot::Type::kCounter) {
    throw std::logic_error("obs::Registry: '" + std::string(name) +
                           "' already registered with a different type");
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.type = MetricSnapshot::Type::kGauge;
    e.help = std::string(help);
    e.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.type != MetricSnapshot::Type::kGauge) {
    throw std::logic_error("obs::Registry: '" + std::string(name) +
                           "' already registered with a different type");
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds,
                               std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.type = MetricSnapshot::Type::kHistogram;
    e.help = std::string(help);
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.type != MetricSnapshot::Type::kHistogram) {
    throw std::logic_error("obs::Registry: '" + std::string(name) +
                           "' already registered with a different type");
  }
  return *it->second.histogram;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.help = entry.help;
    snap.type = entry.type;
    switch (entry.type) {
      case MetricSnapshot::Type::kCounter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricSnapshot::Type::kGauge:
        snap.value = entry.gauge->value();
        break;
      case MetricSnapshot::Type::kHistogram:
        snap.upper_bounds = entry.histogram->upper_bounds();
        snap.bucket_counts = entry.histogram->bucket_counts();
        snap.count = entry.histogram->count();
        snap.sum = entry.histogram->sum();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, entry] : metrics_) {
    (void)name;
    switch (entry.type) {
      case MetricSnapshot::Type::kCounter:
        entry.counter->reset();
        break;
      case MetricSnapshot::Type::kGauge:
        entry.gauge->reset();
        break;
      case MetricSnapshot::Type::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

}  // namespace mhm::obs
