#pragma once

#include <atomic>

/// Observability kill switches.
///
/// Runtime: the MHM_OBS environment variable. Unset or any value other than
/// "0" enables observability; MHM_OBS=0 turns every metric increment, span
/// record and journal append into a cheap early-return (one relaxed atomic
/// load). `set_enabled()` overrides the environment at runtime — the
/// overhead bench and the no-op tests flip it without re-exec'ing.
///
/// Compile time: building with -DMHM_OBS_DISABLED (CMake option
/// MHM_OBS_DISABLE) pins `enabled()` to a constant false so the optimizer
/// can delete the instrumentation entirely.
namespace mhm::obs {

#if defined(MHM_OBS_DISABLED)

constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void mark_analysis() {}
inline double last_analysis_age_seconds() { return -1.0; }

#else

namespace detail {
/// The process-wide switch, initialized once from MHM_OBS.
std::atomic<bool>& enabled_flag();
}  // namespace detail

inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Liveness heartbeat: the detector stamps the monotonic clock after every
/// analyzed interval; /healthz reports the age of the newest stamp so an
/// external agent can tell "process up" from "process up and analyzing".
void mark_analysis();
/// Seconds since the last mark_analysis() (-1 before the first one).
double last_analysis_age_seconds();

#endif

}  // namespace mhm::obs
