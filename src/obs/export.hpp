#pragma once

#include <string>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mhm::obs {

/// Text exporters for the observability state. Schemas are documented in
/// docs/FILE_FORMATS.md ("Observability exports").

/// Prometheus text exposition format (version 0.0.4). Metric names are the
/// registry's dotted names with dots mapped to underscores and an `mhm_`
/// prefix ("pipeline.alarms" → "mhm_pipeline_alarms"). Histograms emit the
/// conventional `_bucket{le=...}` / `_sum` / `_count` series.
std::string prometheus_text(const Registry& registry = Registry::instance());

/// One JSON object per line, one line per metric.
std::string metrics_json_lines(
    const Registry& registry = Registry::instance());

/// One JSON object per line, one line per retained span (oldest first).
std::string spans_json_lines(
    const SpanBuffer& buffer = SpanBuffer::instance());

/// One JSON object per line, one line per retained decision (oldest first).
std::string journal_json_lines(const DecisionJournal& journal);

/// One decision rendered as a single JSON line (shared by the exporter and
/// mhm_tool's per-alarm output).
std::string decision_json(const DecisionRecord& record);

}  // namespace mhm::obs
