#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/journal.hpp"
#include "obs/obs.hpp"

namespace mhm::obs {

class IncidentStore;
class ModelHealthMonitor;
class ScoreHistory;

/// Dependency-free HTTP/1.1 monitoring endpoint (POSIX sockets, loopback
/// only, single accept-and-serve thread, bounded request size, one request
/// per connection). Off by default; long-running pipelines start it when
/// MHM_OBS_PORT is set, `mhm_tool serve` starts it explicitly.
///
/// Routes (all GET):
///   /metrics          Prometheus 0.0.4 text of the process registry
///   /healthz          JSON liveness: uptime + last-analysis age
///   /status           JSON snapshot: intervals/alarms/scenario progress/LL
///   /journal?tail=N   last N decision records as JSON lines (default 100)
///   /trace            span ring as Chrome trace_event JSON (Perfetto)
///   /model            model-health JSON: status, drift statistics, sketch
///                     quantiles vs training, component occupancy
///   /fleet            fleet-aggregate JSON: device rollup, per-shard rates,
///                     top-K most anomalous streams (set_fleet provider)
///   /history?series=&res=&from=
///                     multi-resolution score history JSON (set_history):
///                     series in {score,spe,alarm,status,all}, res the
///                     resolution tier (0 = raw), from a minimum interval
///   /incidents        incident-bundle summaries JSON (set_incidents)
///   /incidents/<id>   one incident with its hexfloat verdict sequence
///   /profile?format=  continuous-profiler state: format=json (default) is
///                     per-stage wall/IPC/miss attribution, format=collapsed
///                     is flamegraph.pl / speedscope collapsed stacks
///   /version          build info JSON: git describe, compiler, SIMD tier,
///                     profiler counter source
///   /flush            force a flight-recorder dump, returns its path
///
/// Malformed or out-of-range query parameters (?tail=, ?res=, ?from=,
/// ?format=, a non-numeric incident id) answer 400 with a JSON error
/// object — never a silent clamp, never a 500.
///
/// Handling runs entirely on the server thread and only reads state behind
/// the obs layer's own locks/atomics, so an attached scraper never touches
/// the pipeline's hot path — the "serving enabled but no client" overhead
/// contract (<1%) is measured by bench/perf_pipeline.cpp.
class MonitorServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port.
    std::size_t max_request_bytes = 8192;  ///< Larger requests get 431.
  };

  MonitorServer();
  ~MonitorServer();

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Bind 127.0.0.1:port and start the serve thread. Returns false when
  /// already running, the bind fails, or the build compiled obs out.
  bool start(const Options& options);
  void stop();
  bool running() const;
  /// Bound port (0 when not running). With Options::port == 0 this is the
  /// kernel-assigned one — tests and `mhm_tool serve` print it.
  std::uint16_t port() const;

  /// Journal served by /journal; may be set or swapped while running.
  /// Null detaches (the endpoint then answers 404).
  void set_journal(std::shared_ptr<const DecisionJournal> journal);

  /// Model-health monitor served by /model; same attach/detach semantics
  /// as set_journal.
  void set_model_health(std::shared_ptr<const ModelHealthMonitor> monitor);

  /// Score history served by /history; same attach/detach semantics as
  /// set_journal.
  void set_history(std::shared_ptr<const ScoreHistory> history);

  /// Incident store served by /incidents[/id]; same attach/detach
  /// semantics as set_journal.
  void set_incidents(std::shared_ptr<const IncidentStore> incidents);

  /// JSON provider served verbatim by /fleet (the FleetAggregator's
  /// snapshot renderer); same attach/detach semantics as set_journal. The
  /// provider runs on the serve thread and must be safe to call
  /// concurrently with the fleet's workers — the aggregator's snapshot path
  /// only touches folded state behind its own per-shard locks.
  void set_fleet(std::function<std::string()> provider);

  /// JSON-object provider merged into the /model body under a `"retrain"`
  /// key (the RetrainManager's json()); same attach/detach semantics as
  /// set_journal. The provider runs on the serve thread and must be
  /// thread-safe. With no model-health monitor attached, /model still
  /// answers 404 — retrain state without a health stream is meaningless.
  void set_retrain(std::function<std::string()> provider);

  /// The process-wide server used by the MHM_OBS_PORT autostart.
  static MonitorServer& instance();

  /// Start instance() on MHM_OBS_PORT when the variable names a valid port
  /// and the server is not yet running; attaches `journal` and
  /// `model_health` (when non-null) either way. Returns true when the
  /// server is (now) running. MHM_OBS_PORT=0 binds a kernel-assigned
  /// ephemeral port (reported on stderr and via port()) so concurrent test
  /// processes never collide. The pipeline calls this from its long-running
  /// entry points, making any run scrapeable without code changes.
  static bool ensure_env_server(
      std::shared_ptr<const DecisionJournal> journal = nullptr,
      std::shared_ptr<const ModelHealthMonitor> model_health = nullptr);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mhm::obs
