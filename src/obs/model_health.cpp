#include "obs/model_health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/metrics.hpp"

namespace mhm::obs {

// ---------------------------------------------------------------------------
// P² streaming quantile (always compiled: pure, deterministic math).

P2Quantile::P2Quantile(double p)
    : p_(std::min(0.999, std::max(0.001, p))) {
  step_[0] = 0.0;
  step_[1] = p_ / 2.0;
  step_[2] = p_;
  step_[3] = (1.0 + p_) / 2.0;
  step_[4] = 1.0;
}

double P2Quantile::parabolic(int i, double sign) const {
  return q_[i] +
         sign / (pos_[i + 1] - pos_[i - 1]) *
             ((pos_[i] - pos_[i - 1] + sign) * (q_[i + 1] - q_[i]) /
                  (pos_[i + 1] - pos_[i]) +
              (pos_[i + 1] - pos_[i] - sign) * (q_[i] - q_[i - 1]) /
                  (pos_[i] - pos_[i - 1]));
}

double P2Quantile::linear(int i, int sign) const {
  return q_[i] +
         static_cast<double>(sign) * (q_[i + sign] - q_[i]) /
             (pos_[i + sign] - pos_[i]);
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    q_[n_++] = x;
    if (n_ == 5) {
      std::sort(q_, q_ + 5);
      for (int i = 0; i < 5; ++i) {
        pos_[i] = static_cast<double>(i + 1);
        want_[i] = 1.0 + 4.0 * step_[i];
      }
    }
    return;
  }

  int k = 0;
  if (x < q_[0]) {
    q_[0] = x;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    while (k < 3 && x >= q_[k + 1]) ++k;
  }
  ++n_;
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) want_[i] += step_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = want_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      double qn = parabolic(i, sign);
      if (!(q_[i - 1] < qn && qn < q_[i + 1])) {
        qn = linear(i, sign > 0.0 ? 1 : -1);
      }
      q_[i] = qn;
      pos_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact (type-7) quantile of the few samples seen so far.
    double sorted[5];
    std::copy(q_, q_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    const double rank = p_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min<std::size_t>(lo + 1, n_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return q_[2];
}

// ---------------------------------------------------------------------------
// Drift detectors.

bool CusumDetector::add(double z) {
  s_pos_ = std::max(0.0, s_pos_ + z - k_);
  s_neg_ = std::max(0.0, s_neg_ - z - k_);
  const bool over = s_pos_ > h_ || s_neg_ > h_;
  const bool newly = over && !fired_;
  if (over) fired_ = true;
  return newly;
}

void CusumDetector::reset() {
  s_pos_ = 0.0;
  s_neg_ = 0.0;
  fired_ = false;
}

bool PageHinkleyDetector::add(double z) {
  ++n_;
  mean_ += (z - mean_) / static_cast<double>(n_);
  m_up_ += z - mean_ - delta_;
  m_dn_ += mean_ - z - delta_;
  min_up_ = std::min(min_up_, m_up_);
  min_dn_ = std::min(min_dn_, m_dn_);
  const bool over = statistic() > lambda_;
  const bool newly = over && !fired_;
  if (over) fired_ = true;
  return newly;
}

double PageHinkleyDetector::statistic() const {
  return std::max(m_up_ - min_up_, m_dn_ - min_dn_);
}

void PageHinkleyDetector::reset() {
  n_ = 0;
  mean_ = 0.0;
  m_up_ = m_dn_ = 0.0;
  min_up_ = min_dn_ = 0.0;
  fired_ = false;
}

WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z) {
  if (trials == 0) return WilsonInterval{0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z / denom * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return WilsonInterval{std::max(0.0, center - half),
                        std::min(1.0, center + half)};
}

const char* to_string(ModelHealthStatus status) {
  switch (status) {
    case ModelHealthStatus::kOk:
      return "OK";
    case ModelHealthStatus::kDrifting:
      return "DRIFTING";
    case ModelHealthStatus::kMiscalibrated:
      return "MISCALIBRATED";
  }
  return "OK";
}

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || !std::isfinite(parsed)) return fallback;
  return parsed;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

}  // namespace

ModelHealthOptions ModelHealthOptions::from_env() {
  ModelHealthOptions o;
  o.cusum_k = env_double("MHM_DRIFT_CUSUM_K", o.cusum_k);
  o.cusum_h = env_double("MHM_DRIFT_CUSUM_H", o.cusum_h);
  o.ph_delta = env_double("MHM_DRIFT_PH_DELTA", o.ph_delta);
  o.ph_lambda = env_double("MHM_DRIFT_PH_LAMBDA", o.ph_lambda);
  o.wilson_z = env_double("MHM_DRIFT_WILSON_Z", o.wilson_z);
  o.min_intervals = env_u64("MHM_DRIFT_MIN_INTERVALS", o.min_intervals);
  o.warmup = env_u64("MHM_DRIFT_WARMUP", o.warmup);
  o.z_clamp = env_double("MHM_DRIFT_Z_CLAMP", o.z_clamp);
  o.history = static_cast<std::size_t>(
      env_u64("MHM_DRIFT_HISTORY", o.history));
  o.row_stride = static_cast<std::size_t>(
      env_u64("MHM_DRIFT_ROW_STRIDE", o.row_stride));
  o.max_events = static_cast<std::size_t>(
      env_u64("MHM_DRIFT_MAX_EVENTS", o.max_events));
  o.attach = env_u64("MHM_DRIFT_DISABLE", 0) == 0;
  return o;
}

// ---------------------------------------------------------------------------
// JSON rendering (always compiled: /model bodies and dumps are pure text).

namespace {

std::string json_num(double v) {
  char buf[40];
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "\"%s\"",
                  std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf"));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string model_health_json(const ModelHealthSnapshot& s) {
  std::string os;
  os.reserve(2048);
  os += "{\"status\":";
  os += json_str(to_string(s.status));
  os += ",\"intervals\":" + std::to_string(s.intervals);
  os += ",\"alarms\":" + std::to_string(s.alarms);
  os += ",\"alarm_rate\":" + json_num(s.alarm_rate);
  os += ",\"expected_p\":" + json_num(s.expected_p);
  os += ",\"wilson_low\":" + json_num(s.wilson.low);
  os += ",\"wilson_high\":" + json_num(s.wilson.high);
  os += ",\"calibrated\":";
  os += s.calibrated ? "true" : "false";
  os += ",\"drift\":{\"cusum_pos\":" + json_num(s.cusum_pos);
  os += ",\"cusum_neg\":" + json_num(s.cusum_neg);
  os += ",\"cusum_threshold\":" + json_num(s.cusum_threshold);
  os += ",\"cusum_fired\":";
  os += s.cusum_fired ? "true" : "false";
  os += ",\"page_hinkley\":" + json_num(s.ph_stat);
  os += ",\"page_hinkley_lambda\":" + json_num(s.ph_lambda);
  os += ",\"page_hinkley_fired\":";
  os += s.ph_fired ? "true" : "false";
  os += "},\"score\":{\"mean\":" + json_num(s.score_mean);
  os += ",\"stddev\":" + json_num(s.score_stddev);
  os += ",\"q05\":" + json_num(s.score_q05);
  os += ",\"q50\":" + json_num(s.score_q50);
  os += ",\"q95\":" + json_num(s.score_q95);
  os += ",\"training\":{\"mean\":" + json_num(s.train_mean);
  os += ",\"stddev\":" + json_num(s.train_stddev);
  os += ",\"q05\":" + json_num(s.train_q05);
  os += ",\"q50\":" + json_num(s.train_q50);
  os += ",\"q95\":" + json_num(s.train_q95);
  os += "}},\"spe\":{\"last\":" + json_num(s.spe_last);
  os += ",\"q50\":" + json_num(s.spe_q50);
  os += ",\"q95\":" + json_num(s.spe_q95);
  os += "},\"components\":[";
  for (std::size_t j = 0; j < s.component_weights.size(); ++j) {
    if (j > 0) os += ",";
    const std::uint64_t occ =
        j < s.component_occupancy.size() ? s.component_occupancy[j] : 0;
    os += "{\"weight\":" + json_num(s.component_weights[j]);
    os += ",\"occupancy\":" + std::to_string(occ);
    const double share =
        s.intervals == 0 ? 0.0
                         : static_cast<double>(occ) /
                               static_cast<double>(s.intervals);
    os += ",\"share\":" + json_num(share) + "}";
  }
  os += "],\"events\":[";
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (i > 0) os += ",";
    const auto& e = s.events[i];
    os += "{\"interval\":" + std::to_string(e.interval);
    os += ",\"from\":" + json_str(to_string(e.from));
    os += ",\"to\":" + json_str(to_string(e.to));
    os += ",\"detail\":" + json_str(e.detail) + "}";
  }
  os += "],\"recent_scores\":[";
  for (std::size_t i = 0; i < s.recent_scores.size(); ++i) {
    if (i > 0) os += ",";
    os += json_num(s.recent_scores[i]);
  }
  os += "],\"heat_row\":{\"interval\":" + std::to_string(s.last_row_interval);
  os += ",\"cells\":[";
  for (std::size_t i = 0; i < s.last_row.size(); ++i) {
    if (i > 0) os += ",";
    os += json_num(s.last_row[i]);
  }
  os += "]}}";
  return os;
}

// ---------------------------------------------------------------------------
// Monitor.

#if defined(MHM_OBS_DISABLED)

// Compiled-out build: no state, no locks, no metrics — every method is a
// no-op shell so callers need no #ifs.
struct ModelHealthMonitor::Impl {};
ModelHealthMonitor::ModelHealthMonitor(const std::vector<double>&,
                                       std::vector<double>,
                                       const ModelHealthOptions&) {}
ModelHealthMonitor::~ModelHealthMonitor() = default;
ModelHealthStatus ModelHealthMonitor::observe(double, double, std::size_t,
                                              bool, std::uint64_t,
                                              std::span<const double>) {
  return ModelHealthStatus::kOk;
}
ModelHealthStatus ModelHealthMonitor::status() const {
  return ModelHealthStatus::kOk;
}
ModelHealthSnapshot ModelHealthMonitor::snapshot() const {
  return ModelHealthSnapshot{};
}
void ModelHealthMonitor::reset() {}

#else

struct ModelHealthMonitor::Impl {
  const ModelHealthOptions opts;
  // Training-time reference, fixed at construction.
  double train_mean = 0.0;
  double train_stddev = 1.0;
  double train_q05 = 0.0;
  double train_q50 = 0.0;
  double train_q95 = 0.0;
  const std::vector<double> weights;

  mutable std::mutex mu;
  P2Quantile q05{0.05};
  P2Quantile q50{0.5};
  P2Quantile q95{0.95};
  P2Quantile spe_q50{0.5};
  P2Quantile spe_q95{0.95};
  double spe_last = 0.0;
  std::uint64_t intervals = 0;
  std::uint64_t alarms = 0;
  double mean = 0.0;  ///< Welford running mean of the live scores.
  double m2 = 0.0;    ///< Welford sum of squared deviations.
  CusumDetector cusum;
  PageHinkleyDetector ph;
  std::vector<std::uint64_t> occupancy;
  std::vector<double> recent;
  std::size_t recent_next = 0;
  std::vector<double> last_row;
  std::uint64_t last_row_interval = 0;
  WilsonInterval wilson;
  bool miscalibrated = false;
  ModelHealthStatus current = ModelHealthStatus::kOk;
  std::vector<ModelHealthEvent> events;

  Gauge& g_status = Registry::instance().gauge(
      "model_health.status", "0 OK, 1 DRIFTING, 2 MISCALIBRATED");
  Gauge& g_alarm_rate = Registry::instance().gauge(
      "model_health.alarm_rate", "empirical alarm fraction of the live run");
  Gauge& g_wilson_low = Registry::instance().gauge(
      "model_health.wilson_low", "lower Wilson bound on the alarm rate");
  Gauge& g_wilson_high = Registry::instance().gauge(
      "model_health.wilson_high", "upper Wilson bound on the alarm rate");
  Gauge& g_cusum_pos = Registry::instance().gauge(
      "model_health.cusum_pos", "CUSUM upper sum on the standardized score");
  Gauge& g_cusum_neg = Registry::instance().gauge(
      "model_health.cusum_neg", "CUSUM lower sum on the standardized score");
  Gauge& g_ph = Registry::instance().gauge(
      "model_health.page_hinkley", "Page-Hinkley excursion statistic");
  Gauge& g_q05 = Registry::instance().gauge(
      "model_health.score_q05", "P2 sketch of the live score, 5th percentile");
  Gauge& g_q50 = Registry::instance().gauge(
      "model_health.score_q50", "P2 sketch of the live score, median");
  Gauge& g_q95 = Registry::instance().gauge(
      "model_health.score_q95", "P2 sketch of the live score, 95th percentile");
  Gauge& g_spe95 = Registry::instance().gauge(
      "model_health.spe_q95", "P2 sketch of the PCA residual, 95th percentile");
  Counter& c_drift = Registry::instance().counter(
      "model_health.drift_events", "transitions into DRIFTING");
  Counter& c_breach = Registry::instance().counter(
      "model_health.calibration_breaches", "transitions into MISCALIBRATED");
  std::vector<Gauge*> g_occupancy;

  Impl(const std::vector<double>& training_scores,
       std::vector<double> component_weights, const ModelHealthOptions& o)
      : opts(o),
        weights(std::move(component_weights)),
        cusum(o.cusum_k, o.cusum_h),
        ph(o.ph_delta, o.ph_lambda) {
    if (!training_scores.empty()) {
      std::vector<double> sorted = training_scores;
      std::sort(sorted.begin(), sorted.end());
      const double n = static_cast<double>(sorted.size());
      double sum = 0.0;
      for (double v : sorted) sum += v;
      train_mean = sum / n;
      double sq = 0.0;
      for (double v : sorted) {
        const double d = v - train_mean;
        sq += d * d;
      }
      train_stddev = std::sqrt(sq / n);
      const auto at = [&](double p) {
        const double rank = p * (n - 1.0);
        const auto lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = rank - static_cast<double>(lo);
        return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
      };
      train_q05 = at(0.05);
      train_q50 = at(0.50);
      train_q95 = at(0.95);
    }
    occupancy.assign(weights.size(), 0);
    g_occupancy.reserve(weights.size());
    for (std::size_t j = 0; j < weights.size(); ++j) {
      g_occupancy.push_back(&Registry::instance().gauge(
          "model_health.occupancy." + std::to_string(j),
          "intervals for which component " + std::to_string(j) +
              " was most responsible"));
    }
  }

  /// Detail line for a status transition, e.g.
  /// "cusum s+=0.0 s-=12.3 (h 10)" or "alarm rate 0.08 vs p 0.01".
  std::string describe_locked() const {
    char buf[160];
    if (miscalibrated) {
      std::snprintf(buf, sizeof buf,
                    "alarm rate %.4g outside Wilson [%.4g, %.4g] for p %.4g",
                    intervals == 0
                        ? 0.0
                        : static_cast<double>(alarms) /
                              static_cast<double>(intervals),
                    wilson.low, wilson.high, opts.expected_p);
    } else if (cusum.fired() || ph.fired()) {
      std::snprintf(buf, sizeof buf,
                    "cusum s+=%.3g s-=%.3g (h %.3g), page-hinkley %.3g "
                    "(lambda %.3g)",
                    cusum.positive_sum(), cusum.negative_sum(),
                    cusum.threshold(), ph.statistic(), ph.lambda());
    } else {
      std::snprintf(buf, sizeof buf, "recovered");
    }
    return buf;
  }
};

ModelHealthMonitor::ModelHealthMonitor(
    const std::vector<double>& training_scores_log10,
    std::vector<double> component_weights, const ModelHealthOptions& options)
    : impl_(std::make_unique<Impl>(training_scores_log10,
                                   std::move(component_weights), options)) {}

ModelHealthMonitor::~ModelHealthMonitor() = default;

ModelHealthStatus ModelHealthMonitor::observe(double log10_density, double spe,
                                              std::size_t pattern, bool alarm,
                                              std::uint64_t interval_index,
                                              std::span<const double> raw) {
  if (!enabled()) return ModelHealthStatus::kOk;
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);

  ++im.intervals;
  if (alarm) ++im.alarms;
  im.q05.add(log10_density);
  im.q50.add(log10_density);
  im.q95.add(log10_density);
  im.spe_q50.add(spe);
  im.spe_q95.add(spe);
  im.spe_last = spe;
  const double d = log10_density - im.mean;
  im.mean += d / static_cast<double>(im.intervals);
  im.m2 += d * (log10_density - im.mean);
  // Drift detectors skip per-run warmup intervals (cold-start heat maps are
  // extreme outliers that would poison Page–Hinkley's running mean) and see
  // a winsorized z so one freak interval cannot latch a false DRIFTING.
  if (interval_index >= im.opts.warmup) {
    const double sd = im.train_stddev > 1e-12 ? im.train_stddev : 1e-12;
    const double z = std::clamp((log10_density - im.train_mean) / sd,
                                -im.opts.z_clamp, im.opts.z_clamp);
    im.cusum.add(z);
    im.ph.add(z);
  }
  if (pattern < im.occupancy.size()) {
    ++im.occupancy[pattern];
    im.g_occupancy[pattern]->set(
        static_cast<double>(im.occupancy[pattern]));
  }
  if (im.opts.history > 0) {
    if (im.recent.size() < im.opts.history) {
      im.recent.push_back(log10_density);
    } else {
      im.recent[im.recent_next] = log10_density;
      im.recent_next = (im.recent_next + 1) % im.opts.history;
    }
  }
  // The raw row copy is O(L); a strided copy keeps the amortized hook cost
  // flat while the watch dashboard still sees a fresh row every poll.
  // Stride 0 disables the copy entirely: a fleet of 10k sessions cannot
  // afford an L-sized row buffer each, and nothing polls them individually.
  if (im.opts.row_stride > 0 &&
      (im.last_row.empty() || alarm ||
       interval_index % im.opts.row_stride == 0)) {
    im.last_row.assign(raw.begin(), raw.end());
    im.last_row_interval = interval_index;
  }

  im.wilson = wilson_interval(im.alarms, im.intervals, im.opts.wilson_z);
  im.miscalibrated =
      im.intervals >= im.opts.min_intervals &&
      (im.opts.expected_p < im.wilson.low ||
       im.opts.expected_p > im.wilson.high);
  const bool drifting = im.cusum.fired() || im.ph.fired();
  const ModelHealthStatus next =
      im.miscalibrated ? ModelHealthStatus::kMiscalibrated
      : drifting       ? ModelHealthStatus::kDrifting
                       : ModelHealthStatus::kOk;
  if (next != im.current) {
    if (next == ModelHealthStatus::kDrifting) im.c_drift.add();
    if (next == ModelHealthStatus::kMiscalibrated) im.c_breach.add();
    if (im.opts.max_events > 0) {
      if (im.events.size() >= im.opts.max_events) {
        im.events.erase(im.events.begin());
      }
      im.events.push_back(ModelHealthEvent{interval_index, im.current, next,
                                           im.describe_locked()});
    }
    im.current = next;
  }

  im.g_status.set(static_cast<double>(static_cast<int>(im.current)));
  im.g_alarm_rate.set(static_cast<double>(im.alarms) /
                      static_cast<double>(im.intervals));
  im.g_wilson_low.set(im.wilson.low);
  im.g_wilson_high.set(im.wilson.high);
  im.g_cusum_pos.set(im.cusum.positive_sum());
  im.g_cusum_neg.set(im.cusum.negative_sum());
  im.g_ph.set(im.ph.statistic());
  im.g_q05.set(im.q05.value());
  im.g_q50.set(im.q50.value());
  im.g_q95.set(im.q95.value());
  im.g_spe95.set(im.spe_q95.value());
  return im.current;
}

ModelHealthStatus ModelHealthMonitor::status() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->current;
}

ModelHealthSnapshot ModelHealthMonitor::snapshot() const {
  const Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  ModelHealthSnapshot s;
  s.status = im.current;
  s.intervals = im.intervals;
  s.alarms = im.alarms;
  s.alarm_rate = im.intervals == 0
                     ? 0.0
                     : static_cast<double>(im.alarms) /
                           static_cast<double>(im.intervals);
  s.expected_p = im.opts.expected_p;
  s.wilson = im.wilson;
  s.calibrated = !im.miscalibrated;
  s.cusum_pos = im.cusum.positive_sum();
  s.cusum_neg = im.cusum.negative_sum();
  s.cusum_threshold = im.cusum.threshold();
  s.cusum_fired = im.cusum.fired();
  s.ph_stat = im.ph.statistic();
  s.ph_lambda = im.ph.lambda();
  s.ph_fired = im.ph.fired();
  s.score_mean = im.mean;
  s.score_stddev =
      im.intervals < 2
          ? 0.0
          : std::sqrt(im.m2 / static_cast<double>(im.intervals));
  s.score_q05 = im.q05.value();
  s.score_q50 = im.q50.value();
  s.score_q95 = im.q95.value();
  s.train_mean = im.train_mean;
  s.train_stddev = im.train_stddev;
  s.train_q05 = im.train_q05;
  s.train_q50 = im.train_q50;
  s.train_q95 = im.train_q95;
  s.spe_last = im.spe_last;
  s.spe_q50 = im.spe_q50.value();
  s.spe_q95 = im.spe_q95.value();
  s.component_weights = im.weights;
  s.component_occupancy = im.occupancy;
  s.events = im.events;
  // Recent scores, oldest first (the ring overwrites at recent_next).
  if (im.recent.size() < im.opts.history) {
    s.recent_scores = im.recent;
  } else {
    s.recent_scores.reserve(im.recent.size());
    for (std::size_t i = 0; i < im.recent.size(); ++i) {
      s.recent_scores.push_back(
          im.recent[(im.recent_next + i) % im.recent.size()]);
    }
  }
  s.last_row = im.last_row;
  s.last_row_interval = im.last_row_interval;
  return s;
}

void ModelHealthMonitor::reset() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  im.q05 = P2Quantile(0.05);
  im.q50 = P2Quantile(0.5);
  im.q95 = P2Quantile(0.95);
  im.spe_q50 = P2Quantile(0.5);
  im.spe_q95 = P2Quantile(0.95);
  im.spe_last = 0.0;
  im.intervals = 0;
  im.alarms = 0;
  im.mean = 0.0;
  im.m2 = 0.0;
  im.cusum.reset();
  im.ph.reset();
  std::fill(im.occupancy.begin(), im.occupancy.end(), 0);
  im.recent.clear();
  im.recent_next = 0;
  im.last_row.clear();
  im.last_row_interval = 0;
  im.wilson = WilsonInterval{};
  im.miscalibrated = false;
  im.current = ModelHealthStatus::kOk;
  im.events.clear();
  im.g_status.set(0.0);
}

#endif  // MHM_OBS_DISABLED

}  // namespace mhm::obs
