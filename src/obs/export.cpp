#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mhm::obs {

namespace {

std::string prometheus_name(const std::string& dotted) {
  std::string out = "mhm_";
  for (char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Shortest round-trip double formatting (%.17g trims via stream).
std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// JSON numbers may not be Inf/NaN; quote them.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "\"" + fmt_double(v) + "\"";
  return fmt_double(v);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string prometheus_text(const Registry& registry) {
  std::ostringstream os;
  for (const auto& m : registry.snapshot()) {
    const std::string name = prometheus_name(m.name);
    if (!m.help.empty()) os << "# HELP " << name << " " << m.help << "\n";
    switch (m.type) {
      case MetricSnapshot::Type::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << fmt_double(m.value) << "\n";
        break;
      case MetricSnapshot::Type::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << fmt_double(m.value) << "\n";
        break;
      case MetricSnapshot::Type::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.bucket_counts.size(); ++b) {
          cumulative += m.bucket_counts[b];
          const std::string le = b < m.upper_bounds.size()
                                     ? fmt_double(m.upper_bounds[b])
                                     : "+Inf";
          os << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
        }
        os << name << "_sum " << fmt_double(m.sum) << "\n";
        os << name << "_count " << m.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string metrics_json_lines(const Registry& registry) {
  std::ostringstream os;
  for (const auto& m : registry.snapshot()) {
    os << "{\"name\":\"" << json_escape(m.name) << "\"";
    switch (m.type) {
      case MetricSnapshot::Type::kCounter:
        os << ",\"type\":\"counter\",\"value\":" << json_number(m.value);
        break;
      case MetricSnapshot::Type::kGauge:
        os << ",\"type\":\"gauge\",\"value\":" << json_number(m.value);
        break;
      case MetricSnapshot::Type::kHistogram:
        os << ",\"type\":\"histogram\",\"count\":" << m.count
           << ",\"sum\":" << json_number(m.sum) << ",\"buckets\":[";
        for (std::size_t b = 0; b < m.bucket_counts.size(); ++b) {
          if (b > 0) os << ",";
          os << "{\"le\":"
             << (b < m.upper_bounds.size()
                     ? json_number(m.upper_bounds[b])
                     : std::string("\"+Inf\""))
             << ",\"count\":" << m.bucket_counts[b] << "}";
        }
        os << "]";
        break;
    }
    os << "}\n";
  }
  return os.str();
}

std::string spans_json_lines(const SpanBuffer& buffer) {
  std::ostringstream os;
  for (const auto& s : buffer.snapshot()) {
    os << "{\"id\":" << s.id << ",\"parent\":" << s.parent_id << ",\"name\":\""
       << json_escape(s.name) << "\",\"thread_shard\":" << s.thread_shard
       << ",\"start_ns\":" << s.start_ns
       << ",\"duration_ns\":" << s.duration_ns << "}\n";
  }
  return os.str();
}

std::string decision_json(const DecisionRecord& r) {
  std::ostringstream os;
  os << "{\"interval\":" << r.interval_index << ",\"phase\":" << r.phase
     << ",\"log10_density\":" << json_number(r.log10_density)
     << ",\"threshold\":" << json_number(r.threshold)
     << ",\"alarm\":" << (r.alarm ? "true" : "false")
     << ",\"nearest_pattern\":" << r.nearest_pattern
     << ",\"model_version\":" << r.model_version << ",\"reduced\":[";
  for (std::size_t i = 0; i < r.reduced_coords.size(); ++i) {
    if (i > 0) os << ",";
    os << json_number(r.reduced_coords[i]);
  }
  os << "],\"top_cells\":[";
  for (std::size_t i = 0; i < r.top_cells.size(); ++i) {
    const auto& c = r.top_cells[i];
    if (i > 0) os << ",";
    os << "{\"cell\":" << c.cell << ",\"observed\":" << json_number(c.observed)
       << ",\"expected\":" << json_number(c.expected)
       << ",\"z\":" << json_number(c.z_score) << "}";
  }
  os << "]";
  if (!r.note.empty()) {
    os << ",\"note\":\"" << json_escape(r.note) << "\"";
  }
  os << "}";
  return os.str();
}

std::string journal_json_lines(const DecisionJournal& journal) {
  std::ostringstream os;
  for (const auto& rec : journal.snapshot()) {
    os << decision_json(rec) << "\n";
  }
  return os.str();
}

}  // namespace mhm::obs
