#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"

namespace mhm::obs {

/// Scoped tracing spans.
///
/// `OBS_SPAN("pca.fit")` opens a span for the enclosing scope: on entry it
/// notes the monotonic clock and the innermost open span of the calling
/// thread (the parent); on exit it appends a SpanRecord to the process-wide
/// bounded ring buffer. Span names must be string literals (or otherwise
/// outlive the buffer) — records store the pointer, not a copy, so a closed
/// span costs one mutex'd ring write and zero allocations.
///
/// With observability disabled (MHM_OBS=0 / set_enabled(false)) the scope
/// constructor is a single relaxed load and nothing is recorded.

/// One completed span.
struct SpanRecord {
  std::uint64_t id = 0;         ///< Process-unique, 1-based.
  std::uint64_t parent_id = 0;  ///< 0 = root span of its thread.
  const char* name = "";        ///< Borrowed; literals only.
  std::size_t thread_shard = 0; ///< obs::thread_shard() of the recording thread.
  std::uint64_t start_ns = 0;   ///< Monotonic (steady_clock) nanoseconds.
  std::uint64_t duration_ns = 0;
};

/// Process-wide bounded ring of completed spans; oldest entries are
/// overwritten once `capacity()` is exceeded.
class SpanBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  static SpanBuffer& instance();

  /// Oldest-to-newest copy of the retained records.
  std::vector<SpanRecord> snapshot() const;

  /// Spans recorded since process start (including overwritten ones).
  std::uint64_t total_recorded() const;

  std::size_t capacity() const;
  /// Resize the ring; existing records are dropped (tests).
  void set_capacity(std::size_t capacity);
  void clear();

  /// Internal: append one completed record.
  void record(const SpanRecord& rec);

 private:
  explicit SpanBuffer(std::size_t capacity);

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;        ///< Next write position.
  std::size_t size_ = 0;        ///< Valid records in the ring.
  std::uint64_t total_ = 0;
};

/// RAII scope that records one span into SpanBuffer::instance().
class SpanScope {
 public:
  explicit SpanScope(const char* name);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Id of this span (0 when observability is disabled).
  std::uint64_t id() const { return id_; }

 private:
  const char* name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
  bool pushed_ = false;  ///< Frame pushed onto the sampling-profiler stack.
};

#define MHM_OBS_CONCAT_INNER(a, b) a##b
#define MHM_OBS_CONCAT(a, b) MHM_OBS_CONCAT_INNER(a, b)

/// Open a span for the rest of the enclosing scope.
#define OBS_SPAN(name) \
  ::mhm::obs::SpanScope MHM_OBS_CONCAT(mhm_obs_span_, __LINE__)(name)

}  // namespace mhm::obs
