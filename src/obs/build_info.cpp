#include "obs/build_info.hpp"

#include "obs/prof.hpp"

namespace mhm::obs {
namespace {

/// The runtime-selected SIMD tier of the batch projection kernels. Kept in
/// sync with the dispatch in core/pca.cpp: the tier is a pure function of
/// the target triple and __builtin_cpu_supports, and obs cannot call into
/// core (the dependency points the other way), so the probe is repeated
/// here under the identical preprocessor condition.
const char* probe_simd_tier() {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx512f") != 0) return "avx512";
  if (__builtin_cpu_supports("avx2") != 0) return "avx2";
#endif
  return "generic";
}

BuildInfo make_build_info() {
  BuildInfo info;
#if defined(MHM_BUILD_GIT)
  info.git = MHM_BUILD_GIT;
#else
  info.git = "unknown";
#endif
#if defined(__VERSION__)
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
  info.simd = probe_simd_tier();
#if defined(MHM_OBS_DISABLED)
  info.obs_disabled = true;
#else
  info.obs_disabled = false;
#endif
  return info;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = make_build_info();
  return info;
}

std::string build_info_text(const std::string& prefix) {
  const BuildInfo& info = build_info();
  std::string out;
  out.reserve(256);
  out += prefix + "git " + info.git + "\n";
  out += prefix + "compiler " + info.compiler + "\n";
  out += prefix + "simd " + info.simd + "\n";
  out += prefix + "obs " + (info.obs_disabled ? "disabled" : "enabled") + "\n";
  // Probed lazily, not part of the static BuildInfo: the perf_event probe
  // should run only when someone renders the block, not at first obs use.
  out += prefix + "counters " + prof::counter_source() + "\n";
  return out;
}

std::string build_info_json() {
  const BuildInfo& info = build_info();
  std::string out;
  out.reserve(256);
  out += "{\"git\":";
  append_escaped(out, info.git);
  out += ",\"compiler\":";
  append_escaped(out, info.compiler);
  out += ",\"simd\":";
  append_escaped(out, info.simd);
  out += ",\"obs_disabled\":";
  out += info.obs_disabled ? "true" : "false";
  out += ",\"counters\":";
  append_escaped(out, prof::counter_source());
  out += "}";
  return out;
}

}  // namespace mhm::obs
