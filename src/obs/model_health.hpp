#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace mhm::obs {

/// Online model-health telemetry.
///
/// The detector's θ_p calibration assumes the trained GMM stays
/// representative of normal behaviour; in a long-running deployment the
/// normal MHM distribution drifts and the model goes stale silently. The
/// ModelHealthMonitor rides on AnomalyDetector::analyze and keeps four
/// independent views of the live score stream, all deterministic and
/// seed-free:
///
///  1. streaming P² quantile sketches of the log10 density (and the PCA
///     residual / SPE) compared against the training-time validation scores;
///  2. per-component arg-max responsibility occupancy, so a mixture
///     component going dark or starting to dominate is visible;
///  3. CUSUM and Page–Hinkley change detectors on the standardized score;
///  4. calibration: the empirical alarm rate vs the configured quantile p,
///     with Wilson-interval bounds.
///
/// The verdict is a three-state `model_health.status` gauge —
/// OK / DRIFTING / MISCALIBRATED — exported through the registry, served as
/// JSON by the /model route, embedded in flight-recorder dumps, and rendered
/// live by `mhm_tool watch`. Like the rest of the obs layer the monitor
/// never feeds back into detection, so the determinism guarantees of the
/// pipeline are untouched; under MHM_OBS_DISABLE the monitor compiles down
/// to an empty shell while the pure primitives below stay available.

/// Streaming quantile estimate by the P² algorithm (Jain & Chlamtac,
/// CACM 1985): five markers tracked with parabolic interpolation, O(1)
/// per observation, no stored samples, no randomness. Exact for the first
/// five observations.
class P2Quantile {
 public:
  /// `p` in (0,1): the quantile to track (clamped to [0.001, 0.999]).
  explicit P2Quantile(double p);

  void add(double x);
  /// Current estimate (exact while fewer than five samples; 0 when empty).
  double value() const;
  std::uint64_t count() const { return n_; }
  double probability() const { return p_; }

 private:
  double parabolic(int i, double sign) const;
  double linear(int i, int sign) const;

  double p_;
  std::uint64_t n_ = 0;
  double q_[5] = {0, 0, 0, 0, 0};     ///< Marker heights.
  double pos_[5] = {1, 2, 3, 4, 5};   ///< Actual marker positions.
  double want_[5] = {1, 2, 3, 4, 5};  ///< Desired marker positions.
  double step_[5] = {0, 0, 0, 0, 0};  ///< Desired-position increments.
};

/// Two-sided CUSUM on an already-standardized stream z = (x−μ₀)/σ₀:
/// s⁺ = max(0, s⁺ + z − k), s⁻ = max(0, s⁻ − z − k); fires (and latches)
/// when either sum exceeds h. k and h are in σ units — k is the slack
/// (half the shift deemed worth detecting), h the decision threshold.
class CusumDetector {
 public:
  CusumDetector(double k, double h) : k_(k), h_(h) {}

  /// Feed one standardized observation; returns true when this observation
  /// fires the detector (the `fired` latch then stays set until reset()).
  bool add(double z);

  double positive_sum() const { return s_pos_; }
  double negative_sum() const { return s_neg_; }
  double threshold() const { return h_; }
  bool fired() const { return fired_; }
  void reset();

 private:
  double k_;
  double h_;
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
  bool fired_ = false;
};

/// Two-sided Page–Hinkley test: cumulative deviation from the running mean
/// with slack δ, tracked against its running minimum; fires (and latches)
/// when the excursion exceeds λ. Feed standardized observations so δ and λ
/// are in σ units.
class PageHinkleyDetector {
 public:
  PageHinkleyDetector(double delta, double lambda)
      : delta_(delta), lambda_(lambda) {}

  bool add(double z);

  /// Largest current excursion over both directions.
  double statistic() const;
  double lambda() const { return lambda_; }
  bool fired() const { return fired_; }
  void reset();

 private:
  double delta_;
  double lambda_;
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m_up_ = 0.0;    ///< Cumulative (z − mean − δ): upward shifts.
  double m_dn_ = 0.0;    ///< Cumulative (mean − z − δ): downward shifts.
  double min_up_ = 0.0;
  double min_dn_ = 0.0;
  bool fired_ = false;
};

/// Wilson score interval for a binomial proportion at `z` standard normal
/// quantiles — the calibration check asks whether the configured alarm
/// quantile p is a plausible value for the observed alarm rate.
struct WilsonInterval {
  double low = 0.0;
  double high = 1.0;
};
WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z);

enum class ModelHealthStatus {
  kOk = 0,
  kDrifting = 1,       ///< A drift detector on the score stream has fired.
  kMiscalibrated = 2,  ///< Configured p outside the Wilson alarm-rate bound.
};
const char* to_string(ModelHealthStatus status);

struct ModelHealthOptions {
  double expected_p = 0.01;   ///< Configured alarm quantile (θ_p's p).
  double cusum_k = 0.5;       ///< CUSUM slack, σ units.
  double cusum_h = 10.0;      ///< CUSUM decision threshold, σ units.
  /// Page–Hinkley slack, σ units. On a unit-variance stream the excursion
  /// statistic has an ~exp(−2δλ) stationary tail, so δ·λ must be large:
  /// 0.5 × 20 keeps the false-fire chance near e⁻²⁰ while a sustained 3σ
  /// shift still accumulates ~2.5σ per interval and fires within ten.
  double ph_delta = 0.5;
  double ph_lambda = 20.0;    ///< Page–Hinkley threshold, σ units.
  double wilson_z = 3.0;      ///< Calibration interval width (≈3σ).
  std::uint64_t min_intervals = 64;  ///< Calibration verdicts need this many.
  /// Intervals at the start of each run (interval_index < warmup) excluded
  /// from the drift detectors. Cold-start heat maps score as extreme
  /// outliers; Page–Hinkley's running mean would latch on them even though
  /// steady-state behaviour is healthy. Quantiles, occupancy and
  /// calibration still see every interval.
  std::uint64_t warmup = 10;
  /// Winsorization bound for the standardized score fed to CUSUM /
  /// Page–Hinkley, σ units: one freak interval cannot poison the running
  /// mean, while a sustained shift still accumulates |z| ≤ z_clamp per
  /// interval and fires within a few intervals.
  double z_clamp = 8.0;
  /// Recent-score ring for the watch sparkline (0 keeps no history — the
  /// fleet preset, where 10k sessions cannot each afford a ring).
  std::size_t history = 240;
  /// Copy the raw heat-map row every Nth interval; 0 disables the copy
  /// entirely (no per-session O(L) row buffer — the fleet preset).
  std::size_t row_stride = 8;
  std::size_t max_events = 32;  ///< Status-transition records kept.
  bool attach = true;  ///< MHM_DRIFT_DISABLE=1 leaves detectors bare.

  /// Defaults overridden by the MHM_DRIFT_* environment knobs:
  /// MHM_DRIFT_CUSUM_K, MHM_DRIFT_CUSUM_H, MHM_DRIFT_PH_DELTA,
  /// MHM_DRIFT_PH_LAMBDA, MHM_DRIFT_WILSON_Z, MHM_DRIFT_MIN_INTERVALS,
  /// MHM_DRIFT_WARMUP, MHM_DRIFT_Z_CLAMP, MHM_DRIFT_DISABLE,
  /// MHM_DRIFT_HISTORY, MHM_DRIFT_ROW_STRIDE, MHM_DRIFT_MAX_EVENTS.
  static ModelHealthOptions from_env();
};

/// One status transition, kept in a bounded list and exported via /model.
struct ModelHealthEvent {
  std::uint64_t interval = 0;
  ModelHealthStatus from = ModelHealthStatus::kOk;
  ModelHealthStatus to = ModelHealthStatus::kOk;
  std::string detail;
};

/// Point-in-time copy of the monitor state (everything /model serves).
struct ModelHealthSnapshot {
  ModelHealthStatus status = ModelHealthStatus::kOk;
  std::uint64_t intervals = 0;
  std::uint64_t alarms = 0;
  double alarm_rate = 0.0;
  double expected_p = 0.0;
  WilsonInterval wilson;
  bool calibrated = true;
  double cusum_pos = 0.0;
  double cusum_neg = 0.0;
  double cusum_threshold = 0.0;
  bool cusum_fired = false;
  double ph_stat = 0.0;
  double ph_lambda = 0.0;
  bool ph_fired = false;
  double score_mean = 0.0;
  double score_stddev = 0.0;
  double score_q05 = 0.0;
  double score_q50 = 0.0;
  double score_q95 = 0.0;
  double train_mean = 0.0;
  double train_stddev = 0.0;
  double train_q05 = 0.0;
  double train_q50 = 0.0;
  double train_q95 = 0.0;
  double spe_last = 0.0;
  double spe_q50 = 0.0;
  double spe_q95 = 0.0;
  std::vector<double> component_weights;
  std::vector<std::uint64_t> component_occupancy;
  std::vector<ModelHealthEvent> events;
  std::vector<double> recent_scores;   ///< Oldest first.
  std::vector<double> last_row;        ///< Raw heat-map cells (may be stale).
  std::uint64_t last_row_interval = 0;
};

class ModelHealthMonitor {
 public:
  /// `training_scores_log10` — the validation log10 densities persisted by
  /// model_io (the same vector θ_p is calibrated from); its mean/σ/quantiles
  /// form the reference every live statistic is compared against.
  /// `component_weights` — the mixture weights λ_j, for the occupancy view.
  ModelHealthMonitor(const std::vector<double>& training_scores_log10,
                     std::vector<double> component_weights,
                     const ModelHealthOptions& options);
  ~ModelHealthMonitor();

  ModelHealthMonitor(const ModelHealthMonitor&) = delete;
  ModelHealthMonitor& operator=(const ModelHealthMonitor&) = delete;

  /// Per-interval hook (detector, under obs::enabled()): the score and SPE
  /// are the ones analyze() already computed — the monitor never re-scores.
  /// Returns the status *after* this observation, so callers feeding the
  /// score history and the incident recorder see transitions without a
  /// second lock acquisition. Thread-safe; state is order-dependent under
  /// parallel scoring but, like every obs metric, never feeds back into
  /// detection.
  ModelHealthStatus observe(double log10_density, double spe,
                            std::size_t pattern, bool alarm,
                            std::uint64_t interval_index,
                            std::span<const double> raw);

  ModelHealthStatus status() const;
  ModelHealthSnapshot snapshot() const;

  /// Clear the streaming state (sketches, drift sums, occupancy, events)
  /// while keeping the training baseline — tests and benches replay several
  /// scenarios against one trained detector.
  void reset();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  ///< Null when obs is compiled out.
};

/// JSON object for a snapshot — the /model response body, one line.
std::string model_health_json(const ModelHealthSnapshot& snapshot);

}  // namespace mhm::obs
