#include "obs/server.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/build_info.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/history.hpp"
#include "obs/incident.hpp"
#include "obs/metrics.hpp"
#include "obs/model_health.hpp"
#include "obs/prof.hpp"

#if !defined(MHM_OBS_DISABLED)
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#endif

namespace mhm::obs {

#if defined(MHM_OBS_DISABLED)

// Compiled-out build: the server never binds; callers need no #ifs.
struct MonitorServer::Impl {};
MonitorServer::MonitorServer() = default;
MonitorServer::~MonitorServer() = default;
bool MonitorServer::start(const Options&) { return false; }
void MonitorServer::stop() {}
bool MonitorServer::running() const { return false; }
std::uint16_t MonitorServer::port() const { return 0; }
void MonitorServer::set_journal(std::shared_ptr<const DecisionJournal>) {}
void MonitorServer::set_model_health(
    std::shared_ptr<const ModelHealthMonitor>) {}
void MonitorServer::set_history(std::shared_ptr<const ScoreHistory>) {}
void MonitorServer::set_incidents(std::shared_ptr<const IncidentStore>) {}
void MonitorServer::set_fleet(std::function<std::string()>) {}
void MonitorServer::set_retrain(std::function<std::string()>) {}
MonitorServer& MonitorServer::instance() {
  static MonitorServer* server = new MonitorServer();
  return *server;
}
bool MonitorServer::ensure_env_server(
    std::shared_ptr<const DecisionJournal>,
    std::shared_ptr<const ModelHealthMonitor>) {
  return false;
}

#else

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Registry value by dotted name (0 when absent) — /status reads the few
/// headline series out of one deterministic snapshot.
double value_of(const std::vector<MetricSnapshot>& snap,
                const std::string& name) {
  for (const auto& m : snap) {
    if (m.name == name) return m.value;
  }
  return 0.0;
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void send_response(int fd, int code, const char* status,
                   const char* content_type, const std::string& body) {
  char head[256];
  const int n = std::snprintf(
      head, sizeof head,
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      code, status, content_type, body.size());
  send_all(fd, head, static_cast<std::size_t>(n));
  send_all(fd, body.data(), body.size());
}

/// Value of `key` in a "a=1&b=2" query string. Returns false when absent;
/// an empty value ("tail=") is *present* and comes back as "".
bool query_param(const std::string& query, const char* key,
                 std::string* value) {
  const std::string prefix = std::string(key) + "=";
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    if (query.compare(pos, prefix.size(), prefix) == 0) {
      *value = query.substr(pos + prefix.size(), end - pos - prefix.size());
      return true;
    }
    pos = end + 1;
  }
  return false;
}

/// Strict decimal u64: digits only, no sign, no trailing junk, no overflow.
/// Query robustness contract: anything else is the caller's 400, never a
/// silent clamp.
bool parse_u64_strict(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // Overflow.
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

void send_json_error(int fd, const std::string& detail) {
  send_response(fd, 400, "Bad Request", "application/json",
                "{\"error\":\"" + detail + "\"}\n");
}

/// Parse an optional strict-u64 query parameter. Returns false (after
/// answering 400) on a malformed value; leaves *out untouched when absent.
bool u64_param_or_400(int fd, const std::string& query, const char* key,
                      std::uint64_t* out) {
  std::string raw;
  if (!query_param(query, key, &raw)) return true;
  std::uint64_t v = 0;
  if (!parse_u64_strict(raw, &v)) {
    send_json_error(fd, std::string(key) +
                            " must be a non-negative decimal integer, got "
                            "'" + raw + "'");
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

struct MonitorServer::Impl {
  Options options;
  int listen_fd = -1;
  std::thread thread;
  std::atomic<bool> stop{false};
  std::atomic<bool> running{false};
  std::atomic<std::uint16_t> port{0};
  std::uint64_t start_ns = 0;
  std::mutex journal_mu;
  std::shared_ptr<const DecisionJournal> journal;
  std::shared_ptr<const ModelHealthMonitor> model_health;
  std::shared_ptr<const ScoreHistory> history;
  std::shared_ptr<const IncidentStore> incidents;
  std::function<std::string()> fleet;
  std::function<std::string()> retrain;

  Counter& requests = Registry::instance().counter(
      "obs.server.requests", "HTTP requests handled by the monitor endpoint");

  void serve_loop();
  void handle_connection(int fd);
  void respond(int fd, const std::string& target);
};

void MonitorServer::Impl::serve_loop() {
  while (!stop.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void MonitorServer::Impl::handle_connection(int fd) {
  struct timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() >= options.max_request_bytes) {
      send_response(fd, 431, "Request Header Fields Too Large", "text/plain",
                    "request too large\n");
      return;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return;  // Client went away or stalled past the timeout.
    request.append(buf, static_cast<std::size_t>(n));
  }

  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_response(fd, 400, "Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    send_response(fd, 405, "Method Not Allowed", "text/plain",
                  "only GET is supported\n");
    return;
  }
  requests.add();
  respond(fd, target);
}

void MonitorServer::Impl::respond(int fd, const std::string& target) {
  const std::size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? "" : target.substr(qmark + 1);

  if (path == "/metrics") {
    // Scrape-time push: fold the profiler accumulators into prof.* gauges
    // so zones never touch the registry on the hot path.
    prof::refresh_registry_metrics();
    send_response(fd, 200, "OK", "text/plain; version=0.0.4",
                  prometheus_text());
    return;
  }
  if (path == "/profile") {
    std::string format = "json";
    std::string format_raw;
    if (query_param(query, "format", &format_raw)) {
      if (format_raw != "json" && format_raw != "collapsed") {
        send_json_error(fd, "format must be one of json|collapsed, got '" +
                                format_raw + "'");
        return;
      }
      format = format_raw;
    }
    if (format == "collapsed") {
      send_response(fd, 200, "OK", "text/plain", prof::collapsed_stacks());
      return;
    }
    send_response(fd, 200, "OK", "application/json",
                  prof::profile_json() + "\n");
    return;
  }
  if (path == "/healthz") {
    std::ostringstream os;
    os << "{\"status\":\"ok\",\"uptime_seconds\":"
       << fmt_double(static_cast<double>(steady_ns() - start_ns) * 1e-9)
       << ",\"last_analysis_age_seconds\":"
       << fmt_double(last_analysis_age_seconds()) << "}\n";
    send_response(fd, 200, "OK", "application/json", os.str());
    return;
  }
  if (path == "/status") {
    const auto snap = Registry::instance().snapshot();
    std::size_t journal_size = 0;
    std::uint64_t journal_total = 0;
    {
      std::lock_guard<std::mutex> lk(journal_mu);
      if (journal != nullptr) {
        journal_size = journal->size();
        journal_total = journal->total_appended();
      }
    }
    std::ostringstream os;
    os << "{\"uptime_seconds\":"
       << fmt_double(static_cast<double>(steady_ns() - start_ns) * 1e-9)
       << ",\"last_analysis_age_seconds\":"
       << fmt_double(last_analysis_age_seconds())
       << ",\"intervals_analyzed\":"
       << fmt_double(value_of(snap, "detector.intervals_analyzed"))
       << ",\"alarms\":" << fmt_double(value_of(snap, "detector.alarms"))
       << ",\"scenarios_run\":"
       << fmt_double(value_of(snap, "pipeline.scenarios_run"))
       << ",\"scenarios_completed\":"
       << fmt_double(value_of(snap, "pipeline.scenarios_completed"))
       << ",\"gmm_log_likelihood\":"
       << fmt_double(value_of(snap, "core.gmm.log_likelihood"))
       << ",\"gmm_em_iterations\":"
       << fmt_double(value_of(snap, "core.gmm.em_iterations"))
       << ",\"spans_recorded\":"
       << SpanBuffer::instance().total_recorded()
       << ",\"journal_size\":" << journal_size
       << ",\"journal_total\":" << journal_total << "}\n";
    send_response(fd, 200, "OK", "application/json", os.str());
    return;
  }
  if (path == "/journal") {
    std::shared_ptr<const DecisionJournal> j;
    {
      std::lock_guard<std::mutex> lk(journal_mu);
      j = journal;
    }
    if (j == nullptr) {
      send_response(fd, 404, "Not Found", "text/plain",
                    "no journal attached\n");
      return;
    }
    std::uint64_t tail64 = 100;
    if (!u64_param_or_400(fd, query, "tail", &tail64)) return;
    const std::size_t tail = static_cast<std::size_t>(
        std::min<std::uint64_t>(tail64, SIZE_MAX));
    const auto records = j->snapshot();
    const std::size_t first =
        records.size() > tail ? records.size() - tail : 0;
    std::ostringstream os;
    for (std::size_t i = first; i < records.size(); ++i) {
      os << decision_json(records[i]) << "\n";
    }
    send_response(fd, 200, "OK", "application/x-ndjson", os.str());
    return;
  }
  if (path == "/trace") {
    send_response(fd, 200, "OK", "application/json", chrome_trace_json());
    return;
  }
  if (path == "/model") {
    std::shared_ptr<const ModelHealthMonitor> monitor;
    std::function<std::string()> retrain_provider;
    {
      std::lock_guard<std::mutex> lk(journal_mu);
      monitor = model_health;
      retrain_provider = retrain;
    }
    if (monitor == nullptr) {
      send_response(fd, 404, "Not Found", "text/plain",
                    "no model-health monitor attached\n");
      return;
    }
    std::string body = model_health_json(monitor->snapshot());
    if (retrain_provider) {
      // Merge the retrain object into the health JSON by replacing the
      // closing brace — the body stays one object, existing consumers keep
      // parsing, and new ones find the `retrain` key.
      body.pop_back();
      body += ",\"retrain\":" + retrain_provider() + "}";
    }
    send_response(fd, 200, "OK", "application/json", body + "\n");
    return;
  }
  if (path == "/fleet") {
    std::function<std::string()> provider;
    {
      std::lock_guard<std::mutex> lk(journal_mu);
      provider = fleet;
    }
    if (!provider) {
      send_response(fd, 404, "Not Found", "text/plain",
                    "no fleet attached\n");
      return;
    }
    send_response(fd, 200, "OK", "application/json", provider() + "\n");
    return;
  }
  if (path == "/history") {
    std::shared_ptr<const ScoreHistory> h;
    {
      std::lock_guard<std::mutex> lk(journal_mu);
      h = history;
    }
    if (h == nullptr) {
      send_response(fd, 404, "Not Found", "text/plain",
                    "no score history attached\n");
      return;
    }
    std::string series = "all";
    std::string series_raw;
    if (query_param(query, "series", &series_raw)) {
      if (series_raw != "score" && series_raw != "spe" &&
          series_raw != "alarm" && series_raw != "status" &&
          series_raw != "all") {
        send_json_error(fd, "series must be one of score|spe|alarm|status|"
                            "all, got '" + series_raw + "'");
        return;
      }
      series = series_raw;
    }
    std::uint64_t res = 0;
    if (!u64_param_or_400(fd, query, "res", &res)) return;
    if (res > h->tiers()) {
      send_json_error(fd, "res out of range: history has " +
                              std::to_string(h->tiers()) +
                              " folded tier(s), got " + std::to_string(res));
      return;
    }
    std::uint64_t from = 0;
    if (!u64_param_or_400(fd, query, "from", &from)) return;
    send_response(fd, 200, "OK", "application/json",
                  history_json(*h, series, static_cast<std::size_t>(res),
                               from) +
                      "\n");
    return;
  }
  if (path == "/incidents" || path.rfind("/incidents/", 0) == 0) {
    std::shared_ptr<const IncidentStore> store;
    {
      std::lock_guard<std::mutex> lk(journal_mu);
      store = incidents;
    }
    if (store == nullptr) {
      send_response(fd, 404, "Not Found", "text/plain",
                    "no incident store attached\n");
      return;
    }
    if (path == "/incidents") {
      send_response(fd, 200, "OK", "application/json",
                    store->json_list() + "\n");
      return;
    }
    const std::string id_raw = path.substr(std::strlen("/incidents/"));
    std::uint64_t id = 0;
    if (!parse_u64_strict(id_raw, &id)) {
      send_json_error(fd, "incident id must be a non-negative decimal "
                          "integer, got '" + id_raw + "'");
      return;
    }
    const auto body = store->json_one(id);
    if (!body.has_value()) {
      send_response(fd, 404, "Not Found", "text/plain",
                    "no such incident\n");
      return;
    }
    send_response(fd, 200, "OK", "application/json", *body + "\n");
    return;
  }
  if (path == "/version") {
    send_response(fd, 200, "OK", "application/json",
                  build_info_json() + "\n");
    return;
  }
  if (path == "/flush") {
    const std::string dumped = FlightRecorder::instance().dump("flush");
    if (dumped.empty()) {
      send_response(fd, 503, "Service Unavailable", "text/plain",
                    "flight recorder not armed\n");
      return;
    }
    send_response(fd, 200, "OK", "application/json",
                  "{\"path\":\"" + dumped + "\"}\n");
    return;
  }
  send_response(fd, 404, "Not Found", "text/plain", "not found\n");
}

MonitorServer::MonitorServer() : impl_(std::make_unique<Impl>()) {}

MonitorServer::~MonitorServer() { stop(); }

bool MonitorServer::start(const Options& options) {
  if (!enabled()) return false;  // MHM_OBS=0: never open a socket.
  Impl& impl = *impl_;
  if (impl.running.load(std::memory_order_relaxed)) return false;

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // Loopback only.
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) < 0) {
    ::close(fd);
    return false;
  }

  impl.options = options;
  impl.listen_fd = fd;
  impl.start_ns = steady_ns();
  impl.stop.store(false, std::memory_order_relaxed);
  impl.port.store(ntohs(addr.sin_port), std::memory_order_relaxed);
  impl.thread = std::thread([this] { impl_->serve_loop(); });
  impl.running.store(true, std::memory_order_release);
  return true;
}

void MonitorServer::stop() {
  Impl& impl = *impl_;
  if (!impl.running.load(std::memory_order_relaxed)) return;
  impl.stop.store(true, std::memory_order_relaxed);
  if (impl.thread.joinable()) impl.thread.join();
  ::close(impl.listen_fd);
  impl.listen_fd = -1;
  impl.port.store(0, std::memory_order_relaxed);
  impl.running.store(false, std::memory_order_relaxed);
}

bool MonitorServer::running() const {
  return impl_->running.load(std::memory_order_relaxed);
}

std::uint16_t MonitorServer::port() const {
  return impl_->port.load(std::memory_order_relaxed);
}

void MonitorServer::set_journal(
    std::shared_ptr<const DecisionJournal> journal) {
  std::lock_guard<std::mutex> lk(impl_->journal_mu);
  impl_->journal = std::move(journal);
}

void MonitorServer::set_model_health(
    std::shared_ptr<const ModelHealthMonitor> monitor) {
  std::lock_guard<std::mutex> lk(impl_->journal_mu);
  impl_->model_health = std::move(monitor);
}

void MonitorServer::set_history(
    std::shared_ptr<const ScoreHistory> history) {
  std::lock_guard<std::mutex> lk(impl_->journal_mu);
  impl_->history = std::move(history);
}

void MonitorServer::set_incidents(
    std::shared_ptr<const IncidentStore> incidents) {
  std::lock_guard<std::mutex> lk(impl_->journal_mu);
  impl_->incidents = std::move(incidents);
}

void MonitorServer::set_fleet(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lk(impl_->journal_mu);
  impl_->fleet = std::move(provider);
}

void MonitorServer::set_retrain(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lk(impl_->journal_mu);
  impl_->retrain = std::move(provider);
}

MonitorServer& MonitorServer::instance() {
  static MonitorServer* server =
      new MonitorServer();  // Leaked: outlives static dtors.
  return *server;
}

bool MonitorServer::ensure_env_server(
    std::shared_ptr<const DecisionJournal> journal,
    std::shared_ptr<const ModelHealthMonitor> model_health) {
  MonitorServer& server = instance();
  if (journal != nullptr) server.set_journal(std::move(journal));
  if (model_health != nullptr) {
    server.set_model_health(std::move(model_health));
  }
  if (server.running()) return true;
  const char* env = std::getenv("MHM_OBS_PORT");
  if (env == nullptr || env[0] == '\0') return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  // "0" is a valid request — bind a kernel-assigned ephemeral port (start()
  // reports the actual one), so parallel test runs never collide.
  if (end == nullptr || *end != '\0' || end == env || v > 65535) return false;
  Options options;
  options.port = static_cast<std::uint16_t>(v);
  if (!server.start(options)) return false;
  std::fprintf(stderr, "[mhm] monitoring endpoint on http://127.0.0.1:%u\n",
               static_cast<unsigned>(server.port()));
  return true;
}

#endif  // MHM_OBS_DISABLED

}  // namespace mhm::obs
