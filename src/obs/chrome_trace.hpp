#pragma once

#include <string>

#include "obs/trace.hpp"

namespace mhm::obs {

/// Render the span ring as Chrome `trace_event` JSON — one complete ("X")
/// event per retained span — so a run opens directly in Perfetto or
/// chrome://tracing. Timestamps are microseconds relative to the earliest
/// retained span; the tid is the recording thread's obs shard, and the
/// span/parent ids ride along in `args` so the exact nesting recorded by
/// SpanBuffer survives even when Perfetto re-derives stacks from ts/dur.
/// Layout is documented in docs/FILE_FORMATS.md ("Chrome trace export").
std::string chrome_trace_json(const SpanBuffer& buffer = SpanBuffer::instance());

}  // namespace mhm::obs
