#include "obs/incident.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace mhm::obs {
namespace {

/// printf-append into the preallocated render buffer. The buffer's reserved
/// capacity makes steady-state appends allocation-free; a bundle larger
/// than the reserve degrades to a normal string grow, never to truncation.
void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof buf - 1));
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

Counter& created_counter() {
  return Registry::instance().counter("incident.created",
                                      "incident bundles committed");
}
Counter& suppressed_counter() {
  return Registry::instance().counter(
      "incident.suppressed", "incident triggers dropped by the rate limit");
}
Counter& bytes_counter() {
  return Registry::instance().counter("incident.bytes_written",
                                      "bytes written into .mhmi bundles");
}
Gauge& last_trigger_gauge() {
  return Registry::instance().gauge("incident.last_trigger_interval",
                                    "interval of the newest incident");
}

}  // namespace

IncidentStore::IncidentStore(const Options& options) : options_(options) {
  options_.max_incidents = std::max<std::size_t>(1, options_.max_incidents);
  buffer_.reserve(options_.buffer_bytes);
}

std::string IncidentStore::commit(Incident incident) {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_locked(incident, /*partial=*/false);
}

std::string IncidentStore::debug_commit_partial(Incident incident) {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_locked(incident, /*partial=*/true);
}

std::string IncidentStore::commit_locked(Incident& incident, bool partial) {
  incident.id = next_id_++;
  char name[64];
  std::snprintf(name, sizeof name, "/incident-%06llu.mhmi",
                static_cast<unsigned long long>(incident.id));
  incident.path = options_.dir + name;

  // Prerender the whole bundle, `== end ==` last — the flight recorder's
  // discipline. The on-disk state is then always one of: absent, truncated
  // (missing end marker), or complete.
  buffer_.clear();
  append_fmt(buffer_, "MHMI 1\n");
  append_fmt(buffer_, "id %llu\n",
             static_cast<unsigned long long>(incident.id));
  append_fmt(buffer_, "reason %s\n", incident.reason.c_str());
  append_fmt(buffer_, "detail %s\n",
             incident.detail.empty() ? "-" : incident.detail.c_str());
  append_fmt(buffer_, "trigger_interval %llu\n",
             static_cast<unsigned long long>(incident.trigger_interval));
  append_fmt(buffer_, "model_version %llu\n",
             static_cast<unsigned long long>(incident.model_version));
  append_fmt(buffer_, "threshold %a\n", incident.threshold);
  append_fmt(buffer_, "cells %zu\n", incident.cells);
  append_fmt(buffer_, "pre %zu\n", incident.pre);
  append_fmt(buffer_, "post %zu\n", incident.post);
  append_fmt(buffer_, "entries %zu\n", incident.window.size());
  buffer_ += build_info_text("build.");
  buffer_ += "== verdicts ==\n";
  std::size_t alarms = 0;
  for (const IncidentEntry& e : incident.window) {
    if (e.alarm) ++alarms;
    append_fmt(buffer_, "%llu %a %a %d %zu %llu\n",
               static_cast<unsigned long long>(e.interval), e.score, e.spe,
               e.alarm ? 1 : 0, e.nearest_pattern,
               static_cast<unsigned long long>(e.model_version));
  }
  append_fmt(buffer_, "== cells top=%zu ==\n", incident.top_cells.size());
  for (const IncidentCellDelta& c : incident.top_cells) {
    append_fmt(buffer_, "%zu %a %a %a\n", c.cell, c.observed, c.expected, c.z);
  }
  std::size_t rows = 0;
  for (const IncidentEntry& e : incident.window) {
    if (!e.row.empty()) ++rows;
  }
  append_fmt(buffer_, "== rows n=%zu cells=%zu ==\n", rows, incident.cells);
  for (const IncidentEntry& e : incident.window) {
    if (e.row.empty()) continue;
    append_fmt(buffer_, "%llu", static_cast<unsigned long long>(e.interval));
    for (const double v : e.row) append_fmt(buffer_, " %a", v);
    buffer_ += '\n';
  }
  // Profiler state at commit time: which stage the process was spending its
  // cycles in when the incident fired, from the same accumulators /profile
  // serves. Informational — the parser skips it.
  buffer_ += "== profile ==\n";
  buffer_ += prof::dump_section();
  buffer_ += "== end ==\n";

  const std::size_t write_len = partial ? buffer_.size() / 2 : buffer_.size();
  const int fd = ::open(incident.path.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return "";
  std::size_t off = 0;
  while (off < write_len) {
    const ssize_t n = ::write(fd, buffer_.data() + off, write_len - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);

  IncidentSummary summary;
  summary.id = incident.id;
  summary.reason = incident.reason;
  summary.detail = incident.detail;
  summary.trigger_interval = incident.trigger_interval;
  summary.model_version = incident.model_version;
  summary.entries = incident.window.size();
  summary.alarms = alarms;
  summary.bytes = off;
  summary.path = incident.path;
  summary.verdicts = std::move(incident.window);
  for (IncidentEntry& e : summary.verdicts) {
    e.row.clear();
    e.row.shrink_to_fit();  // Summaries keep verdicts, never rows.
  }
  if (ring_.size() >= options_.max_incidents) {
    ring_.erase(ring_.begin());
  }
  ring_.push_back(std::move(summary));
  ++total_;
  created_counter().add(1);
  bytes_counter().add(off);
  last_trigger_gauge().set(static_cast<double>(incident.trigger_interval));
  return incident.path;
}

void IncidentStore::note_suppressed() { suppressed_counter().add(1); }

std::vector<IncidentSummary> IncidentStore::summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

std::uint64_t IncidentStore::total_committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

namespace {

void append_summary_fields(std::string& out, const IncidentSummary& s) {
  append_fmt(out, "\"id\":%llu,", static_cast<unsigned long long>(s.id));
  out += "\"reason\":";
  append_json_string(out, s.reason);
  out += ",\"detail\":";
  append_json_string(out, s.detail);
  append_fmt(out, ",\"trigger_interval\":%llu,\"model_version\":%llu,"
                  "\"entries\":%zu,\"alarms\":%zu,\"bytes\":%zu,",
             static_cast<unsigned long long>(s.trigger_interval),
             static_cast<unsigned long long>(s.model_version), s.entries,
             s.alarms, s.bytes);
  out += "\"path\":";
  append_json_string(out, s.path);
}

}  // namespace

std::string IncidentStore::json_list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1024);
  append_fmt(out, "{\"total\":%llu,\"incidents\":[",
             static_cast<unsigned long long>(total_));
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (i != 0) out += ',';
    out += '{';
    append_summary_fields(out, ring_[i]);
    out += '}';
  }
  out += "]}";
  return out;
}

std::optional<std::string> IncidentStore::json_one(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const IncidentSummary& s : ring_) {
    if (s.id != id) continue;
    std::string out;
    out.reserve(4096);
    out += '{';
    append_summary_fields(out, s);
    out += ",\"verdicts\":[";
    for (std::size_t i = 0; i < s.verdicts.size(); ++i) {
      const IncidentEntry& e = s.verdicts[i];
      if (i != 0) out += ',';
      append_fmt(out,
                 "{\"interval\":%llu,\"score\":%.9g,\"score_hex\":\"%a\","
                 "\"spe\":%.9g,\"spe_hex\":\"%a\",\"alarm\":%s,"
                 "\"nearest\":%zu,\"model_version\":%llu}",
                 static_cast<unsigned long long>(e.interval), e.score, e.score,
                 e.spe, e.spe, e.alarm ? "true" : "false", e.nearest_pattern,
                 static_cast<unsigned long long>(e.model_version));
    }
    out += "]}";
    return out;
  }
  return std::nullopt;
}

std::string IncidentStore::dump_section() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  append_fmt(out, "committed %llu retained %zu\n",
             static_cast<unsigned long long>(total_), ring_.size());
  for (const IncidentSummary& s : ring_) {
    append_fmt(out,
               "id=%llu reason=%s trigger=%llu model=%llu entries=%zu "
               "alarms=%zu path=%s\n",
               static_cast<unsigned long long>(s.id), s.reason.c_str(),
               static_cast<unsigned long long>(s.trigger_interval),
               static_cast<unsigned long long>(s.model_version), s.entries,
               s.alarms, s.path.c_str());
  }
  return out;
}

IncidentRecorder::IncidentRecorder(const IncidentOptions& options,
                                   std::shared_ptr<IncidentStore> store)
    : options_(options), store_(std::move(store)) {
  options_.pre = std::max<std::size_t>(1, options_.pre);
  options_.burst_window = std::max<std::size_t>(1, options_.burst_window);
  options_.burst_count = std::max<std::size_t>(1, options_.burst_count);
  ring_.resize(options_.pre + 1);
  recent_alarms_.reserve(options_.burst_window);
}

void IncidentRecorder::note(std::uint64_t interval, double score, double spe,
                            bool alarm, std::size_t nearest_pattern,
                            std::uint64_t model_version, double threshold,
                            std::uint8_t status, std::span<const double> raw,
                            std::span<const double> baseline_mean,
                            std::span<const double> baseline_stddev) {
  std::lock_guard<std::mutex> lock(mu_);
  IncidentEntry& slot = ring_[ring_head_];
  slot.interval = interval;
  slot.score = score;
  slot.spe = spe;
  slot.alarm = alarm;
  slot.nearest_pattern = nearest_pattern;
  slot.model_version = model_version;
  if (options_.capture_rows) {
    slot.row.assign(raw.begin(), raw.end());
  } else {
    slot.row.clear();
  }
  ring_head_ = (ring_head_ + 1) % ring_.size();
  ring_size_ = std::min(ring_size_ + 1, ring_.size());

  if (alarm) {
    recent_alarms_.push_back(interval);
  }
  // Prune the burst window (intervals are monotone per stream).
  while (!recent_alarms_.empty() &&
         interval - recent_alarms_.front() >= options_.burst_window) {
    recent_alarms_.erase(recent_alarms_.begin());
  }

  if (pending_) {
    pending_->window.push_back(ring_[(ring_head_ + ring_.size() - 1) %
                                     ring_.size()]);
    if (post_remaining_ > 0) --post_remaining_;
    if (post_remaining_ == 0) {
      if (store_) store_->commit(std::move(*pending_));
      ++committed_;
      pending_.reset();
      recent_alarms_.clear();
    }
  } else {
    const bool gap_ok =
        !has_triggered_ || interval - last_trigger_ >= options_.min_gap;
    const bool burst = recent_alarms_.size() >= options_.burst_count;
    const bool transition = has_prev_status_ && prev_status_ == 0 &&
                            status != 0;
    if (burst || transition) {
      if (gap_ok) {
        char detail[64];
        if (burst) {
          std::snprintf(detail, sizeof detail, "%zu alarms in %zu intervals",
                        recent_alarms_.size(), options_.burst_window);
        } else {
          std::snprintf(detail, sizeof detail, "OK->%s",
                        status == 1 ? "DRIFTING" : "MISCALIBRATED");
        }
        trigger_locked(burst ? "alarm_burst" : "health_transition", detail,
                       interval, threshold, raw, baseline_mean,
                       baseline_stddev);
      } else {
        ++suppressed_;
        if (store_) store_->note_suppressed();
        recent_alarms_.clear();  // One suppression per burst, not per alarm.
      }
    }
  }

  prev_status_ = status;
  has_prev_status_ = true;
}

void IncidentRecorder::trigger_locked(const char* reason, std::string detail,
                                      std::uint64_t interval, double threshold,
                                      std::span<const double> raw,
                                      std::span<const double> baseline_mean,
                                      std::span<const double> baseline_stddev) {
  has_triggered_ = true;
  last_trigger_ = interval;

  Incident inc;
  inc.reason = reason;
  inc.detail = std::move(detail);
  inc.trigger_interval = interval;
  inc.model_version = ring_[(ring_head_ + ring_.size() - 1) % ring_.size()]
                          .model_version;
  inc.threshold = threshold;
  inc.cells = raw.size();
  inc.pre = ring_size_ > 0 ? ring_size_ - 1 : 0;
  inc.post = options_.post;
  inc.window.reserve(ring_size_ + options_.post);
  const std::size_t start =
      (ring_head_ + ring_.size() - ring_size_) % ring_.size();
  for (std::size_t i = 0; i < ring_size_; ++i) {
    inc.window.push_back(ring_[(start + i) % ring_.size()]);
  }

  if (options_.top_cells > 0 && baseline_mean.size() == raw.size() &&
      baseline_stddev.size() == raw.size()) {
    std::vector<std::size_t> order(raw.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const auto z_of = [&](std::size_t i) {
      return (raw[i] - baseline_mean[i]) /
             std::max(baseline_stddev[i], 1.0);
    };
    const std::size_t keep = std::min(options_.top_cells, order.size());
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        const double za = std::abs(z_of(a));
                        const double zb = std::abs(z_of(b));
                        return za != zb ? za > zb : a < b;
                      });
    inc.top_cells.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      const std::size_t cell = order[i];
      inc.top_cells.push_back(IncidentCellDelta{
          cell, raw[cell], baseline_mean[cell], z_of(cell)});
    }
  }

  if (options_.post == 0) {
    if (store_) store_->commit(std::move(inc));
    ++committed_;
    recent_alarms_.clear();
  } else {
    pending_ = std::move(inc);
    post_remaining_ = options_.post;
  }
}

std::uint64_t IncidentRecorder::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

std::uint64_t IncidentRecorder::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

bool IncidentRecorder::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.has_value();
}

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

double parse_hex_double(const std::string& tok) {
  return std::strtod(tok.c_str(), nullptr);
}

}  // namespace

bool parse_incident_file(const std::string& path, IncidentBundle* out,
                         std::string* error) {
  std::ifstream file(path);
  if (!file.good()) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::string line;
  if (!std::getline(file, line) || line != "MHMI 1") {
    if (error) *error = "not an MHMI 1 bundle: " + path;
    return false;
  }
  Incident& inc = out->incident;
  inc = Incident{};
  inc.path = path;
  out->truncated = true;  // Until the end marker shows up.
  out->build_info.clear();

  enum class Section { kHeader, kVerdicts, kCells, kRows, kProfile, kDone };
  Section section = Section::kHeader;
  while (std::getline(file, line)) {
    if (line == "== end ==") {
      out->truncated = false;
      section = Section::kDone;
      break;
    }
    if (starts_with(line, "== verdicts ==")) {
      section = Section::kVerdicts;
      continue;
    }
    if (starts_with(line, "== cells")) {
      section = Section::kCells;
      continue;
    }
    if (starts_with(line, "== rows")) {
      section = Section::kRows;
      continue;
    }
    if (starts_with(line, "== profile ==")) {
      section = Section::kProfile;
      continue;
    }
    std::istringstream ls(line);
    if (section == Section::kHeader) {
      std::string key;
      if (!(ls >> key)) continue;
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      if (key == "id") inc.id = std::strtoull(rest.c_str(), nullptr, 10);
      else if (key == "reason") inc.reason = rest;
      else if (key == "detail") inc.detail = rest == "-" ? "" : rest;
      else if (key == "trigger_interval")
        inc.trigger_interval = std::strtoull(rest.c_str(), nullptr, 10);
      else if (key == "model_version")
        inc.model_version = std::strtoull(rest.c_str(), nullptr, 10);
      else if (key == "threshold") inc.threshold = parse_hex_double(rest);
      else if (key == "cells")
        inc.cells = std::strtoull(rest.c_str(), nullptr, 10);
      else if (key == "pre") inc.pre = std::strtoull(rest.c_str(), nullptr, 10);
      else if (key == "post")
        inc.post = std::strtoull(rest.c_str(), nullptr, 10);
      else if (starts_with(key, "build."))
        out->build_info.push_back(key + " " + rest);
      // "entries" is derivable; unknown keys are skipped for forward compat.
    } else if (section == Section::kVerdicts) {
      IncidentEntry e;
      std::string score_tok, spe_tok;
      int alarm = 0;
      unsigned long long iv = 0, mv = 0;
      if (!(ls >> iv >> score_tok >> spe_tok >> alarm >> e.nearest_pattern >>
            mv)) {
        break;  // Cut mid-line: keep what parsed, stay truncated.
      }
      e.interval = iv;
      e.model_version = mv;
      e.score = parse_hex_double(score_tok);
      e.spe = parse_hex_double(spe_tok);
      e.alarm = alarm != 0;
      inc.window.push_back(std::move(e));
    } else if (section == Section::kCells) {
      IncidentCellDelta c;
      std::string obs_tok, exp_tok, z_tok;
      if (!(ls >> c.cell >> obs_tok >> exp_tok >> z_tok)) break;
      c.observed = parse_hex_double(obs_tok);
      c.expected = parse_hex_double(exp_tok);
      c.z = parse_hex_double(z_tok);
      inc.top_cells.push_back(c);
    } else if (section == Section::kRows) {
      unsigned long long iv = 0;
      if (!(ls >> iv)) break;
      std::vector<double> row;
      row.reserve(inc.cells);
      std::string tok;
      while (ls >> tok) row.push_back(parse_hex_double(tok));
      if (inc.cells != 0 && row.size() != inc.cells) break;  // Cut mid-row.
      for (IncidentEntry& e : inc.window) {
        if (e.interval == iv && e.row.empty()) {
          e.row = std::move(row);
          break;
        }
      }
    }
  }
  return true;
}

}  // namespace mhm::obs
