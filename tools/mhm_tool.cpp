// mhm_tool — command-line front end for the Memory Heat Map pipeline.
//
//   mhm_tool train   --out model.mhm [--runs N] [--seconds S] [--granularity B]
//                    [--components L'] [--gmm J] [--seed X]
//       Profile normal behaviour of the simulated system and save the
//       trained detector (eigenmemory + GMM + thresholds).
//
//   mhm_tool inspect --model model.mhm
//       Print what a trained model contains.
//
//   mhm_tool monitor --model model.mhm [--attack name] [--trigger-ms T]
//                    [--duration-ms D] [--seed X] [--csv out.csv]
//                    [--save-trace trace.mhmt]
//       Run a (possibly attacked) live system against a trained model and
//       report per-interval verdicts. --model also accepts a registry
//       directory (latest version wins); --save-trace records the run's
//       heat maps for later `replay`. Exit code 2 if any anomaly was
//       flagged.
//
//   mhm_tool simulate [--duration-ms D] [--seed X] [--granularity B]
//       Run the simulator alone and print per-interval MHM summaries.
//
//   mhm_tool record  --out trace.mhmt [--runs N] [--seconds S]
//                    [--granularity B] [--seed X]
//       Profile normal behaviour and persist the raw MHM trace, so
//       detectors with different hyper-parameters can be trained later
//       without re-running the system (see `train --trace`).
//
//   mhm_tool train --trace trace.mhmt --out model.mhm [--components L']
//                  [--gmm J]
//       Train from a previously recorded trace instead of a live run.
//       Either train form also accepts --registry DIR (instead of, or in
//       addition to, --out) to store the model in a versioned registry
//       directory under the next free version id.
//
//   mhm_tool replay <trace.mhmt> --model <file-or-registry-dir>
//                   [--version N] [--csv out.csv]
//       Re-score a recorded trace offline through a detection-engine
//       session. --model accepts a single .mhmm file or a registry
//       directory (latest version unless --version picks one). The CSV
//       columns match `monitor --csv`, so a live run saved with
//       --save-trace replays to byte-identical verdicts.
//
//   mhm_tool ingest --in addresses.txt --out trace.mhmt [--base A]
//                   [--size S] [--granularity B] [--interval-ms I]
//       Convert an external text address trace (gem5/valgrind-style:
//       "time_ns address [size [sweeps]]" per line) into a heat-map trace
//       by running it through the Memometer model, ready for
//       `train --trace`.
//
//   mhm_tool metrics [--seconds S] [--seed X] [--granularity B]
//                    [--format prom|json] [--out file] [--spans file]
//       Run the simulator briefly and export the process metrics registry
//       (Prometheus text by default, JSON-lines with --format json);
//       --spans additionally dumps the tracing-span ring as JSON-lines.
//
//   mhm_tool journal [--attack name] [--trigger-ms T] [--duration-ms D]
//                    [--seed X] [--format text|jsonl] [--out file]
//       Train a fast-scale detector in-process, run an attack scenario,
//       and explain every alarm from the decision journal: interval,
//       density vs. threshold, and the cells that deviated most from the
//       training baseline.
//
//   mhm_tool retrain --trace trace.mhmt --registry <dir> [--window N]
//                    [--min-window N] [--components K] [--gmm J]
//                    [--restarts R]
//       Manual continuous-training trigger: load the latest registry
//       version, replay the trace through an engine session (clean
//       intervals land in the retrain window), run one train → validate →
//       publish attempt with the fast top-k PCA path, and register the
//       candidate as the next version. Prints the validation report
//       (holdout alarm rate vs. Wilson bounds, median shift); exit 1 when
//       a gate rejects the candidate.
//
//   mhm_tool serve   [--port P] [--scenarios N] [--attack name]
//                    [--trigger-ms T] [--duration-ms D] [--seed X]
//                    [--flight-dir DIR] [--linger-ms L] [--registry DIR]
//                    [--incident-gap N] [--auto-retrain 0|1]
//                    [--retrain-window N] [--retrain-sustain N]
//                    [--retrain-cooldown N] [--retrain-min-window N]
//                    [--mode-change-after S]
//       Train a fast-scale detector, arm the flight recorder and the
//       incident store (bundles land in --flight-dir), start the HTTP
//       monitoring endpoint on 127.0.0.1:P (0 = ephemeral, printed at
//       startup) and replay N attack scenarios against it so /metrics,
//       /status, /journal, /trace, /history and /incidents serve live
//       data. --registry saves the trained model there first and stamps
//       its version on every verdict and bundle (the handle `incidents
//       replay` needs); --incident-gap shrinks the per-stream rate limit;
//       --linger-ms keeps the endpoint up after the replays.
//       --auto-retrain 1 scores through an engine session with a
//       drift-triggered retrain → validate → hot-swap loop (state under
//       /model's "retrain" key; publishes annotate the journal and leave
//       a retrain_publish incident marker). --mode-change-after S makes
//       every replay from index S on run with a persistent new background
//       activity source — the environment drift the loop absorbs.
//
//   mhm_tool incidents list --dir <dir>
//   mhm_tool incidents show --in <file.mhmi>
//   mhm_tool incidents replay --in <file.mhmi> --registry <dir>
//       Black-box forensics on committed `.mhmi` bundles: scan a
//       directory, pretty-print one bundle (exit 1 if truncated), or
//       re-score the captured pre/post window through the bundled model
//       version from the registry and assert the verdicts reproduce
//       bit-identically (hexfloat compare; exit 0 only on a perfect
//       match).
//
//   mhm_tool fleet   [--spec fleet.ini] [--devices N] [--shards S]
//                    [--intervals I] [--seed X] [--top-k K] [--attack name]
//                    [--trigger R] [--port P] [--watch 0|1] [--linger-ms L]
//                    [--flight-dir DIR]
//       Train a fast-scale detector, fan a fleet spec out into N simulated
//       device streams (per-device archetype, seed and phase), score them
//       through the sharded engine, and serve the aggregated rollup +
//       top-K anomaly ranking at GET /fleet (plus fleet_* metrics). With
//       no --spec a default steady/bursty/attacked mix is used; --watch
//       renders a live terminal dashboard; --linger-ms keeps the endpoint
//       up after the run for external scrapers.
//
//   mhm_tool watch   --port P [--interval-ms I] [--iterations N] [--clear 0|1]
//       Live model-health dashboard: poll GET /model on a serving process
//       (see `serve`) and render status, score sparkline vs. training
//       quantiles, drift statistics, component occupancy bars, and the
//       latest heat-map row. --iterations 0 (default) polls until killed.
//
//   mhm_tool prof    --port P [--top N] [--format table|json|collapsed]
//       Continuous-profiler view of a serving process: fetch GET /profile
//       and render the per-stage wall/IPC/cache-miss attribution table
//       sorted by wall time (--top N keeps the N hottest stages);
//       --format json prints the raw document, --format collapsed prints
//       flamegraph.pl / speedscope collapsed stacks.
//
//   mhm_tool dump    --in file.mhmdump
//       Pretty-print a flight-recorder dump: why and when it was written,
//       headline metrics, journal alarms, and the captured heatmap row.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attacks/attacks.hpp"
#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "core/model_io.hpp"
#include "core/snapshot.hpp"
#include "core/trace_io.hpp"
#include "dashboard.hpp"
#include "engine/engine.hpp"
#include "engine/retrain.hpp"
#include "engine/source.hpp"
#include "fleet/runner.hpp"
#include "hw/address_trace.hpp"
#include "hw/memometer.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/incident.hpp"
#include "obs/model_health.hpp"
#include "obs/prof.hpp"
#include "obs/server.hpp"
#include "pipeline/experiment.hpp"

namespace {

using namespace mhm;
using namespace mhm::tool;  // Shared dashboard helpers (tools/dashboard.hpp).

/// Tiny flag parser: --key value pairs after the subcommand.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw ConfigError(std::string("expected --flag, got ") + argv[i]);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      throw ConfigError("flags must come in --key value pairs");
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  std::optional<std::string> get_optional(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  bool require(const std::string& key, std::string* out) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return false;
    *out = it->second;
    return true;
  }

 private:
  std::map<std::string, std::string> values_;
};

sim::SystemConfig config_from(const Args& args) {
  sim::SystemConfig cfg =
      sim::SystemConfig::paper_default(args.get_u64("seed", 1));
  cfg.monitor.granularity = args.get_u64("granularity", 2048);
  cfg.monitor.validate();
  return cfg;
}

/// Persist a freshly trained model to --out and/or --registry.
void save_trained(const Args& args, const DetectorModel& model) {
  if (const auto out_path = args.get_optional("out")) {
    save_model_file(model, *out_path);
    std::printf("model written to %s\n", out_path->c_str());
  }
  if (const auto registry_dir = args.get_optional("registry")) {
    ModelRegistry registry(*registry_dir);
    const std::uint64_t version = registry.save(model);
    std::printf("model registered as version %llu in %s\n",
                static_cast<unsigned long long>(version),
                registry.directory().c_str());
  }
}

int cmd_train(const Args& args) {
  if (!args.get_optional("out") && !args.get_optional("registry")) {
    std::fprintf(stderr,
                 "train: --out <file> or --registry <dir> is required\n");
    return 1;
  }
  AnomalyDetector::Options opts;
  opts.pca.components = args.get_u64("components", 9);
  opts.gmm.components = args.get_u64("gmm", 5);
  opts.gmm.restarts = args.get_u64("restarts", 10);

  if (const auto trace_path = args.get_optional("trace")) {
    // Offline training from a recorded trace: first 80 % of the maps train
    // the model, the rest calibrate the thresholds.
    const RecordedTrace trace = load_trace_file(*trace_path);
    if (trace.maps.size() < 20) {
      std::fprintf(stderr, "train: trace too small (%zu maps)\n",
                   trace.maps.size());
      return 1;
    }
    const auto split = trace.maps.begin() +
                       static_cast<std::ptrdiff_t>(trace.maps.size() * 4 / 5);
    const HeatMapTrace training(trace.maps.begin(), split);
    const HeatMapTrace validation(split, trace.maps.end());
    const AnomalyDetector detector =
        AnomalyDetector::train(training, validation, opts);
    std::printf("trained offline on %zu + %zu MHMs from %s; "
                "variance explained %.4f%%\n",
                training.size(), validation.size(), trace_path->c_str(),
                100.0 * detector.eigenmemory().variance_explained());
    save_trained(args, DetectorModel::from_detector(detector));
    return 0;
  }

  sim::SystemConfig cfg = config_from(args);
  pipeline::ProfilingPlan plan;
  plan.runs = args.get_u64("runs", 10);
  plan.run_duration = args.get_u64("seconds", 3) * kSecond;

  std::printf("profiling %zu runs x %.1f s at granularity %llu (L = %zu)...\n",
              plan.runs,
              static_cast<double>(plan.run_duration) / kSecond,
              static_cast<unsigned long long>(cfg.monitor.granularity),
              cfg.monitor.cell_count());
  pipeline::TrainedPipeline pipe = pipeline::train_pipeline(cfg, plan, opts);

  std::printf("trained on %zu MHMs; variance explained %.4f%%; "
              "theta_0.5 = %.2f, theta_1 = %.2f\n",
              pipe.training.size(),
              100.0 * pipe.det().eigenmemory().variance_explained(),
              pipe.theta_05.log10_value, pipe.theta_1.log10_value);
  save_trained(args, DetectorModel::from_detector(pipe.det()));
  return 0;
}

int cmd_record(const Args& args) {
  std::string out_path;
  if (!args.require("out", &out_path)) {
    std::fprintf(stderr, "record: --out <file> is required\n");
    return 1;
  }
  sim::SystemConfig cfg = config_from(args);
  pipeline::ProfilingPlan plan;
  plan.runs = args.get_u64("runs", 10);
  plan.run_duration = args.get_u64("seconds", 3) * kSecond;
  plan.seed_base = args.get_u64("seed", 1) + 99;

  RecordedTrace trace;
  trace.config = cfg.monitor;
  trace.maps = pipeline::collect_normal_trace(cfg, plan);
  save_trace_file(trace, out_path);
  std::printf("recorded %zu MHMs (%zu cells each) to %s\n",
              trace.maps.size(), trace.config.cell_count(), out_path.c_str());
  return 0;
}

int cmd_ingest(const Args& args) {
  std::string in_path;
  std::string out_path;
  if (!args.require("in", &in_path) || !args.require("out", &out_path)) {
    std::fprintf(stderr, "ingest: --in <trace.txt> and --out <trace.mhmt> "
                         "are required\n");
    return 1;
  }
  MhmConfig monitor;
  monitor.base = args.get_u64("base", 0xC0008000);
  monitor.size = args.get_u64("size", 3'013'284);
  monitor.granularity = args.get_u64("granularity", 2048);
  monitor.interval = args.get_u64("interval-ms", 10) * kMillisecond;
  monitor.validate();

  RecordedTrace trace;
  trace.config = monitor;
  hw::MemoryBus bus;
  hw::Memometer meter(monitor, 0,
                      [&](const HeatMap& m) { trace.maps.push_back(m); });
  bus.attach(&meter);
  const auto stats = hw::replay_address_trace_file(in_path, bus);
  meter.finish(stats.last_time, /*deliver_partial=*/false);

  save_trace_file(trace, out_path);
  std::printf("ingested %llu access lines (%llu fetches, %.1f ms of trace); "
              "%llu in-region, %llu filtered\n",
              static_cast<unsigned long long>(stats.lines_parsed),
              static_cast<unsigned long long>(stats.accesses),
              static_cast<double>(stats.last_time - stats.first_time) /
                  kMillisecond,
              static_cast<unsigned long long>(meter.accesses_counted()),
              static_cast<unsigned long long>(meter.accesses_filtered_out()));
  std::printf("%zu complete heat maps (%zu cells) -> %s\n", trace.maps.size(),
              monitor.cell_count(), out_path.c_str());
  return 0;
}

int cmd_inspect(const Args& args) {
  std::string model_path;
  if (!args.require("model", &model_path)) {
    std::fprintf(stderr, "inspect: --model <file> is required\n");
    return 1;
  }
  const DetectorModel model = load_model_file(model_path);
  std::printf("model: %s\n", model_path.c_str());
  std::printf("  eigenmemory: %zu components over %zu cells, "
              "variance explained %.4f%%\n",
              model.eigenmemory.components(), model.eigenmemory.input_dim(),
              100.0 * model.eigenmemory.variance_explained());
  std::printf("  GMM: %zu components over %zu dims (%zu parameters)\n",
              model.gmm.component_count(), model.gmm.dimension(),
              model.gmm.parameter_count());
  for (std::size_t j = 0; j < model.gmm.component_count(); ++j) {
    std::printf("    pattern %zu: weight %.3f\n", j,
                model.gmm.components()[j].weight);
  }
  const ThresholdCalibrator cal(model.validation_scores);
  std::printf("  thresholds: theta_0.5 = %.2f, theta_1 = %.2f "
              "(from %zu validation scores); primary p = %.3f\n",
              cal.theta_05().log10_value, cal.theta_1().log10_value,
              model.validation_scores.size(), model.primary_p);
  return 0;
}

int cmd_monitor(const Args& args) {
  std::string model_path;
  if (!args.require("model", &model_path)) {
    std::fprintf(stderr, "monitor: --model <file> is required\n");
    return 1;
  }
  const DetectorModel model = std::filesystem::is_directory(model_path)
                                  ? ModelRegistry(model_path).load_latest()
                                  : load_model_file(model_path);
  const AnomalyDetector detector = model.to_detector();

  sim::SystemConfig cfg = config_from(args);
  if (cfg.monitor.cell_count() != detector.eigenmemory().input_dim()) {
    std::fprintf(stderr,
                 "monitor: model expects %zu cells but the configured system "
                 "produces %zu — match --granularity to the training run\n",
                 detector.eigenmemory().input_dim(), cfg.monitor.cell_count());
    return 1;
  }

  const SimTime duration = args.get_u64("duration-ms", 4000) * kMillisecond;
  const SimTime trigger = args.get_u64("trigger-ms", 2000) * kMillisecond;
  std::unique_ptr<attacks::AttackScenario> attack;
  if (const auto name = args.get_optional("attack")) {
    attack = attacks::make_scenario(*name);
  }

  pipeline::ScenarioRun run = pipeline::run_scenario(
      cfg, attack.get(), trigger, duration, &detector,
      args.get_u64("seed", 42));

  LinePlotOptions plot;
  plot.title = attack ? "log10 Pr(M) — attack '" + run.scenario + "' at the bar"
                      : "log10 Pr(M) — normal run";
  plot.hlines = {detector.primary_threshold().log10_value};
  if (attack) plot.vlines = {static_cast<double>(run.trigger_interval)};
  std::fputs(render_line_plot(run.log10_densities(), plot).c_str(), stdout);

  std::size_t alarms = 0;
  for (const auto& v : run.verdicts) alarms += v.anomalous;
  std::printf("%zu intervals analyzed, %zu flagged anomalous "
              "(threshold theta at p = %.3f)\n",
              run.verdicts.size(), alarms, detector.primary_threshold().p);
  if (attack) {
    const auto latency =
        run.detection_latency(detector.primary_threshold().log10_value);
    std::printf("attack '%s' at interval %llu: %s\n", run.scenario.c_str(),
                static_cast<unsigned long long>(run.trigger_interval),
                latency ? ("detected +" + std::to_string(*latency) +
                           " intervals")
                              .c_str()
                        : "NOT detected");
  }

  if (const auto csv_path = args.get_optional("csv")) {
    CsvWriter csv(*csv_path);
    csv.header({"interval", "log10_density", "anomalous"});
    for (std::size_t i = 0; i < run.verdicts.size(); ++i) {
      csv.row()
          .col(run.verdicts[i].interval_index)
          .col(run.verdicts[i].log10_density)
          .col(static_cast<int>(run.verdicts[i].anomalous));
    }
    std::printf("wrote %s\n", csv_path->c_str());
  }
  if (const auto trace_path = args.get_optional("save-trace")) {
    RecordedTrace trace;
    trace.config = cfg.monitor;
    trace.maps = run.maps;
    save_trace_file(trace, *trace_path);
    std::printf("trace written to %s\n", trace_path->c_str());
  }
  return alarms > 0 ? 2 : 0;
}

int cmd_replay(const std::string& trace_path, const Args& args) {
  std::string model_path;
  if (!args.require("model", &model_path)) {
    std::fprintf(stderr,
                 "replay: --model <file-or-registry-dir> is required\n");
    return 1;
  }
  std::shared_ptr<const ModelSnapshot> snapshot;
  if (std::filesystem::is_directory(model_path)) {
    const ModelRegistry registry(model_path);
    const std::uint64_t version = args.get_u64("version", 0);
    snapshot = version != 0 ? registry.load_snapshot(version)
                            : registry.load_latest_snapshot();
  } else {
    snapshot = load_model_file(model_path).to_snapshot();
  }

  engine::TraceReplaySource source =
      engine::TraceReplaySource::from_file(trace_path);
  if (!source.maps().empty() &&
      source.maps().front().cell_count() != snapshot->pca.input_dim()) {
    std::fprintf(stderr,
                 "replay: model expects %zu cells but the trace has %zu — "
                 "it was recorded at a different granularity\n",
                 snapshot->pca.input_dim(),
                 source.maps().front().cell_count());
    return 1;
  }

  const engine::DetectionEngine engine(snapshot);
  engine::Session session = engine.new_session();
  const std::vector<Verdict> verdicts = session.run(source);
  std::size_t alarms = 0;
  for (const auto& v : verdicts) alarms += v.anomalous;
  std::printf("replayed %zu intervals from %s against model version %llu: "
              "%zu flagged anomalous (threshold theta at p = %.3f)\n",
              verdicts.size(), trace_path.c_str(),
              static_cast<unsigned long long>(snapshot->version), alarms,
              snapshot->primary.p);

  if (const auto csv_path = args.get_optional("csv")) {
    CsvWriter csv(*csv_path);
    csv.header({"interval", "log10_density", "anomalous"});
    for (const auto& v : verdicts) {
      csv.row()
          .col(v.interval_index)
          .col(v.log10_density)
          .col(static_cast<int>(v.anomalous));
    }
    std::printf("wrote %s\n", csv_path->c_str());
  }
  return 0;
}

/// Manual retrain from a recorded trace: load the latest registry model,
/// replay the trace through an engine session whose clean-interval window
/// collects every vouched-for row, run one train → validate → publish
/// attempt, and register the candidate as the next version. Exit 0 on
/// publish, 1 on rejection (the report says which gate fired).
int cmd_retrain(const Args& args) {
  std::string trace_path;
  std::string registry_dir;
  if (!args.require("trace", &trace_path) ||
      !args.require("registry", &registry_dir)) {
    std::fprintf(stderr,
                 "retrain: --trace <trace.mhmt> and --registry <dir> are "
                 "required\n");
    return 1;
  }
  auto registry = std::make_shared<ModelRegistry>(registry_dir);
  const std::shared_ptr<const ModelSnapshot> snapshot =
      registry->load_latest_snapshot();

  engine::TraceReplaySource source =
      engine::TraceReplaySource::from_file(trace_path);
  if (source.maps().empty()) {
    std::fprintf(stderr, "retrain: %s holds no heat maps\n",
                 trace_path.c_str());
    return 1;
  }
  if (source.maps().front().cell_count() != snapshot->pca.input_dim()) {
    std::fprintf(stderr,
                 "retrain: model expects %zu cells but the trace has %zu — "
                 "it was recorded at a different granularity\n",
                 snapshot->pca.input_dim(),
                 source.maps().front().cell_count());
    return 1;
  }

  engine::DetectionEngine engine(snapshot);
  engine::SessionOptions so;
  so.clean_window_capacity =
      args.get_u64("window", source.maps().size());
  engine::Session session = engine.new_session(so);
  const std::vector<Verdict> verdicts = session.run(source);
  std::size_t alarms = 0;
  for (const auto& v : verdicts) alarms += v.anomalous;
  const auto window = session.clean_window();
  std::printf("replayed %zu intervals against model version %llu: %zu "
              "alarms; clean window holds %zu rows\n",
              verdicts.size(),
              static_cast<unsigned long long>(snapshot->version), alarms,
              window->size());

  engine::RetrainManager::Options ro;
  ro.background = false;
  ro.min_window = args.get_u64("min-window", 96);
  ro.components = args.get_u64("components", 0);
  ro.gmm_components = args.get_u64("gmm", 0);
  ro.gmm_restarts = args.get_u64("restarts", 4);
  engine::RetrainManager manager(engine, window, registry, ro);
  const engine::RetrainReport report =
      manager.retrain_now(verdicts.back().interval_index);

  std::printf("candidate: %zu train / %zu calibrate / %zu holdout rows\n",
              report.train_rows, report.calibration_rows,
              report.holdout_rows);
  std::printf("validation: holdout alarm rate %.4f (expected p %.4f, "
              "Wilson [%.4f, %.4f]), median shift %.3f log10\n",
              report.holdout_alarm_rate, report.expected_p,
              report.wilson_low, report.wilson_high, report.quantile_shift);
  if (!report.accepted) {
    std::printf("retrain rejected: %s (%.2f s)\n", report.reason.c_str(),
                report.train_seconds);
    return 1;
  }
  std::printf("retrain published as version %llu in %s (%.2f s)\n",
              static_cast<unsigned long long>(report.version),
              registry->directory().c_str(), report.train_seconds);
  return 0;
}

int cmd_simulate(const Args& args) {
  sim::SystemConfig cfg = config_from(args);
  sim::System system(cfg);
  system.run_for(args.get_u64("duration-ms", 500) * kMillisecond);
  for (const auto& map : system.trace()) {
    std::printf("%s\n", summarize(map).c_str());
  }
  const auto& stats = system.scheduler().stats();
  std::printf("jobs: %llu released / %llu completed, %llu deadline misses, "
              "%llu context switches, CPU %.1f%% busy\n",
              static_cast<unsigned long long>(stats.jobs_released),
              static_cast<unsigned long long>(stats.jobs_completed),
              static_cast<unsigned long long>(stats.deadline_misses),
              static_cast<unsigned long long>(stats.context_switches),
              100.0 * stats.cpu_utilization());
  std::printf("%-12s %10s %10s %14s %14s\n", "task", "period", "jobs",
              "mean response", "worst response");
  for (const auto& t : system.scheduler().tasks()) {
    std::printf("%-12s %7.0f ms %10llu %11.2f ms %11.2f ms\n",
                t.spec.name.c_str(),
                static_cast<double>(t.spec.period) / kMillisecond,
                static_cast<unsigned long long>(t.jobs_completed),
                static_cast<double>(t.mean_response()) / kMillisecond,
                static_cast<double>(t.worst_response) / kMillisecond);
  }
  return 0;
}

/// Write `text` to `--out` when given, stdout otherwise.
int emit_text(const Args& args, const std::string& text) {
  if (const auto out = args.get_optional("out")) {
    std::ofstream file(*out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", out->c_str());
      return 1;
    }
    file << text;
    std::printf("wrote %s\n", out->c_str());
    return 0;
  }
  std::fputs(text.c_str(), stdout);
  return 0;
}

int cmd_metrics(const Args& args) {
  // Exercise the full stack briefly so the registry has live values — the
  // same counters accumulate inside every other subcommand; this one exists
  // to demonstrate and export them.
  sim::SystemConfig cfg = config_from(args);
  sim::System system(cfg);
  system.run_for(args.get_u64("seconds", 2) * kSecond);

  const std::string format = args.get("format", "prom");
  std::string text;
  if (format == "prom") {
    text = obs::prometheus_text();
  } else if (format == "json") {
    text = obs::metrics_json_lines();
  } else {
    std::fprintf(stderr, "metrics: unknown --format '%s' (prom|json)\n",
                 format.c_str());
    return 1;
  }
  const int rc = emit_text(args, text);
  if (rc != 0) return rc;

  if (const auto spans_path = args.get_optional("spans")) {
    std::ofstream file(*spans_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   spans_path->c_str());
      return 1;
    }
    file << obs::spans_json_lines();
    std::printf("wrote %s\n", spans_path->c_str());
  }
  return 0;
}

int cmd_journal(const Args& args) {
  if (!obs::enabled()) {
    std::fprintf(stderr,
                 "journal: observability is disabled (MHM_OBS=0); nothing "
                 "would be recorded\n");
    return 1;
  }
  // Train at fast test scale in-process: assemble()d models carry no per-cell
  // training baseline, so an in-process training run is what makes the
  // journal's alarm explanations possible.
  const sim::SystemConfig cfg = pipeline::fast_test_config(1);
  std::printf("training fast-scale detector (L = %zu cells)...\n",
              cfg.monitor.cell_count());
  pipeline::TrainedPipeline pipe = pipeline::train_pipeline(
      cfg, pipeline::fast_test_plan(), pipeline::fast_test_detector_options());
  const Threshold theta = pipe.det().primary_threshold();

  const std::string attack_name = args.get("attack", "shellcode");
  const SimTime duration = args.get_u64("duration-ms", 4000) * kMillisecond;
  const SimTime trigger = args.get_u64("trigger-ms", 2000) * kMillisecond;
  std::unique_ptr<attacks::AttackScenario> attack;
  if (attack_name != "normal") attack = attacks::make_scenario(attack_name);

  pipeline::ScenarioRun run =
      pipeline::run_scenario(cfg, attack.get(), trigger, duration,
                             &pipe.det(), args.get_u64("seed", 42));

  const obs::DecisionJournal& journal = pipe.det().journal();
  if (args.get("format", "text") == "jsonl") {
    return emit_text(args, obs::journal_json_lines(journal));
  }

  const auto alarms = journal.alarms();
  std::printf("scenario '%s': trigger at interval %llu, %zu intervals "
              "analyzed, %zu alarms (theta = %.2f at p = %.3f)\n",
              run.scenario.c_str(),
              static_cast<unsigned long long>(run.trigger_interval),
              run.verdicts.size(), alarms.size(), theta.log10_value, theta.p);
  for (const auto& rec : alarms) {
    std::printf("alarm at interval %llu (phase %llu): log10 Pr = %.2f < "
                "%.2f, nearest pattern %zu\n",
                static_cast<unsigned long long>(rec.interval_index),
                static_cast<unsigned long long>(rec.phase),
                rec.log10_density, rec.threshold, rec.nearest_pattern);
    for (const auto& cell : rec.top_cells) {
      std::printf("    cell %4zu: observed %12.0f, expected %12.1f, "
                  "z %+8.1f\n",
                  cell.cell, cell.observed, cell.expected, cell.z_score);
    }
  }
  if (const auto out = args.get_optional("out")) {
    std::ofstream file(*out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", out->c_str());
      return 1;
    }
    file << obs::journal_json_lines(journal);
    std::printf("wrote %s\n", out->c_str());
  }
  return 0;
}

int cmd_serve(const Args& args) {
  if (!obs::enabled()) {
    std::fprintf(stderr,
                 "serve: observability is disabled (MHM_OBS=0 or compiled "
                 "out); nothing to serve\n");
    return 1;
  }
  const sim::SystemConfig cfg = pipeline::fast_test_config(1);
  std::printf("training fast-scale detector (L = %zu cells)...\n",
              cfg.monitor.cell_count());
  std::fflush(stdout);
  pipeline::TrainedPipeline pipe = pipeline::train_pipeline(
      cfg, pipeline::fast_test_plan(), pipeline::fast_test_detector_options());

  // --registry DIR versions the freshly trained model and re-hangs the same
  // observation stack on a snapshot carrying that version stamp — every
  // verdict (and incident bundle) then names a registry version that
  // `incidents replay` can reload for bit-identical re-scoring.
  std::optional<AnomalyDetector> versioned;
  AnomalyDetector* det = pipe.detector.get();
  std::shared_ptr<ModelRegistry> registry;
  if (const auto registry_dir = args.get_optional("registry")) {
    registry = std::make_shared<ModelRegistry>(*registry_dir);
    const std::uint64_t version =
        registry->save(DetectorModel::from_detector(pipe.det()));
    const std::shared_ptr<const ModelSnapshot> base = pipe.det().snapshot();
    versioned.emplace(AnomalyDetector::from_snapshot(
        ModelSnapshot::assemble(base->pca, base->gmm, base->calibrator,
                                base->primary.p, base->baseline, version)));
    det = &*versioned;
    std::printf("model registered as version %llu in %s\n",
                static_cast<unsigned long long>(version),
                registry->directory().c_str());
    std::fflush(stdout);
  }

  // --auto-retrain 1 runs the replays through an engine session with a
  // clean-interval reservoir and a background RetrainManager: sustained
  // drift trains a candidate on the window, validates it, registers it
  // (when --registry is set) and hot-swaps it into the live session. The
  // plain path keeps scoring through the detector façade.
  const bool auto_retrain = args.get_u64("auto-retrain", 0) != 0;
  std::optional<engine::DetectionEngine> engine;
  std::optional<engine::Session> session;
  if (auto_retrain) {
    engine.emplace(det->snapshot());
    engine::SessionOptions so;
    so.clean_window_capacity = args.get_u64("retrain-window", 512);
    session.emplace(engine->new_session(so));
  }

  const auto live_journal =
      session ? session->journal_ptr() : det->journal_ptr();
  obs::FlightRecorder::Options fr_opts;
  fr_opts.dir = args.get("flight-dir", ".");
  if (!obs::FlightRecorder::instance().arm(fr_opts, live_journal)) {
    std::fprintf(stderr, "serve: cannot arm flight recorder in %s\n",
                 fr_opts.dir.c_str());
    return 1;
  }

  // Incident black box: bundles land next to the flight dumps.
  obs::IncidentStore::Options inc_opts;
  inc_opts.dir = fr_opts.dir;
  auto incidents = std::make_shared<obs::IncidentStore>(inc_opts);
  obs::IncidentOptions inc_trigger;
  inc_trigger.min_gap = args.get_u64("incident-gap", inc_trigger.min_gap);
  if (session) {
    session->attach_incidents(inc_trigger, incidents);
  } else {
    det->attach_incidents(inc_trigger, incidents);
  }

  obs::MonitorServer server;
  obs::MonitorServer::Options srv_opts;
  srv_opts.port = static_cast<std::uint16_t>(args.get_u64("port", 0));
  if (!server.start(srv_opts)) {
    std::fprintf(stderr, "serve: cannot bind 127.0.0.1:%llu\n",
                 static_cast<unsigned long long>(args.get_u64("port", 0)));
    obs::FlightRecorder::instance().disarm();
    return 1;
  }
  server.set_journal(live_journal);
  server.set_model_health(session ? session->model_health()
                                  : det->model_health());
  server.set_history(session ? session->score_history()
                             : det->score_history());
  server.set_incidents(incidents);
  obs::FlightRecorder::instance().set_model_health(
      session ? session->model_health() : det->model_health());
  obs::FlightRecorder::instance().set_incidents(
      [incidents] { return incidents->dump_section(); });

  // Retrain loop: drive the policy from the session's per-interval health
  // verdicts; on publish, annotate the journal, drop a synthetic incident
  // marker, and surface the state machine under /model's "retrain" key.
  std::shared_ptr<engine::RetrainManager> manager;
  if (auto_retrain) {
    engine::RetrainManager::Options ro;
    ro.sustain = args.get_u64("retrain-sustain", 32);
    ro.cooldown = args.get_u64("retrain-cooldown", 128);
    ro.min_window = args.get_u64("retrain-min-window", 96);
    ro.gmm_restarts = 2;
    manager = std::make_shared<engine::RetrainManager>(
        *engine, session->clean_window(), registry, ro);
    engine::Session* sess = &*session;
    sess->set_status_hook(
        [manager_raw = manager.get()](std::uint64_t interval,
                                      obs::ModelHealthStatus status) {
          manager_raw->note(interval, status);
        });
    manager->set_publish_hook([sess, incidents](
                                  const engine::RetrainReport& r) {
      sess->annotate_next("model auto-retrained: published version " +
                          std::to_string(r.version));
      obs::Incident marker;
      marker.reason = "retrain_publish";
      marker.detail = "v" + std::to_string(r.version) +
                      " trained on " + std::to_string(r.train_rows) +
                      " clean rows";
      marker.trigger_interval = r.trigger_interval;
      marker.model_version = r.version;
      incidents->commit(std::move(marker));
      std::printf("retrain: published model version %llu (%.2f s, "
                  "holdout alarm rate %.4f)\n",
                  static_cast<unsigned long long>(r.version),
                  r.train_seconds, r.holdout_alarm_rate);
      std::fflush(stdout);
    });
    server.set_retrain(
        [manager_raw = manager.get()] { return manager_raw->json(); });
  }
  // Continuous profiler: the stage zones are always live; the sampling
  // profiler additionally collects collapsed stacks for
  // /profile?format=collapsed while the endpoint is up.
  obs::prof::start_sampler();
  std::printf("serving http://127.0.0.1:%u (metrics, healthz, status, "
              "journal, trace, model, history, incidents, profile, version, "
              "flush)\n",
              static_cast<unsigned>(server.port()));
  std::printf("profiler counters: %s\n", obs::prof::counter_source());
  std::fflush(stdout);

  // Replay scenarios against the live endpoint so every route has data.
  const std::string attack_name = args.get("attack", "shellcode");
  const SimTime duration = args.get_u64("duration-ms", 2000) * kMillisecond;
  const SimTime trigger = args.get_u64("trigger-ms", 1000) * kMillisecond;
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::uint64_t scenarios = args.get_u64("scenarios", 3);
  // --mode-change-after S: from replay S on, the simulated system gains a
  // persistent new background activity source (device interrupts) — a
  // behaviour change rather than an attack, the environment drift the
  // auto-retrain loop exists to absorb. 0 = never.
  const std::uint64_t mode_change_after =
      args.get_u64("mode-change-after", 0);
  std::size_t alarms = 0;
  std::uint64_t next_interval = 0;
  for (std::uint64_t s = 0; s < scenarios; ++s) {
    std::unique_ptr<attacks::AttackScenario> attack;
    // Alternate normal / attacked replays: the journal and the flight
    // recorder then hold both quiet intervals and alarms.
    if (s % 2 == 1 && attack_name != "normal") {
      attack = attacks::make_scenario(attack_name);
    }
    sim::SystemConfig run_cfg = cfg;
    if (mode_change_after != 0 && s >= mode_change_after) {
      // Busy device + slightly noisier services: a sustained environment
      // change that shifts the score distribution enough to latch the
      // drift detectors without alarming most intervals — alarmed rows
      // never enter the retrain window, so a too-violent shift would
      // starve the loop of new-mode training data.
      run_cfg.device_irq_mean_period = 2 * kMillisecond;
      run_cfg.jitter_scale = 1.25;
    }
    if (session) {
      // Engine path: generate the maps detector-free and score them through
      // the live session, so the retrain loop sees one continuous stream.
      pipeline::ScenarioRun run = pipeline::run_scenario(
          run_cfg, attack.get(), trigger, duration, nullptr, seed + s);
      std::size_t run_alarms = 0;
      for (const auto& m : run.maps) {
        const Verdict v = session->analyze(m.as_vector(), next_interval++);
        run_alarms += v.anomalous;
      }
      alarms += run_alarms;
      // A publish rebinds the session's health monitor at the swap
      // boundary; re-attach the live handle for /model and the recorder.
      server.set_model_health(session->model_health());
      obs::FlightRecorder::instance().set_model_health(
          session->model_health());
      std::printf("replay %llu/%llu: '%s', %zu intervals, %zu alarms so "
                  "far; retrain %s, model v%llu\n",
                  static_cast<unsigned long long>(s + 1),
                  static_cast<unsigned long long>(scenarios),
                  run.scenario.c_str(), run.maps.size(), alarms,
                  engine::to_string(manager->state()),
                  static_cast<unsigned long long>(session->model_version()));
    } else {
      pipeline::ScenarioRun run = pipeline::run_scenario(
          run_cfg, attack.get(), trigger, duration, det, seed + s);
      for (const auto& v : run.verdicts) alarms += v.anomalous;
      std::printf("replay %llu/%llu: '%s', %zu intervals, %zu alarms so "
                  "far\n",
                  static_cast<unsigned long long>(s + 1),
                  static_cast<unsigned long long>(scenarios),
                  run.scenario.c_str(), run.verdicts.size(), alarms);
    }
    std::fflush(stdout);
  }
  if (manager != nullptr) {
    manager->drain();
    server.set_model_health(session->model_health());
    obs::FlightRecorder::instance().set_model_health(
        session->model_health());
    std::printf("retrain loop: %llu published, %llu rejected, state %s, "
                "serving model version %llu\n",
                static_cast<unsigned long long>(manager->published()),
                static_cast<unsigned long long>(manager->rejected_count()),
                engine::to_string(manager->state()),
                static_cast<unsigned long long>(engine->model_version()));
    std::fflush(stdout);
  }
  std::printf("incidents: %llu committed\n",
              static_cast<unsigned long long>(incidents->total_committed()));
  if (const auto health = session ? session->model_health()
                                  : det->model_health()) {
    const obs::ModelHealthSnapshot snap = health->snapshot();
    std::printf("model health: %s (alarm rate %.4f, expected p %.4f)\n",
                obs::to_string(snap.status), snap.alarm_rate, snap.expected_p);
    std::fflush(stdout);
  }

  if (const std::uint64_t linger_ms = args.get_u64("linger-ms", 0)) {
    std::printf("lingering %llu ms for external scrapers...\n",
                static_cast<unsigned long long>(linger_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }

  const std::string final_dump =
      obs::FlightRecorder::instance().dump("shutdown");
  obs::prof::stop_sampler();
  server.stop();
  obs::FlightRecorder::instance().disarm();
  std::printf("served %llu replays, %zu alarms; final dump: %s\n",
              static_cast<unsigned long long>(scenarios), alarms,
              final_dump.empty() ? "(none)" : final_dump.c_str());
  return 0;
}

int cmd_dump(const Args& args) {
  std::string in_path;
  if (!args.require("in", &in_path)) {
    std::fprintf(stderr, "dump: --in <file.mhmdump> is required\n");
    return 1;
  }
  std::ifstream file(in_path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "dump: cannot open %s\n", in_path.c_str());
    return 1;
  }
  std::string line;
  if (!std::getline(file, line) || line != "MHMDUMP 1") {
    std::fprintf(stderr, "dump: %s is not an MHMDUMP version 1 file\n",
                 in_path.c_str());
    return 1;
  }
  std::printf("flight-recorder dump: %s\n", in_path.c_str());

  // Header key/value lines run until the first "== section ==" marker.
  std::string section;
  while (std::getline(file, line)) {
    if (line.rfind("== ", 0) == 0) {
      section = line;
      break;
    }
    const auto space = line.find(' ');
    if (space == std::string::npos) continue;
    std::printf("  %-12s %s\n", line.substr(0, space).c_str(),
                line.substr(space + 1).c_str());
  }

  // Walk the sections, summarizing each. Metric lines are Prometheus text,
  // journal lines are one JSON record each, the heatmap is raw doubles.
  std::size_t metric_lines = 0;
  std::size_t journal_records = 0;
  std::size_t journal_alarms = 0;
  std::size_t trace_events = 0;
  std::vector<std::string> headline;
  std::vector<double> heat_row;
  std::string heat_header;
  bool saw_end = false;
  while (!section.empty()) {
    std::string next;
    const bool in_metrics = section == "== metrics ==";
    const bool in_journal = section.rfind("== journal", 0) == 0;
    const bool in_trace = section == "== trace ==";
    const bool in_heatmap = section.rfind("== heatmap", 0) == 0;
    if (in_heatmap) heat_header = section;
    if (section == "== end ==") saw_end = true;
    while (std::getline(file, line)) {
      if (line.rfind("== ", 0) == 0) {
        next = line;
        break;
      }
      if (in_metrics && !line.empty() && line[0] != '#') {
        ++metric_lines;
        // Surface the counters an operator asks about first.
        for (const char* want :
             {"mhm_detector_intervals_analyzed", "mhm_detector_alarms ",
              "mhm_core_gmm_log_likelihood"}) {
          if (line.rfind(want, 0) == 0) headline.push_back(line);
        }
      } else if (in_journal && !line.empty()) {
        ++journal_records;
        if (line.find("\"alarm\":true") != std::string::npos) {
          ++journal_alarms;
        }
      } else if (in_trace) {
        for (std::size_t pos = 0;
             (pos = line.find("\"ph\":\"X\"", pos)) != std::string::npos;
             pos += 8) {
          ++trace_events;
        }
      } else if (in_heatmap && !line.empty()) {
        std::istringstream is(line);
        double v = 0.0;
        while (is >> v) heat_row.push_back(v);
      }
    }
    section = next;
  }
  if (!saw_end) {
    std::fprintf(stderr, "dump: warning: missing '== end ==' marker — the "
                         "dump may be truncated\n");
  }

  std::printf("  metrics      %zu series\n", metric_lines);
  for (const auto& h : headline) std::printf("    %s\n", h.c_str());
  std::printf("  journal      %zu records, %zu alarms\n", journal_records,
              journal_alarms);
  std::printf("  trace        %zu span events\n", trace_events);
  if (!heat_row.empty()) {
    double total = 0.0;
    double peak = 0.0;
    std::size_t peak_cell = 0;
    for (std::size_t i = 0; i < heat_row.size(); ++i) {
      total += heat_row[i];
      if (heat_row[i] > peak) {
        peak = heat_row[i];
        peak_cell = i;
      }
    }
    std::printf("  %s\n", heat_header.c_str());
    std::printf("  heatmap      %zu cells, %.0f total accesses, hottest "
                "cell %zu (%.0f)\n",
                heat_row.size(), total, peak_cell, peak);
  } else {
    std::printf("  heatmap      (no interval captured before the dump)\n");
  }
  return saw_end ? 0 : 1;
}

// --- incidents: black-box bundle forensics ---------------------------------
//
// `incidents` works on the `.mhmi` bundles the incident engine commits
// (src/obs/incident, docs/FILE_FORMATS.md): `list` scans a directory,
// `show` pretty-prints one bundle, `replay` re-scores its captured rows
// through the bundled model version from a registry and asserts the
// verdicts reproduce bit-identically (hexfloat compare).

std::size_t bundle_alarms(const obs::Incident& incident) {
  std::size_t alarms = 0;
  for (const auto& e : incident.window) alarms += e.alarm;
  return alarms;
}

int cmd_incidents_list(const Args& args) {
  const std::string dir = args.get("dir", ".");
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".mhmi") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "incidents list: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::sort(paths.begin(), paths.end());
  std::printf("%4s  %-17s %9s %6s %7s %6s %5s  %s\n", "id", "reason",
              "trigger", "model", "entries", "alarms", "trunc", "path");
  std::size_t shown = 0;
  for (const auto& path : paths) {
    obs::IncidentBundle bundle;
    std::string error;
    if (!obs::parse_incident_file(path, &bundle, &error)) {
      std::fprintf(stderr, "incidents list: skipping %s: %s\n", path.c_str(),
                   error.c_str());
      continue;
    }
    const obs::Incident& inc = bundle.incident;
    std::printf("%4llu  %-17s %9llu %6llu %7zu %6zu %5s  %s\n",
                static_cast<unsigned long long>(inc.id), inc.reason.c_str(),
                static_cast<unsigned long long>(inc.trigger_interval),
                static_cast<unsigned long long>(inc.model_version),
                inc.window.size(), bundle_alarms(inc),
                bundle.truncated ? "YES" : "no", path.c_str());
    ++shown;
  }
  std::printf("%zu bundle(s) in %s\n", shown, dir.c_str());
  return 0;
}

int cmd_incidents_show(const Args& args) {
  std::string in_path;
  if (!args.require("in", &in_path)) {
    std::fprintf(stderr, "incidents show: --in <file.mhmi> is required\n");
    return 1;
  }
  obs::IncidentBundle bundle;
  std::string error;
  if (!obs::parse_incident_file(in_path, &bundle, &error)) {
    std::fprintf(stderr, "incidents show: %s\n", error.c_str());
    return 1;
  }
  const obs::Incident& inc = bundle.incident;
  std::printf("incident bundle: %s\n", in_path.c_str());
  std::printf("  id           %llu\n",
              static_cast<unsigned long long>(inc.id));
  std::printf("  reason       %s%s%s\n", inc.reason.c_str(),
              inc.detail.empty() ? "" : " ", inc.detail.c_str());
  std::printf("  trigger      interval %llu\n",
              static_cast<unsigned long long>(inc.trigger_interval));
  std::printf("  model        version %llu, threshold %.4f (log10)\n",
              static_cast<unsigned long long>(inc.model_version),
              inc.threshold);
  std::printf("  window       %zu pre + trigger + %zu post (%zu captured, "
              "%zu alarms), %zu cells\n",
              inc.pre, inc.post, inc.window.size(), bundle_alarms(inc),
              inc.cells);
  for (const auto& b : bundle.build_info) std::printf("  %s\n", b.c_str());
  if (!inc.top_cells.empty()) {
    std::printf("  top |z| cell deltas vs training baseline:\n");
    for (const auto& c : inc.top_cells) {
      std::printf("    cell %4zu: observed %12.0f, expected %12.1f, "
                  "z %+8.1f\n",
                  c.cell, c.observed, c.expected, c.z);
    }
  }
  std::printf("  %-9s %12s %12s %5s %7s  %s\n", "interval", "score", "spe",
              "alarm", "nearest", "row");
  for (const auto& e : inc.window) {
    std::printf("  %9llu %12.4f %12.4g %5s %7zu  %s\n",
                static_cast<unsigned long long>(e.interval), e.score, e.spe,
                e.alarm ? "YES" : "no", e.nearest_pattern,
                e.row.empty() ? "-" : "captured");
  }
  if (bundle.truncated) {
    std::fprintf(stderr, "incidents show: %s is TRUNCATED (missing "
                         "'== end ==' — crash mid-write)\n",
                 in_path.c_str());
    return 1;
  }
  return 0;
}

int cmd_incidents_replay(const Args& args) {
  std::string in_path;
  std::string registry_dir;
  if (!args.require("in", &in_path) ||
      !args.require("registry", &registry_dir)) {
    std::fprintf(stderr, "incidents replay: --in <file.mhmi> and "
                         "--registry <dir> are required\n");
    return 1;
  }
  obs::IncidentBundle bundle;
  std::string error;
  if (!obs::parse_incident_file(in_path, &bundle, &error)) {
    std::fprintf(stderr, "incidents replay: %s\n", error.c_str());
    return 1;
  }
  if (bundle.truncated) {
    std::fprintf(stderr, "incidents replay: %s is truncated — the verdict "
                         "window is incomplete, refusing to assert on it\n",
                 in_path.c_str());
    return 1;
  }
  const obs::Incident& inc = bundle.incident;
  if (inc.model_version == 0) {
    std::fprintf(stderr, "incidents replay: bundle carries no registry "
                         "version (serve with --registry to stamp one)\n");
    return 1;
  }
  const ModelRegistry registry(registry_dir);
  const std::shared_ptr<const ModelSnapshot> snapshot =
      registry.load_snapshot(inc.model_version);
  if (inc.cells != snapshot->pca.input_dim()) {
    std::fprintf(stderr, "incidents replay: bundle has %zu cells but model "
                         "version %llu expects %zu\n",
                 inc.cells, static_cast<unsigned long long>(inc.model_version),
                 snapshot->pca.input_dim());
    return 1;
  }

  // Bit-identity contract: the bundle stores score/SPE as hexfloat, so the
  // comparison is on exact bit patterns, never a tolerance.
  ScoreScratch scratch;
  std::size_t checked = 0;
  std::size_t mismatches = 0;
  for (const auto& e : inc.window) {
    if (e.row.empty()) continue;
    const Verdict v = score_snapshot(*snapshot, e.row, e.interval, scratch);
    char got_score[48], want_score[48], got_spe[48], want_spe[48];
    std::snprintf(got_score, sizeof got_score, "%a", v.log10_density);
    std::snprintf(want_score, sizeof want_score, "%a", e.score);
    std::snprintf(got_spe, sizeof got_spe, "%a", v.spe);
    std::snprintf(want_spe, sizeof want_spe, "%a", e.spe);
    const bool ok = std::strcmp(got_score, want_score) == 0 &&
                    std::strcmp(got_spe, want_spe) == 0 &&
                    v.anomalous == e.alarm &&
                    v.nearest_pattern == e.nearest_pattern;
    if (!ok) {
      ++mismatches;
      std::fprintf(stderr,
                   "  interval %llu MISMATCH: score %s vs %s, spe %s vs %s, "
                   "alarm %d vs %d, nearest %zu vs %zu\n",
                   static_cast<unsigned long long>(e.interval), got_score,
                   want_score, got_spe, want_spe, static_cast<int>(v.anomalous),
                   static_cast<int>(e.alarm), v.nearest_pattern,
                   e.nearest_pattern);
    }
    ++checked;
  }
  if (checked == 0) {
    std::fprintf(stderr, "incidents replay: no heat-map rows captured in %s "
                         "(recorded with capture_rows off?)\n",
                 in_path.c_str());
    return 1;
  }
  std::printf("replayed %zu of %zu intervals through model version %llu: "
              "%s\n",
              checked, inc.window.size(),
              static_cast<unsigned long long>(inc.model_version),
              mismatches == 0
                  ? "bit-identical"
                  : (std::to_string(mismatches) + " MISMATCHES").c_str());
  return mismatches == 0 ? 0 : 1;
}

int cmd_incidents(const std::string& action, const Args& args) {
  if (action == "list") return cmd_incidents_list(args);
  if (action == "show") return cmd_incidents_show(args);
  if (action == "replay") return cmd_incidents_replay(args);
  std::fprintf(stderr, "incidents: unknown action '%s' (list|show|replay)\n",
               action.c_str());
  return 1;
}

// --- watch: live model-health dashboard ------------------------------------
//
// `watch` is a pure HTTP client: it polls a serving process's /model and
// /incidents routes over loopback and renders a terminal dashboard — score
// sparkline against the training quantiles, component occupancy bars, the
// latest heat-map row, and an incident ticker. The field extractors and the
// loopback fetch live in tools/dashboard.{hpp,cpp}, shared with
// `fleet --watch`.

void render_dashboard(const std::string& body,
                      const std::string& incidents_body, std::uint16_t port,
                      std::uint64_t poll) {
  std::ostringstream os;
  os << "mhm model health  http://127.0.0.1:" << port << "/model  poll "
     << poll << "\n";
  const double alarm_rate = num_field(body, "alarm_rate");
  char line[200];
  std::snprintf(line, sizeof line,
                "status %s | intervals %.0f | alarms %.0f (%.2f%%) | "
                "expected p %.2f%% wilson [%.2f%%, %.2f%%]\n",
                str_field(body, "status").c_str(),
                num_field(body, "intervals"), num_field(body, "alarms"),
                100.0 * alarm_rate, 100.0 * num_field(body, "expected_p"),
                100.0 * num_field(body, "wilson_low"),
                100.0 * num_field(body, "wilson_high"));
  os << line;
  const std::size_t score_pos = find_key(body, "score");
  const std::size_t train_pos = find_key(body, "training", score_pos);
  std::snprintf(line, sizeof line,
                "score  live  q05 %9.3f  q50 %9.3f  q95 %9.3f  mean %9.3f\n",
                num_field(body, "q05", score_pos),
                num_field(body, "q50", score_pos),
                num_field(body, "q95", score_pos),
                num_field(body, "mean", score_pos));
  os << line;
  std::snprintf(line, sizeof line,
                "       train q05 %9.3f  q50 %9.3f  q95 %9.3f  mean %9.3f\n",
                num_field(body, "q05", train_pos),
                num_field(body, "q50", train_pos),
                num_field(body, "q95", train_pos),
                num_field(body, "mean", train_pos));
  os << line;
  const std::size_t drift_pos = find_key(body, "drift");
  std::snprintf(line, sizeof line,
                "drift  cusum +%.2f/-%.2f (h %.1f)  page-hinkley %.2f "
                "(lambda %.1f)  spe q95 %.3g\n",
                num_field(body, "cusum_pos", drift_pos),
                num_field(body, "cusum_neg", drift_pos),
                num_field(body, "cusum_threshold", drift_pos),
                num_field(body, "page_hinkley", drift_pos),
                num_field(body, "page_hinkley_lambda", drift_pos),
                num_field(body, "q95", find_key(body, "spe")));
  os << line;
  // Continuous-training loop (present only when serving --auto-retrain).
  const std::size_t retrain_pos = find_key(body, "retrain");
  if (retrain_pos != std::string::npos) {
    const std::size_t win_pos = find_key(body, "window", retrain_pos);
    std::snprintf(line, sizeof line,
                  "retrain %s | published %.0f rejected %.0f | "
                  "streak %.0f/%.0f | clean window %.0f/%.0f\n",
                  str_field(body, "state", retrain_pos).c_str(),
                  num_field(body, "published", retrain_pos),
                  num_field(body, "rejected", retrain_pos),
                  num_field(body, "drift_streak", retrain_pos),
                  num_field(body, "sustain", retrain_pos),
                  num_field(body, "size", win_pos),
                  num_field(body, "capacity", win_pos));
    os << line;
  }
  os << incident_ticker(incidents_body);

  os << "components (arg-max occupancy share vs mixture weight):\n";
  const std::size_t comp_pos = find_key(body, "components");
  const std::size_t comp_end = body.find("\"events\":");
  std::size_t p = comp_pos;
  std::size_t j = 0;
  while (p != std::string::npos && p < comp_end) {
    const std::size_t wp = find_key(body, "weight", p);
    if (wp == std::string::npos || wp >= comp_end) break;
    const double weight = num_field(body, "weight", p);
    const double share = num_field(body, "share", wp);
    std::snprintf(line, sizeof line, "  #%zu  w %.3f  share %.3f  %s\n", j,
                  weight, share, occupancy_bar(share, 24).c_str());
    os << line;
    p = find_key(body, "share", wp);
    ++j;
  }

  const std::vector<double> recent = num_array(body, "recent_scores");
  if (!recent.empty()) {
    LinePlotOptions plot;
    plot.width = 64;
    plot.height = 8;
    plot.title = "log10 Pr(M), last " + std::to_string(recent.size()) +
                 " intervals (- training median)";
    plot.hlines.push_back(num_field(body, "q50", train_pos));
    os << render_line_plot(recent, plot);
  }
  const std::size_t row_pos = find_key(body, "heat_row");
  const std::vector<double> cells = num_array(body, "cells", row_pos);
  if (!cells.empty()) {
    std::vector<std::uint64_t> counts;
    counts.reserve(cells.size());
    for (double c : cells) {
      counts.push_back(
          c <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(c)));
    }
    HeatMapPlotOptions hm;
    hm.width = 64;
    hm.rows = 8;
    hm.title = "heat-map row, interval " +
               std::to_string(static_cast<std::uint64_t>(
                   num_field(body, "interval", row_pos)));
    os << render_heat_map(counts, hm);
  }
  std::fputs(os.str().c_str(), stdout);
  std::fflush(stdout);
}

int cmd_watch(const Args& args) {
  const auto port = static_cast<std::uint16_t>(args.get_u64("port", 0));
  if (port == 0) {
    std::fprintf(stderr,
                 "watch: --port <port> of a serving process is required\n");
    return 1;
  }
  const std::uint64_t interval_ms = args.get_u64("interval-ms", 500);
  const std::uint64_t iterations = args.get_u64("iterations", 0);  // 0 = ∞
  // Redraw in place for interactive sessions; --clear 0 appends instead
  // (the default for a single-shot poll, which is what tests pipe around).
  const bool clear = args.get_u64("clear", iterations == 1 ? 0 : 1) != 0;

  std::uint64_t polls = 0;
  std::uint64_t failures = 0;
  while (iterations == 0 || polls < iterations) {
    const std::string body = fetch_body(port, "/model");
    if (body.empty()) {
      ++failures;
      if (polls == 0 || failures >= 5) {
        std::fprintf(stderr,
                     "watch: no /model response from 127.0.0.1:%u (is a "
                     "serve process with a model-health monitor running?)\n",
                     static_cast<unsigned>(port));
        return 1;
      }
    } else {
      failures = 0;
      ++polls;
      // "" when the serving process predates the incident store — the
      // ticker line is simply omitted.
      const std::string incidents = fetch_body(port, "/incidents");
      if (clear) std::fputs("\033[H\033[2J", stdout);
      render_dashboard(body, incidents, port, polls);
    }
    if (iterations != 0 && polls >= iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

/// One parsed row of the /profile stages array.
struct ProfRow {
  std::string name;
  double entries = 0.0;
  double wall_ns = 0.0;
  double per_entry_ns = 0.0;
  double ipc = 0.0;
  double cache_misses = 0.0;
  double counter_samples = 0.0;
};

int cmd_prof(const Args& args) {
  const auto port = static_cast<std::uint16_t>(args.get_u64("port", 0));
  if (port == 0) {
    std::fprintf(stderr,
                 "prof: --port <port> of a serving process is required\n");
    return 1;
  }
  const std::string format = args.get("format", "table");
  if (format == "collapsed") {
    // Raw collapsed stacks, pipe-ready for flamegraph.pl / speedscope.
    const std::string body = fetch_body(port, "/profile?format=collapsed");
    std::fputs(body.c_str(), stdout);
    return body.empty() ? 1 : 0;
  }
  if (format != "table" && format != "json") {
    std::fprintf(stderr, "prof: --format must be table|json|collapsed\n");
    return 1;
  }

  const std::string body = fetch_body(port, "/profile?format=json");
  if (body.empty()) {
    std::fprintf(stderr,
                 "prof: no /profile response from 127.0.0.1:%u (is a serve "
                 "process running?)\n",
                 static_cast<unsigned>(port));
    return 1;
  }
  if (format == "json") {
    std::fputs(body.c_str(), stdout);
    return 0;
  }

  const double analyze_wall = num_field(body, "analyze_wall_ns");
  const double attributed = num_field(body, "attributed_fraction");
  std::vector<ProfRow> rows;
  std::size_t from = find_key(body, "stages");
  while (from != std::string::npos) {
    const std::size_t k = find_key(body, "stage", from + 1);
    if (k == std::string::npos) break;
    ProfRow r;
    r.name = str_field(body, "stage", from + 1);
    r.entries = num_field(body, "entries", k);
    r.wall_ns = num_field(body, "wall_ns", k);
    r.per_entry_ns = num_field(body, "wall_ns_per_entry", k);
    r.ipc = num_field(body, "ipc", k);
    r.cache_misses = num_field(body, "cache_misses", k);
    r.counter_samples = num_field(body, "counter_samples", k);
    rows.push_back(std::move(r));
    from = k;
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProfRow& a, const ProfRow& b) {
              return a.wall_ns > b.wall_ns;
            });
  const std::uint64_t top = args.get_u64("top", 0);
  if (top != 0 && rows.size() > top) rows.resize(top);

  std::printf("mhm profile  http://127.0.0.1:%u/profile\n",
              static_cast<unsigned>(port));
  std::printf("counters %s | sampler %.0f stacks | analyze wall %.3f s | "
              "attributed %.1f%%  (top scoring stage: %s)\n",
              str_field(body, "source").c_str(),
              num_field(body, "samples"), analyze_wall * 1e-9,
              attributed * 100.0,
              str_field(body, "top_scoring_stage").c_str());
  std::printf("  %-18s %10s %12s %14s %7s %6s %12s\n", "stage", "entries",
              "wall(ms)", "per-entry(us)", "share", "ipc", "cache-miss");
  for (const ProfRow& r : rows) {
    if (r.entries == 0.0) continue;
    const double share =
        analyze_wall > 0.0 ? r.wall_ns / analyze_wall * 100.0 : 0.0;
    std::printf("  %-18s %10.0f %12.3f %14.3f %6.1f%% %6.2f %12.0f\n",
                r.name.c_str(), r.entries, r.wall_ns * 1e-6,
                r.per_entry_ns * 1e-3, share, r.ipc, r.cache_misses);
  }
  if (rows.empty()) std::printf("  (no stages recorded yet)\n");
  return 0;
}

void render_fleet(const fleet::FleetSnapshot& snap, std::size_t rounds,
                  std::size_t total_rounds, std::uint16_t port) {
  std::ostringstream os;
  char line[256];
  os << "mhm fleet";
  if (port != 0) os << "  http://127.0.0.1:" << port << "/fleet";
  os << "\n";
  std::snprintf(line, sizeof line,
                "devices %zu | shards %zu | round %zu/%zu | intervals %llu | "
                "alarms %llu | %.0f intervals/s\n",
                snap.devices, snap.shards, rounds, total_rounds,
                static_cast<unsigned long long>(snap.intervals),
                static_cast<unsigned long long>(snap.alarms),
                snap.intervals_per_sec);
  os << line;
  std::snprintf(line, sizeof line,
                "rollup  OK %llu | DRIFTING %llu | MISCALIBRATED %llu\n",
                static_cast<unsigned long long>(snap.devices_ok),
                static_cast<unsigned long long>(snap.devices_drifting),
                static_cast<unsigned long long>(snap.devices_miscalibrated));
  os << line;
  if (!snap.incident_groups.empty()) {
    const fleet::IncidentGroup& g = snap.incident_groups.back();
    std::string names;
    for (const auto& a : g.archetypes) {
      if (!names.empty()) names += ",";
      names += a;
    }
    std::snprintf(line, sizeof line,
                  "incidents  %zu groups | latest [%llu..%llu] %zu devices, "
                  "%llu marks (%s)\n",
                  snap.incident_groups.size(),
                  static_cast<unsigned long long>(g.first_interval),
                  static_cast<unsigned long long>(g.last_interval), g.devices,
                  static_cast<unsigned long long>(g.marks), names.c_str());
    os << line;
  }
  os << "top anomalous streams (severity = EWMA of deficit below theta):\n";
  os << "  device  archetype         severity  alarms  status\n";
  for (const auto& t : snap.top) {
    std::snprintf(line, sizeof line, "  %6llu  %-16s %9.4f  %6llu  %s\n",
                  static_cast<unsigned long long>(t.device),
                  t.archetype.c_str(), t.severity,
                  static_cast<unsigned long long>(t.alarms),
                  obs::to_string(static_cast<obs::ModelHealthStatus>(
                      t.status)));
    os << line;
  }
  if (snap.top.empty()) os << "  (none yet)\n";
  std::fputs(os.str().c_str(), stdout);
  std::fflush(stdout);
}

int cmd_fleet(const Args& args) {
  // Spec file first, CLI flags layered on top.
  fleet::FleetSpec spec;
  const auto spec_path = args.get_optional("spec");
  if (spec_path) spec = fleet::FleetSpec::load(*spec_path);
  spec.devices = args.get_u64("devices", spec.devices);
  spec.shards = args.get_u64("shards", spec.shards);
  spec.intervals = args.get_u64("intervals", spec.intervals);
  spec.seed = args.get_u64("seed", spec.seed);
  spec.top_k = args.get_u64("top-k", spec.top_k);
  if (spec.devices == 0 || spec.intervals == 0 || spec.top_k == 0) {
    throw ConfigError("fleet: devices, intervals and top-k must be > 0");
  }
  if (spec.archetypes.empty()) {
    // CLI default mix: mostly steady devices, a jittery slice, and a
    // compromised slice running --attack from --trigger (interval index).
    fleet::ArchetypeSpec steady;
    steady.name = "steady";
    steady.weight = 0.8;
    spec.archetypes.push_back(steady);
    fleet::ArchetypeSpec bursty;
    bursty.name = "bursty";
    bursty.weight = 0.1;
    bursty.jitter_scale = 2.0;
    spec.archetypes.push_back(bursty);
    const std::string attack_name = args.get("attack", "shellcode");
    if (attack_name != "normal") {
      fleet::ArchetypeSpec attacked;
      attacked.name = attack_name;
      attacked.weight = 0.1;
      attacked.attack = attack_name;
      attacked.trigger_interval = args.get_u64("trigger", 10);
      spec.archetypes.push_back(attacked);
    }
  }

  const sim::SystemConfig cfg = pipeline::fast_test_config(1);
  std::printf("training fast-scale detector (L = %zu cells)...\n",
              cfg.monitor.cell_count());
  std::fflush(stdout);
  pipeline::TrainedPipeline pipe = pipeline::train_pipeline(
      cfg, pipeline::fast_test_plan(), pipeline::fast_test_detector_options());

  std::printf("simulating %zu archetypes, fanning out %zu devices / %zu "
              "shards...\n",
              spec.archetypes.size(), spec.devices, spec.resolved_shards());
  std::fflush(stdout);
  fleet::FleetRunner runner(std::move(spec), cfg, pipe.detector->snapshot());
  const fleet::FleetSpec& fs = runner.spec();

  // Serve /fleet while the run is live (and arm the recorder so any dump
  // carries the `== fleet ==` section). Both optional: the run itself works
  // with observability disabled.
  obs::MonitorServer server;
  bool armed = false;
  if (obs::enabled()) {
    obs::MonitorServer::Options srv_opts;
    srv_opts.port = static_cast<std::uint16_t>(args.get_u64("port", 0));
    if (!server.start(srv_opts)) {
      std::fprintf(stderr, "fleet: cannot bind 127.0.0.1:%llu\n",
                   static_cast<unsigned long long>(args.get_u64("port", 0)));
      return 1;
    }
    server.set_fleet([&runner] { return runner.json(); });
    obs::FlightRecorder::Options fr_opts;
    fr_opts.dir = args.get("flight-dir", ".");
    armed = obs::FlightRecorder::instance().arm(fr_opts, nullptr);
    if (armed) {
      obs::FlightRecorder::instance().set_fleet(
          [&runner] { return runner.json(); });
    }
    std::printf("serving http://127.0.0.1:%u (fleet, metrics, healthz, "
                "status, flush)\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
  }

  const bool watch = args.get_u64("watch", 0) != 0;
  const std::uint64_t batch =
      std::max<std::uint64_t>(fs.health_refresh, 1);
  while (!runner.done()) {
    runner.run_rounds(batch);
    if (watch) {
      std::fputs("\033[H\033[2J", stdout);
      render_fleet(runner.aggregator().snapshot(), runner.rounds_completed(),
                   fs.intervals, server.port());
    }
  }

  const fleet::FleetSnapshot snap = runner.aggregator().snapshot();
  if (!watch) {
    render_fleet(snap, runner.rounds_completed(), fs.intervals,
                 server.port());
  }

  if (const std::uint64_t linger_ms = args.get_u64("linger-ms", 0)) {
    std::printf("lingering %llu ms for external scrapers...\n",
                static_cast<unsigned long long>(linger_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  if (armed) {
    const std::string dump = obs::FlightRecorder::instance().dump("shutdown");
    obs::FlightRecorder::instance().disarm();
    if (!dump.empty()) std::printf("final dump: %s\n", dump.c_str());
  }
  server.stop();
  std::printf("fleet run complete: %llu intervals, %llu alarms\n",
              static_cast<unsigned long long>(snap.intervals),
              static_cast<unsigned long long>(snap.alarms));
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: mhm_tool <train|record|ingest|inspect|monitor|replay"
               "|retrain|simulate|metrics|journal|serve|watch|prof|fleet|dump"
               "|incidents> [--flag value]...\n"
               "       mhm_tool retrain --trace <trace.mhmt> "
               "--registry <dir>\n"
               "       mhm_tool replay <trace.mhmt> --model "
               "<file-or-registry-dir>\n"
               "       mhm_tool incidents list --dir <dir>\n"
               "       mhm_tool incidents show --in <file.mhmi>\n"
               "       mhm_tool incidents replay --in <file.mhmi> "
               "--registry <dir>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  try {
    const std::string cmd = argv[1];
    if (cmd == "replay") {
      // The trace is positional: replay <trace.mhmt> --flag value...
      if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
        std::fprintf(stderr, "replay: usage: mhm_tool replay <trace.mhmt> "
                             "--model <file-or-registry-dir>\n");
        return 1;
      }
      return cmd_replay(argv[2], Args(argc, argv, 3));
    }
    if (cmd == "incidents") {
      // The action is positional: incidents <list|show|replay> --flag value...
      if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
        std::fprintf(stderr, "incidents: usage: mhm_tool incidents "
                             "<list|show|replay> [--flag value]...\n");
        return 1;
      }
      return cmd_incidents(argv[2], Args(argc, argv, 3));
    }
    const Args args(argc, argv, 2);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "record") return cmd_record(args);
    if (cmd == "ingest") return cmd_ingest(args);
    if (cmd == "inspect") return cmd_inspect(args);
    if (cmd == "monitor") return cmd_monitor(args);
    if (cmd == "retrain") return cmd_retrain(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "metrics") return cmd_metrics(args);
    if (cmd == "journal") return cmd_journal(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "watch") return cmd_watch(args);
    if (cmd == "prof") return cmd_prof(args);
    if (cmd == "fleet") return cmd_fleet(args);
    if (cmd == "dump") return cmd_dump(args);
    if (cmd == "selftest-crash") {
      // Hidden hook for the crash-dump CLI test: arm the recorder exactly
      // like `serve` does, then die by SIGSEGV. The test asserts the
      // handler left a parseable .mhmdump behind.
      obs::FlightRecorder::Options fr_opts;
      fr_opts.dir = args.get("flight-dir", ".");
      if (!obs::FlightRecorder::instance().arm(fr_opts, nullptr)) {
        std::fprintf(stderr, "selftest-crash: cannot arm (obs compiled "
                             "out?); nothing to test\n");
        return 77;  // Conventional "skipped" exit code.
      }
      std::printf("crash file: %s\n",
                  obs::FlightRecorder::instance().crash_file().c_str());
      std::fflush(stdout);
      std::raise(SIGSEGV);
      return 1;  // Unreachable: the re-raised signal kills the process.
    }
    if (cmd == "selftest-incident-crash") {
      // Hidden hook for the incident crash-safety CLI test: render a
      // synthetic incident but write only the first half of the bundle —
      // the same cut a crash mid-write() produces — then die by SIGSEGV.
      // The test asserts the partial file still parses (as truncated).
      obs::IncidentStore::Options opts;
      opts.dir = args.get("dir", ".");
      obs::IncidentStore store(opts);
      obs::Incident incident;
      incident.reason = "alarm_burst";
      incident.detail = "selftest";
      incident.trigger_interval = 42;
      incident.model_version = 7;
      incident.threshold = -12.5;
      incident.cells = 8;
      incident.pre = 2;
      incident.post = 2;
      for (std::uint64_t i = 40; i <= 44; ++i) {
        obs::IncidentEntry e;
        e.interval = i;
        e.score = -10.0 - static_cast<double>(i) / 3.0;
        e.spe = 0.5 * static_cast<double>(i);
        e.alarm = i >= 42;
        e.nearest_pattern = 1;
        e.model_version = 7;
        e.row.assign(8, static_cast<double>(i));
        incident.window.push_back(std::move(e));
      }
      const std::string path = store.debug_commit_partial(std::move(incident));
      if (path.empty()) {
        std::fprintf(stderr,
                     "selftest-incident-crash: cannot write bundle in %s\n",
                     opts.dir.c_str());
        return 1;
      }
      std::printf("incident file: %s\n", path.c_str());
      std::fflush(stdout);
      std::raise(SIGSEGV);
      return 1;  // Unreachable.
    }
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mhm_tool: %s\n", e.what());
    return 1;
  }
}
