#pragma once

// Shared terminal-dashboard plumbing for mhm_tool's `watch` and
// `fleet --watch` views: a loopback HTTP fetch, shape-driven extractors for
// the fixed JSON documents the monitor endpoint serves
// (docs/FILE_FORMATS.md), and the small render helpers both dashboards
// draw with. Header-only consumers link dashboard.cpp into mhm_tool.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mhm::tool {

/// Position just past `"key":` in `body`, or npos.
std::size_t find_key(const std::string& body, const std::string& key,
                     std::size_t from = 0);

/// Numeric field value, `fallback` when absent or non-numeric.
double num_field(const std::string& body, const std::string& key,
                 std::size_t from = 0, double fallback = 0.0);

/// String field value, "" when absent.
std::string str_field(const std::string& body, const std::string& key,
                      std::size_t from = 0);

/// Flat numeric array field ("key":[1,2,...]), empty when absent.
std::vector<double> num_array(const std::string& body, const std::string& key,
                              std::size_t from = 0);

/// Blocking loopback GET; returns the response body, or "" on any failure
/// (connect error, timeout, non-200).
std::string fetch_body(std::uint16_t port, const std::string& path);

/// `#####....` bar of `share` (clamped to [0,1]) over `width` columns.
std::string occupancy_bar(double share, std::size_t width);

/// One-line incident ticker from an /incidents JSON body: committed total
/// plus the newest bundle's id/reason/trigger. Returns "" when `body` is
/// empty or carries no incidents — callers skip the line entirely.
std::string incident_ticker(const std::string& incidents_body);

}  // namespace mhm::tool
