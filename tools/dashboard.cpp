#include "dashboard.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mhm::tool {

std::size_t find_key(const std::string& body, const std::string& key,
                     std::size_t from) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = body.find(needle, from);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

double num_field(const std::string& body, const std::string& key,
                 std::size_t from, double fallback) {
  const std::size_t pos = find_key(body, key, from);
  if (pos == std::string::npos || pos >= body.size()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(body.c_str() + pos, &end);
  return end == body.c_str() + pos ? fallback : v;
}

std::string str_field(const std::string& body, const std::string& key,
                      std::size_t from) {
  const std::size_t pos = find_key(body, key, from);
  if (pos == std::string::npos || pos >= body.size() || body[pos] != '"') {
    return "";
  }
  const std::size_t end = body.find('"', pos + 1);
  return end == std::string::npos ? "" : body.substr(pos + 1, end - pos - 1);
}

std::vector<double> num_array(const std::string& body, const std::string& key,
                              std::size_t from) {
  std::vector<double> out;
  std::size_t pos = find_key(body, key, from);
  if (pos == std::string::npos || pos >= body.size() || body[pos] != '[') {
    return out;
  }
  ++pos;
  while (pos < body.size() && body[pos] != ']') {
    char* end = nullptr;
    const double v = std::strtod(body.c_str() + pos, &end);
    if (end == body.c_str() + pos) break;
    out.push_back(v);
    pos = static_cast<std::size_t>(end - body.c_str());
    if (pos < body.size() && body[pos] == ',') ++pos;
  }
  return out;
}

std::string fetch_body(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char chunk[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (response.rfind("HTTP/1.1 200", 0) != 0) return "";
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

std::string occupancy_bar(double share, std::size_t width) {
  const auto filled = static_cast<std::size_t>(
      std::lround(std::max(0.0, std::min(1.0, share)) *
                  static_cast<double>(width)));
  std::string bar;
  for (std::size_t i = 0; i < width; ++i) bar += i < filled ? "#" : ".";
  return bar;
}

std::string incident_ticker(const std::string& incidents_body) {
  if (incidents_body.empty()) return "";
  const double total = num_field(incidents_body, "total", 0, -1.0);
  if (total < 0.0) return "";
  // The list is oldest-first; the newest bundle's fields are the last
  // occurrences in the document.
  std::size_t last = std::string::npos;
  for (std::size_t pos = find_key(incidents_body, "id");
       pos != std::string::npos;
       pos = find_key(incidents_body, "id", pos)) {
    last = pos;
  }
  char line[256];
  if (last == std::string::npos) {
    std::snprintf(line, sizeof line, "incidents  %0.f committed\n", total);
    return line;
  }
  // `last` sits just past the final "id": — back up so the extractors see
  // the whole final summary object.
  const std::size_t anchor = last >= 8 ? last - 8 : 0;
  std::snprintf(
      line, sizeof line,
      "incidents  %.0f committed | latest #%.0f %s trigger=%.0f model=%.0f\n",
      total, num_field(incidents_body, "id", anchor),
      str_field(incidents_body, "reason", anchor).c_str(),
      num_field(incidents_body, "trigger_interval", anchor),
      num_field(incidents_body, "model_version", anchor));
  return line;
}

}  // namespace mhm::tool
