#!/bin/sh
# Append one perf-trajectory row to BENCH_trend.json (JSON lines, one object
# per bench run — see docs/FILE_FORMATS.md). Reads the BENCH_pipeline.json a
# perf_pipeline run just wrote and distills the headline numbers, so the
# tracked trend file stays a few hundred bytes per PR while the full
# per-thread breakdown remains in the untracked BENCH_pipeline.json.
#
# Re-running at the same commit replaces that commit's row (dedupe by the
# "git" field, newest run wins) instead of stacking duplicates — re-running
# a bench locally or re-triggering CI must not distort the trajectory.
#
#   usage: tools/bench_trend.sh [BENCH_pipeline.json] [BENCH_trend.json]
set -eu

in=${1:-BENCH_pipeline.json}
out=${2:-BENCH_trend.json}

[ -r "$in" ] || { echo "bench_trend: cannot read $in" >&2; exit 1; }

# First occurrence of a numeric/boolean top-level field.
num() { sed -n "s/.*\"$1\": *\([-0-9.truefalse]*\).*/\1/p" "$in" | head -n 1; }
# Last per-run analyze latency (the highest thread count's row).
analyze_us=$(sed -n 's/.*"analyze_mean_us": *\([-0-9.]*\).*/\1/p' "$in" \
  | tail -n 1)
mode=$(sed -n 's/.*"mode": *"\([a-z]*\)".*/\1/p' "$in" | head -n 1)
git_rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
# Absent in BENCH files written before the profiler existed.
prof_pct=$(num prof_overhead_pct)
# Absent before the fast top-k PCA path existed.
pca_fast_s=$(num train_pca_fast_seconds)
pca_speedup=$(num pca_speedup_vs_exact)

# Drop any earlier row for this commit (grep -v exits 1 when everything
# matches — an empty survivor set is fine).
if [ -f "$out" ]; then
  grep -v "\"git\":\"$git_rev\"" "$out" > "$out.tmp" || true
  mv "$out.tmp" "$out"
fi

printf '{"date":"%s","git":"%s","mode":"%s","hardware_threads":%s,"best_train_speedup":%s,"analyze_mean_us":%s,"obs_overhead_pct":%s,"server_overhead_pct":%s,"model_health_overhead_pct":%s,"history_incident_overhead_pct":%s,"prof_overhead_pct":%s,"train_pca_fast_seconds":%s,"pca_speedup_vs_exact":%s,"bit_identical":%s}\n' \
  "$stamp" "$git_rev" "${mode:-unknown}" \
  "$(num hardware_threads)" "$(num best_train_speedup)" \
  "${analyze_us:-0}" "$(num obs_overhead_pct)" \
  "$(num server_overhead_pct)" "$(num model_health_overhead_pct)" \
  "$(num history_incident_overhead_pct)" "${prof_pct:-0}" \
  "${pca_fast_s:-0}" "${pca_speedup:-0}" \
  "$(num bit_identical)" >> "$out"
echo "bench_trend: appended row to $out ($(wc -l < "$out") total)"
