// Ablation A6 — monitoring interval. The paper samples one MHM every 10 ms
// (chosen "arbitrarily", §5.2). Shorter intervals react faster but see
// fewer accesses per map (noisier composition, more phases); longer
// intervals smooth the composition but delay detection and blur short
// attacks. This bench sweeps the interval and reports detection AUC and
// detection latency in *milliseconds* (latency in intervals times interval
// length), plus the per-interval traffic scale.

#include <cstdio>

#include "bench_support.hpp"
#include "common/stats.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Ablation A6 — monitoring interval sweep");

  CsvWriter csv("ablation_interval.csv");
  csv.header({"interval_ms", "mean_volume", "auc_app", "auc_rootkit",
              "latency_ms_app"});
  TextTable table({"interval", "mean vol", "AUC app", "AUC rootkit",
                   "detect latency (app)"});

  for (std::uint64_t interval_ms : {5ull, 10ull, 20ull, 50ull}) {
    sim::SystemConfig cfg = bench_config(1);
    cfg.monitor.interval = interval_ms * kMillisecond;

    pipeline::ProfilingPlan plan;
    plan.runs = fast_mode() ? 2 : 5;
    plan.run_duration = fast_mode() ? 1 * kSecond : 2 * kSecond;

    AnomalyDetector::Options opts;
    opts.pca.components = 9;
    opts.gmm.components = 5;
    opts.gmm.restarts = 3;
    const auto pipe = pipeline::train_pipeline(cfg, plan, opts);

    RunningStats volume;
    for (const auto& m : pipe.training) {
      volume.add(static_cast<double>(m.total_accesses()));
    }

    const SimTime duration = 2 * kSecond;
    const SimTime trigger = 500 * kMillisecond;
    pipeline::ScenarioRun normal_run = pipeline::run_scenario(
        cfg, nullptr, 0, duration, pipe.detector.get(), 9001);

    auto run_attack = [&](const std::string& name) {
      auto attack = attacks::make_scenario(name);
      return pipeline::run_scenario(cfg, attack.get(), trigger, duration,
                                    pipe.detector.get(), 9002);
    };
    const std::vector<double> normal_dens = normal_run.log10_densities();
    auto auc_of = [&](const pipeline::ScenarioRun& run) {
      std::vector<double> attacked;
      const std::vector<double> run_dens = run.log10_densities();
      for (std::size_t i = 0; i < run.maps.size(); ++i) {
        if (run.maps[i].interval_index >= run.trigger_interval) {
          attacked.push_back(run_dens[i]);
        }
      }
      return roc_auc(normal_dens, attacked);
    };

    const pipeline::ScenarioRun app = run_attack("app_addition");
    const pipeline::ScenarioRun rk = run_attack("rootkit");
    const double auc_app = auc_of(app);
    const double auc_rk = auc_of(rk);
    const auto latency = app.detection_latency(pipe.theta_1.log10_value);
    const double latency_ms =
        latency ? static_cast<double>(*latency) * static_cast<double>(interval_ms)
                : -1.0;

    table.add_row(
        {std::to_string(interval_ms) + " ms", fmt_double(volume.mean(), 0),
         fmt_double(auc_app, 3), fmt_double(auc_rk, 3),
         latency ? fmt_double(latency_ms, 0) + " ms" : "missed"});
    csv.row()
        .col(interval_ms)
        .col(volume.mean())
        .col(auc_app)
        .col(auc_rk)
        .col(latency_ms);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nexpected shape: per-interval volume scales linearly with "
              "the interval; short intervals give the lowest detection "
              "latency in wall-clock terms as long as AUC holds up.\n");
  std::printf("[bench] wrote ablation_interval.csv\n");
  return 0;
}
