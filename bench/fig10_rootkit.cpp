// Reproduces Figure 10 (§5.3-3): the log probability density of the MHMs
// while the read-hijack rootkit is active. The load moment is a strong
// anomaly; the stealthy phase afterwards shows intermittently low densities
// — not always statistically distinguishable — whose appearance is
// synchronized with sha (period 100 ms), because the hijack latency shifts
// the timing of sha's many read calls.

#include <cstdio>

#include "bench_support.hpp"
#include "common/stats.hpp"
#include "core/explainer.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Figure 10 — log Pr(M) under a read-hijack rootkit");
  const pipeline::TrainedPipeline& pipe = trained_pipeline();

  const SimTime interval = bench_config().monitor.interval;
  const SimTime trigger = 102 * interval;
  attacks::RootkitAttack attack;

  pipeline::ScenarioRun run =
      pipeline::run_scenario(bench_config(), &attack, trigger,
                             /*duration=*/400 * interval,
                             pipe.detector.get(), /*seed=*/999);

  print_detection_figure(
      run, pipe,
      "log10 Pr(M) over 400 intervals — rootkit loaded at the bar");

  // --- stealth-phase analysis ---
  const double theta1 = pipe.theta_1.log10_value;
  std::size_t stealth_flagged = 0;
  std::size_t stealth_total = 0;
  // sha has a 100 ms period = 10 intervals; sha's read-heavy window covers
  // the first few intervals of each of its periods. Count how the flagged
  // stealth intervals distribute over the 10 hyperperiod phases.
  std::vector<std::size_t> flagged_by_phase(10, 0);
  std::vector<std::size_t> total_by_phase(10, 0);
  const std::vector<double> dens = run.log10_densities();
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    const auto idx = run.maps[i].interval_index;
    if (idx <= run.trigger_interval + 1) continue;
    ++stealth_total;
    const auto phase = static_cast<std::size_t>(idx % 10);
    ++total_by_phase[phase];
    if (dens[i] < theta1) {
      ++stealth_flagged;
      ++flagged_by_phase[phase];
    }
  }

  std::printf("\nstealth phase: %zu of %zu intervals flagged at theta_1 "
              "(%.1f%%) — intermittent, as in the paper\n",
              stealth_flagged, stealth_total,
              100.0 * static_cast<double>(stealth_flagged) /
                  static_cast<double>(stealth_total));

  std::printf("\nflagged stealth intervals by hyperperiod phase "
              "(sha releases at phase 0):\n");
  TextTable phase_table({"phase", "flagged", "total", "rate %"});
  std::size_t best_phase = 0;
  double best_rate = -1.0;
  for (std::size_t p = 0; p < 10; ++p) {
    const double rate =
        total_by_phase[p] ? 100.0 * static_cast<double>(flagged_by_phase[p]) /
                                static_cast<double>(total_by_phase[p])
                          : 0.0;
    if (rate > best_rate) {
      best_rate = rate;
      best_phase = p;
    }
    phase_table.add_row({std::to_string(p), std::to_string(flagged_by_phase[p]),
                         std::to_string(total_by_phase[p]),
                         fmt_double(rate, 1)});
  }
  std::fputs(phase_table.str().c_str(), stdout);

  print_comparison({
      {"load moment", "strong anomaly",
       run.detection_latency(theta1)
           ? "flagged " + std::to_string(*run.detection_latency(theta1)) +
                 " interval(s) after load"
           : "not flagged"},
      {"stealth phase", "somewhat low densities, not always distinguishable",
       fmt_double(100.0 * static_cast<double>(stealth_flagged) /
                      static_cast<double>(stealth_total),
                  1) + " % of intervals flagged"},
      {"synchronization with sha", "abnormal ones synchronized with sha",
       "phase " + std::to_string(best_phase) + " flags most (" +
           fmt_double(best_rate, 1) + " %)"},
  });

  // --- extension: SPE (Q-statistic) companion detector ---
  // The GMM scores positions inside the eigenmemory subspace and is
  // structurally blind to deviations orthogonal to it — the module-loader
  // cells carry no training variance, so the load burst barely moves the
  // projected weights (hence the few-interval detection delay above). The
  // classic PCA-monitoring remedy is to also watch the reconstruction
  // residual.
  print_header("Extension — SPE residual detector on the same run");
  std::vector<std::vector<double>> validation_raw;
  for (const auto& m : pipe.validation) validation_raw.push_back(m.as_vector());
  const SpeDetector spe(pipe.det().eigenmemory(), validation_raw, 0.01);

  std::optional<std::uint64_t> spe_latency;
  std::size_t spe_stealth_flags = 0;
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    const auto idx = run.maps[i].interval_index;
    if (idx < run.trigger_interval) continue;
    const bool alarm = spe.anomalous(run.maps[i]);
    if (alarm && !spe_latency) spe_latency = idx - run.trigger_interval;
    if (alarm && idx > run.trigger_interval + 1) ++spe_stealth_flags;
  }
  std::printf("SPE detector: load flagged %s; %zu stealth intervals flagged\n",
              spe_latency ? ("+" + std::to_string(*spe_latency) +
                             " intervals after load")
                                .c_str()
                          : "never",
              spe_stealth_flags);
  std::printf("(GMM latency above: %s — SPE closes the orthogonal-deviation "
              "blind spot at the load moment)\n",
              run.detection_latency(theta1)
                  ? ("+" + std::to_string(*run.detection_latency(theta1)))
                        .c_str()
                  : "never");

  write_series_csv("fig10_rootkit", run);
  return 0;
}
