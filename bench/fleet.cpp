// PERF — fleet capacity: how many device sessions one host sustains.
//
// Sweeps a heterogeneous fleet (steady / bursty / attacked archetype mix)
// over N = 1k and 10k devices (100k with MHM_BENCH_FLEET_LARGE=1), scoring
// every stream through the sharded engine with live aggregation, and
// reports per sweep point:
//
//   * intervals/sec        — aggregate scoring throughput (wall clock);
//   * sessions/core        — sustainable 100 Hz devices per core
//                            (intervals_per_sec / 100 / cores);
//   * bytes/session        — resident-set growth of constructing the fleet
//                            divided by N, checked against the spec's
//                            session_bytes_budget. A breach exits non-zero:
//                            per-session memory is a contract, not a stat.
//
// A separate leg times the same fleet with aggregation disabled
// (FleetRunner::set_aggregation(false)) and reports the aggregation
// overhead percentage — the fleet extension of the <2% observability
// contract, also enforced by exit code.
//
// Writes BENCH_fleet.json; field documentation lives in
// docs/FILE_FORMATS.md. MHM_BENCH_FAST=1 shrinks the trained model and the
// interval count as usual.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench_support.hpp"
#include "common/parallel.hpp"
#include "fleet/runner.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// VmRSS from /proc/self/status, in bytes (0 if unreadable).
std::size_t resident_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

/// Return freed arena pages to the kernel so successive RSS deltas measure
/// this sweep point, not the previous one's recycled heap.
void trim_heap() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

mhm::fleet::FleetSpec sweep_spec(std::size_t devices, std::size_t intervals) {
  mhm::fleet::FleetSpec spec;
  spec.devices = devices;
  spec.intervals = intervals;
  spec.seed = 1;
  spec.health_refresh = 8;
  mhm::fleet::ArchetypeSpec steady;
  steady.name = "steady";
  steady.weight = 0.8;
  spec.archetypes.push_back(steady);
  mhm::fleet::ArchetypeSpec bursty;
  bursty.name = "bursty";
  bursty.weight = 0.1;
  bursty.jitter_scale = 2.0;
  spec.archetypes.push_back(bursty);
  mhm::fleet::ArchetypeSpec attacked;
  attacked.name = "shellcode";
  attacked.weight = 0.1;
  attacked.attack = "shellcode";
  attacked.trigger_interval = intervals / 2;
  spec.archetypes.push_back(attacked);
  return spec;
}

struct Row {
  std::size_t devices = 0;
  std::size_t shards = 0;
  std::uint64_t intervals = 0;
  std::uint64_t alarms = 0;
  double seconds = 0.0;
  double intervals_per_sec = 0.0;
  double sessions_per_core = 0.0;
  std::size_t rss_delta_bytes = 0;
  std::size_t bytes_per_session = 0;
  bool budget_ok = true;
};

}  // namespace

int main() {
  using namespace mhm::bench;

  print_header("PERF — fleet capacity (sharded runner + aggregation)");

  const mhm::pipeline::TrainedPipeline& pipe = trained_pipeline();
  const auto model = pipe.detector->snapshot();
  const mhm::sim::SystemConfig cfg = bench_config(1);

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t threads = mhm::configured_threads();
  const std::size_t intervals = fast_mode() ? 16 : 50;
  std::printf("cores=%zu threads=%zu intervals/device=%zu\n\n", cores,
              threads, intervals);

  std::vector<std::size_t> sweep = {1000, 10000};
  if (const char* large = std::getenv("MHM_BENCH_FLEET_LARGE");
      large != nullptr && large[0] == '1') {
    sweep.push_back(100000);
  }

  std::vector<Row> rows;
  bool budget_ok = true;
  for (const std::size_t devices : sweep) {
    const mhm::fleet::FleetSpec spec = sweep_spec(devices, intervals);
    trim_heap();
    const std::size_t rss0 = resident_bytes();
    mhm::fleet::FleetRunner runner(spec, cfg, model);
    const std::size_t rss1 = resident_bytes();

    const auto t0 = Clock::now();
    runner.run_all();
    const double secs = seconds_since(t0);

    const auto snap = runner.aggregator().snapshot();
    Row row;
    row.devices = devices;
    row.shards = runner.shard_count();
    row.intervals = snap.intervals;
    row.alarms = snap.alarms;
    row.seconds = secs;
    row.intervals_per_sec =
        secs > 0.0 ? static_cast<double>(snap.intervals) / secs : 0.0;
    // Devices emit one MHM per 10 ms interval: 100 intervals/sec each.
    row.sessions_per_core =
        row.intervals_per_sec / 100.0 / static_cast<double>(cores);
    row.rss_delta_bytes = rss1 > rss0 ? rss1 - rss0 : 0;
    row.bytes_per_session = row.rss_delta_bytes / devices;
    row.budget_ok = row.bytes_per_session <= spec.session_bytes_budget;
    if (!row.budget_ok) budget_ok = false;
    rows.push_back(row);

    std::printf(
        "N=%-7zu shards=%-3zu %10.0f intervals/s  %8.0f sessions/core  "
        "%7zu B/session (budget %zu) %s  alarms=%llu\n",
        row.devices, row.shards, row.intervals_per_sec,
        row.sessions_per_core, row.bytes_per_session,
        spec.session_bytes_budget, row.budget_ok ? "ok" : "OVER",
        static_cast<unsigned long long>(row.alarms));
    std::fflush(stdout);
  }

  // --- aggregation overhead leg: same fleet, aggregator detached --------
  // Each trial times a with/without pair back-to-back and the minimum
  // paired overhead is reported: scheduler noise only ever inflates a pair,
  // so one clean trial pins the true cost — far more robust on shared or
  // single-core hosts than comparing independent best-of-N legs. The timed
  // region also runs more intervals than the sweep points so a 2% contract
  // is measurable at all.
  constexpr std::size_t kTrials = 5;
  const std::size_t overhead_devices = 1000;
  const std::size_t overhead_intervals = fast_mode() ? 128 : 256;
  const mhm::fleet::FleetSpec overhead_spec =
      sweep_spec(overhead_devices, overhead_intervals);
  double overhead_pct = 0.0;
  double with_agg = 0.0;
  double without_agg = 0.0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    double pair[2] = {0.0, 0.0};
    for (const bool aggregate : {true, false}) {
      mhm::fleet::FleetRunner runner(overhead_spec, cfg, model);
      runner.set_aggregation(aggregate);
      const auto t0 = Clock::now();
      runner.run_all();
      pair[aggregate ? 0 : 1] = seconds_since(t0);
    }
    const double pct =
        pair[1] > 0.0 ? (pair[0] - pair[1]) / pair[1] * 100.0 : 0.0;
    if (trial == 0 || pct < overhead_pct) {
      overhead_pct = pct;
      with_agg = pair[0];
      without_agg = pair[1];
    }
  }
  constexpr double kOverheadContractPct = 2.0;
  const bool overhead_ok = overhead_pct < kOverheadContractPct;
  std::printf(
      "\naggregation overhead @ N=%zu: %.3f s with, %.3f s without "
      "-> %.2f%% (contract < %.1f%%) %s\n",
      overhead_devices, with_agg, without_agg, overhead_pct,
      kOverheadContractPct, overhead_ok ? "ok" : "BREACH");

  std::FILE* json = std::fopen("BENCH_fleet.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "[bench] cannot write BENCH_fleet.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"fleet\",\n");
  std::fprintf(json, "  \"mode\": \"%s\",\n", fast_mode() ? "fast" : "paper");
  std::fprintf(json, "  \"cores\": %zu,\n", cores);
  std::fprintf(json, "  \"threads\": %zu,\n", threads);
  std::fprintf(json, "  \"intervals_per_device\": %zu,\n", intervals);
  std::fprintf(json, "  \"session_bytes_budget\": %zu,\n",
               sweep_spec(1, 1).session_bytes_budget);
  std::fprintf(json, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"devices\": %zu, \"shards\": %zu, \"intervals\": "
                 "%llu, \"alarms\": %llu, \"seconds\": %.4f, "
                 "\"intervals_per_sec\": %.1f, \"sessions_per_core\": %.1f, "
                 "\"rss_delta_bytes\": %zu, \"bytes_per_session\": %zu, "
                 "\"budget_ok\": %s}%s\n",
                 r.devices, r.shards,
                 static_cast<unsigned long long>(r.intervals),
                 static_cast<unsigned long long>(r.alarms), r.seconds,
                 r.intervals_per_sec, r.sessions_per_core, r.rss_delta_bytes,
                 r.bytes_per_session, r.budget_ok ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"aggregation_overhead_pct\": %.3f,\n", overhead_pct);
  std::fprintf(json, "  \"overhead_contract_pct\": %.1f,\n",
               kOverheadContractPct);
  std::fprintf(json, "  \"overhead_ok\": %s,\n",
               overhead_ok ? "true" : "false");
  std::fprintf(json, "  \"budget_ok\": %s\n", budget_ok ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_fleet.json\n");

  if (!budget_ok) {
    std::fprintf(stderr,
                 "[bench] per-session memory budget exceeded (see rows)\n");
    return 1;
  }
  if (!overhead_ok) {
    std::fprintf(stderr, "[bench] aggregation overhead contract breached\n");
    return 1;
  }
  return 0;
}
