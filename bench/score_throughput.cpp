// PERF — batched SoA scoring throughput (the §5.4 analysis cost, amortized
// across a shard of sessions).
//
// Sweeps score_snapshot_batch over batch sizes {1, 4, 16, 64, 256, 1024},
// compares against the serial score_snapshot loop, verifies the batch path
// is bit-identical to serial at every size, counts heap allocations inside
// the timed region (must be zero after warmup — the global operator new is
// replaced with a counting shim), and writes BENCH_score_throughput.json.
// Field documentation lives in docs/FILE_FORMATS.md.
//
// MHM_BENCH_FAST=1 shrinks the trained model as usual; the JSON records
// which mode produced it.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/snapshot.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_tracking{false};

void* counted_alloc(std::size_t size) {
  if (g_alloc_tracking.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

// Counting global allocator: every new/delete in the process funnels through
// malloc/free with an optional atomic count, so the bench can prove the
// steady-state batch loop never touches the heap.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;
using mhm::BatchScoreScratch;
using mhm::ModelSnapshot;
using mhm::ScoreBatch;
using mhm::ScoreScratch;
using mhm::Verdict;

double ns_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

struct Row {
  std::size_t batch = 0;
  double ns_per_interval = 0.0;
  double speedup_vs_batch1 = 0.0;
  std::uint64_t allocations = 0;
  std::size_t intervals = 0;
};

}  // namespace

int main() {
  using namespace mhm::bench;

  print_header("PERF — batched SoA scoring throughput (score_snapshot_batch)");

  const mhm::pipeline::TrainedPipeline& pipe = trained_pipeline();
  const ModelSnapshot& model = *pipe.detector->snapshot();

  // Map pool: the training + validation traces, as raw rows. Batches cycle
  // through the pool, so any pool size serves any batch size.
  std::vector<std::vector<double>> pool;
  pool.reserve(pipe.training.size() + pipe.validation.size());
  for (const auto& m : pipe.training) pool.push_back(m.as_vector());
  for (const auto& m : pipe.validation) pool.push_back(m.as_vector());
  if (pool.empty()) {
    std::fprintf(stderr, "[bench] empty map pool\n");
    return 1;
  }
  const std::size_t pool_size = pool.size();
  std::printf("pool=%zu maps  L=%zu  L'=%zu  J=%zu\n\n", pool_size,
              model.pca.input_dim(), model.pca.components(),
              model.gmm.component_count());

  // Everyone scores the same interval count so the amortized ns/interval
  // rows are comparable; fast mode keeps CI smoke runs quick. Every timed
  // region is repeated and the best (minimum) trial is reported — on shared
  // or single-core runners the mean is dominated by scheduler steal, while
  // the min tracks what the code actually costs.
  const std::size_t total_target = fast_mode() ? 4096 : 16384;
  constexpr std::size_t kTrials = 5;

  // --- serial reference: the score_snapshot loop every session runs today.
  ScoreScratch serial_scratch;
  std::vector<Verdict> serial_ref;  // Pool-order verdicts, for bit-identity.
  serial_ref.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    serial_ref.push_back(
        mhm::score_snapshot(model, pool[i], i, serial_scratch));
  }
  double serial_ns = 0.0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const auto t0 = Clock::now();
    std::size_t idx = 0;
    for (std::size_t n = 0; n < total_target; ++n) {
      mhm::score_snapshot(model, pool[idx], idx, serial_scratch);
      idx = (idx + 1) % pool_size;
    }
    const double ns = ns_since(t0) / static_cast<double>(total_target);
    if (trial == 0 || ns < serial_ns) serial_ns = ns;
  }
  std::printf("serial score_snapshot: %9.1f ns/interval\n", serial_ns);

  const std::size_t batch_sizes[] = {1, 4, 16, 64, 256, 1024};
  std::vector<Row> rows;
  bool bit_identical = true;

  ScoreBatch batch;
  BatchScoreScratch scratch;
  for (const std::size_t bsize : batch_sizes) {
    const std::size_t rounds =
        std::max<std::size_t>(1, total_target / bsize);

    // One strided pass over the pool per round, mirrored by the timed loop.
    const auto fill = [&](std::size_t round) {
      batch.clear(model.pca.input_dim());
      std::size_t idx = (round * bsize) % pool_size;
      for (std::size_t b = 0; b < bsize; ++b) {
        batch.push(pool[idx], idx);
        idx = (idx + 1) % pool_size;
      }
    };

    // Warmup: brings every buffer to its high-water mark and checks
    // bit-identity against the serial reference sample by sample.
    for (std::size_t round = 0; round < 2; ++round) {
      fill(round);
      mhm::score_snapshot_batch(model, batch, scratch);
      for (std::size_t b = 0; b < batch.size(); ++b) {
        const Verdict& ref = serial_ref[batch.interval_index(b)];
        const Verdict got = batch.verdict(b);
        if (got.log10_density != ref.log10_density || got.spe != ref.spe ||
            got.nearest_pattern != ref.nearest_pattern ||
            got.anomalous != ref.anomalous) {
          bit_identical = false;
        }
      }
    }

    // Timed + allocation-counted region: best of kTrials, allocations
    // summed across all of them (still must be zero).
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_alloc_tracking.store(true, std::memory_order_relaxed);
    double best_ns = 0.0;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const auto t0 = Clock::now();
      for (std::size_t round = 0; round < rounds; ++round) {
        fill(round);
        mhm::score_snapshot_batch(model, batch, scratch);
      }
      const double ns = ns_since(t0);
      if (trial == 0 || ns < best_ns) best_ns = ns;
    }
    g_alloc_tracking.store(false, std::memory_order_relaxed);

    Row row;
    row.batch = bsize;
    row.intervals = rounds * bsize;
    row.ns_per_interval = best_ns / static_cast<double>(row.intervals);
    row.allocations = g_alloc_count.load(std::memory_order_relaxed);
    rows.push_back(row);
  }
  for (Row& row : rows) {
    row.speedup_vs_batch1 = rows.front().ns_per_interval / row.ns_per_interval;
  }

  std::printf("\n%8s %16s %12s %12s %10s\n", "batch", "ns/interval",
              "speedup", "intervals", "allocs");
  for (const Row& row : rows) {
    std::printf("%8zu %16.1f %12.2fx %12zu %10llu\n", row.batch,
                row.ns_per_interval, row.speedup_vs_batch1, row.intervals,
                static_cast<unsigned long long>(row.allocations));
  }
  std::printf("\nbit-identical to serial: %s\n", bit_identical ? "yes" : "NO");

  double speedup_64 = 0.0;
  std::uint64_t allocations_total = 0;
  for (const Row& row : rows) {
    if (row.batch == 64) speedup_64 = row.speedup_vs_batch1;
    allocations_total += row.allocations;
  }

  std::FILE* json = std::fopen("BENCH_score_throughput.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "[bench] cannot write BENCH_score_throughput.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"score_throughput\",\n");
  std::fprintf(json, "  \"mode\": \"%s\",\n", fast_mode() ? "fast" : "paper");
  std::fprintf(json, "  \"input_dim\": %zu,\n", model.pca.input_dim());
  std::fprintf(json, "  \"eigenmemories\": %zu,\n", model.pca.components());
  std::fprintf(json, "  \"mixture_components\": %zu,\n",
               model.gmm.component_count());
  std::fprintf(json, "  \"pool_maps\": %zu,\n", pool_size);
  std::fprintf(json, "  \"serial_ns_per_interval\": %.1f,\n", serial_ns);
  std::fprintf(json, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(json,
                 "    {\"batch\": %zu, \"ns_per_interval\": %.1f, "
                 "\"speedup_vs_batch1\": %.3f, \"intervals\": %zu, "
                 "\"allocations\": %llu}%s\n",
                 row.batch, row.ns_per_interval, row.speedup_vs_batch1,
                 row.intervals,
                 static_cast<unsigned long long>(row.allocations),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup_batch64_vs_batch1\": %.3f,\n", speedup_64);
  std::fprintf(json, "  \"allocations_after_warmup\": %llu,\n",
               static_cast<unsigned long long>(allocations_total));
  std::fprintf(json, "  \"bit_identical\": %s\n",
               bit_identical ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("[bench] wrote BENCH_score_throughput.json\n");

  if (!bit_identical) return 1;
  if (allocations_total != 0) {
    std::fprintf(stderr,
                 "[bench] FAIL: %llu allocations inside the timed region\n",
                 static_cast<unsigned long long>(allocations_total));
    return 1;
  }
  return 0;
}
