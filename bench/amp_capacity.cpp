// §5.5 extension bench — secure-core capacity in an AMP deployment.
// The paper notes that AMP architectures replicate the Memometer per OS
// instance; the open question is how many instances one secure core can
// analyze inside a single 10 ms monitoring interval. The budget is
//   N_max = interval / t_analysis,
// so this bench measures the summed per-interval analysis time for growing
// instance counts and extrapolates the capacity, for both the coarse
// (L = 368) and the paper (L = 1472) configurations.

#include <cstdio>
#include <memory>

#include "bench_support.hpp"
#include "pipeline/amp_monitor.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("AMP capacity — monitored OS instances per secure core");

  sim::SystemConfig cfg = bench_config(1);
  pipeline::ProfilingPlan plan;
  plan.runs = fast_mode() ? 2 : 4;
  plan.run_duration = fast_mode() ? 1 * kSecond : 2 * kSecond;

  AnomalyDetector::Options opts;
  opts.pca.components = 9;
  opts.gmm.components = 5;
  opts.gmm.restarts = 3;
  const auto pipe = pipeline::train_pipeline(cfg, plan, opts);

  CsvWriter csv("amp_capacity.csv");
  csv.header({"instances", "mean_total_analysis_us", "budget_fraction",
              "overruns"});
  TextTable table({"instances", "sum analysis/interval", "% of 10 ms budget",
                   "overruns"});

  double per_instance_us = 0.0;
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    pipeline::AmpMonitor monitor;
    std::vector<std::unique_ptr<sim::System>> systems;
    for (std::size_t i = 0; i < n; ++i) {
      sim::SystemConfig inst_cfg = cfg;
      inst_cfg.seed = 9000 + i;
      systems.push_back(std::make_unique<sim::System>(inst_cfg));
      monitor.attach(*systems.back(), pipe.det());
    }
    monitor.run_all(fast_mode() ? 1 * kSecond : 2 * kSecond);

    const double total_us =
        monitor.mean_total_analysis_ns_per_interval() / 1000.0;
    const double budget =
        total_us / (static_cast<double>(cfg.monitor.interval) / 1000.0);
    if (n == 1) per_instance_us = total_us;
    table.add_row({std::to_string(n), fmt_double(total_us, 1) + " us",
                   fmt_double(100.0 * budget, 3) + " %",
                   std::to_string(monitor.budget_overruns())});
    csv.row()
        .col(static_cast<std::uint64_t>(n))
        .col(total_us)
        .col(budget)
        .col(static_cast<std::uint64_t>(monitor.budget_overruns()));
  }
  std::fputs(table.str().c_str(), stdout);

  const double interval_us =
      static_cast<double>(cfg.monitor.interval) / 1000.0;
  std::printf("\nextrapolated capacity at this host's analysis speed: "
              "~%.0f instances per secure core (10 ms / %.1f us).\n",
              interval_us / per_instance_us, per_instance_us);
  std::printf("at the paper's 358 us per analysis (simulated ARM secure "
              "core, L = 1472): ~%.0f instances — comfortably more than "
              "any realistic AMP partition count.\n",
              interval_us / 358.0);
  std::printf("[bench] wrote amp_capacity.csv\n");
  return 0;
}
