// Reproduces Figure 1: an example Memory Heat Map of the (synthetic) kernel
// .text segment measured for one 10 ms interval, together with the
// parameter table the figure carries (AddrBase, region size, granularity,
// cell count).

#include <cinttypes>
#include <cstdio>

#include "bench_support.hpp"
#include "common/csv.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Figure 1 — example MHM of the kernel .text segment (10 ms)");

  sim::SystemConfig cfg = bench_config(/*seed=*/1);
  sim::System system(cfg);
  // Run past the first hyperperiod so the sampled interval is a steady one.
  system.run_for(210 * kMillisecond);
  const HeatMap& map = system.trace().at(20);

  print_comparison({
      {"AddrBase", "0xC0008000",
       "0x" + [&] {
         char buf[32];
         std::snprintf(buf, sizeof buf, "%" PRIX64, cfg.monitor.base);
         return std::string(buf);
       }()},
      {"Memory region size", "3,013,284 bytes",
       std::to_string(cfg.monitor.size) + " bytes"},
      {"Granularity", "2,048 bytes",
       std::to_string(cfg.monitor.granularity) + " bytes"},
      {"# Cells", "1,472", std::to_string(map.cell_count())},
  });

  std::printf("\nSampled interval %" PRIu64 ": total accesses %" PRIu64
              ", active cells %zu (%.1f%%)\n\n",
              map.interval_index, map.total_accesses(), map.active_cells(),
              100.0 * static_cast<double>(map.active_cells()) /
                  static_cast<double>(map.cell_count()));

  HeatMapPlotOptions plot;
  plot.title = "MHM rendered as a 2-D shade map (cells folded row-major, "
               "log-scaled counts)";
  plot.width = 92;
  plot.rows = 16;
  const std::vector<std::uint64_t> cells(map.counts().begin(),
                                         map.counts().end());
  std::fputs(render_heat_map(cells, plot).c_str(), stdout);

  // Annotate which kernel subsystems the hottest cells belong to: the
  // figure's point is that an MHM is a composition of identifiable
  // activities.
  std::printf("\nHottest cells and their subsystems:\n");
  std::vector<std::size_t> order(map.cell_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return map[a] > map[b];
  });
  TextTable hot({"cell", "address", "accesses", "subsystem"});
  for (std::size_t k = 0; k < 8 && map[order[k]] > 0; ++k) {
    const std::size_t cell = order[k];
    const Address addr =
        cfg.monitor.base + static_cast<Address>(cell) * cfg.monitor.granularity;
    const auto* fn = system.kernel().function_at(addr);
    char addr_buf[32];
    std::snprintf(addr_buf, sizeof addr_buf, "0x%" PRIX64, addr);
    hot.add_row({std::to_string(cell), addr_buf,
                 std::to_string(map[cell]),
                 fn != nullptr
                     ? system.kernel().subsystems()[fn->subsystem].name
                     : "(padding)"});
  }
  std::fputs(hot.str().c_str(), stdout);

  CsvWriter csv("fig1_heatmap.csv");
  csv.header({"cell", "address", "count"});
  for (std::size_t c = 0; c < map.cell_count(); ++c) {
    csv.row()
        .col(static_cast<std::uint64_t>(c))
        .col(cfg.monitor.base + static_cast<Address>(c) * cfg.monitor.granularity)
        .col(static_cast<std::uint64_t>(map[c]));
  }
  std::printf("[bench] wrote fig1_heatmap.csv\n");
  return 0;
}
