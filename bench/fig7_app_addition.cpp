// Reproduces Figure 7 (§5.3-1, Application Addition/Deletion): while the
// four MiBench-like tasks run, qsort (6 ms / 30 ms) is launched shortly
// after the 250th interval and later exits; the log probability density of
// the MHMs drops immediately and stays low while qsort runs, then recovers.
// The paper reports 0 and 2 abnormal intervals among the first 250 at
// theta_0.5 / theta_1 (false-positive rates 0 % and 0.8 %).

#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Figure 7 — application addition (qsort launched and exited)");
  const pipeline::TrainedPipeline& pipe = trained_pipeline();

  // 500 intervals; qsort launches just after interval 250 and exits ~120
  // intervals later (the figure shows both the drop and the recovery).
  const SimTime interval = bench_config().monitor.interval;
  const SimTime trigger = 252 * interval;
  const SimTime qsort_lifetime = 120 * interval;
  attacks::AppAdditionAttack attack(sim::qsort_task_spec(), qsort_lifetime);

  pipeline::ScenarioRun run =
      pipeline::run_scenario(bench_config(), &attack, trigger,
                             /*duration=*/500 * interval,
                             pipe.detector.get(), /*seed=*/777);

  print_detection_figure(run, pipe,
                         "log10 Pr(M) over 500 intervals — qsort launched at "
                         "the bar, exits ~120 intervals later");

  const std::size_t before = run.intervals_before_trigger();
  const std::size_t fp05 =
      run.false_positives_before_trigger(pipe.theta_05.log10_value);
  const std::size_t fp1 =
      run.false_positives_before_trigger(pipe.theta_1.log10_value);
  print_comparison({
      {"abnormal before launch (theta_0.5)", "0 of 250 (0 %)",
       std::to_string(fp05) + " of " + std::to_string(before)},
      {"abnormal before launch (theta_1)", "2 of 250 (0.8 %)",
       std::to_string(fp1) + " of " + std::to_string(before)},
      {"density right after launch", "drops immediately, stays low",
       run.detection_latency(pipe.theta_1.log10_value)
           ? "first flagged " +
                 std::to_string(*run.detection_latency(pipe.theta_1.log10_value)) +
                 " interval(s) after launch"
           : "not detected"},
  });

  // Recovery after qsort exits (the figure's right edge).
  const std::uint64_t exit_interval = run.trigger_interval + 122;
  std::size_t tail_alarms = 0;
  std::size_t tail_total = 0;
  const std::vector<double> dens = run.log10_densities();
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    if (run.maps[i].interval_index >= exit_interval + 5) {
      ++tail_total;
      tail_alarms += (dens[i] < pipe.theta_1.log10_value);
    }
  }
  if (tail_total > 0) {
    std::printf("\nafter qsort exit: %zu of %zu intervals flagged (%.1f%%) — "
                "normality restored\n",
                tail_alarms, tail_total,
                100.0 * static_cast<double>(tail_alarms) /
                    static_cast<double>(tail_total));
  }

  write_series_csv("fig7_app_addition", run);
  return 0;
}
