// Ablation A3 — number of GMM components J. The paper "arbitrarily chose
// J = 5" and defers automatic selection to Figueiredo-Jain-style methods.
// This bench sweeps J, reports held-out log-likelihood, BIC and detection
// AUC, and runs the library's BIC-based automatic selection as the
// extension the paper left for future work.

#include <cstdio>

#include "bench_support.hpp"
#include "common/stats.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Ablation A3 — GMM component count (J) sweep + BIC selection");

  sim::SystemConfig cfg = bench_config(1);
  pipeline::ProfilingPlan plan;
  plan.runs = fast_mode() ? 2 : 5;
  plan.run_duration = fast_mode() ? 1 * kSecond : 2 * kSecond;

  // Shared PCA stage: only the GMM stage varies.
  const HeatMapTrace training = pipeline::collect_normal_trace(cfg, plan);
  pipeline::ProfilingPlan vplan = plan;
  vplan.runs = 1;
  vplan.seed_base = plan.seed_base + 100;
  const HeatMapTrace validation = pipeline::collect_normal_trace(cfg, vplan);

  Eigenmemory::Options pca_opts;
  pca_opts.components = 9;
  std::vector<std::vector<double>> train_raw;
  for (const auto& m : training) train_raw.push_back(m.as_vector());
  const Eigenmemory em = Eigenmemory::fit(train_raw, pca_opts);
  const auto reduced_train = em.project_all(train_raw);
  std::vector<std::vector<double>> reduced_valid;
  for (const auto& m : validation) reduced_valid.push_back(em.project(m));

  CsvWriter csv("ablation_gmm.csv");
  csv.header({"J", "train_ll", "heldout_ll", "bic"});
  TextTable table({"J", "train LL/N", "held-out LL/N", "BIC"});

  double best_bic = std::numeric_limits<double>::infinity();
  std::size_t best_j = 0;
  for (std::size_t j = 1; j <= 10; ++j) {
    Gmm::Options gopts;
    gopts.components = j;
    gopts.restarts = 5;
    const Gmm gmm = Gmm::fit(reduced_train, gopts);
    const double train_ll = gmm.total_log_likelihood(reduced_train) /
                            static_cast<double>(reduced_train.size());
    const double valid_ll = gmm.total_log_likelihood(reduced_valid) /
                            static_cast<double>(reduced_valid.size());
    const double bic = gmm.bic(reduced_train);
    if (bic < best_bic) {
      best_bic = bic;
      best_j = j;
    }
    table.add_row({std::to_string(j), fmt_double(train_ll, 2),
                   fmt_double(valid_ll, 2), fmt_double(bic, 0)});
    csv.row()
        .col(static_cast<std::uint64_t>(j))
        .col(train_ll)
        .col(valid_ll)
        .col(bic);
  }
  std::fputs(table.str().c_str(), stdout);

  std::size_t chosen = 0;
  Gmm::Options sel_opts;
  sel_opts.restarts = 5;
  (void)Gmm::select_components(reduced_train, 1, 10, sel_opts, &chosen);
  std::printf("\nBIC-automatic selection picks J = %zu (sweep minimum: J = %zu; "
              "paper manually chose J = 5 for 10 hyperperiod phases)\n",
              chosen, best_j);
  std::printf("[bench] wrote ablation_gmm.csv\n");
  return 0;
}
