// Reproduces §5.2 (training) and Figure 6 (dimensionality reduction):
//  * profile 10 x 3 s of normal runs -> 3,000 MHMs of 1,472 cells,
//  * eigenmemory analysis: how many components cover the variance targets
//    (the paper keeps 9, which account for > 99.99 % of the variance),
//  * Figure 6's decomposition example with 16 eigenmemories,
//  * GMM training with J = 5 and 10 EM restarts.

#include <cmath>
#include <cstdio>

#include "bench_support.hpp"
#include "common/csv.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("§5.2 / Figure 6 — training and eigenmemory analysis");
  const pipeline::TrainedPipeline& pipe = trained_pipeline();
  const Eigenmemory& em = pipe.det().eigenmemory();

  const std::size_t expected_maps = fast_mode() ? 900 : 3000;
  print_comparison({
      {"training MHMs", "3,000 (10 sets x 3 s / 10 ms)",
       std::to_string(pipe.training.size()) +
           (fast_mode() ? " (fast mode)" : "")},
      {"cells per MHM (L)", "1,472",
       std::to_string(pipe.training.front().cell_count())},
      {"eigenmemories kept (L')", "9", std::to_string(em.components())},
      {"variance explained by L'", "> 99.99 %",
       fmt_double(100.0 * em.variance_explained(), 4) + " %"},
      {"GMM components (J)", "5",
       std::to_string(pipe.det().gmm().component_count())},
      {"theta_0.5 (log10)", "(not reported)",
       fmt_double(pipe.theta_05.log10_value, 2)},
      {"theta_1 (log10)", "(not reported)",
       fmt_double(pipe.theta_1.log10_value, 2)},
  });
  (void)expected_maps;

  // --- variance explained versus number of eigenmemories ---
  std::printf("\nVariance explained by the k leading eigenmemories:\n");
  TextTable var_table({"k", "variance explained", "cumulative %"});
  const auto& spectrum = em.spectrum();
  double total = 0.0;
  for (double v : spectrum) total += v;
  double cum = 0.0;
  CsvWriter spectrum_csv("fig6_spectrum.csv");
  spectrum_csv.header({"k", "eigenvalue", "cumulative_fraction"});
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    cum += spectrum[k];
    spectrum_csv.row()
        .col(static_cast<std::uint64_t>(k + 1))
        .col(spectrum[k])
        .col(total > 0 ? cum / total : 1.0);
    if (k < 16) {
      var_table.add_row({std::to_string(k + 1), fmt_double(spectrum[k], 1),
                         fmt_double(100.0 * cum / total, 4)});
    }
  }
  std::fputs(var_table.str().c_str(), stdout);
  std::printf("[bench] wrote fig6_spectrum.csv\n");

  // --- Figure 6: reconstruct one MHM from 16 eigenmemories ---
  print_header("Figure 6 — reconstructing an MHM from 16 eigenmemories");
  Eigenmemory::Options opts16;
  opts16.components = 16;
  std::vector<std::vector<double>> raw;
  for (const auto& m : pipe.training) raw.push_back(m.as_vector());
  const Eigenmemory em16 = Eigenmemory::fit(raw, opts16);

  const auto& sample = raw[raw.size() / 2];
  const auto weights = em16.project(sample);
  std::printf("reduced MHM M' (16 weights, the contribution of each primary "
              "activity):\n  [");
  for (std::size_t k = 0; k < weights.size(); ++k) {
    std::printf("%s%.1f", k ? ", " : "", weights[k]);
  }
  std::printf("]\n");
  std::printf("relative reconstruction error with 16 eigenmemories: %.4f\n",
              em16.reconstruction_error(sample));
  std::printf("relative reconstruction error with %zu eigenmemories: %.4f\n",
              em.components(), em.reconstruction_error(sample));

  // Mean MHM and first eigenmemory rendered the way Figure 6 shows them.
  HeatMapPlotOptions hm;
  hm.width = 92;
  hm.rows = 8;
  hm.title = "mean MHM (Psi)";
  std::vector<std::uint64_t> mean_cells(em.mean().size());
  for (std::size_t i = 0; i < mean_cells.size(); ++i) {
    mean_cells[i] = static_cast<std::uint64_t>(std::max(0.0, em.mean()[i]));
  }
  std::fputs(render_heat_map(mean_cells, hm).c_str(), stdout);

  hm.title = "eigenmemory u1 (|weight| per cell) — the most significant "
             "primary activity";
  std::vector<std::uint64_t> u1(em.basis().cols());
  for (std::size_t i = 0; i < u1.size(); ++i) {
    u1[i] = static_cast<std::uint64_t>(1e6 * std::abs(em.basis()(0, i)));
  }
  std::fputs(render_heat_map(u1, hm).c_str(), stdout);

  // --- GMM training summary ---
  print_header("§5.2 — GMM patterns (J = 5)");
  TextTable gmm_table({"component", "weight", "|mean|", "log10 det(Sigma)"});
  for (std::size_t j = 0; j < pipe.det().gmm().component_count(); ++j) {
    const auto& comp = pipe.det().gmm().components()[j];
    double norm = 0.0;
    for (double v : comp.mean) norm += v * v;
    const linalg::Cholesky chol(comp.covariance, 1e-9);
    gmm_table.add_row({std::to_string(j), fmt_double(comp.weight, 3),
                       fmt_double(std::sqrt(norm), 1),
                       fmt_double(chol.log_det() / std::log(10.0), 2)});
  }
  std::fputs(gmm_table.str().c_str(), stdout);
  return 0;
}
