// PERF — deterministic parallel runtime (train + analyze).
//
// Trains the full pipeline (trace collection -> eigenmemory PCA -> GMM EM)
// at several thread counts, times every stage, verifies the outputs are
// bit-identical across thread counts (the runtime's determinism contract),
// and appends the numbers to BENCH_pipeline.json so later PRs have a perf
// trajectory. Field documentation lives in docs/FILE_FORMATS.md.
//
// MHM_BENCH_FAST=1 shrinks the workload as usual; the JSON records which
// mode produced it. Speedups are relative to the threads=1 row; on a
// single-core host they hover around 1.0 by construction (the JSON records
// hardware_threads so the trajectory stays interpretable).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "common/parallel.hpp"
#include "obs/incident.hpp"
#include "obs/model_health.hpp"
#include "obs/obs.hpp"
#include "obs/prof.hpp"
#include "obs/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct StageTimes {
  std::size_t threads = 0;
  double collect_seconds = 0.0;
  double pca_seconds = 0.0;
  double gmm_seconds = 0.0;
  double train_total_seconds = 0.0;
  double scenario_batch_seconds = 0.0;
  double analyze_mean_us = 0.0;
  std::vector<double> probe_scores;  ///< For the bit-identical check.
};

}  // namespace

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("PERF — deterministic parallel runtime (train + analyze)");

  const sim::SystemConfig cfg = bench_config(1);
  const pipeline::ProfilingPlan plan = bench_plan();
  const AnomalyDetector::Options opts = bench_detector_options();
  const std::size_t hardware = configured_threads();

  std::vector<std::size_t> counts = {1, 2, 4};
  if (hardware > 4) counts.push_back(hardware);

  std::vector<StageTimes> rows;
  // Kept from the last sweep iteration for the obs-overhead measurement
  // and the fast-PCA leg.
  std::unique_ptr<AnomalyDetector> overhead_detector;
  HeatMapTrace overhead_validation;
  std::vector<std::vector<double>> overhead_train_raw;
  for (const std::size_t threads : counts) {
    set_global_threads(threads);
    StageTimes row;
    row.threads = threads;

    const auto t_train0 = Clock::now();
    auto t0 = Clock::now();
    const HeatMapTrace training = pipeline::collect_normal_trace(cfg, plan);
    pipeline::ProfilingPlan validation_plan = plan;
    validation_plan.runs = std::max<std::size_t>(1, plan.runs / 5);
    validation_plan.seed_base = plan.seed_base + plan.runs + 1000;
    const HeatMapTrace validation =
        pipeline::collect_normal_trace(cfg, validation_plan);
    row.collect_seconds = seconds_since(t0);

    std::vector<std::vector<double>> train_raw;
    train_raw.reserve(training.size());
    for (const auto& m : training) train_raw.push_back(m.as_vector());

    t0 = Clock::now();
    const Eigenmemory pca = Eigenmemory::fit(train_raw, opts.pca);
    const auto reduced = pca.project_all(train_raw);
    row.pca_seconds = seconds_since(t0);

    t0 = Clock::now();
    Gmm gmm = Gmm::fit(reduced, opts.gmm);
    row.gmm_seconds = seconds_since(t0);

    std::vector<double> validation_scores;
    validation_scores.reserve(validation.size());
    for (const auto& v : validation) {
      validation_scores.push_back(gmm.log10_density(pca.project(v.as_vector())));
    }
    AnomalyDetector detector = AnomalyDetector::assemble(
        pca, std::move(gmm), ThresholdCalibrator(validation_scores),
        opts.primary_p);
    row.train_total_seconds = seconds_since(t_train0);

    // Scenario fan-out: independent seeded systems scored by the shared
    // detector (run_scenarios parallelizes over specs).
    const SimTime interval = cfg.monitor.interval;
    std::vector<pipeline::ScenarioSpec> specs;
    for (std::uint64_t s = 0; s < 4; ++s) {
      specs.push_back(pipeline::ScenarioSpec{
          .attack = "", .trigger_time = 0,
          .duration = (fast_mode() ? 50 : 100) * interval,
          .seed = 20000 + s});
    }
    t0 = Clock::now();
    const auto scenario_runs = pipeline::run_scenarios(cfg, specs, &detector);
    row.scenario_batch_seconds = seconds_since(t0);

    // Online analyze latency (serial — the secure core scores one interval
    // at a time) and the determinism probe: score every validation map.
    reset_analysis_time();
    row.probe_scores.reserve(validation.size());
    for (const auto& m : validation) {
      row.probe_scores.push_back(detector.analyze(m).log10_density);
    }
    row.analyze_mean_us = analysis_mean_us();
    for (const auto& run : scenario_runs) {
      const std::vector<double> run_dens = run.log10_densities();
      row.probe_scores.insert(row.probe_scores.end(), run_dens.begin(),
                              run_dens.end());
    }
    if (threads == counts.back()) {
      overhead_detector = std::make_unique<AnomalyDetector>(std::move(detector));
      overhead_validation = validation;
      overhead_train_raw = train_raw;
    }
    rows.push_back(std::move(row));
    std::printf(
        "[bench] threads=%zu collect=%.2fs pca=%.2fs gmm=%.2fs "
        "train_total=%.2fs scenarios=%.2fs analyze=%.1fus\n",
        threads, rows.back().collect_seconds, rows.back().pca_seconds,
        rows.back().gmm_seconds, rows.back().train_total_seconds,
        rows.back().scenario_batch_seconds, rows.back().analyze_mean_us);
  }
  set_global_threads(0);  // Back to the MHM_THREADS / hardware default.

  // Fast top-k PCA vs the exact dense eigensolve: the speedup the
  // continuous-training loop is built on. Same training matrix, same
  // retained-component count; the exact solver is the oracle the retrain
  // path no longer pays for. The retained subspace must also capture the
  // same variance (sum of kept eigenvalues within 2%) — a fast path that
  // found a worse subspace would be speed bought with accuracy. In paper
  // mode the ≥5x speedup is ENFORCED by exit code; at fast-mode scale the
  // matrix is too small for the asymptotics to show, so the number is
  // recorded but not judged.
  auto t_pca = Clock::now();
  const Eigenmemory exact_pca = Eigenmemory::fit(overhead_train_raw, opts.pca);
  const double pca_exact_seconds = seconds_since(t_pca);
  Eigenmemory::TopkOptions topk;
  topk.components = exact_pca.components();
  t_pca = Clock::now();
  const Eigenmemory fast_pca = Eigenmemory::fit_topk(overhead_train_raw, topk);
  const double train_pca_fast_seconds = seconds_since(t_pca);
  const double pca_speedup_vs_exact =
      train_pca_fast_seconds > 0.0
          ? pca_exact_seconds / train_pca_fast_seconds
          : 0.0;
  double exact_captured = 0.0;
  for (const double ev : exact_pca.eigenvalues()) exact_captured += ev;
  double fast_captured = 0.0;
  for (const double ev : fast_pca.eigenvalues()) fast_captured += ev;
  const double pca_captured_ratio =
      exact_captured > 0.0 ? fast_captured / exact_captured : 1.0;
  const bool pca_fast_ok =
      pca_captured_ratio >= 0.98 &&
      (fast_mode() || pca_speedup_vs_exact >= 5.0);
  std::printf(
      "[bench] fast top-k PCA: exact=%.3fs topk=%.3fs (%.1fx, captured "
      "variance ratio %.4f) — %s\n",
      pca_exact_seconds, train_pca_fast_seconds, pca_speedup_vs_exact,
      pca_captured_ratio,
      pca_fast_ok ? (fast_mode() ? "recorded (fast mode, not judged)"
                                 : "within the >=5x contract")
                  : "CONTRACT VIOLATION");

  // Observability overhead: the same fixed workload (scenario batch + serial
  // analyze sweep) timed with the obs layer enabled and disabled. The
  // contract is <2% — counters are sharded relaxed atomics and the journal
  // only does O(L) work on alarms, so the gap should be noise-level.
  const SimTime interval = cfg.monitor.interval;
  std::vector<pipeline::ScenarioSpec> overhead_specs;
  for (std::uint64_t s = 0; s < 4; ++s) {
    overhead_specs.push_back(pipeline::ScenarioSpec{
        .attack = "", .trigger_time = 0,
        .duration = (fast_mode() ? 50 : 100) * interval,
        .seed = 20000 + s});
  }
  // The analyze sweep is repeated until it dominates the workload: the
  // per-interval record path (counters + histogram + journal append) is the
  // obs hot spot, and a multi-hundred-ms sample keeps timer noise well
  // under the 2% being measured.
  constexpr int kAnalyzeReps = 30;
  const auto obs_workload = [&] {
    const auto runs = pipeline::run_scenarios(cfg, overhead_specs,
                                              overhead_detector.get());
    double sink = 0.0;
    for (int rep = 0; rep < kAnalyzeReps; ++rep) {
      for (const auto& m : overhead_validation) {
        sink += overhead_detector->analyze(m).log10_density;
      }
    }
    return sink + static_cast<double>(runs.size());
  };
  const bool obs_was_enabled = obs::enabled();
  double obs_on_seconds = 1e300;
  double obs_off_seconds = 1e300;
  double obs_sink = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    obs::set_enabled(true);
    auto t_obs = Clock::now();
    obs_sink += obs_workload();
    obs_on_seconds = std::min(obs_on_seconds, seconds_since(t_obs));
    obs::set_enabled(false);
    t_obs = Clock::now();
    obs_sink += obs_workload();
    obs_off_seconds = std::min(obs_off_seconds, seconds_since(t_obs));
  }
  obs::set_enabled(obs_was_enabled);
  const double obs_overhead_pct =
      obs_off_seconds > 0.0
          ? 100.0 * (obs_on_seconds - obs_off_seconds) / obs_off_seconds
          : 0.0;
  std::printf("[bench] obs overhead: on=%.3fs off=%.3fs (%+.2f%%, sink %.1f)\n",
              obs_on_seconds, obs_off_seconds, obs_overhead_pct, obs_sink);

  // Monitoring-endpoint overhead: the same workload with the HTTP server
  // bound but no client connected. The serve thread sits in poll() the whole
  // time, so the contract is < 1% vs. the obs-enabled baseline.
  obs::set_enabled(true);
  obs::MonitorServer server;
  double server_on_seconds = 1e300;
  const bool server_started = server.start(obs::MonitorServer::Options{});
  if (server_started) {
    for (int rep = 0; rep < 3; ++rep) {
      const auto t_srv = Clock::now();
      obs_sink += obs_workload();
      server_on_seconds = std::min(server_on_seconds, seconds_since(t_srv));
    }
    server.stop();
  }
  obs::set_enabled(obs_was_enabled);
  const double server_overhead_pct =
      server_started && obs_on_seconds > 0.0
          ? 100.0 * (server_on_seconds - obs_on_seconds) / obs_on_seconds
          : 0.0;
  if (server_started) {
    std::printf("[bench] idle-server overhead: serving=%.3fs vs obs-only="
                "%.3fs (%+.2f%%)\n",
                server_on_seconds, obs_on_seconds, server_overhead_pct);
  } else {
    server_on_seconds = 0.0;
    std::printf("[bench] idle-server overhead: skipped (obs compiled out or "
                "bind failed)\n");
  }

  // Model-health overhead: the serial analyze sweep with the drift monitor
  // attached vs. detached. The hook reuses the score and SPE analyze()
  // already computed, so the marginal cost is a few P² marker updates, two
  // drift-detector adds, and one mutex acquisition per interval — budgeted
  // inside the same <2% obs contract.
  obs::set_enabled(true);
  const auto health_workload = [&] {
    double sink = 0.0;
    for (int rep = 0; rep < kAnalyzeReps; ++rep) {
      for (const auto& m : overhead_validation) {
        sink += overhead_detector->analyze(m).log10_density;
      }
    }
    return sink;
  };
  const std::shared_ptr<obs::ModelHealthMonitor> health =
      overhead_detector->model_health();
  double health_on_seconds = 1e300;
  double health_off_seconds = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    overhead_detector->set_model_health(health);
    auto t_mh = Clock::now();
    obs_sink += health_workload();
    health_on_seconds = std::min(health_on_seconds, seconds_since(t_mh));
    overhead_detector->set_model_health(nullptr);
    t_mh = Clock::now();
    obs_sink += health_workload();
    health_off_seconds = std::min(health_off_seconds, seconds_since(t_mh));
  }
  overhead_detector->set_model_health(health);
  obs::set_enabled(obs_was_enabled);
  const double model_health_overhead_pct =
      health_off_seconds > 0.0
          ? 100.0 * (health_on_seconds - health_off_seconds) /
                health_off_seconds
          : 0.0;
  std::printf(
      "[bench] model-health overhead: on=%.3fs off=%.3fs (%+.2f%%)\n",
      health_on_seconds, health_off_seconds, model_health_overhead_pct);

  // History + incident overhead: the serial analyze sweep through a detector
  // carrying the multi-resolution score history and an armed incident
  // recorder vs. one with both stripped. The history append is O(1) ring
  // arithmetic and the recorder is a bounded pre-ring plus burst bookkeeping
  // per interval (bundle commits are rate-limited and this workload is
  // normal traffic), so the gap shares the same <2% obs contract. The
  // model-health hook is detached on both sides so only the new layers are
  // in the difference.
  obs::set_enabled(true);
  const std::shared_ptr<const ModelSnapshot> overhead_snapshot =
      overhead_detector->snapshot();
  StreamObserver::Options hist_off_opts;
  hist_off_opts.attach_health = false;
  hist_off_opts.history_raw = 0;
  AnomalyDetector hist_off_detector =
      AnomalyDetector::from_snapshot(overhead_snapshot, hist_off_opts);
  StreamObserver::Options hist_on_opts;
  hist_on_opts.attach_health = false;
  AnomalyDetector hist_on_detector =
      AnomalyDetector::from_snapshot(overhead_snapshot, hist_on_opts);
  obs::IncidentStore::Options inc_store_opts;
  inc_store_opts.dir = ".";
  obs::IncidentOptions inc_opts;
  inc_opts.min_gap = 1ULL << 40;  // At most one bundle across the sweep.
  hist_on_detector.attach_incidents(
      inc_opts, std::make_shared<obs::IncidentStore>(inc_store_opts));
  const auto history_workload = [&](AnomalyDetector& det) {
    double sink = 0.0;
    for (int rep = 0; rep < kAnalyzeReps; ++rep) {
      for (const auto& m : overhead_validation) {
        sink += det.analyze(m).log10_density;
      }
    }
    return sink;
  };
  double history_on_seconds = 1e300;
  double history_off_seconds = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t_hi = Clock::now();
    obs_sink += history_workload(hist_on_detector);
    history_on_seconds = std::min(history_on_seconds, seconds_since(t_hi));
    t_hi = Clock::now();
    obs_sink += history_workload(hist_off_detector);
    history_off_seconds = std::min(history_off_seconds, seconds_since(t_hi));
  }
  obs::set_enabled(obs_was_enabled);
  const double history_incident_overhead_pct =
      history_off_seconds > 0.0
          ? 100.0 * (history_on_seconds - history_off_seconds) /
                history_off_seconds
          : 0.0;
  std::printf(
      "[bench] history+incident overhead: on=%.3fs off=%.3fs (%+.2f%%)\n",
      history_on_seconds, history_off_seconds, history_incident_overhead_pct);

  // Continuous-profiler overhead: the serial analyze sweep with the stage
  // zones live vs. MHM_PROF off, obs enabled on both sides so only the
  // profiler is in the difference. A zone is one TSC read pair plus two
  // relaxed fetch_adds (hardware counters ride decimated entries only), so
  // the gap shares the same <2% obs contract — and unlike the other legs it
  // is ENFORCED: the exit code fails when the paired best-of-3 exceeds 2%.
  // Profiling must also never perturb scoring — the on/off score vectors
  // are compared bit-for-bit.
  obs::set_enabled(true);
  const bool prof_was_enabled = obs::prof::prof_enabled();
  const auto prof_workload = [&](std::vector<double>* scores) {
    double sink = 0.0;
    for (int rep = 0; rep < kAnalyzeReps; ++rep) {
      for (const auto& m : overhead_validation) {
        const double d = overhead_detector->analyze(m).log10_density;
        sink += d;
        if (scores != nullptr && rep == 0) scores->push_back(d);
      }
    }
    return sink;
  };
  std::vector<double> prof_on_scores;
  std::vector<double> prof_off_scores;
  double prof_on_seconds = 1e300;
  double prof_off_seconds = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    obs::prof::set_prof_enabled(true);
    auto t_pr = Clock::now();
    obs_sink += prof_workload(rep == 0 ? &prof_on_scores : nullptr);
    prof_on_seconds = std::min(prof_on_seconds, seconds_since(t_pr));
    obs::prof::set_prof_enabled(false);
    t_pr = Clock::now();
    obs_sink += prof_workload(rep == 0 ? &prof_off_scores : nullptr);
    prof_off_seconds = std::min(prof_off_seconds, seconds_since(t_pr));
  }
  obs::prof::set_prof_enabled(prof_was_enabled);
  obs::set_enabled(obs_was_enabled);
  const double prof_overhead_pct =
      prof_off_seconds > 0.0
          ? 100.0 * (prof_on_seconds - prof_off_seconds) / prof_off_seconds
          : 0.0;
  const bool prof_bit_identical = prof_on_scores == prof_off_scores;
  const bool prof_ok = prof_overhead_pct < 2.0 && prof_bit_identical;
  std::printf("[bench] profiler overhead: on=%.3fs off=%.3fs (%+.2f%%, "
              "counters=%s, scores %s) — %s\n",
              prof_on_seconds, prof_off_seconds, prof_overhead_pct,
              obs::prof::counter_source(),
              prof_bit_identical ? "bit-identical" : "DIVERGED",
              prof_ok ? "within the <2% contract" : "CONTRACT VIOLATION");

  bool bit_identical = true;
  for (const auto& row : rows) {
    if (row.probe_scores != rows.front().probe_scores) bit_identical = false;
  }

  TextTable table({"threads", "collect (s)", "PCA (s)", "GMM (s)",
                   "train total (s)", "speedup", "analyze (us)"});
  const double serial_total = rows.front().train_total_seconds;
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.threads),
                   fmt_double(row.collect_seconds, 2),
                   fmt_double(row.pca_seconds, 2),
                   fmt_double(row.gmm_seconds, 2),
                   fmt_double(row.train_total_seconds, 2),
                   fmt_double(serial_total / row.train_total_seconds, 2) + "x",
                   fmt_double(row.analyze_mean_us, 1)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("bit-identical across thread counts: %s\n",
              bit_identical ? "yes" : "NO — DETERMINISM VIOLATION");

  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "[bench] cannot write BENCH_pipeline.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"perf_pipeline\",\n");
  std::fprintf(json, "  \"mode\": \"%s\",\n", fast_mode() ? "fast" : "paper");
  std::fprintf(json, "  \"hardware_threads\": %zu,\n", hardware);
  std::fprintf(json,
               "  \"config\": {\"granularity\": %llu, \"runs\": %zu, "
               "\"run_duration_ms\": %llu, \"pca_components\": %zu, "
               "\"gmm_components\": %zu, \"gmm_restarts\": %zu},\n",
               static_cast<unsigned long long>(cfg.monitor.granularity),
               plan.runs,
               static_cast<unsigned long long>(plan.run_duration / kMillisecond),
               opts.pca.components, opts.gmm.components, opts.gmm.restarts);
  std::fprintf(json, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(json,
                 "    {\"threads\": %zu, \"collect_seconds\": %.6f, "
                 "\"pca_seconds\": %.6f, \"gmm_seconds\": %.6f, "
                 "\"train_total_seconds\": %.6f, "
                 "\"scenario_batch_seconds\": %.6f, "
                 "\"analyze_mean_us\": %.3f, "
                 "\"train_speedup_vs_serial\": %.4f}%s\n",
                 row.threads, row.collect_seconds, row.pca_seconds,
                 row.gmm_seconds, row.train_total_seconds,
                 row.scenario_batch_seconds, row.analyze_mean_us,
                 serial_total / row.train_total_seconds,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"best_train_speedup\": %.4f,\n",
               serial_total / [&] {
                 double best = rows.front().train_total_seconds;
                 for (const auto& r : rows) {
                   best = std::min(best, r.train_total_seconds);
                 }
                 return best;
               }());
  std::fprintf(json, "  \"pca_exact_seconds\": %.6f,\n", pca_exact_seconds);
  std::fprintf(json, "  \"train_pca_fast_seconds\": %.6f,\n",
               train_pca_fast_seconds);
  std::fprintf(json, "  \"pca_speedup_vs_exact\": %.4f,\n",
               pca_speedup_vs_exact);
  std::fprintf(json, "  \"pca_captured_ratio\": %.6f,\n", pca_captured_ratio);
  std::fprintf(json, "  \"obs_on_seconds\": %.6f,\n", obs_on_seconds);
  std::fprintf(json, "  \"obs_off_seconds\": %.6f,\n", obs_off_seconds);
  std::fprintf(json, "  \"obs_overhead_pct\": %.3f,\n", obs_overhead_pct);
  std::fprintf(json, "  \"server_on_seconds\": %.6f,\n", server_on_seconds);
  std::fprintf(json, "  \"server_overhead_pct\": %.3f,\n",
               server_overhead_pct);
  std::fprintf(json, "  \"model_health_on_seconds\": %.6f,\n",
               health_on_seconds);
  std::fprintf(json, "  \"model_health_off_seconds\": %.6f,\n",
               health_off_seconds);
  std::fprintf(json, "  \"model_health_overhead_pct\": %.3f,\n",
               model_health_overhead_pct);
  std::fprintf(json, "  \"history_incident_on_seconds\": %.6f,\n",
               history_on_seconds);
  std::fprintf(json, "  \"history_incident_off_seconds\": %.6f,\n",
               history_off_seconds);
  std::fprintf(json, "  \"history_incident_overhead_pct\": %.3f,\n",
               history_incident_overhead_pct);
  std::fprintf(json, "  \"prof_on_seconds\": %.6f,\n", prof_on_seconds);
  std::fprintf(json, "  \"prof_off_seconds\": %.6f,\n", prof_off_seconds);
  std::fprintf(json, "  \"prof_overhead_pct\": %.3f,\n", prof_overhead_pct);
  std::fprintf(json, "  \"prof_counter_source\": \"%s\",\n",
               obs::prof::counter_source());
  std::fprintf(json, "  \"prof_bit_identical\": %s,\n",
               prof_bit_identical ? "true" : "false");
  std::fprintf(json, "  \"bit_identical\": %s\n",
               bit_identical ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("[bench] wrote BENCH_pipeline.json\n");
  return (bit_identical && prof_ok && pca_fast_ok) ? 0 : 1;
}
