// Ablation A8 — training-set size. §5.1 of the paper: "we leave for future
// work to evaluate the number of proper training samples, eigenmemories,
// and/or GMM components for different settings" — this bench answers the
// first part for the paper's own workload. Sweep the number of profiled
// normal runs and measure: variance explained, false-positive rate on a
// fresh normal run (how well θ_p generalizes) and detection AUC.

#include <cstdio>

#include "bench_support.hpp"
#include "common/stats.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Ablation A8 — how much normal training data is enough?");

  sim::SystemConfig cfg = bench_config(1);
  const SimTime interval = cfg.monitor.interval;
  const SimTime duration = 400 * interval;
  const SimTime trigger = 100 * interval;

  CsvWriter csv("ablation_training_size.csv");
  csv.header({"training_maps", "variance_explained", "fp_rate_theta1",
              "auc_app", "auc_rootkit"});
  TextTable table({"training MHMs", "var expl %", "FP rate @theta_1",
                   "AUC app", "AUC rootkit"});

  for (std::size_t runs : {1u, 2u, 4u, 8u, 16u}) {
    pipeline::ProfilingPlan plan;
    plan.runs = runs;
    plan.run_duration = fast_mode() ? 500 * kMillisecond : 1500 * kMillisecond;

    AnomalyDetector::Options opts;
    opts.pca.components = 9;
    opts.gmm.components = 5;
    opts.gmm.restarts = 3;
    const auto pipe = pipeline::train_pipeline(cfg, plan, opts);

    pipeline::ScenarioRun normal_run = pipeline::run_scenario(
        cfg, nullptr, 0, duration, pipe.detector.get(), 12001);
    const double theta = pipe.theta_1.log10_value;
    const std::vector<double> normal_dens = normal_run.log10_densities();
    std::size_t fp = 0;
    for (double d : normal_dens) fp += (d < theta);
    const double fp_rate = static_cast<double>(fp) /
                           static_cast<double>(normal_dens.size());

    auto attacked_auc = [&](const std::string& name) {
      auto attack = attacks::make_scenario(name);
      pipeline::ScenarioRun run = pipeline::run_scenario(
          cfg, attack.get(), trigger, duration, pipe.detector.get(), 12002);
      std::vector<double> attacked;
      const std::vector<double> run_dens = run.log10_densities();
      for (std::size_t i = 0; i < run.maps.size(); ++i) {
        if (run.maps[i].interval_index >= run.trigger_interval) {
          attacked.push_back(run_dens[i]);
        }
      }
      return roc_auc(normal_dens, attacked);
    };
    const double auc_app = attacked_auc("app_addition");
    const double auc_rootkit = attacked_auc("rootkit");

    table.add_row({std::to_string(pipe.training.size()),
                   fmt_double(100.0 * pipe.det().eigenmemory().variance_explained(), 3),
                   fmt_double(100.0 * fp_rate, 2) + " %",
                   fmt_double(auc_app, 3), fmt_double(auc_rootkit, 3)});
    csv.row()
        .col(static_cast<std::uint64_t>(pipe.training.size()))
        .col(pipe.det().eigenmemory().variance_explained())
        .col(fp_rate)
        .col(auc_app)
        .col(auc_rootkit);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nexpected shape: with too little data the thresholds do not "
              "generalize (inflated FP rate on fresh runs) and AUC is "
              "unstable; both settle once the training set covers the "
              "hyperperiod's phase diversity many times over. The paper's "
              "3,000 maps (~300 hyperperiods) sits deep in the stable "
              "regime.\n");
  std::printf("[bench] wrote ablation_training_size.csv\n");
  return 0;
}
