// Ablation A7 — workload determinism. The paper's conclusion conjectures:
// "RTOSes have a more deterministic memory usage; hence our techniques
// will be even more effective when applied to such a context", and §5.5
// warns that "highly unpredictable, but yet legitimate" usage would raise
// false positives. This bench sweeps the workload's jitter scale from a
// fully deterministic RTOS (0.0) to a noisy general-purpose system (3.0)
// and reports false-positive rate, detection AUC and the effect of the
// temporal k-of-n AlarmFilter extension.

#include <cstdio>

#include "bench_support.hpp"
#include "common/stats.hpp"
#include "core/alarm_filter.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Ablation A7 — workload determinism (RTOS -> noisy GPOS)");

  CsvWriter csv("ablation_determinism.csv");
  csv.header({"jitter_scale", "fp_rate_raw", "fp_rate_filtered",
              "auc_rootkit", "auc_app"});
  TextTable table({"jitter scale", "FP rate (raw)", "FP rate (2-of-3)",
                   "AUC rootkit", "AUC app"});

  for (double jitter : {0.0, 0.25, 1.0, 2.0, 3.0}) {
    sim::SystemConfig cfg = bench_config(1);
    cfg.jitter_scale = jitter;

    pipeline::ProfilingPlan plan;
    plan.runs = fast_mode() ? 2 : 5;
    plan.run_duration = fast_mode() ? 1 * kSecond : 2 * kSecond;

    AnomalyDetector::Options opts;
    opts.pca.components = 9;
    opts.gmm.components = 5;
    opts.gmm.restarts = 3;
    const auto pipe = pipeline::train_pipeline(cfg, plan, opts);

    const SimTime interval = cfg.monitor.interval;
    const SimTime duration = 400 * interval;
    const SimTime trigger = 100 * interval;

    // False positives on a fresh normal run, raw and 2-of-3 filtered.
    pipeline::ScenarioRun normal_run = pipeline::run_scenario(
        cfg, nullptr, 0, duration, pipe.detector.get(), 11001);
    const double theta = pipe.theta_1.log10_value;
    std::size_t raw_fp = 0;
    std::size_t filtered_fp = 0;
    AlarmFilter filter(2, 3);
    const std::vector<double> normal_dens = normal_run.log10_densities();
    for (double d : normal_dens) {
      const bool alarm = d < theta;
      raw_fp += alarm;
      filtered_fp += filter.feed(alarm);
    }
    const double n = static_cast<double>(normal_dens.size());

    auto attacked_auc = [&](const std::string& name) {
      auto attack = attacks::make_scenario(name);
      pipeline::ScenarioRun run = pipeline::run_scenario(
          cfg, attack.get(), trigger, duration, pipe.detector.get(), 11002);
      std::vector<double> attacked;
      const std::vector<double> run_dens = run.log10_densities();
      for (std::size_t i = 0; i < run.maps.size(); ++i) {
        if (run.maps[i].interval_index >= run.trigger_interval) {
          attacked.push_back(run_dens[i]);
        }
      }
      return roc_auc(normal_dens, attacked);
    };
    const double auc_rootkit = attacked_auc("rootkit");
    const double auc_app = attacked_auc("app_addition");

    table.add_row({fmt_double(jitter, 2),
                   fmt_double(100.0 * static_cast<double>(raw_fp) / n, 2) + " %",
                   fmt_double(100.0 * static_cast<double>(filtered_fp) / n, 2) + " %",
                   fmt_double(auc_rootkit, 3), fmt_double(auc_app, 3)});
    csv.row()
        .col(jitter)
        .col(static_cast<double>(raw_fp) / n)
        .col(static_cast<double>(filtered_fp) / n)
        .col(auc_rootkit)
        .col(auc_app);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nexpected shape: at RTOS-grade determinism the stealthy "
              "rootkit becomes near-perfectly separable (the paper's "
              "conclusion conjecture); rising jitter inflates false "
              "positives and erodes AUC (§5.5's concern); the 2-of-3 "
              "filter recovers most of the FP inflation.\n");
  std::printf("[bench] wrote ablation_determinism.csv\n");
  return 0;
}
