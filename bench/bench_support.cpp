#include "bench_support.hpp"

#include <cstdlib>
#include <mutex>

#include "obs/metrics.hpp"

namespace mhm::bench {

void reset_analysis_time() {
  AnomalyDetector::analysis_time_histogram().reset();
}

double analysis_mean_us() {
  const obs::Histogram& h = AnomalyDetector::analysis_time_histogram();
  const std::uint64_t n = h.count();
  return n > 0 ? h.sum() / static_cast<double>(n) / 1000.0 : 0.0;
}

bool fast_mode() {
  const char* env = std::getenv("MHM_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

sim::SystemConfig bench_config(std::uint64_t seed) {
  sim::SystemConfig cfg = sim::SystemConfig::paper_default(seed);
  if (fast_mode()) {
    cfg.monitor.granularity = 8 * 1024;  // L = 368 instead of 1,472
  }
  return cfg;
}

pipeline::ProfilingPlan bench_plan() {
  pipeline::ProfilingPlan plan;
  if (fast_mode()) {
    plan.runs = 3;
    plan.run_duration = 1 * kSecond;
  } else {
    plan.runs = 10;                 // §5.2: 10 sets
    plan.run_duration = 3 * kSecond;  // each spanning 3 seconds
  }
  plan.seed_base = 100;
  return plan;
}

AnomalyDetector::Options bench_detector_options() {
  AnomalyDetector::Options opts;
  opts.pca.components = 9;  // §5.2: 9 eigenmemories
  opts.gmm.components = 5;  // §5.2: J = 5
  opts.gmm.restarts = fast_mode() ? 3 : 10;  // §5.2: 10 EM restarts
  opts.primary_p = 0.01;    // θ_1
  return opts;
}

const pipeline::TrainedPipeline& trained_pipeline() {
  static std::once_flag once;
  static std::unique_ptr<pipeline::TrainedPipeline> pipe;
  std::call_once(once, [] {
    std::printf("[bench] training pipeline (%s scale)...\n",
                fast_mode() ? "fast" : "paper");
    std::fflush(stdout);
    pipe = std::make_unique<pipeline::TrainedPipeline>(pipeline::train_pipeline(
        bench_config(), bench_plan(), bench_detector_options()));
    std::printf(
        "[bench] trained on %zu MHMs (%zu cells), validation %zu MHMs; "
        "variance explained %.4f%%\n",
        pipe->training.size(), pipe->training.front().cell_count(),
        pipe->validation.size(),
        100.0 * pipe->detector->eigenmemory().variance_explained());
  });
  return *pipe;
}

void print_header(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

void print_comparison(const std::vector<PaperComparison>& rows) {
  TextTable table({"quantity", "paper", "this reproduction"});
  for (const auto& row : rows) {
    table.add_row({row.quantity, row.paper, row.measured});
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_detection_figure(const pipeline::ScenarioRun& run,
                            const pipeline::TrainedPipeline& pipe,
                            const std::string& title) {
  LinePlotOptions plot;
  plot.title = title;
  plot.width = 100;
  plot.height = 22;
  plot.hlines = {pipe.theta_05.log10_value, pipe.theta_1.log10_value};
  if (run.trigger_interval < run.maps.size()) {
    plot.vlines = {static_cast<double>(run.trigger_interval)};
  }
  plot.x_label = "interval index (10 ms each); dashes: theta_0.5 / theta_1; "
                 "bar: attack";
  std::fputs(render_line_plot(run.log10_densities(), plot).c_str(), stdout);

  const double t05 = pipe.theta_05.log10_value;
  const double t1 = pipe.theta_1.log10_value;
  const std::size_t before = run.intervals_before_trigger();
  std::printf(
      "before trigger: %zu intervals, false positives %zu (theta_0.5) / %zu "
      "(theta_1) -> FP rates %.2f%% / %.2f%%\n",
      before, run.false_positives_before_trigger(t05),
      run.false_positives_before_trigger(t1),
      before ? 100.0 * static_cast<double>(run.false_positives_before_trigger(t05)) /
                   static_cast<double>(before)
             : 0.0,
      before ? 100.0 * static_cast<double>(run.false_positives_before_trigger(t1)) /
                   static_cast<double>(before)
             : 0.0);
  const std::size_t after = run.intervals_after_trigger();
  if (after > 0) {
    const auto latency = run.detection_latency(t1);
    std::printf(
        "after trigger: %zu intervals, %zu flagged at theta_1 (%.1f%%); "
        "first detection %s\n",
        after, run.detections_after_trigger(t1),
        100.0 * static_cast<double>(run.detections_after_trigger(t1)) /
            static_cast<double>(after),
        latency ? (std::to_string(*latency) + " interval(s) after the trigger")
                      .c_str()
                : "never");
  }
}

void write_series_csv(const std::string& name,
                      const pipeline::ScenarioRun& run) {
  const std::string path = name + ".csv";
  CsvWriter csv(path);
  csv.header({"interval", "log10_density", "traffic_volume", "anomalous"});
  const std::vector<double> dens = run.log10_densities();
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    csv.row()
        .col(run.maps[i].interval_index)
        .col(dens.empty() ? 0.0 : dens[i])
        .col(run.traffic_volumes[i])
        .col(run.verdicts.empty() ? 0 : static_cast<int>(run.verdicts[i].anomalous));
  }
  std::printf("[bench] wrote %s\n", path.c_str());
}

}  // namespace mhm::bench
