// Ablation A10 — pooled GMM vs phase-conditioned detection. The paper's
// GMM must rediscover the hyperperiod phases as mixture components; in a
// real-time system the phase of every interval is known, so conditioning
// on it (one Gaussian per phase, closed form — core/phase_detector) is the
// natural strengthening. Compare on false positives and on all three
// attack scenarios.

#include <cstdio>

#include "bench_support.hpp"
#include "common/stats.hpp"
#include "core/phase_detector.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Ablation A10 — pooled GMM (paper) vs phase-aware detector");

  sim::SystemConfig cfg = bench_config(1);
  pipeline::ProfilingPlan plan;
  plan.runs = fast_mode() ? 2 : 5;
  plan.run_duration = fast_mode() ? 1 * kSecond : 2 * kSecond;

  AnomalyDetector::Options opts;
  opts.pca.components = 9;
  opts.gmm.components = 5;
  opts.gmm.restarts = 3;
  const auto pipe = pipeline::train_pipeline(cfg, plan, opts);

  PhaseAwareDetector::Options phase_opts;
  phase_opts.phases = static_cast<std::size_t>(
      sim::hyperperiod(cfg.tasks) / cfg.monitor.interval);
  phase_opts.pca.components = 9;
  const PhaseAwareDetector phase_det =
      PhaseAwareDetector::train(pipe.training, pipe.validation, phase_opts);

  const SimTime interval = cfg.monitor.interval;
  const SimTime duration = 400 * interval;
  const SimTime trigger = 100 * interval;

  pipeline::ScenarioRun normal_run = pipeline::run_scenario(
      cfg, nullptr, 0, duration, pipe.detector.get(), 14001);

  auto scenario_maps = [&](const std::string& name) {
    auto attack = attacks::make_scenario(name);
    return pipeline::run_scenario(cfg, attack.get(), trigger, duration,
                                  pipe.detector.get(), 14002);
  };
  const pipeline::ScenarioRun app = scenario_maps("app_addition");
  const pipeline::ScenarioRun shell = scenario_maps("shellcode");
  const pipeline::ScenarioRun rootkit = scenario_maps("rootkit");

  struct Row {
    const char* name;
    double fp;
    double det_app;
    double det_shell;
    double det_rootkit;
  };
  auto eval = [&](auto&& is_anomalous) {
    Row r{};
    std::size_t fp = 0;
    for (const auto& m : normal_run.maps) fp += is_anomalous(m);
    r.fp = static_cast<double>(fp) /
           static_cast<double>(normal_run.maps.size());
    auto rate = [&](const pipeline::ScenarioRun& run) {
      std::size_t hits = 0;
      std::size_t total = 0;
      for (const auto& m : run.maps) {
        if (m.interval_index < run.trigger_interval) continue;
        ++total;
        hits += is_anomalous(m);
      }
      return static_cast<double>(hits) / static_cast<double>(total);
    };
    r.det_app = rate(app);
    r.det_shell = rate(shell);
    r.det_rootkit = rate(rootkit);
    return r;
  };

  const double theta = pipe.theta_1.log10_value;
  Row pooled = eval([&](const HeatMap& m) {
    return pipe.det().score(m.as_vector()) < theta;
  });
  pooled.name = "pooled GMM, J=5 (paper)";
  Row phased = eval([&](const HeatMap& m) { return phase_det.anomalous(m); });
  phased.name = "phase-aware (1 Gaussian/phase)";

  TextTable table({"detector", "FP rate", "det app", "det shell",
                   "det rootkit"});
  CsvWriter csv("ablation_phase_aware.csv");
  csv.header({"detector", "fp_rate", "det_app", "det_shell", "det_rootkit"});
  for (const Row& r : {pooled, phased}) {
    table.add_row({r.name, fmt_double(r.fp, 3), fmt_double(r.det_app, 3),
                   fmt_double(r.det_shell, 3), fmt_double(r.det_rootkit, 3)});
    csv.row()
        .col(r.name)
        .col(r.fp)
        .col(r.det_app)
        .col(r.det_shell)
        .col(r.det_rootkit);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nexpected shape: at matched FP budgets the phase-conditioned "
              "detector dominates on the stealthy rootkit (its anomaly is a "
              "pattern-at-the-wrong-phase, invisible to a pooled mixture) "
              "and at worst matches on the gross attacks.\n");
  std::printf("[bench] wrote ablation_phase_aware.csv\n");
  return 0;
}
