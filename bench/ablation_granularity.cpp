// Ablation A1 — cell granularity δ. The paper picks δ = 2 KB "arbitrarily"
// (§5.2) and reports only one coarser point (8 KB) in the timing section.
// This bench sweeps δ and reports, for each setting: cell count L,
// detection quality (ROC AUC of normal-vs-attacked interval scores across
// all three scenarios) and mean analysis time, exposing the
// resolution-vs-cost trade-off behind the paper's choice.

#include <cstdio>
#include <memory>

#include "bench_support.hpp"
#include "common/stats.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Ablation A1 — MHM granularity sweep");

  const SimTime interval = sim::SystemConfig::paper_default().monitor.interval;
  const SimTime trigger = 50 * interval;
  const SimTime duration = 200 * interval;

  CsvWriter csv("ablation_granularity.csv");
  csv.header({"granularity", "cells", "auc_app", "auc_shellcode",
              "auc_rootkit", "analysis_us"});
  TextTable table({"delta", "L", "AUC app", "AUC shell", "AUC rootkit",
                   "analysis us"});

  for (std::uint64_t granularity :
       {std::uint64_t{2048}, std::uint64_t{4096}, std::uint64_t{8192},
        std::uint64_t{16384}, std::uint64_t{32768}}) {
    sim::SystemConfig cfg = sim::SystemConfig::paper_default(1);
    cfg.monitor.granularity = granularity;

    pipeline::ProfilingPlan plan;
    plan.runs = fast_mode() ? 2 : 5;
    plan.run_duration = fast_mode() ? 1 * kSecond : 2 * kSecond;

    AnomalyDetector::Options opts;
    opts.pca.components = 9;
    opts.gmm.components = 5;
    opts.gmm.restarts = 3;
    const auto pipe = pipeline::train_pipeline(cfg, plan, opts);
    reset_analysis_time();  // Scope the histogram to this granularity.

    // Normal scores from a held-out run.
    pipeline::ScenarioRun normal_run = pipeline::run_scenario(
        cfg, nullptr, 0, duration, pipe.detector.get(), 5001);

    const std::vector<double> normal_dens = normal_run.log10_densities();
    auto attacked_auc = [&](const std::string& name) {
      auto attack = attacks::make_scenario(name);
      pipeline::ScenarioRun run = pipeline::run_scenario(
          cfg, attack.get(), trigger, duration, pipe.detector.get(), 5002);
      std::vector<double> attacked_scores;
      const std::vector<double> run_dens = run.log10_densities();
      for (std::size_t i = 0; i < run.maps.size(); ++i) {
        if (run.maps[i].interval_index >= run.trigger_interval) {
          attacked_scores.push_back(run_dens[i]);
        }
      }
      return roc_auc(normal_dens, attacked_scores);
    };

    const double auc_app = attacked_auc("app_addition");
    const double auc_shell = attacked_auc("shellcode");
    const double auc_rootkit = attacked_auc("rootkit");
    const double us = analysis_mean_us();

    table.add_row({std::to_string(granularity),
                   std::to_string(cfg.monitor.cell_count()),
                   fmt_double(auc_app, 3), fmt_double(auc_shell, 3),
                   fmt_double(auc_rootkit, 3), fmt_double(us, 2)});
    csv.row()
        .col(granularity)
        .col(static_cast<std::uint64_t>(cfg.monitor.cell_count()))
        .col(auc_app)
        .col(auc_shell)
        .col(auc_rootkit)
        .col(us);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nexpected shape: AUC stays high for app/shellcode at every "
              "granularity (gross behavioural change), degrades for the "
              "stealthy rootkit as cells get coarser; analysis time grows "
              "with L.\n");
  std::printf("[bench] wrote ablation_granularity.csv\n");
  return 0;
}
