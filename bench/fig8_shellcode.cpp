// Reproduces Figure 8 (§5.3-2, Shellcode Execution): a shellcode injected
// into bitcount runs shortly after the 250th interval — it disables ASLR
// (personality(2)), makes its page executable, spawns a shell and thereby
// kills the host process. The log probability density of the MHMs drops at
// the trigger and stays abnormal because the periodic footprint of the
// victim disappears.

#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Figure 8 — shellcode disabling ASLR inside bitcount");
  const pipeline::TrainedPipeline& pipe = trained_pipeline();

  const SimTime interval = bench_config().monitor.interval;
  const SimTime trigger = 252 * interval;
  attacks::ShellcodeAttack attack("bitcount");

  pipeline::ScenarioRun run =
      pipeline::run_scenario(bench_config(), &attack, trigger,
                             /*duration=*/400 * interval,
                             pipe.detector.get(), /*seed=*/888);

  print_detection_figure(
      run, pipe,
      "log10 Pr(M) over 400 intervals — shellcode executes at the bar");

  const auto latency = run.detection_latency(pipe.theta_1.log10_value);
  print_comparison({
      {"detection", "easily detectable (host process killed)",
       latency ? "first flagged " + std::to_string(*latency) +
                     " interval(s) after execution"
               : "not detected"},
      {"post-trigger behaviour", "densities stay abnormal",
       fmt_double(
           100.0 *
               static_cast<double>(run.detections_after_trigger(
                   pipe.theta_1.log10_value)) /
               static_cast<double>(run.intervals_after_trigger()),
           1) + " % of post-trigger intervals flagged at theta_1"},
  });

  write_series_csv("fig8_shellcode", run);
  return 0;
}
