// Reproduces §5.4 (Analysis Time): the time to decide whether a newly
// observed MHM is normal. The paper measures, on its simulated secure core,
//   * L = 1472, L' = 9, J = 5  ->  358 us
//   * delta = 8 KB  (L = 368)  ->  100 us
//   * L' = 5                   ->  216 us
// each over 1,000 MHM samples. We measure the same three configurations
// with google-benchmark. Absolute numbers differ (host CPU vs simulated
// ARM), but the ordering and the "analysis << 10 ms interval" property must
// hold: time grows with L (projection work) and with L' (density work).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "obs/metrics.hpp"
#include "pipeline/experiment.hpp"

namespace {

using namespace mhm;

struct Setup {
  std::unique_ptr<AnomalyDetector> detector;
  std::vector<std::vector<double>> probes;
};

/// Train a detector for a given (granularity, L') and pre-generate probe
/// MHMs from a fresh normal run.
Setup make_setup(std::uint64_t granularity, std::size_t components) {
  sim::SystemConfig cfg = sim::SystemConfig::paper_default(/*seed=*/1);
  cfg.monitor.granularity = granularity;

  pipeline::ProfilingPlan plan;
  plan.runs = 4;
  plan.run_duration = 2 * kSecond;

  AnomalyDetector::Options opts;
  opts.pca.components = components;
  opts.gmm.components = 5;
  opts.gmm.restarts = 3;

  pipeline::TrainedPipeline pipe = pipeline::train_pipeline(cfg, plan, opts);

  Setup setup;
  setup.detector = std::move(pipe.detector);
  pipeline::ScenarioRun probe_run = pipeline::run_scenario(
      cfg, nullptr, 0, 1 * kSecond, nullptr, /*seed=*/4711);
  for (const auto& m : probe_run.maps) setup.probes.push_back(m.as_vector());
  return setup;
}

Setup& setup_for(int id) {
  // One cached setup per benchmarked configuration.
  static Setup s0 = make_setup(2048, 9);   // paper main: L=1472, L'=9
  static Setup s1 = make_setup(8192, 9);   // coarse: L=368
  static Setup s2 = make_setup(2048, 5);   // fewer eigenmemories: L'=5
  switch (id) {
    case 0: return s0;
    case 1: return s1;
    default: return s2;
  }
}

void BM_Analyze(benchmark::State& state) {
  Setup& setup = setup_for(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& probe = setup.probes[i++ % setup.probes.size()];
    benchmark::DoNotOptimize(setup.detector->score(probe));
  }
  state.SetLabel(state.range(0) == 0   ? "L=1472 L'=9 J=5 (paper: 358us)"
                 : state.range(0) == 1 ? "L=368 L'=9 J=5 (paper ~100us at 8KB)"
                                       : "L=1472 L'=5 J=5 (paper: 216us)");
}

BENCHMARK(BM_Analyze)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("§5.4 — analysis time per MHM (paper, on simulated secure "
              "core: 358 us / 100 us / 216 us)\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Paper-style summary over 1,000 samples per configuration.
  std::printf("\nsummary over 1,000 analyses each:\n");
  const char* names[] = {"L=1472, L'=9, J=5", "L=368,  L'=9, J=5",
                         "L=1472, L'=5, J=5"};
  const double paper_us[] = {358.0, 100.0, 216.0};
  for (int c = 0; c < 3; ++c) {
    Setup& setup = setup_for(c);
    obs::Histogram& hist = AnomalyDetector::analysis_time_histogram();
    hist.reset();  // Scope the process-wide histogram to this configuration.
    for (int i = 0; i < 1000; ++i) {
      (void)setup.detector->analyze(setup.probes[i % setup.probes.size()], i);
    }
    const std::uint64_t samples = hist.count();
    const double mean_us =
        samples > 0 ? hist.sum() / static_cast<double>(samples) / 1000.0 : 0.0;
    std::printf("  %-20s paper %6.0f us | measured %8.2f us (mean of %zu)\n",
                names[c], paper_us[c], mean_us,
                static_cast<std::size_t>(samples));
  }
  std::printf("ordering check: time(L=1472) > time(L=368); "
              "time(L'=9) > time(L'=5); all << 10 ms interval\n");
  return 0;
}
