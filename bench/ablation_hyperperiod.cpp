// Ablation A9 — hyperperiod length. §5.1's footnote defers to future work:
// "A longer hyper-period would require a more number of training samples,
// eigenmemories, and/or GMM components". This bench tests that conjecture
// directly: task sets whose periods produce hyperperiods of 40 / 100 / 200
// / 600 ms, each profiled with the same budget, then measuring (a) how many
// eigenmemories the 99.99 % variance target needs, (b) the BIC-selected GMM
// component count, and (c) detection quality.

#include <cstdio>

#include "bench_support.hpp"
#include "common/stats.hpp"

namespace {

using namespace mhm;

/// A three-task workload with ~60 % utilization whose periods are chosen to
/// hit the requested hyperperiod (in monitoring intervals of 10 ms).
std::vector<sim::TaskSpec> workload_with_hyperperiod(SimTime hyperperiod) {
  struct Choice {
    SimTime hp;
    std::uint64_t periods_ms[3];
  };
  // lcm(periods) == hp for each row.
  static constexpr Choice kChoices[] = {
      {40 * kMillisecond, {10, 20, 40}},
      {100 * kMillisecond, {10, 20, 50}},
      {200 * kMillisecond, {20, 40, 50}},
      {600 * kMillisecond, {30, 40, 50}},
  };
  for (const auto& choice : kChoices) {
    if (choice.hp != hyperperiod) continue;
    std::vector<sim::TaskSpec> tasks;
    for (int i = 0; i < 3; ++i) {
      sim::TaskSpec t;
      t.name = "t" + std::to_string(i);
      t.period = choice.periods_ms[i] * kMillisecond;
      t.exec_time = t.period / 5;  // 20 % utilization each
      t.user_text_base = 0x10000 + static_cast<Address>(i) * 0x20000;
      t.syscalls = {
          {.service = "sys_gettimeofday", .calls_per_job = 1},
          {.service = i == 0 ? "sys_read" : (i == 1 ? "sys_write" : "sys_brk"),
           .calls_per_job = 4.0 + 3.0 * i},
      };
      t.validate();
      tasks.push_back(std::move(t));
    }
    return tasks;
  }
  throw ConfigError("workload_with_hyperperiod: unsupported hyperperiod");
}

}  // namespace

int main() {
  using namespace mhm::bench;

  print_header("Ablation A9 — hyperperiod vs required model capacity");

  CsvWriter csv("ablation_hyperperiod.csv");
  csv.header({"hyperperiod_ms", "phases", "eigenmemories_9999", "bic_j",
              "fp_rate_theta1", "auc_app"});
  TextTable table({"hyperperiod", "phases", "L' for 99.99%", "BIC J",
                   "FP @theta_1", "AUC app"});

  for (SimTime hp : {40 * kMillisecond, 100 * kMillisecond,
                     200 * kMillisecond, 600 * kMillisecond}) {
    sim::SystemConfig cfg = bench_config(1);
    cfg.tasks = workload_with_hyperperiod(hp);

    pipeline::ProfilingPlan plan;
    plan.runs = fast_mode() ? 2 : 4;
    plan.run_duration = fast_mode() ? 1 * kSecond : 3 * kSecond;

    // Fit PCA with automatic component selection at the paper's 99.99 %.
    const HeatMapTrace training = pipeline::collect_normal_trace(cfg, plan);
    Eigenmemory::Options auto_opts;
    auto_opts.components = 0;
    auto_opts.variance_target = 0.9999;
    const Eigenmemory em = Eigenmemory::fit(training, auto_opts);

    // BIC-select J on the reduced data.
    std::vector<std::vector<double>> raw;
    for (const auto& m : training) raw.push_back(m.as_vector());
    const auto reduced = em.project_all(raw);
    std::size_t bic_j = 0;
    Gmm::Options sel;
    sel.restarts = 3;
    (void)Gmm::select_components(reduced, 1, 12, sel, &bic_j);

    // Detection quality with a fixed-capacity detector (L'=9, J=5), i.e.
    // the paper's settings applied to the longer hyperperiod.
    AnomalyDetector::Options det_opts;
    det_opts.pca.components = std::min<std::size_t>(9, training.size() - 1);
    det_opts.gmm.components = 5;
    det_opts.gmm.restarts = 3;
    const auto pipe = pipeline::train_pipeline(cfg, plan, det_opts);

    const SimTime duration = 400 * cfg.monitor.interval;
    pipeline::ScenarioRun normal_run = pipeline::run_scenario(
        cfg, nullptr, 0, duration, pipe.detector.get(), 13001);
    const double theta = pipe.theta_1.log10_value;
    const std::vector<double> normal_dens = normal_run.log10_densities();
    std::size_t fp = 0;
    for (double d : normal_dens) fp += (d < theta);
    const double fp_rate = static_cast<double>(fp) /
                           static_cast<double>(normal_dens.size());

    attacks::AppAdditionAttack attack;
    pipeline::ScenarioRun app = pipeline::run_scenario(
        cfg, &attack, 100 * cfg.monitor.interval, duration,
        pipe.detector.get(), 13002);
    std::vector<double> attacked;
    const std::vector<double> app_dens = app.log10_densities();
    for (std::size_t i = 0; i < app.maps.size(); ++i) {
      if (app.maps[i].interval_index >= app.trigger_interval) {
        attacked.push_back(app_dens[i]);
      }
    }
    const double auc = roc_auc(normal_dens, attacked);

    const auto phases = static_cast<std::uint64_t>(hp / cfg.monitor.interval);
    table.add_row({std::to_string(hp / kMillisecond) + " ms",
                   std::to_string(phases), std::to_string(em.components()),
                   std::to_string(bic_j),
                   fmt_double(100.0 * fp_rate, 2) + " %",
                   fmt_double(auc, 3)});
    csv.row()
        .col(hp / kMillisecond)
        .col(phases)
        .col(static_cast<std::uint64_t>(em.components()))
        .col(static_cast<std::uint64_t>(bic_j))
        .col(fp_rate)
        .col(auc);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nconjecture under test (§5.1 footnote): longer hyperperiods "
              "mean more distinct interval phases, so the variance target "
              "needs more eigenmemories and BIC asks for more GMM "
              "components, while a fixed-capacity detector degrades.\n");
  std::printf("[bench] wrote ablation_hyperperiod.csv\n");
  return 0;
}
