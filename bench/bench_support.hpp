#pragma once

// Shared scaffolding for the figure-regeneration benches. Each bench binary
// reproduces one table or figure of the DAC'15 paper: it trains the pipeline
// the way §5.2 describes, runs the relevant scenario, prints the series the
// paper plots (plus an ASCII rendition), writes a CSV next to the binary and
// reports paper-vs-measured in a compact table.
//
// Environment knobs:
//   MHM_BENCH_FAST=1  — shrink the training plan (coarser cells, fewer runs)
//                       so the whole bench suite runs in seconds. Default is
//                       the paper-faithful scale (δ = 2 KB, 10 runs x 3 s).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "pipeline/experiment.hpp"

namespace mhm::bench {

/// True when MHM_BENCH_FAST=1 is set.
bool fast_mode();

/// System configuration used by the benches (paper default, or coarsened
/// in fast mode).
sim::SystemConfig bench_config(std::uint64_t seed = 1);

/// Profiling plan (§5.2: 10 sets x 3 s; shrunk in fast mode).
pipeline::ProfilingPlan bench_plan();

/// Detector options (9 eigenmemories, J = 5, 10 EM restarts as in §5.2).
AnomalyDetector::Options bench_detector_options();

/// Train (or reuse a cached) pipeline at bench scale. The cache avoids
/// retraining when one binary reproduces several figures.
const pipeline::TrainedPipeline& trained_pipeline();

/// Print a section header.
void print_header(const std::string& title);

/// Print the paper-vs-measured comparison rows.
struct PaperComparison {
  std::string quantity;
  std::string paper;
  std::string measured;
};
void print_comparison(const std::vector<PaperComparison>& rows);

/// Print the standard detection summary of a scenario run under both
/// thresholds, plus an ASCII density plot shaped like the paper's figure.
void print_detection_figure(const pipeline::ScenarioRun& run,
                            const pipeline::TrainedPipeline& pipe,
                            const std::string& title);

/// Dump (interval, log10 density, volume) rows to `<name>.csv`.
void write_series_csv(const std::string& name,
                      const pipeline::ScenarioRun& run);

/// Zero the process-wide `detector.analysis_ns` registry histogram so the
/// next analysis_mean_us() reading covers only the run that follows (the
/// per-detector RunningStats accumulator this replaced was removed).
void reset_analysis_time();

/// Mean analysis time in microseconds accumulated since the last
/// reset_analysis_time() (0 when nothing was recorded, e.g. MHM_OBS=0).
double analysis_mean_us();

}  // namespace mhm::bench
