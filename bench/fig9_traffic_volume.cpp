// Reproduces Figure 9 (§5.3-3): the memory-traffic volume of the monitored
// region while a kernel rootkit hijacks the read system call. The moment
// the LKM loads is clearly distinguishable as a volume spike, but after the
// load the traffic shows no abnormality in volume terms — the hijacked
// handler lives outside the monitored region and still calls the original
// read handler. This is the motivating failure of the volume baseline.

#include <cstdio>

#include "bench_support.hpp"
#include "core/detector.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Figure 9 — memory traffic volume under a read-hijack rootkit");
  const pipeline::TrainedPipeline& pipe = trained_pipeline();

  const SimTime interval = bench_config().monitor.interval;
  const SimTime trigger = 102 * interval;  // figure: rootkit launched ~100
  attacks::RootkitAttack attack;

  pipeline::ScenarioRun run =
      pipeline::run_scenario(bench_config(), &attack, trigger,
                             /*duration=*/400 * interval,
                             pipe.detector.get(), /*seed=*/999);

  LinePlotOptions plot;
  plot.title = "total number of accesses per interval — rootkit loaded at "
               "the bar ('read' hijacked afterwards)";
  plot.width = 100;
  plot.height = 20;
  plot.vlines = {static_cast<double>(run.trigger_interval)};
  plot.x_label = "interval index (10 ms each)";
  std::fputs(render_line_plot(run.traffic_volumes, plot).c_str(), stdout);

  // Volume-band baseline calibrated on the training maps.
  const TrafficVolumeDetector volume_det =
      TrafficVolumeDetector::from_trace(pipe.training, 0.005);

  std::size_t load_window_alarms = 0;
  std::size_t stealth_alarms = 0;
  std::size_t stealth_total = 0;
  double stealth_mean = 0.0;
  double normal_mean = 0.0;
  std::size_t normal_total = 0;
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    const auto idx = run.maps[i].interval_index;
    const double vol = run.traffic_volumes[i];
    if (idx >= run.trigger_interval && idx <= run.trigger_interval + 1) {
      load_window_alarms += volume_det.anomalous(vol);
    } else if (idx > run.trigger_interval + 1) {
      ++stealth_total;
      stealth_alarms += volume_det.anomalous(vol);
      stealth_mean += vol;
    } else {
      ++normal_total;
      normal_mean += vol;
    }
  }
  stealth_mean /= static_cast<double>(stealth_total);
  normal_mean /= static_cast<double>(normal_total);

  print_comparison({
      {"load moment", "distinguishable volume spike",
       load_window_alarms > 0 ? "volume detector trips at the load interval"
                              : "no volume alarm at load (spike below band)"},
      {"post-load volume", "no abnormality in volume terms",
       fmt_double(100.0 * static_cast<double>(stealth_alarms) /
                      static_cast<double>(stealth_total),
                  2) + " % of stealth intervals trip the volume band"},
      {"mean volume pre vs post", "(visually unchanged)",
       fmt_double(normal_mean, 0) + " -> " + fmt_double(stealth_mean, 0) +
           " accesses/interval (" +
           fmt_double(100.0 * (stealth_mean - normal_mean) / normal_mean, 1) +
           " % change)"},
  });

  write_series_csv("fig9_traffic_volume", run);
  return 0;
}
