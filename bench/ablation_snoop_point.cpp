// Ablation A4 — snoop point (§5.5 "Limitation"). The paper snoops between
// core and L1 to see every fetch, and conjectures that moving the
// Memometer below a shared cache would simplify the hardware at the cost
// of losing cache hits, "but the accuracy drop would not be significant"
// thanks to the predictability of real-time workloads. This bench tests
// that conjecture: train and detect at each snoop point, compare traffic
// seen, hit rates and detection AUC.

#include <cstdio>

#include "bench_support.hpp"
#include "common/stats.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Ablation A4 — snoop point: pre-L1 vs post-L1 vs post-L2");

  const SimTime interval = sim::SystemConfig::paper_default().monitor.interval;
  const SimTime trigger = 50 * interval;
  const SimTime duration = 200 * interval;

  CsvWriter csv("ablation_snoop_point.csv");
  csv.header({"snoop_point", "mean_volume", "auc_app", "auc_shellcode",
              "auc_rootkit"});
  TextTable table({"snoop point", "mean vol/interval", "AUC app", "AUC shell",
                   "AUC rootkit"});

  const struct {
    sim::SnoopPoint point;
    const char* name;
  } kPoints[] = {
      {sim::SnoopPoint::PreL1, "pre-L1 (paper)"},
      {sim::SnoopPoint::PostL1, "post-L1"},
      {sim::SnoopPoint::PostL2, "post-L2"},
  };

  for (const auto& sp : kPoints) {
    sim::SystemConfig cfg = bench_config(1);
    cfg.snoop_point = sp.point;

    pipeline::ProfilingPlan plan;
    plan.runs = fast_mode() ? 2 : 5;
    plan.run_duration = fast_mode() ? 1 * kSecond : 2 * kSecond;

    AnomalyDetector::Options opts;
    opts.pca.components = 9;
    opts.gmm.components = 5;
    opts.gmm.restarts = 3;
    const auto pipe = pipeline::train_pipeline(cfg, plan, opts);

    RunningStats volume;
    for (const auto& m : pipe.training) {
      volume.add(static_cast<double>(m.total_accesses()));
    }

    pipeline::ScenarioRun normal_run = pipeline::run_scenario(
        cfg, nullptr, 0, duration, pipe.detector.get(), 7001);
    const std::vector<double> normal_dens = normal_run.log10_densities();
    auto attacked_auc = [&](const std::string& name) {
      auto attack = attacks::make_scenario(name);
      pipeline::ScenarioRun run = pipeline::run_scenario(
          cfg, attack.get(), trigger, duration, pipe.detector.get(), 7002);
      std::vector<double> attacked;
      const std::vector<double> run_dens = run.log10_densities();
      for (std::size_t i = 0; i < run.maps.size(); ++i) {
        if (run.maps[i].interval_index >= run.trigger_interval) {
          attacked.push_back(run_dens[i]);
        }
      }
      return roc_auc(normal_dens, attacked);
    };
    const double auc_app = attacked_auc("app_addition");
    const double auc_shell = attacked_auc("shellcode");
    const double auc_rootkit = attacked_auc("rootkit");

    table.add_row({sp.name, fmt_double(volume.mean(), 0),
                   fmt_double(auc_app, 3), fmt_double(auc_shell, 3),
                   fmt_double(auc_rootkit, 3)});
    csv.row()
        .col(sp.name)
        .col(volume.mean())
        .col(auc_app)
        .col(auc_shell)
        .col(auc_rootkit);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\n§5.5 conjecture under test: below the cache the Memometer "
              "sees only misses (much lower volume), yet detection quality "
              "should not collapse because the workload is periodic.\n");
  std::printf("[bench] wrote ablation_snoop_point.csv\n");
  return 0;
}
