// Ablation A5 — detector comparison. §4.1 argues that matching a new MHM
// against every stored training map is "computationally prohibitive", and
// Figure 9 shows that plain traffic-volume monitoring misses stealthy
// attacks. This bench quantifies both claims: eigenmemory+GMM versus the
// raw nearest-neighbour matcher versus the volume band, on detection rate,
// false positives, per-MHM cost and model storage.

#include <chrono>
#include <cstdio>

#include "bench_support.hpp"
#include "common/stats.hpp"
#include "core/detector.hpp"
#include "core/explainer.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Ablation A5 — GMM vs raw 1-NN vs traffic-volume baseline");

  sim::SystemConfig cfg = bench_config(1);
  pipeline::ProfilingPlan plan;
  plan.runs = fast_mode() ? 2 : 5;
  plan.run_duration = fast_mode() ? 1 * kSecond : 2 * kSecond;

  AnomalyDetector::Options opts;
  opts.pca.components = 9;
  opts.gmm.components = 5;
  opts.gmm.restarts = 3;
  const auto pipe = pipeline::train_pipeline(cfg, plan, opts);

  std::vector<std::vector<double>> train_raw;
  for (const auto& m : pipe.training) train_raw.push_back(m.as_vector());
  std::vector<std::vector<double>> valid_raw;
  for (const auto& m : pipe.validation) valid_raw.push_back(m.as_vector());

  const NearestNeighborDetector nn(train_raw, valid_raw, 0.01);
  const TrafficVolumeDetector volume =
      TrafficVolumeDetector::from_trace(pipe.training, 0.005);

  const SimTime interval = cfg.monitor.interval;
  const SimTime trigger = 50 * interval;
  const SimTime duration = 200 * interval;

  struct Row {
    const char* detector;
    double fp_rate;
    double det_app;
    double det_shell;
    double det_rootkit;
    double cost_us;
    std::size_t storage;
  };
  std::vector<Row> rows;

  // Collect runs once, evaluate all detectors on the same maps.
  pipeline::ScenarioRun normal_run =
      pipeline::run_scenario(cfg, nullptr, 0, duration, pipe.detector.get(), 8001);
  auto attacked_run = [&](const std::string& name) {
    auto attack = attacks::make_scenario(name);
    return pipeline::run_scenario(cfg, attack.get(), trigger, duration,
                                  pipe.detector.get(), 8002);
  };
  const pipeline::ScenarioRun app = attacked_run("app_addition");
  const pipeline::ScenarioRun shell = attacked_run("shellcode");
  const pipeline::ScenarioRun rk = attacked_run("rootkit");

  auto eval = [&](auto&& is_anomalous) {
    Row r{};
    std::size_t fp = 0;
    for (const auto& m : normal_run.maps) fp += is_anomalous(m);
    r.fp_rate = static_cast<double>(fp) /
                static_cast<double>(normal_run.maps.size());
    auto det_rate = [&](const pipeline::ScenarioRun& run) {
      std::size_t hits = 0;
      std::size_t total = 0;
      for (const auto& m : run.maps) {
        if (m.interval_index < run.trigger_interval) continue;
        ++total;
        hits += is_anomalous(m);
      }
      return static_cast<double>(hits) / static_cast<double>(total);
    };
    r.det_app = det_rate(app);
    r.det_shell = det_rate(shell);
    r.det_rootkit = det_rate(rk);
    // Cost: mean wall time per decision over the normal maps.
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& m : normal_run.maps) (void)is_anomalous(m);
    const auto t1 = std::chrono::steady_clock::now();
    r.cost_us = std::chrono::duration<double, std::micro>(t1 - t0).count() /
                static_cast<double>(normal_run.maps.size());
    return r;
  };

  {
    const double theta = pipe.theta_1.log10_value;
    Row r = eval([&](const HeatMap& m) {
      return pipe.det().score(m.as_vector()) < theta;
    });
    r.detector = "eigenmemory + GMM (paper)";
    const Eigenmemory& em = pipe.det().eigenmemory();
    r.storage = (em.components() * em.input_dim() + em.input_dim() +
                 pipe.det().gmm().parameter_count()) *
                sizeof(double);
    rows.push_back(r);
  }
  {
    Row r = eval([&](const HeatMap& m) { return nn.anomalous(m.as_vector()); });
    r.detector = "raw 1-NN (dismissed in §4.1)";
    r.storage = nn.storage_bytes();
    rows.push_back(r);
  }
  {
    Row r = eval([&](const HeatMap& m) { return volume.anomalous(m); });
    r.detector = "traffic volume band (Figure 9)";
    r.storage = 2 * sizeof(double);
    rows.push_back(r);
  }
  const SpeDetector spe(pipe.det().eigenmemory(), valid_raw, 0.01);
  {
    Row r = eval([&](const HeatMap& m) { return spe.anomalous(m); });
    r.detector = "SPE residual (extension)";
    const Eigenmemory& em = pipe.det().eigenmemory();
    r.storage =
        (em.components() * em.input_dim() + em.input_dim() + 1) * sizeof(double);
    rows.push_back(r);
  }
  {
    // GMM density OR SPE: the combined detector covers both the in-subspace
    // and the orthogonal failure modes.
    const double theta = pipe.theta_1.log10_value;
    Row r = eval([&](const HeatMap& m) {
      const auto raw = m.as_vector();
      return pipe.det().score(raw) < theta || spe.anomalous(raw);
    });
    r.detector = "GMM + SPE combined (extension)";
    const Eigenmemory& em = pipe.det().eigenmemory();
    r.storage = (em.components() * em.input_dim() + em.input_dim() +
                 pipe.det().gmm().parameter_count() + 1) *
                sizeof(double);
    rows.push_back(r);
  }

  TextTable table({"detector", "FP rate", "det app", "det shell",
                   "det rootkit", "us/MHM", "storage bytes"});
  CsvWriter csv("ablation_detectors.csv");
  csv.header({"detector", "fp_rate", "det_app", "det_shell", "det_rootkit",
              "cost_us", "storage_bytes"});
  for (const auto& r : rows) {
    table.add_row({r.detector, fmt_double(r.fp_rate, 3),
                   fmt_double(r.det_app, 3), fmt_double(r.det_shell, 3),
                   fmt_double(r.det_rootkit, 3), fmt_double(r.cost_us, 2),
                   std::to_string(r.storage)});
    csv.row()
        .col(r.detector)
        .col(r.fp_rate)
        .col(r.det_app)
        .col(r.det_shell)
        .col(r.det_rootkit)
        .col(r.cost_us)
        .col(static_cast<std::uint64_t>(r.storage));
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nexpected shape: GMM and 1-NN detect all three attacks, but "
              "1-NN needs the whole training set (storage) and O(N*L) per "
              "decision; the volume band is cheapest and blind to the "
              "rootkit's stealth phase.\n");
  std::printf("[bench] wrote ablation_detectors.csv\n");
  return 0;
}
