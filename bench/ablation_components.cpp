// Ablation A2 — number of eigenmemories L'. The paper keeps 9 (covering
// > 99.99 % of training variance) and reports 216 us analysis time at
// L' = 5. This bench sweeps L' and reports variance explained,
// reconstruction error, detection AUC per scenario and analysis time,
// locating the knee the paper's choice sits on.

#include <cstdio>

#include "bench_support.hpp"
#include "common/stats.hpp"

int main() {
  using namespace mhm;
  using namespace mhm::bench;

  print_header("Ablation A2 — eigenmemory count (L') sweep");

  sim::SystemConfig cfg = bench_config(1);
  pipeline::ProfilingPlan plan;
  plan.runs = fast_mode() ? 2 : 5;
  plan.run_duration = fast_mode() ? 1 * kSecond : 2 * kSecond;

  const SimTime interval = cfg.monitor.interval;
  const SimTime trigger = 50 * interval;
  const SimTime duration = 200 * interval;

  CsvWriter csv("ablation_components.csv");
  csv.header({"components", "variance_explained", "reconstruction_error",
              "auc_app", "auc_rootkit", "analysis_us"});
  TextTable table({"L'", "var expl %", "recon err", "AUC app", "AUC rootkit",
                   "analysis us"});

  for (std::size_t components : {1u, 2u, 3u, 5u, 9u, 16u, 32u}) {
    AnomalyDetector::Options opts;
    opts.pca.components = components;
    opts.gmm.components = 5;
    opts.gmm.restarts = 3;
    const auto pipe = pipeline::train_pipeline(cfg, plan, opts);
    reset_analysis_time();  // Scope the histogram to this L' configuration.

    // Mean reconstruction error over the validation maps.
    RunningStats recon;
    for (const auto& m : pipe.validation) {
      recon.add(pipe.det().eigenmemory().reconstruction_error(m.as_vector()));
    }

    pipeline::ScenarioRun normal_run = pipeline::run_scenario(
        cfg, nullptr, 0, duration, pipe.detector.get(), 6001);
    const std::vector<double> normal_dens = normal_run.log10_densities();
    auto attacked_auc = [&](const std::string& name) {
      auto attack = attacks::make_scenario(name);
      pipeline::ScenarioRun run = pipeline::run_scenario(
          cfg, attack.get(), trigger, duration, pipe.detector.get(), 6002);
      std::vector<double> attacked;
      const std::vector<double> run_dens = run.log10_densities();
      for (std::size_t i = 0; i < run.maps.size(); ++i) {
        if (run.maps[i].interval_index >= run.trigger_interval) {
          attacked.push_back(run_dens[i]);
        }
      }
      return roc_auc(normal_dens, attacked);
    };
    const double auc_app = attacked_auc("app_addition");
    const double auc_rootkit = attacked_auc("rootkit");
    const double us = analysis_mean_us();

    table.add_row({std::to_string(components),
                   fmt_double(100.0 * pipe.det().eigenmemory().variance_explained(), 3),
                   fmt_double(recon.mean(), 4), fmt_double(auc_app, 3),
                   fmt_double(auc_rootkit, 3), fmt_double(us, 2)});
    csv.row()
        .col(static_cast<std::uint64_t>(components))
        .col(pipe.det().eigenmemory().variance_explained())
        .col(recon.mean())
        .col(auc_app)
        .col(auc_rootkit)
        .col(us);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nexpected shape: variance explained and AUC saturate around "
              "the paper's L' = 9; analysis time keeps growing with L'.\n");
  std::printf("[bench] wrote ablation_components.csv\n");
  return 0;
}
