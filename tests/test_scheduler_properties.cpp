// Property-based scheduler tests: invariants that must hold for *any*
// task set, checked over randomly generated workloads.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hw/trace_recorder.hpp"
#include "sim/scheduler.hpp"
#include "sim/kernel_image.hpp"

namespace mhm::sim {
namespace {

/// Generate a random periodic task set with total utilization <= `u_cap`.
std::vector<TaskSpec> random_task_set(Rng& rng, double u_cap) {
  const auto count = static_cast<std::size_t>(rng.uniform_int(1, 5));
  std::vector<TaskSpec> tasks;
  double budget = u_cap;
  for (std::size_t i = 0; i < count; ++i) {
    TaskSpec t;
    t.name = "task" + std::to_string(i);
    // Periods from {5, 10, 20, 25, 40, 50, 100} ms.
    static constexpr std::uint64_t kPeriods[] = {5, 10, 20, 25, 40, 50, 100};
    t.period = kPeriods[rng.uniform_int(0, 6)] * kMillisecond;
    const double share = rng.uniform(0.05, budget / static_cast<double>(count - i + 1));
    t.exec_time = std::max<SimTime>(
        100 * kMicrosecond,
        static_cast<SimTime>(share * static_cast<double>(t.period)));
    t.exec_sigma = 0.01;
    t.user_text_base = 0x10000 + i * 0x20000;
    if (rng.bernoulli(0.5)) {
      t.syscalls.push_back({.service = "sys_gettimeofday",
                            .calls_per_job = 1});
    }
    if (rng.bernoulli(0.3)) {
      t.syscalls.push_back({.service = "sys_read", .calls_per_job = 3});
    }
    budget -= t.utilization();
    if (budget <= 0.05) break;
    tasks.push_back(std::move(t));
  }
  if (tasks.empty()) {
    TaskSpec t;
    t.name = "task0";
    t.period = 20 * kMillisecond;
    t.exec_time = 2 * kMillisecond;
    t.user_text_base = 0x10000;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

class SchedulerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  KernelImage image_;
  ServiceCatalog catalog_{image_};
};

TEST_P(SchedulerPropertyTest, InvariantsHoldForRandomTaskSets) {
  Rng rng(GetParam());
  const auto tasks = random_task_set(rng, 0.65);

  hw::MemoryBus bus;
  hw::TraceRecorder recorder;
  bus.attach(&recorder);
  Scheduler sched(catalog_, bus, Rng(GetParam() * 31 + 7));
  for (const auto& t : tasks) sched.add_task(t);

  const SimTime horizon = 2 * kSecond;
  sched.run_until(horizon);

  // 1. Time conservation: busy + idle == elapsed.
  EXPECT_EQ(sched.stats().busy_time + sched.stats().idle_time, horizon);

  // 2. Completions never exceed releases; jobs released per the period.
  EXPECT_LE(sched.stats().jobs_completed, sched.stats().jobs_released);
  for (const auto& t : tasks) {
    const auto& rt = sched.task(t.name);
    const std::uint64_t expected_releases =
        static_cast<std::uint64_t>(horizon / t.period) + 1;  // release at 0
    EXPECT_LE(rt.jobs_released, expected_releases) << t.name;
    EXPECT_GE(rt.jobs_released + 1, expected_releases) << t.name;

    // 3. Response times bounded below by execution demand (minus jitter
    //    slack) and above by the horizon.
    if (rt.jobs_completed > 0) {
      EXPECT_GE(rt.worst_response, t.exec_time / 2) << t.name;
      EXPECT_LE(rt.worst_response, horizon) << t.name;
      EXPECT_LE(rt.mean_response(), rt.worst_response) << t.name;
    }
  }

  // 4. At <= 65 % utilization with RM priorities, every deadline holds
  //    (Liu–Layland bound for 5 tasks is 74.3 %).
  EXPECT_EQ(sched.stats().deadline_misses, 0u);

  // 5. Bus time never runs ahead of the scheduler clock.
  EXPECT_LE(bus.last_time(), sched.now());

  // 6. The monitored stream is non-empty (ticks at minimum).
  EXPECT_GE(sched.stats().ticks, horizon / Scheduler::kTickPeriod - 1);
  EXPECT_GT(recorder.bursts().size(), 0u);
}

TEST_P(SchedulerPropertyTest, UtilizationMatchesDemand) {
  Rng rng(GetParam() + 1000);
  const auto tasks = random_task_set(rng, 0.6);
  double expected_u = 0.0;
  for (const auto& t : tasks) expected_u += t.utilization();

  hw::MemoryBus bus;
  Scheduler sched(catalog_, bus, Rng(GetParam()));
  for (const auto& t : tasks) sched.add_task(t);
  sched.run_until(4 * kSecond);

  // Busy fraction ~ task utilization plus (small) syscall service time.
  const double measured = sched.stats().cpu_utilization();
  EXPECT_GT(measured, expected_u * 0.9);
  EXPECT_LT(measured, expected_u + 0.12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mhm::sim
