#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "test_util.hpp"

namespace mhm::linalg {
namespace {

using mhm::testing::expect_matrix_near;
using mhm::testing::expect_vector_near;
using mhm::testing::random_spd;

TEST(Cholesky, FactorizesKnownMatrix) {
  // A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]].
  const Matrix a = Matrix::from_rows({{4.0, 2.0}, {2.0, 3.0}});
  const Cholesky chol(a);
  EXPECT_NEAR(chol.lower()(0, 0), 2.0, 1e-14);
  EXPECT_NEAR(chol.lower()(1, 0), 1.0, 1e-14);
  EXPECT_NEAR(chol.lower()(1, 1), std::sqrt(2.0), 1e-14);
  EXPECT_NEAR(chol.lower()(0, 1), 0.0, 0.0);
}

class CholeskyPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyPropertyTest, LLtReconstructsInput) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, 100 + n);
  const Cholesky chol(a);
  const Matrix llt = multiply(chol.lower(), chol.lower().transposed());
  expect_matrix_near(llt, a, 1e-9 * static_cast<double>(n), "L L^T");
}

TEST_P(CholeskyPropertyTest, SolveSatisfiesSystem) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, 200 + n);
  Rng rng(n);
  Vector b(n);
  for (double& v : b) v = rng.uniform(-2.0, 2.0);
  const Cholesky chol(a);
  const Vector x = chol.solve(b);
  expect_vector_near(multiply(a, x), b, 1e-8, "A x == b");
}

TEST_P(CholeskyPropertyTest, LogDetMatchesLu) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, 300 + n);
  const Cholesky chol(a);
  const Lu lu(a);
  EXPECT_NEAR(chol.log_det(), std::log(lu.det()), 1e-8);
}

TEST_P(CholeskyPropertyTest, MahalanobisMatchesExplicitInverse) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, 400 + n);
  Rng rng(2 * n);
  Vector x(n);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const Cholesky chol(a);
  const Vector ainv_x = Lu(a).solve(x);
  EXPECT_NEAR(chol.mahalanobis_squared(x), dot(x, ainv_x), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 4, 9, 16, 32));

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});  // eig -1, 3
  EXPECT_THROW((void)Cholesky(a), NumericalError);
}

TEST(Cholesky, JitterRescuesSemidefinite) {
  // Rank-1 PSD matrix: plain factorization fails, jitter succeeds.
  Matrix a(3, 3, 0.0);
  syr_update(a, 1.0, Vector{1.0, 1.0, 1.0});
  EXPECT_THROW((void)Cholesky(a), NumericalError);
  EXPECT_NO_THROW(Cholesky(a, 1e-6));
}

TEST(Cholesky, RegularizationEscalatesUntilSuccess) {
  Matrix a(3, 3, 0.0);
  syr_update(a, 1.0, Vector{2.0, -1.0, 0.5});
  const auto reg = cholesky_with_regularization(a);
  EXPECT_GT(reg.jitter_used, 0.0);
  EXPECT_EQ(reg.factor.dim(), 3u);
}

TEST(Cholesky, RegularizationZeroJitterWhenAlreadyPd) {
  const auto reg = cholesky_with_regularization(random_spd(5, 7));
  EXPECT_EQ(reg.jitter_used, 0.0);
}

TEST(Cholesky, RegularizationGivesUpAtMaxJitter) {
  // A matrix with a hugely negative eigenvalue cannot be fixed by jitter
  // bounded at max_jitter.
  Matrix a = Matrix::identity(2);
  a(0, 0) = -1e9;
  EXPECT_THROW(cholesky_with_regularization(a, 0.0, 1.0), NumericalError);
}

TEST(Cholesky, TransformStandardNormalHasTargetCovariance) {
  const Matrix a = Matrix::from_rows({{2.0, 0.6}, {0.6, 1.0}});
  const Cholesky chol(a);
  Rng rng(55);
  Matrix cov(2, 2, 0.0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Vector z = {rng.normal(), rng.normal()};
    const Vector s = chol.transform_standard_normal(z);
    syr_update(cov, 1.0 / n, s);
  }
  expect_matrix_near(cov, a, 0.05, "empirical covariance");
}

TEST(Cholesky, ForwardSolveIsLowerTriangularSolve) {
  const Matrix a = random_spd(4, 11);
  const Cholesky chol(a);
  Vector b = {1.0, 2.0, 3.0, 4.0};
  const Vector y = chol.forward_solve(b);
  expect_vector_near(multiply(chol.lower(), y), b, 1e-10, "L y == b");
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
  const Vector x = Lu(a).solve(Vector{5.0, 10.0});
  expect_vector_near(x, {1.0, 3.0}, 1e-12);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_NEAR(Lu(a).det(), -2.0, 1e-12);
}

TEST(Lu, DeterminantTracksPivotSign) {
  // Permutation matrix [[0,1],[1,0]] has determinant -1.
  const Matrix p = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(Lu(p).det(), -1.0, 1e-14);
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  const Matrix a = random_spd(6, 77);
  const Matrix inv = Lu(a).inverse();
  expect_matrix_near(multiply(a, inv), Matrix::identity(6), 1e-9, "A A^-1");
}

TEST(Lu, RejectsSingular) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_THROW((void)Lu(a), NumericalError);
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW((void)Lu(Matrix(2, 3)), LogicError);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  const Matrix a = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const Vector x = Lu(a).solve(Vector{3.0, 7.0});
  expect_vector_near(x, {7.0, 3.0}, 1e-13);
}

}  // namespace
}  // namespace mhm::linalg
